// Quickstart: build DOWN/UP routing for the paper's Figure-1 network,
// inspect directions and prohibited turns, verify deadlock freedom, and
// route a packet.
//
//   ./quickstart [--threads N]
#include <iostream>
#include <thread>

#include "core/downup_routing.hpp"
#include "routing/verify.hpp"
#include "topology/generate.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  util::Cli cli("quickstart", "build and inspect DOWN/UP routing for Figure 1");
  const unsigned hw = std::thread::hardware_concurrency();
  auto threads = cli.positiveOption<int>(
      "threads", static_cast<int>(hw == 0 ? 1 : hw),
      "worker threads for routing-table construction");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(*threads));

  // 1. The irregular network of Figure 1(b): 5 switches, 6 links.
  const topo::Topology topo = topo::paperFigure1();
  std::cout << "Topology: " << topo.nodeCount() << " switches, "
            << topo.linkCount() << " links\n";

  // 2. A coordinated tree (BFS spanning tree + preorder X / level Y
  //    coordinates), built with the paper's M1 policy.
  util::Rng rng(1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  std::cout << "\nCoordinated tree (root " << ct.root() << "):\n";
  for (topo::NodeId v = 0; v < topo.nodeCount(); ++v) {
    std::cout << "  v" << v + 1 << "  X=" << ct.x(v) << " Y=" << ct.y(v);
    if (v != ct.root()) std::cout << "  parent v" << ct.parent(v) + 1;
    std::cout << "\n";
  }

  // 3. DOWN/UP routing: Definition-5 directions, the 18 prohibited turns,
  //    cycle repair + the Phase-3 release pass, and shortest legal paths.
  const routing::Routing routing = core::buildDownUp(topo, ct, {.pool = &pool});
  std::cout << "\nChannel directions:\n";
  for (topo::ChannelId c = 0; c < topo.channelCount(); ++c) {
    std::cout << "  <v" << topo.channelSrc(c) + 1 << ",v"
              << topo.channelDst(c) + 1 << "> = "
              << routing::toString(routing.permissions().dir(c)) << "\n";
  }
  std::cout << "\nGlobally prohibited turns ("
            << routing.permissions().global().prohibitedCount() << "):\n";
  for (const auto& [from, to] : routing.permissions().global().prohibitedList()) {
    std::cout << "  " << routing::toString(from) << " -> "
              << routing::toString(to) << "\n";
  }
  std::cout << "per-node releases: " << routing.permissions().releaseCount()
            << ", per-node repair blocks: "
            << routing.permissions().blockCount() << "\n";

  // 4. Verify: acyclic channel dependencies + all-pairs connectivity.
  const routing::VerifyReport report = routing::verifyRouting(routing);
  std::cout << "\nVerification: " << report.describe() << "\n";

  // 5. Route v2 -> v3 (ids 1 -> 2) along shortest legal channels.
  std::cout << "\nShortest legal path v2 -> v3: ";
  std::vector<topo::ChannelId> hop;
  routing.table().firstChannels(1, 2, hop);
  topo::ChannelId current = hop.front();
  std::cout << "v2";
  while (true) {
    std::cout << " -> v" << topo.channelDst(current) + 1;
    if (topo.channelDst(current) == 2) break;
    hop.clear();
    routing.table().nextChannels(current, 2, hop);
    current = hop.front();
  }
  std::cout << "  (" << routing.table().distance(1, 2) << " hops)\n";
  return 0;
}
