// Oracle witness replay, end to end: build a healthy DOWN/UP routing on a
// seeded irregular SAN, audit a deliberately corrupted (unrestricted) copy
// of its rule through an OracleGate with case dumping on, then reload the
// dumped oracle_case/1 file and re-run the oracle on the reconstructed
// state — the offline verdict must reproduce the recorded one.
//
//   ./oracle_replay --switches 16 --seed 7
#include <fstream>
#include <iostream>
#include <string>

#include "core/downup_routing.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "verify/gate.hpp"
#include "verify/replay.hpp"

int main(int argc, char** argv) {
  using namespace downup;

  util::Cli cli("oracle_replay",
                "dump a planted oracle violation and replay it offline");
  auto switches = cli.positiveOption<int>("switches", 16, "switch count");
  auto seed = cli.option<std::uint64_t>("seed", 7, "topology seed");
  auto prefix = cli.option<std::string>(
      "case-prefix", "oracle_replay_demo",
      "dump path prefix (.caseN.jsonl appended)");
  cli.parse(argc, argv);

  util::Rng rng(*seed);
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(*switches), {.maxPorts = 4}, rng);
  util::Rng treeRng(*seed + 100);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  std::cout << *switches << " switches, " << topo.linkCount()
            << " links; rule " << routing.name() << "\n";

  // A clean audit first: the real rule must pass.
  verify::OracleGate::Options cleanOptions;
  verify::OracleGate cleanGate(cleanOptions);
  verify::OracleInput input;
  input.perms = &routing.permissions();
  input.table = &routing.table();
  if (!cleanGate.audit(input, {.point = "example_clean"})) {
    std::cerr << "healthy rule failed the oracle: "
              << cleanGate.lastViolation().describe() << "\n";
    return 1;
  }
  std::cout << "healthy rule: oracle ok\n";

  // Now the planted violation, dumped as a replayable case.
  verify::OracleGate::Options plantedOptions;
  plantedOptions.plantViolation = true;
  plantedOptions.dumpPathPrefix = *prefix;
  verify::OracleGate gate(plantedOptions);
  if (gate.audit(input, {.point = "example_planted", .cycle = 1})) {
    std::cerr << "planted violation was NOT detected\n";
    return 1;
  }
  std::cout << "planted rule: " << gate.lastViolation().describe() << "\n"
            << "dumped " << gate.lastCasePath() << "\n";

  // Offline replay: reconstruct the case and re-run the oracle.
  std::ifstream in(gate.lastCasePath());
  if (!in) {
    std::cerr << "cannot reopen " << gate.lastCasePath() << "\n";
    return 1;
  }
  const verify::ReplayCase rc =
      verify::loadReplayCase(in, gate.lastCasePath());
  const verify::OracleReport replayed = verify::runOracle(rc.input());
  std::cout << "replayed verdict: " << replayed.describe() << "\n";

  const bool reproduced =
      replayed.ruleDeadlockFree == rc.expectedRuleDeadlockFree &&
      replayed.stateDrains == rc.expectedStateDrains;
  std::cout << (reproduced ? "replay reproduces the recorded verdict\n"
                           : "REPLAY MISMATCH\n");
  return reproduced ? 0 : 1;
}
