// Latency curve: sweep offered load on one generated network and print the
// latency / accepted-traffic series for L-turn and DOWN/UP side by side —
// a single-sample version of the paper's Figure 8 that finishes in seconds.
//
//   ./latency_curve --switches 32 --ports 4 --traffic uniform
//
// --metrics-out reruns the heaviest sweep point with the observability
// layer attached and writes both algorithms' metrics JSONL (<path>.lturn /
// <path>.downup) — the quick way to get per-tree-level blocked-cycle
// histograms for a topology of your own.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "core/downup_routing.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "sim/engine.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  util::Cli cli("latency_curve",
                "latency vs accepted traffic on one irregular network");
  auto switches = cli.positiveOption<int>("switches", 32, "number of switches");
  auto ports = cli.positiveOption<int>("ports", 4, "inter-switch ports per switch");
  auto seed = cli.option<std::uint64_t>("seed", 1, "topology + traffic seed");
  auto packet = cli.positiveOption<int>("packet-flits", 128, "packet length (flits)");
  auto points = cli.positiveOption<int>("points", 8, "sweep points");
  auto trafficName = cli.option<std::string>(
      "traffic", "uniform", "traffic pattern: uniform | hotspot | permutation");
  auto metricsOut = cli.option<std::string>(
      "metrics-out", "",
      "rerun the heaviest load with metrics and write JSONL here "
      "(suffixed .lturn / .downup)");
  const unsigned hw = std::thread::hardware_concurrency();
  auto threads = cli.positiveOption<int>(
      "threads", static_cast<int>(hw == 0 ? 1 : hw),
      "worker threads for routing-table construction");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(*threads));

  util::Rng rng(*seed);
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(*switches),
      {.maxPorts = static_cast<unsigned>(*ports)}, rng);
  util::Rng treeRng(*seed + 1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);

  std::unique_ptr<sim::TrafficPattern> pattern;
  util::Rng patternRng(*seed + 2);
  if (*trafficName == "uniform") {
    pattern = std::make_unique<sim::UniformTraffic>(topo.nodeCount());
  } else if (*trafficName == "hotspot") {
    pattern =
        std::make_unique<sim::HotspotTraffic>(topo.nodeCount(), 0, 0.2);
  } else if (*trafficName == "permutation") {
    pattern = std::make_unique<sim::PermutationTraffic>(
        sim::PermutationTraffic::random(topo.nodeCount(), patternRng));
  } else {
    std::cerr << "unknown traffic pattern '" << *trafficName << "'\n";
    return 2;
  }

  sim::SimConfig config;
  config.packetLengthFlits = static_cast<std::uint32_t>(*packet);
  config.warmupCycles = 3000;
  config.measureCycles = 12000;
  config.seed = *seed + 3;
  const auto loads =
      stats::loadGrid(0.06 * *ports, static_cast<unsigned>(*points));

  std::cout << "network: " << topo.nodeCount() << " switches / "
            << topo.linkCount() << " links, traffic: " << pattern->name()
            << ", packets: " << *packet << " flits\n\n";
  std::cout << std::left << std::setw(10) << "offered" << std::setw(22)
            << "lturn acc / latency" << std::setw(22)
            << "downup acc / latency" << "\n";

  const routing::Routing lturn =
      core::buildRouting(core::Algorithm::kLTurn, topo, ct, &pool);
  const routing::Routing downup =
      core::buildRouting(core::Algorithm::kDownUp, topo, ct, &pool);
  const auto lturnSweep = stats::runSweep(lturn.table(), *pattern, loads,
                                          config, {.stopAtSaturation = false});
  const auto downupSweep = stats::runSweep(
      downup.table(), *pattern, loads, config, {.stopAtSaturation = false});

  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::ostringstream lcell;
    std::ostringstream dcell;
    lcell << std::fixed << std::setprecision(4)
          << lturnSweep[i].stats.acceptedFlitsPerNodePerCycle << " / "
          << std::setprecision(0) << lturnSweep[i].stats.avgLatency;
    dcell << std::fixed << std::setprecision(4)
          << downupSweep[i].stats.acceptedFlitsPerNodePerCycle << " / "
          << std::setprecision(0) << downupSweep[i].stats.avgLatency;
    std::cout << std::left << std::setw(10) << std::setprecision(4)
              << std::fixed << loads[i] << std::setw(22) << lcell.str()
              << std::setw(22) << dcell.str() << "\n";
  }
  std::cout << "\npeak accepted: lturn "
            << stats::findSaturation(lturnSweep).maxAccepted << ", downup "
            << stats::findSaturation(downupSweep).maxAccepted
            << " flits/clock/node\n";

  if (!metricsOut->empty()) {
    for (const auto& [name, r] :
         {std::pair<const char*, const routing::Routing*>{"lturn", &lturn},
          std::pair<const char*, const routing::Routing*>{"downup",
                                                          &downup}}) {
      obs::Observer observer({.metrics = true}, topo, &ct);
      sim::SimConfig obsConfig = config;
      obsConfig.observer = &observer;
      sim::WormholeNetwork net(r->table(), *pattern, loads.back(), obsConfig);
      net.run();
      const std::string path = *metricsOut + "." + name;
      std::ofstream out(path);
      obs::writeMetricsJsonl(*observer.metrics(), &topo,
                             obsConfig.measureCycles, out);
      std::cout << "wrote metrics JSONL (" << name << " at load "
                << loads.back() << "): " << path << "\n";
    }
  }
  return 0;
}
