// SAN designer: given a cluster size and per-switch port budget, generate a
// random irregular system-area network and compare every routing algorithm
// in the library on the static qualities a designer cares about — legal
// path length, stretch over graph distance, adaptivity (average number of
// legal minimal output choices) — plus a quick saturation probe.
//
//   ./san_designer --switches 64 --ports 8 --seed 3
#include <iomanip>
#include <iostream>
#include <thread>

#include "core/downup_routing.hpp"
#include "routing/path_analysis.hpp"
#include "routing/verify.hpp"
#include "sim/engine.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "topology/properties.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  util::Cli cli("san_designer",
                "compare routing algorithms on a generated irregular SAN");
  auto switches = cli.positiveOption<int>("switches", 64, "number of switches");
  auto ports = cli.positiveOption<int>("ports", 8, "inter-switch ports per switch");
  auto seed = cli.option<std::uint64_t>("seed", 3, "topology seed");
  auto probe = cli.flag("probe", "also run a saturation probe (slower)");
  const unsigned hw = std::thread::hardware_concurrency();
  auto threads = cli.positiveOption<int>(
      "threads", static_cast<int>(hw == 0 ? 1 : hw),
      "worker threads for routing-table construction");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(*threads));

  util::Rng rng(*seed);
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(*switches),
      {.maxPorts = static_cast<unsigned>(*ports)}, rng);
  std::cout << "Generated SAN: " << topo.nodeCount() << " switches, "
            << topo.linkCount() << " links, diameter " << topo::diameter(topo)
            << ", avg distance " << std::fixed << std::setprecision(3)
            << topo::averageDistance(topo) << "\n\n";

  util::Rng treeRng(*seed + 1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);

  std::cout << std::left << std::setw(20) << "algorithm" << std::setw(12)
            << "avgPath" << std::setw(12) << "stretch" << std::setw(12)
            << "adaptivity" << std::setw(12) << "verdict";
  if (*probe) std::cout << std::setw(12) << "satTput";
  std::cout << "\n";

  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    const routing::Routing routing =
        core::buildRouting(algorithm, topo, ct, &pool);
    const routing::VerifyReport report = routing::verifyRouting(routing);
    std::cout << std::left << std::setw(20) << routing.name() << std::setw(12)
              << std::setprecision(3) << report.averagePathLength
              << std::setw(12) << report.averageStretch << std::setw(12)
              << routing::averageAdaptivity(routing.table()) << std::setw(12)
              << (report.ok() ? "OK" : "BROKEN");
    if (*probe) {
      sim::SimConfig config;
      config.packetLengthFlits = 32;
      config.warmupCycles = 1000;
      config.measureCycles = 5000;
      const sim::UniformTraffic traffic(topo.nodeCount());
      const auto loads = stats::loadGrid(0.05 * *ports, 6);
      const auto sweep =
          stats::runSweep(routing.table(), traffic, loads, config);
      std::cout << std::setw(12) << std::setprecision(4)
                << stats::findSaturation(sweep).maxAccepted;
    }
    std::cout << "\n";
  }
  std::cout << "\n(avgPath in hops; stretch = legal/graph distance; "
               "adaptivity = mean legal minimal first hops";
  if (*probe) std::cout << "; satTput in flits/clock/node";
  std::cout << ")\n";
  return 0;
}
