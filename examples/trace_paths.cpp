// Path tracing: run a short simulation with tracing enabled, print a few
// packets' actual channel walks with per-hop directions, dump one switch's
// firmware-style turn-permission table, and compare one packet pair's
// per-hop turns under DOWN/UP vs L-turn routing.
//
// With the observability flags the same run also produces machine-readable
// artifacts: --trace-out writes a Chrome trace_event JSON (open it in
// https://ui.perfetto.dev or chrome://tracing), --trace-jsonl the raw event
// log, --metrics-out the turn/level/blocked-cycle metrics JSONL,
// --timeseries-out the windowed rate counter tracks (Perfetto JSON).
//
//   ./trace_paths --switches 16 --ports 4 --packets 6 --trace-out trace.json
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "core/downup_routing.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "routing/serialize.hpp"
#include "sim/network.hpp"
#include "topology/generate.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace downup;

std::string_view dirName(std::uint8_t dir) {
  if (dir >= routing::kDirCount) return "INJECT";
  return routing::toString(static_cast<routing::Dir>(dir));
}

// Injects src -> dst into a fresh single-packet deterministic run and
// prints the turn taken at every hop, from the packet tracer's events.
void traceOnePacket(const routing::Routing& routing, topo::NodeId src,
                    topo::NodeId dst) {
  const topo::Topology& topo = routing.table().topology();
  obs::Observer observer({.traceSampleEvery = 1}, topo);
  sim::SimConfig config;
  config.packetLengthFlits = 4;
  config.warmupCycles = 0;
  config.measureCycles = 1u << 20;  // stepped manually
  config.adaptiveSelection = false;  // fixed route: the table's first choice
  config.observer = &observer;
  const sim::UniformTraffic traffic(topo.nodeCount());
  sim::WormholeNetwork net(routing.table(), traffic, 0.0, config);
  const sim::PacketId pid = net.injectPacket(src, dst);
  for (int i = 0; i < 100000 && net.packetsEjected() < 1; ++i) net.step();

  for (const auto& event : observer.tracer()->packetEvents(pid)) {
    if (event.kind != obs::TraceEventKind::kVcAllocated) continue;
    std::cout << "    cycle " << event.cycle << "  node " << event.node;
    if (event.channel == obs::PacketTracer::kNoChannel) {
      std::cout << "  T(" << dirName(event.fromDir) << " -> EJECT)\n";
    } else {
      std::cout << "  T(" << dirName(event.fromDir) << " -> "
                << dirName(event.toDir) << ")  channel to "
                << topo.channelDst(event.channel) << "\n";
    }
  }
  std::cout << "    ejected at cycle " << net.packetEjectTime(pid) << " ("
            << routing.table().distance(src, dst) << " legal-minimum hops)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace downup;
  util::Cli cli("trace_paths",
                "trace simulated packets hop by hop through DOWN/UP routing");
  auto switches = cli.positiveOption<int>("switches", 16, "number of switches");
  auto ports = cli.positiveOption<int>("ports", 4, "ports per switch");
  auto seed = cli.option<std::uint64_t>("seed", 5, "seed");
  auto packets = cli.positiveOption<int>("packets", 6, "packets to print");
  auto traceOut = cli.option<std::string>(
      "trace-out", "", "write a Chrome trace_event JSON (Perfetto) here");
  auto traceJsonl =
      cli.option<std::string>("trace-jsonl", "", "write the trace JSONL here");
  auto metricsOut = cli.option<std::string>(
      "metrics-out", "", "write the metrics JSONL here");
  auto timeseriesOut = cli.option<std::string>(
      "timeseries-out", "",
      "write windowed time-series counter tracks (Perfetto JSON) here");
  const unsigned hw = std::thread::hardware_concurrency();
  auto threads = cli.positiveOption<int>(
      "threads", static_cast<int>(hw == 0 ? 1 : hw),
      "worker threads for routing-table construction");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(*threads));

  util::Rng rng(*seed);
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(*switches),
      {.maxPorts = static_cast<unsigned>(*ports)}, rng);
  util::Rng treeRng(*seed + 1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct, {.pool = &pool});

  // Every 4th packet is traced: enough to cover the printed walks without
  // buffering the whole run.
  obs::ObsOptions obsOptions{.metrics = true, .traceSampleEvery = 4};
  if (!timeseriesOut->empty()) obsOptions.timeseriesWindowCycles = 256;
  obs::Observer observer(obsOptions, topo, &ct);
  sim::SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 0;
  config.measureCycles = 100000;
  config.tracePackets = true;
  config.seed = *seed + 2;
  config.observer = &observer;
  const sim::UniformTraffic traffic(topo.nodeCount());
  sim::WormholeNetwork net(routing.table(), traffic, 0.1, config);
  const auto wanted = static_cast<std::uint64_t>(*packets);
  for (int i = 0; i < 20000 && net.packetsEjected() < wanted; ++i) net.step();

  std::cout << "Traced DOWN/UP packet walks (direction per hop):\n\n";
  std::uint64_t printed = 0;
  for (sim::PacketId pid = 0;
       pid < net.packetsGenerated() && printed < wanted; ++pid) {
    if (net.packetEjectTime(pid) == sim::WormholeNetwork::kNeverEjected) {
      continue;
    }
    const auto& path = net.packetPath(pid);
    if (path.empty()) continue;
    const topo::NodeId src = topo.channelSrc(path.front());
    const topo::NodeId dst = topo.channelDst(path.back());
    std::cout << "packet " << pid << "  " << src;
    for (topo::ChannelId c : path) {
      std::cout << " -[" << routing::toString(routing.permissions().dir(c))
                << "]-> " << topo.channelDst(c);
    }
    std::cout << "\n  " << path.size() << " hops (legal minimum "
              << routing.table().distance(src, dst) << "), latency "
              << net.packetEjectTime(pid) - net.packetGenTime(pid) + 1
              << " clocks\n";
    ++printed;
  }

  // The busiest switch's firmware table.
  topo::NodeId busiest = 0;
  for (topo::NodeId v = 1; v < topo.nodeCount(); ++v) {
    if (topo.degree(v) > topo.degree(busiest)) busiest = v;
  }
  std::cout << "\nSwitch turn-permission table (busiest switch):\n\n";
  routing::exportSwitchConfig(routing, busiest, std::cout);

  // One packet pair, DOWN/UP vs L-turn: same endpoints, per-hop turns side
  // by side — the concrete view of how the two turn models steer traffic
  // differently around the root.
  topo::NodeId pairSrc = 0;
  topo::NodeId pairDst = 1;
  std::uint32_t best = 0;
  for (topo::NodeId a = 0; a < topo.nodeCount(); ++a) {
    for (topo::NodeId b = 0; b < topo.nodeCount(); ++b) {
      const std::uint32_t d = routing.table().distance(a, b);
      if (a != b && d != routing::kNoPath && d > best) {
        best = d;
        pairSrc = a;
        pairDst = b;
      }
    }
  }
  const routing::Routing lturn =
      core::buildRouting(core::Algorithm::kLTurn, topo, ct, &pool);
  std::cout << "\nPacket pair " << pairSrc << " <-> " << pairDst
            << ", per-hop turns:\n";
  for (const auto& [name, r] :
       {std::pair<const char*, const routing::Routing*>{"downup", &routing},
        std::pair<const char*, const routing::Routing*>{"lturn", &lturn}}) {
    std::cout << "\n  [" << name << "] " << pairSrc << " -> " << pairDst
              << ":\n";
    traceOnePacket(*r, pairSrc, pairDst);
    std::cout << "  [" << name << "] " << pairDst << " -> " << pairSrc
              << ":\n";
    traceOnePacket(*r, pairDst, pairSrc);
  }

  if (!traceOut->empty()) {
    std::ofstream out(*traceOut);
    obs::writeChromeTrace(*observer.tracer(), &topo, out);
    std::cout << "\nwrote Chrome trace (open in Perfetto): " << *traceOut
              << "\n";
  }
  if (!traceJsonl->empty()) {
    std::ofstream out(*traceJsonl);
    obs::writeTraceJsonl(*observer.tracer(), &topo, out);
    std::cout << "wrote trace JSONL: " << *traceJsonl << "\n";
  }
  if (!metricsOut->empty()) {
    std::ofstream out(*metricsOut);
    obs::writeMetricsJsonl(*observer.metrics(), &topo, net.now(), out);
    std::cout << "wrote metrics JSONL: " << *metricsOut << "\n";
  }
  if (!timeseriesOut->empty()) {
    observer.timeseries()->finish(net.now());
    std::ofstream out(*timeseriesOut);
    obs::writeTimeSeriesChromeTrace(*observer.timeseries(), out);
    std::cout << "wrote time-series counter tracks (open in Perfetto): "
              << *timeseriesOut << "\n";
  }
  return 0;
}
