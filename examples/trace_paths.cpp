// Path tracing: run a short simulation with tracing enabled, print a few
// packets' actual channel walks with per-hop directions, and dump one
// switch's firmware-style turn-permission table.
//
//   ./trace_paths --switches 16 --ports 4 --packets 6
#include <iostream>

#include "core/downup_routing.hpp"
#include "routing/serialize.hpp"
#include "sim/network.hpp"
#include "topology/generate.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  util::Cli cli("trace_paths",
                "trace simulated packets hop by hop through DOWN/UP routing");
  auto switches = cli.option<int>("switches", 16, "number of switches");
  auto ports = cli.option<int>("ports", 4, "ports per switch");
  auto seed = cli.option<std::uint64_t>("seed", 5, "seed");
  auto packets = cli.option<int>("packets", 6, "packets to print");
  cli.parse(argc, argv);

  util::Rng rng(*seed);
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(*switches),
      {.maxPorts = static_cast<unsigned>(*ports)}, rng);
  util::Rng treeRng(*seed + 1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);

  sim::SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 0;
  config.measureCycles = 100000;
  config.tracePackets = true;
  config.seed = *seed + 2;
  const sim::UniformTraffic traffic(topo.nodeCount());
  sim::WormholeNetwork net(routing.table(), traffic, 0.1, config);
  const auto wanted = static_cast<std::uint64_t>(*packets);
  for (int i = 0; i < 20000 && net.packetsEjected() < wanted; ++i) net.step();

  std::cout << "Traced DOWN/UP packet walks (direction per hop):\n\n";
  std::uint64_t printed = 0;
  for (sim::PacketId pid = 0;
       pid < net.packetsGenerated() && printed < wanted; ++pid) {
    if (net.packetEjectTime(pid) == sim::WormholeNetwork::kNeverEjected) {
      continue;
    }
    const auto& path = net.packetPath(pid);
    if (path.empty()) continue;
    const topo::NodeId src = topo.channelSrc(path.front());
    const topo::NodeId dst = topo.channelDst(path.back());
    std::cout << "packet " << pid << "  " << src;
    for (topo::ChannelId c : path) {
      std::cout << " -[" << routing::toString(routing.permissions().dir(c))
                << "]-> " << topo.channelDst(c);
    }
    std::cout << "\n  " << path.size() << " hops (legal minimum "
              << routing.table().distance(src, dst) << "), latency "
              << net.packetEjectTime(pid) - net.packetGenTime(pid) + 1
              << " clocks\n";
    ++printed;
  }

  // The busiest switch's firmware table.
  topo::NodeId busiest = 0;
  for (topo::NodeId v = 1; v < topo.nodeCount(); ++v) {
    if (topo.degree(v) > topo.degree(busiest)) busiest = v;
  }
  std::cout << "\nSwitch turn-permission table (busiest switch):\n\n";
  routing::exportSwitchConfig(routing, busiest, std::cout);
  return 0;
}
