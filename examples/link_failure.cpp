// Link-failure resilience: the defining advantage of topology-agnostic
// routing is that after a link dies you rebuild the spanning tree and the
// turn rule on whatever topology is left and keep running.  This example
// fails every link of a generated SAN in turn and hands the degraded
// aliveness masks to the online fault::Reconfigurator — the same rebuild
// path the simulator hot-swaps mid-run — reporting how often the network
// stays connected and deadlock-free and how much the average legal path
// degrades.
//
//   ./link_failure --switches 32 --ports 4 --seed 9 --threads 4
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "core/downup_routing.hpp"
#include "fault/reconfigure.hpp"
#include "topology/generate.hpp"
#include "util/cli.hpp"
#include "util/summary.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  util::Cli cli("link_failure",
                "rebuild DOWN/UP routing after every single-link failure");
  auto switches = cli.positiveOption<int>("switches", 32, "number of switches");
  auto ports = cli.positiveOption<int>("ports", 4, "inter-switch ports per switch");
  auto seed = cli.option<std::uint64_t>("seed", 9, "topology seed");
  const unsigned hw = std::thread::hardware_concurrency();
  auto threads = cli.positiveOption<int>(
      "threads", static_cast<int>(hw == 0 ? 1 : hw),
      "worker threads for routing-table construction");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(*threads));

  util::Rng rng(*seed);
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(*switches),
      {.maxPorts = static_cast<unsigned>(*ports)}, rng);

  util::Rng treeRng(*seed + 1);
  const tree::CoordinatedTree baseTree = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const double basePath = core::buildDownUp(topo, baseTree, {.pool = &pool})
                              .table()
                              .averagePathLength();
  std::cout << "Healthy network: " << topo.linkCount() << " links, DOWN/UP "
            << "avg legal path " << std::fixed << std::setprecision(4)
            << basePath << " hops\n\n";

  const fault::Reconfigurator reconfigurator(topo, &pool);
  const std::vector<std::uint8_t> nodesUp(topo.nodeCount(), 1);
  unsigned survivable = 0;
  unsigned partitioned = 0;
  util::RunningStat degradedPath;
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    std::vector<std::uint8_t> linksUp(topo.linkCount(), 1);
    linksUp[l] = 0;
    const fault::ReconfigOutcome outcome =
        reconfigurator.rebuild(linksUp, nodesUp);
    if (!outcome.ok()) {
      std::cout << "UNEXPECTED: failure of link " << l
                << " broke the rebuilt routing\n";
      return 1;
    }
    if (outcome.components > 1) {
      ++partitioned;  // physically split; no routing can help
      continue;
    }
    ++survivable;
    degradedPath.add(outcome.averagePathLength);
  }

  std::cout << "Single-link failures: " << topo.linkCount() << " total, "
            << survivable << " survivable (rebuilt deadlock-free + "
            << "connected), " << partitioned
            << " physically partition the network\n";
  std::cout << "Average legal path after failure: " << degradedPath.mean()
            << " hops (healthy " << basePath << ", worst "
            << degradedPath.max() << ")\n";
  return 0;
}
