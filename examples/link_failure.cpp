// Link-failure resilience: the defining advantage of topology-agnostic
// routing is that after a link dies you rebuild the spanning tree and the
// turn rule on whatever topology is left and keep running.  This example
// fails every link of a generated SAN in turn, rebuilds DOWN/UP routing,
// and reports how often the network stays connected and deadlock-free and
// how much the average legal path degrades.
//
//   ./link_failure --switches 32 --ports 4 --seed 9
#include <iomanip>
#include <iostream>

#include "core/downup_routing.hpp"
#include "routing/verify.hpp"
#include "topology/generate.hpp"
#include "topology/properties.hpp"
#include "util/cli.hpp"
#include "util/summary.hpp"

namespace {

/// Copies `original` without link `skip`.
downup::topo::Topology withoutLink(const downup::topo::Topology& original,
                                   downup::topo::LinkId skip) {
  downup::topo::Topology degraded(original.nodeCount());
  for (downup::topo::LinkId l = 0; l < original.linkCount(); ++l) {
    if (l == skip) continue;
    const auto [a, b] = original.linkEnds(l);
    degraded.addLink(a, b);
  }
  return degraded;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace downup;
  util::Cli cli("link_failure",
                "rebuild DOWN/UP routing after every single-link failure");
  auto switches = cli.option<int>("switches", 32, "number of switches");
  auto ports = cli.option<int>("ports", 4, "inter-switch ports per switch");
  auto seed = cli.option<std::uint64_t>("seed", 9, "topology seed");
  cli.parse(argc, argv);

  util::Rng rng(*seed);
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(*switches),
      {.maxPorts = static_cast<unsigned>(*ports)}, rng);

  util::Rng treeRng(*seed + 1);
  const tree::CoordinatedTree baseTree = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const double basePath =
      core::buildDownUp(topo, baseTree).table().averagePathLength();
  std::cout << "Healthy network: " << topo.linkCount() << " links, DOWN/UP "
            << "avg legal path " << std::fixed << std::setprecision(4)
            << basePath << " hops\n\n";

  unsigned survivable = 0;
  unsigned partitioned = 0;
  util::RunningStat degradedPath;
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    const topo::Topology degraded = withoutLink(topo, l);
    if (!topo::isConnected(degraded)) {
      ++partitioned;  // physically split; no routing can help
      continue;
    }
    util::Rng rebuildRng(*seed + 2);
    const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
        degraded, tree::TreePolicy::kM1SmallestFirst, rebuildRng);
    const routing::Routing routing = core::buildDownUp(degraded, ct);
    const routing::VerifyReport report = routing::verifyRouting(routing);
    if (!report.ok()) {
      std::cout << "UNEXPECTED: failure of link " << l << " broke routing: "
                << report.describe() << "\n";
      return 1;
    }
    ++survivable;
    degradedPath.add(report.averagePathLength);
  }

  std::cout << "Single-link failures: " << topo.linkCount() << " total, "
            << survivable << " survivable (rebuilt deadlock-free + "
            << "connected), " << partitioned
            << " physically partition the network\n";
  std::cout << "Average legal path after failure: " << degradedPath.mean()
            << " hops (healthy " << basePath << ", worst "
            << degradedPath.max() << ")\n";
  return 0;
}
