// Phase 2 of the paper: deriving the maximal acyclic direction-dependency
// graph (ADDG) of the complete 8-direction graph by the prescribed 4-step
// pairwise combination, and the resulting DOWN/UP turn rule.
//
// Directions are nodes; an edge (d1 -> d2) means the turn "arrive on a
// d1 channel, continue on a d2 channel" is allowed.  The derivation removes
// exactly the 18 edges the paper lists in §4.3 (the prohibited-turn set PT);
// every removal is motivated by either pushing traffic down toward leaves or
// keeping it away from the root.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <utility>

#include "routing/turns.hpp"

namespace downup::core {

using routing::Dir;
using routing::TurnSet;

/// An explicit direction-dependency graph over a subset of the 8 directions.
class Ddg {
 public:
  /// The complete DG of a direction pair (both edges present).
  static Ddg completePair(Dir a, Dir b);

  /// Union of members plus *all* edges between the two member sets (the
  /// paper's "combine by adding edges between nodes of A and B"); the member
  /// sets must be disjoint.
  static Ddg combine(const Ddg& a, const Ddg& b);

  void removeEdge(Dir from, Dir to) noexcept;
  bool hasEdge(Dir from, Dir to) const noexcept;
  bool hasMember(Dir d) const noexcept;
  unsigned memberCount() const noexcept;
  unsigned edgeCount() const noexcept;

  /// Interprets this DDG over the full direction set as a TurnSet: edges are
  /// allowed turns, every absent distinct-direction pair is prohibited.
  TurnSet toTurnSet() const;

 private:
  std::uint8_t members_ = 0;  // bit i <=> Dir(i) is a member
  std::array<std::array<bool, routing::kDirCount>, routing::kDirCount>
      edges_{};
};

/// Intermediate results of the paper's 4-step derivation, for inspection
/// and tests (numbering follows the paper: ADDG1..ADDG7).
struct AddgDerivation {
  Ddg addg1, addg2, addg3, addg4;  // step 1 (per direction pair)
  Ddg addg5;                       // step 2: addg1 (+) addg2
  Ddg addg6;                       // step 3: addg3 (+) addg5
  Ddg addg7;                       // step 4: addg4 (+) addg6 (the result)
};

/// Runs the derivation.
AddgDerivation deriveMaximalAddg();

/// The DOWN/UP turn rule: allowed turns = ADDG7 edges.
TurnSet downUpTurnSet();

/// The 18 prohibited turns of §4.3 (complement of ADDG7), in the paper's
/// listing order.
const std::array<std::pair<Dir, Dir>, 18>& downUpProhibitedTurns();

/// Lemma 1: if the direction-level dependency graph (nodes = directions,
/// edges = allowed distinct-direction turns) is acyclic, then no turn cycle
/// can form in any communication graph.  This checks that premise for a
/// turn set over the directions that actually occur.  The converse fails —
/// Figure 1(f)'s point — so a cyclic DDG (e.g. the L-turn or DOWN/UP rules)
/// still demands the channel-level check in routing/cdg.hpp.
bool isDirectionGraphAcyclic(const TurnSet& set,
                             std::initializer_list<Dir> directions);

}  // namespace downup::core
