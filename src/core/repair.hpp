// Cycle-repair pass for the DOWN/UP turn rule.
//
// Reproduction finding (see DESIGN.md §4.4): the 18-turn prohibited set the
// paper derives in Phase 2 is *not* sufficient for deadlock freedom.  The
// direction-dependency cycle
//
//     RD_CROSS -> LU_CROSS -> L_CROSS -> RD_CROSS        (all three allowed)
//
// is realizable as a genuine turn cycle in a communication graph — an
// 8-node witness is constructed in tests/core/downup_test.cpp.  The paper's
// Step-3/Step-4 case analysis breaks up->flat->down orderings but misses
// down->up->flat->down phase loops (down->up turns are the essence of
// DOWN/UP routing and stay allowed).
//
// The repair keeps the published rule intact globally and breaks each
// residual channel-dependency cycle locally: every turn cycle must enter an
// up-cross run via a turn (d1 -> d2) with d2 in {LU_CROSS, RU_CROSS} and
// d1 outside it (a cycle containing LU_TREE would have to be all-LU_TREE,
// which is impossible), so we block exactly such a turn at one node per
// detected cycle until the channel-dependency graph is acyclic.  Blocked
// turns are never on a coordinated-tree path (tree paths use only LU_TREE /
// RD_TREE), so all-pairs connectivity is preserved.
#pragma once

#include "routing/turns.hpp"

namespace downup::core {

struct RepairStats {
  unsigned blockedTurns = 0;  // (node, direction-pair) blocks added
  unsigned cyclesBroken = 0;  // repair iterations (>= blockedTurns batches)
};

/// Blocks per-node turns until the channel-dependency graph induced by
/// `perms` is acyclic.  Idempotent; a no-op when already acyclic.
RepairStats repairTurnCycles(routing::TurnPermissions& perms);

}  // namespace downup::core
