#include "core/repair.hpp"

#include <stdexcept>

#include "routing/cdg.hpp"

namespace downup::core {

using routing::ChannelId;
using routing::Dir;
using routing::NodeId;
using routing::Topology;
using routing::TurnPermissions;

namespace {

/// Picks the turn to block on a witness cycle: prefer a turn entering an
/// up-cross run from outside; fall back to any distinct-direction turn that
/// is not the connectivity-critical LU_TREE -> RD_TREE.
std::size_t pickTurnIndex(const TurnPermissions& perms,
                          const std::vector<ChannelId>& cycle) {
  const std::size_t k = cycle.size();
  for (std::size_t i = 0; i < k; ++i) {
    const Dir d1 = perms.dir(cycle[i]);
    const Dir d2 = perms.dir(cycle[(i + 1) % k]);
    if (routing::isUpCross(d2) && !routing::isUpCross(d1)) return i;
  }
  for (std::size_t i = 0; i < k; ++i) {
    const Dir d1 = perms.dir(cycle[i]);
    const Dir d2 = perms.dir(cycle[(i + 1) % k]);
    if (d1 != d2 && !(d1 == Dir::kLuTree && d2 == Dir::kRdTree)) return i;
  }
  throw std::logic_error(
      "repairTurnCycles: cycle with no safely blockable turn");
}

}  // namespace

RepairStats repairTurnCycles(TurnPermissions& perms) {
  RepairStats stats;
  for (;;) {
    const routing::CdgResult result =
        routing::checkChannelDependencies(perms);
    if (result.acyclic) return stats;

    const std::size_t i = pickTurnIndex(perms, result.cycle);
    const ChannelId in = result.cycle[i];
    const ChannelId out = result.cycle[(i + 1) % result.cycle.size()];
    const NodeId via = perms.topology().channelDst(in);
    perms.blockAt(via, perms.dir(in), perms.dir(out));
    ++stats.blockedTurns;
    ++stats.cyclesBroken;
  }
}

}  // namespace downup::core
