// Phase 3 of the paper: per-node release of redundant prohibited turns.
//
// Only T(LU_CROSS -> RD_TREE) and T(RU_CROSS -> RD_TREE) are candidates
// (paper §4.3): they are the sole prohibitions whose release keeps pushing
// traffic downward, and RD_TREE outputs exist at every non-leaf node, so
// they dominate the prohibited-turn population.
//
// Interpretation note (documented deviation): the paper's pseudocode walks
// one (input, output) channel pair at a time and releases on the first pair
// that closes no cycle.  Because a release re-allows the turn for *every*
// channel pair with those directions at the node, we release only when no
// such pair can close a turn cycle, and we run each check against the
// tentatively-released permission set (so a cycle that would route through
// the released node twice is also caught).  This is sound — the final
// permission set provably admits no channel-dependency cycle — and releases
// a superset-of-none / subset-of-all relative to any per-pair scheme.
// Nodes are processed in ascending id order; earlier releases are visible
// to later checks, exactly as in the paper.
//
// Two implementations compute the identical released-turn set:
//
//   * releaseRedundantProhibitionsDfs — the reference: one full DFS over
//     the (tentatively released) channel-dependency graph per candidate,
//     O(candidates x channel-dependency edges).  Kept for the equivalence
//     property tests and as the bench_build serial baseline.
//   * ReleasePass / releaseRedundantProhibitions — the production pass:
//     one Tarjan SCC condensation of the committed dependency graph, per-SCC
//     reachability bitsets folded in reverse topological order, then O(in x
//     out) bit probes per candidate.  Committed releases extend the
//     condensation DAG incrementally (a release never merges SCCs: it is
//     granted only when no released edge can lie on a cycle), propagating
//     reach bits to ancestors over a worklist instead of re-running any
//     graph search.  Equivalence with the DFS on the *pre-release* graph
//     holds because any post-release cycle witness decomposes at the new
//     edges into committed-graph segments, each of which runs from some
//     RD_TREE output of the node to some d1 input of it.
//
// ReleasePass owns every scratch buffer it needs (Tarjan stacks, SCC ids,
// reach bitsets, worklists); re-running a warmed pass on an
// identically-sized problem performs zero heap allocations (asserted by
// tests/core/release_alloc_test.cpp with the global-new counting pattern
// from tests/obs/).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/turns.hpp"

namespace downup::core {

struct ReleaseStats {
  unsigned releasedTurns = 0;   // (node, direction-pair) releases granted
  unsigned candidateTurns = 0;  // (node, direction-pair) combinations tested
};

/// The batched release pass with reusable scratch.  One instance may be
/// reused across many permission sets (of any topology); buffers grow to
/// the high-water mark and are never shrunk.
class ReleasePass {
 public:
  /// Runs the release pass over `perms` in place.
  ReleaseStats run(routing::TurnPermissions& perms);

 private:
  using ChannelId = routing::ChannelId;
  using SccId = std::uint32_t;

  void computeSccs(const routing::TurnPermissions& perms);
  void computeReach(const routing::TurnPermissions& perms);
  bool outputReachesInput() const;
  void commitEdges(const routing::TurnPermissions& perms, routing::NodeId v,
                   routing::Dir d1);

  std::uint64_t* reachRow(SccId s) noexcept { return reach_.data() + s * words_; }
  const std::uint64_t* reachRow(SccId s) const noexcept {
    return reach_.data() + s * words_;
  }

  // --- Tarjan scratch ---
  struct Frame {
    ChannelId channel;
    std::uint32_t outIdx;  // next index into outputChannels(dst(channel))
  };
  std::vector<std::uint32_t> disc_;
  std::vector<std::uint32_t> low_;
  std::vector<std::uint8_t> onStack_;
  std::vector<ChannelId> tarjanStack_;
  std::vector<Frame> frames_;
  std::vector<SccId> sccOf_;   // channel -> SCC (reverse topological ids)
  std::vector<ChannelId> sccMembers_;   // channels grouped by SCC
  std::vector<std::uint32_t> sccOffsets_;  // sccCount_ + 1
  SccId sccCount_ = 0;

  // --- reachability over the condensation ---
  std::size_t words_ = 0;            // bitset words per SCC row
  std::vector<std::uint64_t> reach_;  // sccCount_ x words_, successors only
  std::vector<std::uint8_t> cyclic_;  // SCC holds >= 2 channels
  std::vector<std::vector<SccId>> revAdj_;  // condensation predecessors
  std::vector<SccId> worklist_;

  // --- per-candidate scratch ---
  std::vector<ChannelId> inputs_;
  std::vector<ChannelId> outputs_;
};

/// Runs the release pass over `perms` in place (one-shot ReleasePass).
ReleaseStats releaseRedundantProhibitions(routing::TurnPermissions& perms);

/// The reference implementation: one DFS over the tentatively-released
/// dependency graph per candidate turn.  Scratch is hoisted out of the
/// per-candidate helpers and reused across candidates, but a fresh set of
/// buffers is still allocated per call — use ReleasePass on hot paths.
ReleaseStats releaseRedundantProhibitionsDfs(routing::TurnPermissions& perms);

}  // namespace downup::core
