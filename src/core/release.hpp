// Phase 3 of the paper: per-node release of redundant prohibited turns.
//
// Only T(LU_CROSS -> RD_TREE) and T(RU_CROSS -> RD_TREE) are candidates
// (paper §4.3): they are the sole prohibitions whose release keeps pushing
// traffic downward, and RD_TREE outputs exist at every non-leaf node, so
// they dominate the prohibited-turn population.
//
// Interpretation note (documented deviation): the paper's pseudocode walks
// one (input, output) channel pair at a time and releases on the first pair
// that closes no cycle.  Because a release re-allows the turn for *every*
// channel pair with those directions at the node, we release only when no
// such pair can close a turn cycle, and we run each check against the
// tentatively-released permission set (so a cycle that would route through
// the released node twice is also caught).  This is sound — the final
// permission set provably admits no channel-dependency cycle — and releases
// a superset-of-none / subset-of-all relative to any per-pair scheme.
// Nodes are processed in ascending id order; earlier releases are visible
// to later checks, exactly as in the paper.
#pragma once

#include "routing/turns.hpp"

namespace downup::core {

struct ReleaseStats {
  unsigned releasedTurns = 0;   // (node, direction-pair) releases granted
  unsigned candidateTurns = 0;  // (node, direction-pair) combinations tested
};

/// Runs the cycle_detection release pass over `perms` in place.
ReleaseStats releaseRedundantProhibitions(routing::TurnPermissions& perms);

}  // namespace downup::core
