#include "core/downup_routing.hpp"

#include <stdexcept>

namespace downup::core {

routing::Routing buildDownUp(const routing::Topology& topo,
                             const tree::CoordinatedTree& ct,
                             const DownUpOptions& options) {
  util::ScopedSpan classifySpan(options.spans, "classify");
  routing::TurnPermissions perms(topo, routing::classifyDownUp(topo, ct),
                                 downUpTurnSet());
  classifySpan.close();
  // Repair before release: releases are checked against (and must remain
  // consistent with) the final acyclic permission set.
  if (options.repairCycles) {
    util::ScopedSpan repairSpan(options.spans, "repair");
    repairTurnCycles(perms);
  }
  if (options.releaseRedundant) {
    util::ScopedSpan releaseSpan(options.spans, "release");
    releaseRedundantProhibitions(perms);
  }
  return routing::Routing(options.releaseRedundant ? "downup" : "downup-norelease",
                          std::move(perms), options.pool, options.spans);
}

std::string_view toString(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kUpDownBfs: return "updown-bfs";
    case Algorithm::kUpDownDfs: return "updown-dfs";
    case Algorithm::kLTurn: return "lturn";
    case Algorithm::kLeftRight: return "leftright";
    case Algorithm::kDownUp: return "downup";
    case Algorithm::kDownUpNoRelease: return "downup-norelease";
  }
  return "?";
}

routing::Routing buildRouting(Algorithm algorithm,
                              const routing::Topology& topo,
                              const tree::CoordinatedTree& ct,
                              util::ThreadPool* pool) {
  switch (algorithm) {
    case Algorithm::kUpDownBfs:
      return routing::buildUpDown(topo, ct);
    case Algorithm::kUpDownDfs:
      return routing::buildUpDownDfs(topo, ct.root());
    case Algorithm::kLTurn:
      return routing::buildLTurn(topo, ct);
    case Algorithm::kLeftRight:
      return routing::buildLeftRight(topo, ct);
    case Algorithm::kDownUp:
      return buildDownUp(topo, ct, {.releaseRedundant = true, .pool = pool});
    case Algorithm::kDownUpNoRelease:
      return buildDownUp(topo, ct, {.releaseRedundant = false, .pool = pool});
  }
  throw std::invalid_argument("buildRouting: unknown algorithm");
}

}  // namespace downup::core
