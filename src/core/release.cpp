#include "core/release.hpp"

#include <algorithm>
#include <cassert>

namespace downup::core {

using routing::ChannelId;
using routing::Dir;
using routing::NodeId;
using routing::Topology;
using routing::TurnPermissions;

namespace {

constexpr std::uint32_t kUnvisited = 0xffffffffu;

/// Does node v have at least one input with direction d1 and one output
/// with direction RD_TREE (i.e. is the release meaningful there)?
bool hasCandidatePair(const TurnPermissions& perms, NodeId v, Dir d1) {
  const Topology& topo = perms.topology();
  bool haveIn = false;
  bool haveOut = false;
  for (ChannelId out : topo.outputChannels(v)) {
    haveOut = haveOut || perms.dir(out) == Dir::kRdTree;
    haveIn = haveIn || perms.dir(Topology::reverseChannel(out)) == d1;
  }
  return haveIn && haveOut;
}

/// Scratch of the reference DFS implementation, hoisted out of the
/// per-candidate helpers so one allocation set serves the whole pass.
struct DfsScratch {
  std::vector<ChannelId> inputs;
  std::vector<ChannelId> outputs;
  std::vector<ChannelId> stack;
  std::vector<std::uint8_t> isTarget;
  std::vector<std::uint8_t> seen;
};

/// Would releasing (d1 -> RD_TREE) at v close a turn cycle?  `perms` must
/// already carry the tentative release.  A new channel-dependency edge is
/// (e1 -> e2) for every input e1 of v with direction d1 and output e2 with
/// direction RD_TREE; a new cycle exists iff some e2 reaches some e1.
bool releaseClosesCycle(const TurnPermissions& perms, NodeId v, Dir d1,
                        DfsScratch& s) {
  const Topology& topo = perms.topology();
  s.inputs.clear();
  s.outputs.clear();
  for (ChannelId out : topo.outputChannels(v)) {
    if (perms.dir(out) == Dir::kRdTree) s.outputs.push_back(out);
    const ChannelId in = Topology::reverseChannel(out);
    if (perms.dir(in) == d1) s.inputs.push_back(in);
  }
  if (s.inputs.empty() || s.outputs.empty()) return false;

  s.isTarget.assign(topo.channelCount(), 0);
  for (ChannelId in : s.inputs) s.isTarget[in] = 1;

  // One DFS per output channel over the post-release dependency graph.
  s.seen.assign(topo.channelCount(), 0);
  s.stack.clear();
  for (ChannelId e2 : s.outputs) {
    if (s.seen[e2]) continue;
    s.seen[e2] = 1;
    s.stack.push_back(e2);
    while (!s.stack.empty()) {
      const ChannelId c = s.stack.back();
      s.stack.pop_back();
      const NodeId via = topo.channelDst(c);
      for (ChannelId next : topo.outputChannels(via)) {
        if (!perms.allowed(via, c, next)) continue;
        if (s.isTarget[next]) return true;
        if (!s.seen[next]) {
          s.seen[next] = 1;
          s.stack.push_back(next);
        }
      }
    }
  }
  return false;
}

}  // namespace

ReleaseStats releaseRedundantProhibitionsDfs(TurnPermissions& perms) {
  ReleaseStats stats;
  DfsScratch scratch;
  const NodeId n = perms.topology().nodeCount();
  for (NodeId v = 0; v < n; ++v) {
    for (Dir d1 : {Dir::kLuCross, Dir::kRuCross}) {
      if (!hasCandidatePair(perms, v, d1)) continue;
      ++stats.candidateTurns;
      perms.releaseAt(v, d1, Dir::kRdTree);
      if (releaseClosesCycle(perms, v, d1, scratch)) {
        perms.revokeReleaseAt(v, d1, Dir::kRdTree);
      } else {
        ++stats.releasedTurns;
      }
    }
  }
  return stats;
}

// --- batched pass -----------------------------------------------------------

void ReleasePass::computeSccs(const TurnPermissions& perms) {
  const Topology& topo = perms.topology();
  const std::uint32_t channels = topo.channelCount();
  disc_.assign(channels, kUnvisited);
  low_.assign(channels, 0);
  onStack_.assign(channels, 0);
  sccOf_.assign(channels, 0);
  tarjanStack_.clear();
  frames_.clear();
  sccCount_ = 0;

  // Iterative Tarjan over the channel-dependency graph: successors of c are
  // the allowed output channels at dst(c).  SCC ids come out in reverse
  // topological order of the condensation (an SCC is numbered only after
  // everything it can reach), so reach sets fold correctly in id order.
  std::uint32_t timer = 0;
  for (ChannelId root = 0; root < channels; ++root) {
    if (disc_[root] != kUnvisited) continue;
    disc_[root] = low_[root] = timer++;
    onStack_[root] = 1;
    tarjanStack_.push_back(root);
    frames_.push_back({root, 0});
    while (!frames_.empty()) {
      Frame& frame = frames_.back();
      const NodeId via = topo.channelDst(frame.channel);
      const auto outs = topo.outputChannels(via);
      bool descended = false;
      while (frame.outIdx < outs.size()) {
        const ChannelId next = outs[frame.outIdx++];
        if (!perms.allowed(via, frame.channel, next)) continue;
        if (disc_[next] == kUnvisited) {
          disc_[next] = low_[next] = timer++;
          onStack_[next] = 1;
          tarjanStack_.push_back(next);
          frames_.push_back({next, 0});
          descended = true;
          break;
        }
        if (onStack_[next]) {
          low_[frame.channel] = std::min(low_[frame.channel], disc_[next]);
        }
      }
      if (descended) continue;
      const ChannelId done = frames_.back().channel;
      frames_.pop_back();
      if (!frames_.empty()) {
        ChannelId parent = frames_.back().channel;
        low_[parent] = std::min(low_[parent], low_[done]);
      }
      if (low_[done] == disc_[done]) {
        for (;;) {
          const ChannelId member = tarjanStack_.back();
          tarjanStack_.pop_back();
          onStack_[member] = 0;
          sccOf_[member] = sccCount_;
          if (member == done) break;
        }
        ++sccCount_;
      }
    }
  }

  // Group member channels by SCC (counting sort; disc_ doubles as cursor).
  sccOffsets_.assign(sccCount_ + 1, 0);
  for (ChannelId c = 0; c < channels; ++c) ++sccOffsets_[sccOf_[c] + 1];
  for (SccId s = 0; s < sccCount_; ++s) sccOffsets_[s + 1] += sccOffsets_[s];
  sccMembers_.assign(channels, 0);
  for (SccId s = 0; s < sccCount_; ++s) disc_[s] = sccOffsets_[s];
  for (ChannelId c = 0; c < channels; ++c) sccMembers_[disc_[sccOf_[c]]++] = c;
}

namespace {

inline bool testBit(const std::uint64_t* row, std::uint32_t bit) noexcept {
  return (row[bit >> 6] >> (bit & 63)) & 1u;
}

inline void setBit(std::uint64_t* row, std::uint32_t bit) noexcept {
  row[bit >> 6] |= std::uint64_t{1} << (bit & 63);
}

/// dst |= src over `words`; returns whether any bit changed.
inline bool orRow(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t words) noexcept {
  std::uint64_t changed = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t grown = src[w] & ~dst[w];
    changed |= grown;
    dst[w] |= grown;
  }
  return changed != 0;
}

}  // namespace

void ReleasePass::computeReach(const TurnPermissions& perms) {
  const Topology& topo = perms.topology();
  words_ = (sccCount_ + 63) / 64;
  reach_.assign(static_cast<std::size_t>(sccCount_) * words_, 0);
  cyclic_.assign(sccCount_, 0);
  if (revAdj_.size() < sccCount_) revAdj_.resize(sccCount_);
  for (SccId s = 0; s < sccCount_; ++s) revAdj_[s].clear();
  worklist_.clear();

  // Reverse topological fold: every successor SCC has a lower id, so its
  // reach row is final when we OR it in.  revAdj_ records each condensation
  // edge the first time it is seen (a bit transition); transitive duplicates
  // can be skipped because their reverse paths run over recorded edges.
  for (SccId s = 0; s < sccCount_; ++s) {
    cyclic_[s] = sccOffsets_[s + 1] - sccOffsets_[s] > 1;
    std::uint64_t* row = reachRow(s);
    for (std::uint32_t i = sccOffsets_[s]; i < sccOffsets_[s + 1]; ++i) {
      const ChannelId c = sccMembers_[i];
      const NodeId via = topo.channelDst(c);
      for (ChannelId next : topo.outputChannels(via)) {
        if (!perms.allowed(via, c, next)) continue;
        const SccId t = sccOf_[next];
        if (t == s || testBit(row, t)) continue;
        revAdj_[t].push_back(s);
        setBit(row, t);
        orRow(row, reachRow(t), words_);
      }
    }
  }
}

bool ReleasePass::outputReachesInput() const {
  for (const ChannelId out : outputs_) {
    const SccId from = sccOf_[out];
    const std::uint64_t* row = reachRow(from);
    for (const ChannelId in : inputs_) {
      const SccId to = sccOf_[in];
      if (from == to ? cyclic_[from] != 0 : testBit(row, to)) return true;
    }
  }
  return false;
}

void ReleasePass::commitEdges(const TurnPermissions& perms, NodeId v, Dir d1) {
  // A per-node block of (d1 -> RD_TREE) takes precedence over the release,
  // so the dependency graph gains no edges there (the release bit is still
  // recorded, matching the reference implementation).
  if (perms.isBlockedAt(v, d1, Dir::kRdTree)) return;
  for (const ChannelId in : inputs_) {
    const SccId from = sccOf_[in];
    std::uint64_t* fromRow = reachRow(from);
    for (const ChannelId out : outputs_) {
      if (out == Topology::reverseChannel(in)) continue;  // no U-turns
      const SccId to = sccOf_[out];
      // A release is granted only when no new edge can lie on a cycle, so
      // it never merges SCCs: the condensation stays a DAG and only reach
      // rows of (transitive) predecessors of `from` can grow.
      assert(from != to);
      if (!testBit(fromRow, to)) revAdj_[to].push_back(from);
      bool changed = false;
      if (!testBit(fromRow, to)) {
        setBit(fromRow, to);
        changed = true;
      }
      changed |= orRow(fromRow, reachRow(to), words_);
      if (changed) worklist_.push_back(from);
    }
  }
  while (!worklist_.empty()) {
    const SccId grown = worklist_.back();
    worklist_.pop_back();
    for (const SccId pred : revAdj_[grown]) {
      if (orRow(reachRow(pred), reachRow(grown), words_)) {
        worklist_.push_back(pred);
      }
    }
  }
}

ReleaseStats ReleasePass::run(TurnPermissions& perms) {
  ReleaseStats stats;
  const Topology& topo = perms.topology();
  computeSccs(perms);
  computeReach(perms);

  const NodeId n = topo.nodeCount();
  for (NodeId v = 0; v < n; ++v) {
    for (Dir d1 : {Dir::kLuCross, Dir::kRuCross}) {
      inputs_.clear();
      outputs_.clear();
      for (ChannelId out : topo.outputChannels(v)) {
        if (perms.dir(out) == Dir::kRdTree) outputs_.push_back(out);
        const ChannelId in = Topology::reverseChannel(out);
        if (perms.dir(in) == d1) inputs_.push_back(in);
      }
      if (inputs_.empty() || outputs_.empty()) continue;
      ++stats.candidateTurns;
      if (outputReachesInput()) continue;
      perms.releaseAt(v, d1, Dir::kRdTree);
      commitEdges(perms, v, d1);
      ++stats.releasedTurns;
    }
  }
  return stats;
}

ReleaseStats releaseRedundantProhibitions(TurnPermissions& perms) {
  ReleasePass pass;
  return pass.run(perms);
}

}  // namespace downup::core
