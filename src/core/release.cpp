#include "core/release.hpp"

#include <vector>

#include "routing/cdg.hpp"

namespace downup::core {

using routing::ChannelId;
using routing::Dir;
using routing::NodeId;
using routing::Topology;
using routing::TurnPermissions;

namespace {

/// Would releasing (d1 -> RD_TREE) at v close a turn cycle?  `perms` must
/// already carry the tentative release.  A new channel-dependency edge is
/// (e1 -> e2) for every input e1 of v with direction d1 and output e2 with
/// direction RD_TREE; a new cycle exists iff some e2 reaches some e1.
bool releaseClosesCycle(const TurnPermissions& perms, NodeId v, Dir d1) {
  const Topology& topo = perms.topology();
  std::vector<ChannelId> inputs;
  std::vector<ChannelId> outputs;
  for (ChannelId out : topo.outputChannels(v)) {
    if (perms.dir(out) == Dir::kRdTree) outputs.push_back(out);
    const ChannelId in = Topology::reverseChannel(out);
    if (perms.dir(in) == d1) inputs.push_back(in);
  }
  if (inputs.empty() || outputs.empty()) return false;

  std::vector<bool> isTarget(topo.channelCount(), false);
  for (ChannelId in : inputs) isTarget[in] = true;

  // One DFS per output channel over the post-release dependency graph.
  std::vector<bool> seen(topo.channelCount(), false);
  std::vector<ChannelId> stack;
  for (ChannelId e2 : outputs) {
    if (seen[e2]) continue;
    seen[e2] = true;
    stack.push_back(e2);
    while (!stack.empty()) {
      const ChannelId c = stack.back();
      stack.pop_back();
      const NodeId via = topo.channelDst(c);
      for (ChannelId next : topo.outputChannels(via)) {
        if (!perms.allowed(via, c, next)) continue;
        if (isTarget[next]) return true;
        if (!seen[next]) {
          seen[next] = true;
          stack.push_back(next);
        }
      }
    }
  }
  return false;
}

/// Does node v have at least one input with direction d1 and one output
/// with direction RD_TREE (i.e. is the release meaningful there)?
bool hasCandidatePair(const TurnPermissions& perms, NodeId v, Dir d1) {
  const Topology& topo = perms.topology();
  bool haveIn = false;
  bool haveOut = false;
  for (ChannelId out : topo.outputChannels(v)) {
    haveOut = haveOut || perms.dir(out) == Dir::kRdTree;
    haveIn = haveIn || perms.dir(Topology::reverseChannel(out)) == d1;
  }
  return haveIn && haveOut;
}

}  // namespace

ReleaseStats releaseRedundantProhibitions(TurnPermissions& perms) {
  ReleaseStats stats;
  const NodeId n = perms.topology().nodeCount();
  for (NodeId v = 0; v < n; ++v) {
    for (Dir d1 : {Dir::kLuCross, Dir::kRuCross}) {
      if (!hasCandidatePair(perms, v, d1)) continue;
      ++stats.candidateTurns;
      perms.releaseAt(v, d1, Dir::kRdTree);
      if (releaseClosesCycle(perms, v, d1)) {
        perms.revokeReleaseAt(v, d1, Dir::kRdTree);
      } else {
        ++stats.releasedTurns;
      }
    }
  }
  return stats;
}

}  // namespace downup::core
