#include "core/ddg.hpp"

#include <bit>
#include <functional>
#include <stdexcept>

namespace downup::core {

using routing::index;
using routing::kDirCount;

Ddg Ddg::completePair(Dir a, Dir b) {
  Ddg ddg;
  ddg.members_ = static_cast<std::uint8_t>((1u << index(a)) | (1u << index(b)));
  ddg.edges_[index(a)][index(b)] = true;
  ddg.edges_[index(b)][index(a)] = true;
  return ddg;
}

Ddg Ddg::combine(const Ddg& a, const Ddg& b) {
  if ((a.members_ & b.members_) != 0) {
    throw std::invalid_argument("Ddg::combine: member sets must be disjoint");
  }
  Ddg ddg;
  ddg.members_ = a.members_ | b.members_;
  for (std::size_t i = 0; i < kDirCount; ++i) {
    for (std::size_t j = 0; j < kDirCount; ++j) {
      ddg.edges_[i][j] = a.edges_[i][j] || b.edges_[i][j];
    }
  }
  // All edges between the two member sets, both orientations.
  for (std::size_t i = 0; i < kDirCount; ++i) {
    if ((a.members_ & (1u << i)) == 0) continue;
    for (std::size_t j = 0; j < kDirCount; ++j) {
      if ((b.members_ & (1u << j)) == 0) continue;
      ddg.edges_[i][j] = true;
      ddg.edges_[j][i] = true;
    }
  }
  return ddg;
}

void Ddg::removeEdge(Dir from, Dir to) noexcept {
  edges_[index(from)][index(to)] = false;
}

bool Ddg::hasEdge(Dir from, Dir to) const noexcept {
  return edges_[index(from)][index(to)];
}

bool Ddg::hasMember(Dir d) const noexcept {
  return (members_ & (1u << index(d))) != 0;
}

unsigned Ddg::memberCount() const noexcept {
  return static_cast<unsigned>(std::popcount(members_));
}

unsigned Ddg::edgeCount() const noexcept {
  unsigned count = 0;
  for (const auto& row : edges_) {
    for (bool edge : row) count += edge ? 1 : 0;
  }
  return count;
}

TurnSet Ddg::toTurnSet() const {
  TurnSet set = TurnSet::allAllowed();
  for (std::size_t i = 0; i < kDirCount; ++i) {
    for (std::size_t j = 0; j < kDirCount; ++j) {
      if (i == j) continue;
      if (!edges_[i][j]) {
        set.prohibit(static_cast<Dir>(i), static_cast<Dir>(j));
      }
    }
  }
  return set;
}

AddgDerivation deriveMaximalAddg() {
  AddgDerivation d;

  // Step 1 — break the four opposite-direction 2-cycles.  In each pair we
  // drop the edge that would let traffic go up before down (or, for the
  // tree pair, toward the root after having descended).
  d.addg1 = Ddg::completePair(Dir::kLuCross, Dir::kRdCross);
  d.addg1.removeEdge(Dir::kLuCross, Dir::kRdCross);  // up-before-down

  d.addg2 = Ddg::completePair(Dir::kLdCross, Dir::kRuCross);
  d.addg2.removeEdge(Dir::kRuCross, Dir::kLdCross);  // up-before-down

  d.addg3 = Ddg::completePair(Dir::kLCross, Dir::kRCross);
  d.addg3.removeEdge(Dir::kLCross, Dir::kRCross);  // arbitrary (paper: random)

  d.addg4 = Ddg::completePair(Dir::kLuTree, Dir::kRdTree);
  d.addg4.removeEdge(Dir::kRdTree, Dir::kLuTree);  // keep traffic off the root

  // Step 2 — combine the diagonal cross pairs; the cycles C1 and C2 of
  // Figure 4 are broken by removing the two up-before-down turns.
  d.addg5 = Ddg::combine(d.addg1, d.addg2);
  d.addg5.removeEdge(Dir::kRuCross, Dir::kRdCross);
  d.addg5.removeEdge(Dir::kLuCross, Dir::kLdCross);

  // Step 3 — add the horizontal pair.  Per Observation 5 either the edges
  // from the descending region into {L,R} or the edges from {L,R} into the
  // ascending region must go; pushing traffic downward keeps
  // horizontal->down and drops horizontal->up (these four are in PT).
  d.addg6 = Ddg::combine(d.addg3, d.addg5);
  for (Dir horiz : {Dir::kLCross, Dir::kRCross}) {
    for (Dir up : {Dir::kLuCross, Dir::kRuCross}) {
      d.addg6.removeEdge(horiz, up);
    }
  }

  // Step 4 — add the tree pair.  Figures 6(c)/6(d): up-cross -> RD_TREE can
  // close cycles through the horizontal directions, so both such turns are
  // dropped (they are the two per-node *releasable* prohibitions); finally
  // every turn into LU_TREE is dropped so no traffic is ever steered back
  // toward the root.
  d.addg7 = Ddg::combine(d.addg4, d.addg6);
  d.addg7.removeEdge(Dir::kLuCross, Dir::kRdTree);
  d.addg7.removeEdge(Dir::kRuCross, Dir::kRdTree);
  for (Dir from : {Dir::kRdTree, Dir::kLuCross, Dir::kLdCross, Dir::kRuCross,
                   Dir::kRdCross, Dir::kRCross, Dir::kLCross}) {
    d.addg7.removeEdge(from, Dir::kLuTree);
  }
  return d;
}

TurnSet downUpTurnSet() {
  static const TurnSet set = deriveMaximalAddg().addg7.toTurnSet();
  return set;
}

bool isDirectionGraphAcyclic(const TurnSet& set,
                             std::initializer_list<Dir> directions) {
  // Tiny graph (<= 8 nodes): three-color DFS over allowed turns.
  enum class Mark : std::uint8_t { kWhite, kGray, kBlack };
  std::array<Mark, kDirCount> mark{};
  mark.fill(Mark::kBlack);  // directions not in use can never participate
  for (Dir d : directions) mark[index(d)] = Mark::kWhite;

  // Recursive lambda via explicit stack is overkill for 8 nodes; plain
  // recursion depth is bounded by kDirCount.
  const std::function<bool(Dir)> visit = [&](Dir d) -> bool {
    mark[index(d)] = Mark::kGray;
    for (Dir next : directions) {
      if (next == d || !set.isAllowed(d, next)) continue;
      if (mark[index(next)] == Mark::kGray) return false;
      if (mark[index(next)] == Mark::kWhite && !visit(next)) return false;
    }
    mark[index(d)] = Mark::kBlack;
    return true;
  };
  for (Dir d : directions) {
    if (mark[index(d)] == Mark::kWhite && !visit(d)) return false;
  }
  return true;
}

const std::array<std::pair<Dir, Dir>, 18>& downUpProhibitedTurns() {
  // Listing order of §4.3.
  static const std::array<std::pair<Dir, Dir>, 18> turns = {{
      {Dir::kRdTree, Dir::kLuTree},
      {Dir::kRdCross, Dir::kLuTree},
      {Dir::kLCross, Dir::kLuTree},
      {Dir::kRCross, Dir::kLuTree},
      {Dir::kLuCross, Dir::kLuTree},
      {Dir::kLdCross, Dir::kLuTree},
      {Dir::kRuCross, Dir::kLuTree},
      {Dir::kRuCross, Dir::kLdCross},
      {Dir::kRuCross, Dir::kRdCross},
      {Dir::kLuCross, Dir::kLdCross},
      {Dir::kLuCross, Dir::kRdCross},
      {Dir::kLuCross, Dir::kRdTree},
      {Dir::kRuCross, Dir::kRdTree},
      {Dir::kLCross, Dir::kRCross},
      {Dir::kRCross, Dir::kRuCross},
      {Dir::kRCross, Dir::kLuCross},
      {Dir::kLCross, Dir::kRuCross},
      {Dir::kLCross, Dir::kLuCross},
  }};
  return turns;
}

}  // namespace downup::core
