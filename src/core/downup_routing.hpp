// The DOWN/UP routing builder (the paper's contribution) and a small
// dispatcher over every routing algorithm in the library, used by the
// experiment harness.
#pragma once

#include <string_view>

#include "core/ddg.hpp"
#include "core/release.hpp"
#include "core/repair.hpp"
#include "routing/algorithm.hpp"
#include "routing/leftright.hpp"
#include "routing/lturn.hpp"
#include "routing/updown.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::core {

struct DownUpOptions {
  /// Run the Phase-3 release pass (paper default: yes).
  bool releaseRedundant = true;
  /// Break the residual turn cycles the published rule admits (see
  /// core/repair.hpp).  Disable only to study the paper's rule as written.
  bool repairCycles = true;
  /// Parallelises the routing-table build (nullptr: serial).  The table is
  /// bit-for-bit identical at any thread count; the pool is not retained.
  util::ThreadPool* pool = nullptr;
  /// Records classify/repair/release/table-build stage spans (nullptr: no
  /// tracing, zero overhead).  Not retained.
  util::SpanRecorder* spans = nullptr;
};

/// Builds DOWN/UP routing over a coordinated tree: Definition-5 channel
/// directions, the 18-turn prohibited set, optionally the per-node release
/// pass, and the turn-restricted shortest-path table.
routing::Routing buildDownUp(const routing::Topology& topo,
                             const tree::CoordinatedTree& ct,
                             const DownUpOptions& options = {});

enum class Algorithm {
  kUpDownBfs,
  kUpDownDfs,
  kLTurn,
  kLeftRight,
  kDownUp,
  kDownUpNoRelease,  // ablation: PT applied uniformly, no release pass
};

inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kUpDownBfs, Algorithm::kUpDownDfs,  Algorithm::kLTurn,
    Algorithm::kLeftRight, Algorithm::kDownUp,
    Algorithm::kDownUpNoRelease};

std::string_view toString(Algorithm algorithm) noexcept;

/// Uniform entry point.  The coordinated tree is ignored by kUpDownDfs
/// (which derives its own DFS tree from the tree's root).  `pool`
/// parallelises table construction for the DOWN/UP variants (the
/// comparison algorithms build serially; their tables are small relative
/// to the sweeps they appear in).
routing::Routing buildRouting(Algorithm algorithm,
                              const routing::Topology& topo,
                              const tree::CoordinatedTree& ct,
                              util::ThreadPool* pool = nullptr);

}  // namespace downup::core
