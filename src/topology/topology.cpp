#include "topology/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace downup::topo {

Topology::Topology(NodeId nodeCount)
    : adjacency_(nodeCount), outChannels_(nodeCount) {}

LinkId Topology::addLink(NodeId a, NodeId b) {
  if (a >= nodeCount() || b >= nodeCount()) {
    throw std::invalid_argument("Topology::addLink: endpoint out of range");
  }
  if (a == b) {
    throw std::invalid_argument("Topology::addLink: self-loop not allowed");
  }
  if (hasLink(a, b)) {
    throw std::invalid_argument("Topology::addLink: duplicate link (" +
                                std::to_string(a) + "," + std::to_string(b) +
                                ")");
  }
  const auto link = static_cast<LinkId>(links_.size());
  links_.emplace_back(a, b);

  const auto insertSorted = [this](NodeId from, NodeId to, ChannelId ch) {
    auto& adj = adjacency_[from];
    auto& chans = outChannels_[from];
    const auto pos = std::lower_bound(adj.begin(), adj.end(), to);
    const auto idx = static_cast<std::size_t>(pos - adj.begin());
    adj.insert(pos, to);
    chans.insert(chans.begin() + static_cast<std::ptrdiff_t>(idx), ch);
  };
  insertSorted(a, b, 2 * link);
  insertSorted(b, a, 2 * link + 1);
  return link;
}

bool Topology::hasLink(NodeId a, NodeId b) const noexcept {
  if (a >= nodeCount() || b >= nodeCount()) return false;
  const auto& adj = adjacency_[a];
  return std::binary_search(adj.begin(), adj.end(), b);
}

ChannelId Topology::channel(NodeId from, NodeId to) const noexcept {
  if (from >= nodeCount()) return kInvalidChannel;
  const auto& adj = adjacency_[from];
  const auto pos = std::lower_bound(adj.begin(), adj.end(), to);
  if (pos == adj.end() || *pos != to) return kInvalidChannel;
  return outChannels_[from][static_cast<std::size_t>(pos - adj.begin())];
}

}  // namespace downup::topo
