// Switch-level network topology (Definition 1 of the paper).
//
// A Topology is an undirected simple graph: switches (nodes) joined by
// bidirectional links.  Every link (a, b) carries two unidirectional
// communication channels <a,b> and <b,a>.  Channels are first-class here
// because every routing concept in the paper — directions, turns, turn
// cycles, channel dependencies — is defined on channels, not links.
//
// Channel numbering: the two channels of link i are 2*i (from the link's
// first endpoint to its second) and 2*i+1 (the reverse), so
// `reverseChannel(c) == c ^ 1` and `linkOf(c) == c >> 1`.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace downup::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using ChannelId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr ChannelId kInvalidChannel = static_cast<ChannelId>(-1);

class Topology {
 public:
  /// Creates a topology with `nodeCount` switches and no links.
  explicit Topology(NodeId nodeCount);

  NodeId nodeCount() const noexcept { return static_cast<NodeId>(adjacency_.size()); }
  LinkId linkCount() const noexcept { return static_cast<LinkId>(links_.size()); }
  std::uint32_t channelCount() const noexcept {
    return 2 * static_cast<std::uint32_t>(links_.size());
  }

  /// Adds the bidirectional link (a, b).  Throws std::invalid_argument on a
  /// self-loop, an out-of-range endpoint, or a duplicate link.
  LinkId addLink(NodeId a, NodeId b);

  bool hasLink(NodeId a, NodeId b) const noexcept;
  unsigned degree(NodeId v) const noexcept {
    return static_cast<unsigned>(adjacency_[v].size());
  }

  /// Neighbors of v in ascending node-id order.
  std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return adjacency_[v];
  }

  /// Output channels of v, parallel to neighbors(v): outputChannels(v)[i] is
  /// the channel v -> neighbors(v)[i].
  std::span<const ChannelId> outputChannels(NodeId v) const noexcept {
    return outChannels_[v];
  }

  /// Channel from `from` to its neighbor `to`; kInvalidChannel if no link.
  ChannelId channel(NodeId from, NodeId to) const noexcept;

  NodeId channelSrc(ChannelId c) const noexcept {
    const auto& ends = links_[c >> 1];
    return (c & 1) == 0 ? ends.first : ends.second;
  }
  NodeId channelDst(ChannelId c) const noexcept {
    const auto& ends = links_[c >> 1];
    return (c & 1) == 0 ? ends.second : ends.first;
  }
  static ChannelId reverseChannel(ChannelId c) noexcept { return c ^ 1; }
  static LinkId linkOf(ChannelId c) noexcept { return c >> 1; }

  /// Endpoints of link `l` in insertion order.
  std::pair<NodeId, NodeId> linkEnds(LinkId l) const noexcept { return links_[l]; }

 private:
  std::vector<std::pair<NodeId, NodeId>> links_;
  std::vector<std::vector<NodeId>> adjacency_;      // sorted ascending
  std::vector<std::vector<ChannelId>> outChannels_;  // parallel to adjacency_
};

}  // namespace downup::topo
