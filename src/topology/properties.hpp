// Structural graph queries used by generators, routing validation and the
// experiment harness.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace downup::topo {

inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// Hop distances from `src` to every node (kUnreachable if disconnected).
std::vector<std::uint32_t> bfsDistances(const Topology& topo, NodeId src);

bool isConnected(const Topology& topo);

/// Number of connected components.
unsigned componentCount(const Topology& topo);

/// Longest shortest path; throws std::runtime_error if disconnected.
std::uint32_t diameter(const Topology& topo);

/// Mean shortest-path hop count over ordered node pairs (src != dst).
double averageDistance(const Topology& topo);

/// histogram[d] = number of nodes with degree d.
std::vector<std::uint32_t> degreeHistogram(const Topology& topo);

double averageDegree(const Topology& topo);

/// Links whose removal disconnects their component (Tarjan lowlink DFS).
/// A bridge link is a single point of failure for routing.
std::vector<LinkId> bridges(const Topology& topo);

/// Nodes whose removal disconnects their component.
std::vector<NodeId> articulationPoints(const Topology& topo);

}  // namespace downup::topo
