#include "topology/io.hpp"

#include <charconv>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace downup::topo {

namespace {

[[noreturn]] void fail(const std::string& source, std::size_t lineNo,
                       const std::string& message) {
  throw std::runtime_error("topology load: " + source + ":" +
                           std::to_string(lineNo) + ": " + message);
}

/// Strict unsigned parse: digits only (no sign, no hex, no overflow wrap).
std::optional<std::uint64_t> parseCount(const std::string& token) {
  std::uint64_t value = 0;
  const char* first = token.data();
  const char* last = first + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || token.empty()) return std::nullopt;
  return value;
}

/// True when the rest of `line` holds anything but a trailing '#' comment.
bool hasTrailingGarbage(std::istringstream& line) {
  std::string extra;
  return (line >> extra) && !extra.starts_with('#');
}

}  // namespace

void save(const Topology& topo, std::ostream& out) {
  out << "downup-topo v1\n";
  out << "nodes " << topo.nodeCount() << "\n";
  // The link count up front lets load() detect truncated files.
  out << "links " << topo.linkCount() << "\n";
  for (LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    out << "link " << a << " " << b << "\n";
  }
}

void saveFile(const Topology& topo, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("topology save: cannot open " + path);
  save(topo, out);
}

Topology load(std::istream& in, const std::string& source) {
  std::string lineText;
  std::size_t lineNo = 0;
  std::optional<Topology> topo;
  std::optional<std::uint64_t> declaredLinks;
  bool sawMagic = false;
  while (std::getline(in, lineText)) {
    ++lineNo;
    std::istringstream line(lineText);
    std::string keyword;
    if (!(line >> keyword) || keyword.starts_with('#')) continue;
    if (!sawMagic) {
      std::string version;
      if (keyword != "downup-topo" || !(line >> version) || version != "v1") {
        fail(source, lineNo, "expected header 'downup-topo v1'");
      }
      sawMagic = true;
      continue;
    }
    if (keyword == "nodes") {
      std::string token;
      if (!(line >> token)) fail(source, lineNo, "missing node count");
      const auto n = parseCount(token);
      if (!n || *n == 0 || *n > (1u << 24)) {
        fail(source, lineNo, "bad node count '" + token + "'");
      }
      if (topo) fail(source, lineNo, "duplicate 'nodes' line");
      if (hasTrailingGarbage(line)) {
        fail(source, lineNo, "trailing characters after node count");
      }
      topo.emplace(static_cast<NodeId>(*n));
    } else if (keyword == "links") {
      if (!topo) fail(source, lineNo, "'links' before 'nodes'");
      if (declaredLinks) fail(source, lineNo, "duplicate 'links' line");
      std::string token;
      if (!(line >> token)) fail(source, lineNo, "missing link count");
      const auto n = parseCount(token);
      if (!n) fail(source, lineNo, "bad link count '" + token + "'");
      if (hasTrailingGarbage(line)) {
        fail(source, lineNo, "trailing characters after link count");
      }
      declaredLinks = *n;
    } else if (keyword == "link") {
      if (!topo) fail(source, lineNo, "'link' before 'nodes'");
      std::string tokenA;
      std::string tokenB;
      if (!(line >> tokenA)) {
        fail(source, lineNo, "truncated 'link' line: missing both endpoints");
      }
      if (!(line >> tokenB)) {
        fail(source, lineNo, "truncated 'link' line: missing second endpoint");
      }
      const auto a = parseCount(tokenA);
      const auto b = parseCount(tokenB);
      if (!a || *a >= topo->nodeCount()) {
        fail(source, lineNo, "link endpoint '" + tokenA +
                                 "' out of range for " +
                                 std::to_string(topo->nodeCount()) + " nodes");
      }
      if (!b || *b >= topo->nodeCount()) {
        fail(source, lineNo, "link endpoint '" + tokenB +
                                 "' out of range for " +
                                 std::to_string(topo->nodeCount()) + " nodes");
      }
      if (*a == *b) {
        fail(source, lineNo, "self-loop at node " + tokenA);
      }
      if (topo->hasLink(static_cast<NodeId>(*a), static_cast<NodeId>(*b))) {
        fail(source, lineNo, "duplicate link " + tokenA + " " + tokenB);
      }
      if (hasTrailingGarbage(line)) {
        fail(source, lineNo, "trailing characters after link endpoints");
      }
      topo->addLink(static_cast<NodeId>(*a), static_cast<NodeId>(*b));
    } else {
      fail(source, lineNo, "unknown keyword '" + keyword + "'");
    }
  }
  if (in.bad()) {
    fail(source, lineNo, "read error (truncated file?)");
  }
  if (!sawMagic) {
    throw std::runtime_error("topology load: " + source +
                             ": empty input (missing 'downup-topo v1' header)");
  }
  if (!topo) fail(source, lineNo, "truncated input: no 'nodes' line");
  if (declaredLinks && *declaredLinks != topo->linkCount()) {
    fail(source, lineNo,
         "truncated input: declared " + std::to_string(*declaredLinks) +
             " links but found " + std::to_string(topo->linkCount()));
  }
  return *std::move(topo);
}

Topology loadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("topology load: cannot open " + path);
  return load(in, path);
}

}  // namespace downup::topo
