#include "topology/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace downup::topo {

namespace {
[[noreturn]] void fail(std::size_t lineNo, const std::string& message) {
  throw std::runtime_error("topology load: line " + std::to_string(lineNo) +
                           ": " + message);
}
}  // namespace

void save(const Topology& topo, std::ostream& out) {
  out << "downup-topo v1\n";
  out << "nodes " << topo.nodeCount() << "\n";
  for (LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    out << "link " << a << " " << b << "\n";
  }
}

void saveFile(const Topology& topo, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("topology save: cannot open " + path);
  save(topo, out);
}

Topology load(std::istream& in) {
  std::string lineText;
  std::size_t lineNo = 0;
  std::optional<Topology> topo;
  bool sawMagic = false;
  while (std::getline(in, lineText)) {
    ++lineNo;
    std::istringstream line(lineText);
    std::string keyword;
    if (!(line >> keyword) || keyword.starts_with('#')) continue;
    if (!sawMagic) {
      std::string version;
      if (keyword != "downup-topo" || !(line >> version) || version != "v1") {
        fail(lineNo, "expected header 'downup-topo v1'");
      }
      sawMagic = true;
      continue;
    }
    if (keyword == "nodes") {
      std::uint64_t n = 0;
      if (!(line >> n) || n == 0 || n > (1u << 24)) fail(lineNo, "bad node count");
      if (topo) fail(lineNo, "duplicate 'nodes' line");
      topo.emplace(static_cast<NodeId>(n));
    } else if (keyword == "link") {
      if (!topo) fail(lineNo, "'link' before 'nodes'");
      NodeId a = 0;
      NodeId b = 0;
      if (!(line >> a >> b)) fail(lineNo, "bad link endpoints");
      try {
        topo->addLink(a, b);
      } catch (const std::invalid_argument& e) {
        fail(lineNo, e.what());
      }
    } else {
      fail(lineNo, "unknown keyword '" + keyword + "'");
    }
  }
  if (!topo) throw std::runtime_error("topology load: empty input");
  return *std::move(topo);
}

Topology loadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("topology load: cannot open " + path);
  return load(in);
}

}  // namespace downup::topo
