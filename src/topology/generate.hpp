// Topology builders: the random irregular SAN generator used by the paper's
// methodology, plus regular topologies used as known-answer fixtures in
// tests, examples and benches.
#pragma once

#include <cstdint>
#include <optional>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace downup::topo {

struct IrregularOptions {
  /// Inter-switch ports per switch (the paper evaluates 4 and 8).
  unsigned maxPorts = 4;
  /// Stop after this many links; by default keep adding links until no two
  /// switches with free ports remain unconnected (the usual irregular-SAN
  /// methodology, which the paper follows).
  std::optional<LinkId> targetLinks;
};

/// Generates a random connected irregular network of `nodeCount` switches in
/// which no switch uses more than `maxPorts` inter-switch ports.
/// Construction: a random degree-capped spanning tree (guarantees
/// connectivity), then random extra links between switches with free ports.
/// Throws std::invalid_argument if nodeCount < 2 or maxPorts < 2.
Topology randomIrregular(NodeId nodeCount, const IrregularOptions& options,
                         util::Rng& rng);

/// n-node cycle (n >= 3): the canonical deadlock-prone fixture.
Topology ring(NodeId nodeCount);

/// n-node path.
Topology line(NodeId nodeCount);

/// width x height mesh, node id = y*width + x.
Topology mesh(NodeId width, NodeId height);

/// width x height torus (wrap links skipped where they would duplicate a
/// mesh link, i.e. for dimensions of size 2).
Topology torus(NodeId width, NodeId height);

/// dim-dimensional hypercube (2^dim nodes).
Topology hypercube(unsigned dim);

/// Star: node 0 joined to all others.
Topology star(NodeId nodeCount);

/// Complete graph on n nodes.
Topology complete(NodeId nodeCount);

/// The 5-switch example network of Figure 1(b) in the paper
/// (v1..v5 mapped to node ids 0..4).
Topology paperFigure1();

/// Random d-regular graph via the configuration (pairing) model with
/// restarts; requires n*d even, d < n.  Always returns a connected simple
/// graph (retries internally; throws std::runtime_error after too many
/// failed attempts, which for sane (n, d) does not happen in practice).
Topology randomRegular(NodeId nodeCount, unsigned degree, util::Rng& rng);

/// The Petersen graph (10 nodes, 3-regular, girth 5) — a classic
/// known-answer fixture.
Topology petersen();

/// Two complete graphs of `cliqueSize` nodes joined by a single bridge link
/// — the canonical bottleneck/bridge fixture.
Topology dumbbell(NodeId cliqueSize);

}  // namespace downup::topo
