#include "topology/properties.hpp"

#include <algorithm>
#include <stdexcept>

namespace downup::topo {

std::vector<std::uint32_t> bfsDistances(const Topology& topo, NodeId src) {
  std::vector<std::uint32_t> dist(topo.nodeCount(), kUnreachable);
  std::vector<NodeId> frontier;
  dist[src] = 0;
  frontier.push_back(src);
  // Standard frontier-swap BFS; the graph is tiny so a simple queue-free
  // formulation keeps allocations low.
  std::vector<NodeId> next;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : topo.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

bool isConnected(const Topology& topo) { return componentCount(topo) == 1; }

unsigned componentCount(const Topology& topo) {
  const NodeId n = topo.nodeCount();
  std::vector<bool> seen(n, false);
  unsigned components = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    ++components;
    seen[start] = true;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : topo.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  return components;
}

std::uint32_t diameter(const Topology& topo) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    const auto dist = bfsDistances(topo, v);
    for (std::uint32_t d : dist) {
      if (d == kUnreachable) {
        throw std::runtime_error("diameter: topology is disconnected");
      }
      best = std::max(best, d);
    }
  }
  return best;
}

double averageDistance(const Topology& topo) {
  const NodeId n = topo.nodeCount();
  if (n < 2) return 0.0;
  double sum = 0.0;
  std::uint64_t pairs = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto dist = bfsDistances(topo, v);
    for (NodeId u = 0; u < n; ++u) {
      if (u == v || dist[u] == kUnreachable) continue;
      sum += dist[u];
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

std::vector<std::uint32_t> degreeHistogram(const Topology& topo) {
  std::vector<std::uint32_t> histogram;
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    const unsigned d = topo.degree(v);
    if (d >= histogram.size()) histogram.resize(d + 1, 0);
    ++histogram[d];
  }
  return histogram;
}

double averageDegree(const Topology& topo) {
  if (topo.nodeCount() == 0) return 0.0;
  return 2.0 * static_cast<double>(topo.linkCount()) /
         static_cast<double>(topo.nodeCount());
}

namespace {

/// Iterative Tarjan lowlink DFS collecting bridges and articulation points
/// in one pass (recursion would overflow on path-like 10k-node graphs).
struct LowlinkDfs {
  const Topology& topo;
  std::vector<std::uint32_t> disc;   // discovery time, 0 = unvisited
  std::vector<std::uint32_t> low;
  std::vector<bool> isArticulation;
  std::vector<LinkId> bridgeLinks;
  std::uint32_t clock = 0;

  explicit LowlinkDfs(const Topology& t)
      : topo(t),
        disc(t.nodeCount(), 0),
        low(t.nodeCount(), 0),
        isArticulation(t.nodeCount(), false) {}

  struct Frame {
    NodeId node;
    NodeId parent;
    std::size_t nextIdx;
    std::uint32_t treeChildren;
  };

  void run(NodeId root) {
    std::vector<Frame> stack;
    disc[root] = low[root] = ++clock;
    stack.push_back({root, kInvalidNode, 0, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto neighbors = topo.neighbors(frame.node);
      if (frame.nextIdx < neighbors.size()) {
        const NodeId next = neighbors[frame.nextIdx++];
        if (next == frame.parent) continue;  // skip the tree edge upward
        if (disc[next] != 0) {
          low[frame.node] = std::min(low[frame.node], disc[next]);
          continue;
        }
        disc[next] = low[next] = ++clock;
        ++frame.treeChildren;
        stack.push_back({next, frame.node, 0, 0});
        continue;
      }
      // Post-order: fold this node's lowlink into its parent.
      const Frame finished = frame;
      stack.pop_back();
      if (finished.parent == kInvalidNode) {
        if (finished.treeChildren >= 2) isArticulation[finished.node] = true;
        continue;
      }
      Frame& parentFrame = stack.back();
      low[parentFrame.node] =
          std::min(low[parentFrame.node], low[finished.node]);
      if (low[finished.node] > disc[parentFrame.node]) {
        bridgeLinks.push_back(
            topo.linkOf(topo.channel(parentFrame.node, finished.node)));
      }
      if (parentFrame.parent != kInvalidNode &&
          low[finished.node] >= disc[parentFrame.node]) {
        isArticulation[parentFrame.node] = true;
      }
    }
  }
};

LowlinkDfs runLowlink(const Topology& topo) {
  LowlinkDfs dfs(topo);
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    if (dfs.disc[v] == 0) dfs.run(v);
  }
  return dfs;
}

}  // namespace

std::vector<LinkId> bridges(const Topology& topo) {
  auto dfs = runLowlink(topo);
  std::sort(dfs.bridgeLinks.begin(), dfs.bridgeLinks.end());
  return dfs.bridgeLinks;
}

std::vector<NodeId> articulationPoints(const Topology& topo) {
  const auto dfs = runLowlink(topo);
  std::vector<NodeId> points;
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    if (dfs.isArticulation[v]) points.push_back(v);
  }
  return points;
}

}  // namespace downup::topo
