// Text serialisation for topologies so that experiment inputs can be saved,
// diffed and replayed.
//
// Format (line oriented, '#' comments allowed):
//   downup-topo v1
//   nodes <N>
//   links <L>        (optional; lets the loader detect truncated files)
//   link <a> <b>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "topology/topology.hpp"

namespace downup::topo {

void save(const Topology& topo, std::ostream& out);
void saveFile(const Topology& topo, const std::string& path);

/// Throws std::runtime_error naming `source` and the offending line number
/// on malformed input: bad or missing header, malformed/negative numbers,
/// out-of-range endpoints, self-loops, duplicate links, trailing garbage,
/// and truncated files (a partial 'link' line, or fewer links than the
/// optional 'links <L>' declaration).
Topology load(std::istream& in, const std::string& source = "<stream>");
/// load() on the file's contents; errors carry the file path.
Topology loadFile(const std::string& path);

}  // namespace downup::topo
