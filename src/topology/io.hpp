// Text serialisation for topologies so that experiment inputs can be saved,
// diffed and replayed.
//
// Format (line oriented, '#' comments allowed):
//   downup-topo v1
//   nodes <N>
//   link <a> <b>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "topology/topology.hpp"

namespace downup::topo {

void save(const Topology& topo, std::ostream& out);
void saveFile(const Topology& topo, const std::string& path);

/// Throws std::runtime_error with a line number on malformed input.
Topology load(std::istream& in);
Topology loadFile(const std::string& path);

}  // namespace downup::topo
