#include "topology/generate.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "topology/properties.hpp"

namespace downup::topo {

namespace {

/// Random degree-capped spanning tree over `nodeCount` nodes: repeatedly
/// attach a random unvisited node to a random visited node that still has a
/// free port.  With maxPorts >= 2 a visited node with a free port always
/// exists (a tree on k nodes has average degree < 2).
void addRandomSpanningTree(Topology& topo, unsigned maxPorts, util::Rng& rng) {
  const NodeId n = topo.nodeCount();
  std::vector<NodeId> order = [&] {
    auto perm = util::randomPermutation(n, rng);
    return std::vector<NodeId>(perm.begin(), perm.end());
  }();
  std::vector<NodeId> attachable;  // visited nodes with degree < maxPorts
  attachable.push_back(order[0]);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId child = order[i];
    // Pick a random attachable parent.
    const std::size_t slot = rng.below(attachable.size());
    const NodeId parent = attachable[slot];
    topo.addLink(parent, child);
    if (topo.degree(parent) >= maxPorts) {
      attachable[slot] = attachable.back();
      attachable.pop_back();
    }
    if (topo.degree(child) < maxPorts) attachable.push_back(child);
  }
}

/// Adds random links between nodes that still have free ports until either
/// `target` links exist or no non-adjacent pair with free ports remains.
void addRandomCrossLinks(Topology& topo, unsigned maxPorts,
                         std::optional<LinkId> target, util::Rng& rng) {
  for (;;) {
    if (target && topo.linkCount() >= *target) return;
    std::vector<NodeId> open;
    for (NodeId v = 0; v < topo.nodeCount(); ++v) {
      if (topo.degree(v) < maxPorts) open.push_back(v);
    }
    if (open.size() < 2) return;
    // Try a handful of random pairs first (fast path), then fall back to an
    // exhaustive scan so that we provably saturate.
    bool added = false;
    for (int attempt = 0; attempt < 16 && !added; ++attempt) {
      const NodeId a = open[rng.below(open.size())];
      const NodeId b = open[rng.below(open.size())];
      if (a != b && !topo.hasLink(a, b)) {
        topo.addLink(a, b);
        added = true;
      }
    }
    if (added) continue;
    rng.shuffle(std::span<NodeId>(open));
    for (std::size_t i = 0; i < open.size() && !added; ++i) {
      for (std::size_t j = i + 1; j < open.size() && !added; ++j) {
        if (!topo.hasLink(open[i], open[j])) {
          topo.addLink(open[i], open[j]);
          added = true;
        }
      }
    }
    if (!added) return;  // every open pair is already adjacent
  }
}

}  // namespace

Topology randomIrregular(NodeId nodeCount, const IrregularOptions& options,
                         util::Rng& rng) {
  if (nodeCount < 2) {
    throw std::invalid_argument("randomIrregular: need at least 2 switches");
  }
  if (options.maxPorts < 2) {
    throw std::invalid_argument(
        "randomIrregular: need at least 2 ports per switch");
  }
  Topology topo(nodeCount);
  addRandomSpanningTree(topo, options.maxPorts, rng);
  addRandomCrossLinks(topo, options.maxPorts, options.targetLinks, rng);
  return topo;
}

Topology ring(NodeId nodeCount) {
  if (nodeCount < 3) throw std::invalid_argument("ring: need >= 3 nodes");
  Topology topo(nodeCount);
  for (NodeId v = 0; v < nodeCount; ++v) topo.addLink(v, (v + 1) % nodeCount);
  return topo;
}

Topology line(NodeId nodeCount) {
  if (nodeCount < 2) throw std::invalid_argument("line: need >= 2 nodes");
  Topology topo(nodeCount);
  for (NodeId v = 0; v + 1 < nodeCount; ++v) topo.addLink(v, v + 1);
  return topo;
}

Topology mesh(NodeId width, NodeId height) {
  if (width < 1 || height < 1) throw std::invalid_argument("mesh: empty");
  Topology topo(width * height);
  const auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width) topo.addLink(id(x, y), id(x + 1, y));
      if (y + 1 < height) topo.addLink(id(x, y), id(x, y + 1));
    }
  }
  return topo;
}

Topology torus(NodeId width, NodeId height) {
  Topology topo = mesh(width, height);
  const auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  if (width > 2) {
    for (NodeId y = 0; y < height; ++y) topo.addLink(id(width - 1, y), id(0, y));
  }
  if (height > 2) {
    for (NodeId x = 0; x < width; ++x) topo.addLink(id(x, height - 1), id(x, 0));
  }
  return topo;
}

Topology hypercube(unsigned dim) {
  if (dim == 0 || dim > 20) throw std::invalid_argument("hypercube: bad dim");
  const NodeId n = NodeId{1} << dim;
  Topology topo(n);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < dim; ++bit) {
      const NodeId peer = v ^ (NodeId{1} << bit);
      if (peer > v) topo.addLink(v, peer);
    }
  }
  return topo;
}

Topology star(NodeId nodeCount) {
  if (nodeCount < 2) throw std::invalid_argument("star: need >= 2 nodes");
  Topology topo(nodeCount);
  for (NodeId v = 1; v < nodeCount; ++v) topo.addLink(0, v);
  return topo;
}

Topology complete(NodeId nodeCount) {
  if (nodeCount < 2) throw std::invalid_argument("complete: need >= 2 nodes");
  Topology topo(nodeCount);
  for (NodeId a = 0; a < nodeCount; ++a) {
    for (NodeId b = a + 1; b < nodeCount; ++b) topo.addLink(a, b);
  }
  return topo;
}

Topology randomRegular(NodeId nodeCount, unsigned degree, util::Rng& rng) {
  if (degree == 0 || degree >= nodeCount ||
      (static_cast<std::uint64_t>(nodeCount) * degree) % 2 != 0) {
    throw std::invalid_argument("randomRegular: need 0 < d < n and n*d even");
  }
  // Configuration model: shuffle n*d stubs, pair them up, reject self-loops,
  // parallel links and disconnected outcomes, retry.
  constexpr int kMaxAttempts = 2000;
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(nodeCount) * degree);
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    stubs.clear();
    for (NodeId v = 0; v < nodeCount; ++v) {
      for (unsigned k = 0; k < degree; ++k) stubs.push_back(v);
    }
    rng.shuffle(std::span<NodeId>(stubs));
    Topology topo(nodeCount);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && ok; i += 2) {
      const NodeId a = stubs[i];
      const NodeId b = stubs[i + 1];
      if (a == b || topo.hasLink(a, b)) {
        ok = false;
      } else {
        topo.addLink(a, b);
      }
    }
    if (ok && isConnected(topo)) return topo;
  }
  throw std::runtime_error("randomRegular: failed to generate a graph");
}

Topology petersen() {
  Topology topo(10);
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -> i+5.
  for (NodeId v = 0; v < 5; ++v) {
    topo.addLink(v, (v + 1) % 5);
    topo.addLink(5 + v, 5 + (v + 2) % 5);
    topo.addLink(v, v + 5);
  }
  return topo;
}

Topology dumbbell(NodeId cliqueSize) {
  if (cliqueSize < 2) throw std::invalid_argument("dumbbell: cliques need >= 2 nodes");
  Topology topo(2 * cliqueSize);
  for (NodeId a = 0; a < cliqueSize; ++a) {
    for (NodeId b = a + 1; b < cliqueSize; ++b) {
      topo.addLink(a, b);
      topo.addLink(cliqueSize + a, cliqueSize + b);
    }
  }
  topo.addLink(0, cliqueSize);  // the bridge
  return topo;
}

Topology paperFigure1() {
  // v1..v5 -> 0..4.  Tree links under the paper's example coordinated tree:
  // (v1,v5), (v5,v2), (v1,v3), (v1,v4); cross links: (v3,v5), (v2,v4).
  Topology topo(5);
  topo.addLink(0, 4);
  topo.addLink(4, 1);
  topo.addLink(0, 2);
  topo.addLink(0, 3);
  topo.addLink(2, 4);
  topo.addLink(1, 3);
  return topo;
}

}  // namespace downup::topo
