// FabricManager: routing as a long-lived service instead of a simulator
// subroutine.
//
// The manager owns the epoch-swap publication machinery (fabric/epoch.hpp),
// the fault-transition queue (fabric/event_queue.hpp) and a Reconfigurator,
// and serves an immutable routing-table snapshot to any number of reader
// threads while rebuilds happen off to the side.  It runs in one of two
// writer modes (never both):
//
//  * Driven mode — the deterministic simulator path.  The engine thread
//    calls publishFromMasks() with FaultController's alive masks as the
//    authoritative rebuild input; the manager rebuilds (full or
//    incremental against the epoch being replaced) and ALWAYS publishes.
//    Identical Reconfigurator inputs to the pre-fabric engine, so every
//    swapped table is bit-for-bit the one the old in-place path produced;
//    the queue is drained only for coalescing statistics.
//
//  * Service mode — the fabric-controller shape.  startService() launches a
//    background rebuild thread that parks on the event queue, sleeps one
//    coalescing window after the first transition of a burst, drains
//    everything that accumulated, and folds the batch into desired alive
//    masks.  A DOWN and UP of the same link inside the window leave desired
//    == applied and the rebuild is skipped entirely (flap cancelled); N
//    failures fold into ONE rebuild over the union dirty set.  Publishes go
//    through the same epoch swap the readers pin against.
//
// Reader threads call makeReader() once and acquire()/release pins around
// lookups; the read path is the lock-free protocol documented in
// fabric/epoch.hpp.  tryReclaim() runs on the writer after each publish
// (and opportunistically), so retired epochs disappear as soon as the last
// pinned reader moves on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "fabric/epoch.hpp"
#include "fabric/event_queue.hpp"
#include "fault/event_sink.hpp"
#include "fault/reconfigure.hpp"
#include "obs/flight_recorder.hpp"

namespace downup::verify {
class OracleGate;
}

namespace downup::fabric {

/// What one writer-side publish attempt did (scalars only; the table itself
/// is reachable through acquire()).
struct PublishResult {
  std::uint64_t epoch = 0;    // epoch now current (unchanged when skipped)
  bool published = false;     // false = coalescing cancelled the rebuild
  bool incremental = false;   // rebuild kept the previous turn rule
  std::uint32_t rebuiltDestinations = 0;
  std::uint64_t unreachablePairs = 0;
  unsigned components = 0;
  bool ok = false;            // deadlock-free + components connected
  std::uint64_t transitionsAbsorbed = 0;  // queue events folded into this call
};

class FabricManager final : public fault::FaultEventSink {
 public:
  struct Options {
    std::size_t maxReaders = 64;
    /// Optional pool for parallel table construction (outcomes identical
    /// at any width).  Must outlive the manager.
    util::ThreadPool* pool = nullptr;
    /// Service mode: how long the rebuild thread waits after a burst's
    /// first transition before draining and rebuilding.
    std::uint64_t coalesceWindowMicros = 200;
    /// Service mode: prefer the incremental rebuild path.
    bool incremental = true;
    /// Optional span recorder: every publish decision emits a `rebuild`
    /// root span with coalesce/dequeue/construction/publish children (see
    /// obs/span.hpp for the tree).  Must outlive the manager; nullptr (the
    /// default) costs one branch per stage.
    util::SpanRecorder* spans = nullptr;
    /// Optional service metrics (fabric/metrics.hpp): pin-acquire latency,
    /// snapshot lifetimes, retire-list depth, the coalescing ledger.  Must
    /// outlive the manager; attach before readers start.
    FabricMetrics* metrics = nullptr;
    /// Flight-recorder ring capacity (entries; rounded up to a power of
    /// two).  The recorder itself is always on — see flightRecorder().
    std::size_t flightCapacity = 1024;
    /// Optional independent deadlock oracle (verify/gate.hpp).  When set,
    /// the Reconfigurator audits every merged outcome and the manager
    /// audits every epoch at "epoch_publish" just before it goes live —
    /// from BOTH writer modes, since driven and service publishes share
    /// rebuildAndPublish().  A violation records a kOracleViolation
    /// anomaly and bumps oracleViolations() but never blocks the publish:
    /// enforcement stays with the caller so driven-mode determinism holds.
    /// Must outlive the manager.
    verify::OracleGate* oracle = nullptr;
  };

  /// `topo` and `baseline` (the healthy epoch-0 table) must outlive the
  /// manager.
  FabricManager(const topo::Topology& topo,
                const routing::RoutingTable& baseline, Options options);
  FabricManager(const topo::Topology& topo,
                const routing::RoutingTable& baseline)
      : FabricManager(topo, baseline, Options{}) {}
  ~FabricManager() override;

  FabricManager(const FabricManager&) = delete;
  FabricManager& operator=(const FabricManager&) = delete;

  // --- reader side ---
  Reader makeReader() { return publisher_.makeReader(); }
  PinnedSnapshot acquire(Reader& reader) { return publisher_.acquire(reader); }
  std::uint64_t currentEpoch() const noexcept {
    return publisher_.currentEpoch();
  }
  /// True while a rebuild is between drain and publish — readers can use
  /// this to classify lookups that overlap a reconfiguration.
  bool rebuildActive() const noexcept {
    return rebuildActive_.load(std::memory_order_acquire);
  }

  /// The always-on bounded ring of recent control-plane events (transition
  /// posted, window opened, rebuild started/finished, publish, reclaim,
  /// anomaly).  Dump it on demand or after an anomaly; recording from any
  /// thread is lock-free and allocation-free.
  obs::FlightRecorder& flightRecorder() noexcept { return flight_; }
  const obs::FlightRecorder& flightRecorder() const noexcept {
    return flight_;
  }

  /// The attached metrics, or nullptr when none were configured.
  FabricMetrics* metrics() const noexcept { return options_.metrics; }

  // --- fault ingestion (any thread; lock-free) ---
  void onLinkStateChanged(std::uint64_t cycle, topo::LinkId link,
                          bool alive) override;
  void onNodeStateChanged(std::uint64_t cycle, topo::NodeId node,
                          bool alive) override;

  // --- driven mode (single writer thread; no service running) ---

  /// Rebuilds from the given authoritative alive masks and publishes the
  /// next epoch unconditionally.  `incremental` rebuilds against the epoch
  /// being replaced when possible.  Drains the transition queue for
  /// coalescing stats only — the masks are the rebuild input.
  PublishResult publishFromMasks(std::span<const std::uint8_t> linkAlive,
                                 std::span<const std::uint8_t> nodeAlive,
                                 bool incremental);

  /// Fraction of per-destination routing work an incremental rebuild from
  /// the CURRENT epoch would redo under these masks (1.0 when the
  /// incremental path cannot apply).  Writer thread only.
  double incrementalDirtyFraction(
      std::span<const std::uint8_t> linkAlive,
      std::span<const std::uint8_t> nodeAlive) const;

  /// Frees retired epochs no reader still pins (writer thread only).
  std::size_t tryReclaim() { return publisher_.tryReclaim(); }
  std::size_t retiredCount() const noexcept {
    return publisher_.retiredCount();
  }
  std::uint64_t reclaimedCount() const noexcept {
    return publisher_.reclaimedCount();
  }

  // --- service mode ---

  /// Launches the background rebuild thread.  No other writer may call
  /// publishFromMasks() while the service runs.
  void startService();
  /// Flushes any pending transitions (one final drain-and-rebuild if they
  /// change the desired masks) and joins the thread.  Idempotent.
  void stopService();
  bool serviceRunning() const noexcept { return serviceThread_.joinable(); }

  // --- statistics (atomics; readable from any thread) ---
  std::uint64_t rebuilds() const noexcept {
    return rebuilds_.load(std::memory_order_relaxed);
  }
  std::uint64_t rebuildsIncremental() const noexcept {
    return rebuildsIncremental_.load(std::memory_order_relaxed);
  }
  /// Service-mode drains whose folded batch left the applied masks
  /// unchanged (e.g. a DOWN+UP flap inside one window) — no rebuild ran.
  std::uint64_t rebuildsSkipped() const noexcept {
    return rebuildsSkipped_.load(std::memory_order_relaxed);
  }
  /// Total fault transitions absorbed by rebuild/skip decisions.  Minus
  /// one per rebuild, this is how many events coalescing saved.
  std::uint64_t transitionsAbsorbed() const noexcept {
    return transitionsAbsorbed_.load(std::memory_order_relaxed);
  }
  /// Largest transition batch folded into a single decision.
  std::uint64_t largestBatch() const noexcept {
    return largestBatch_.load(std::memory_order_relaxed);
  }
  /// False once any published epoch failed verification.
  bool allPublishedOk() const noexcept {
    return allOk_.load(std::memory_order_relaxed);
  }
  /// Epoch publishes the oracle rejected (0 when no oracle is attached).
  std::uint64_t oracleViolations() const noexcept {
    return oracleViolations_.load(std::memory_order_relaxed);
  }

 private:
  /// Folds `batch` into desiredLink_/desiredNode_; true when the desired
  /// masks now differ from the applied ones.
  bool foldBatch(std::span<const FaultTransition> batch);
  /// Rebuilds from desiredLink_/desiredNode_ and publishes (service mode).
  /// `batchSize` is the transition count folded into this decision
  /// (flight-recorder annotation only).
  PublishResult rebuildAndPublish(std::span<const std::uint8_t> linkAlive,
                                  std::span<const std::uint8_t> nodeAlive,
                                  bool incremental,
                                  std::uint64_t batchSize);
  void serviceLoop();

  const topo::Topology* topo_;
  fault::Reconfigurator reconfigurator_;
  EpochPublisher publisher_;
  FabricEventQueue queue_;
  Options options_;
  obs::FlightRecorder flight_;

  // Service-thread state (touched only by the service thread / driven
  // writer): desired = folded queue view, applied = masks of the current
  // epoch's rebuild input.
  std::vector<std::uint8_t> desiredLink_;
  std::vector<std::uint8_t> desiredNode_;
  std::vector<std::uint8_t> appliedLink_;
  std::vector<std::uint8_t> appliedNode_;
  std::vector<FaultTransition> batch_;  // drain scratch

  std::thread serviceThread_;
  std::atomic<bool> serviceStop_{false};
  std::atomic<bool> rebuildActive_{false};

  std::atomic<std::uint64_t> rebuilds_{0};
  std::atomic<std::uint64_t> rebuildsIncremental_{0};
  std::atomic<std::uint64_t> rebuildsSkipped_{0};
  std::atomic<std::uint64_t> transitionsAbsorbed_{0};
  std::atomic<std::uint64_t> largestBatch_{0};
  std::atomic<bool> allOk_{true};
  std::atomic<std::uint64_t> oracleViolations_{0};
};

}  // namespace downup::fabric
