#include "fabric/metrics.hpp"

#include <cstdio>
#include <ostream>

namespace downup::fabric {

void LatencyHistogram::bucketRange(std::size_t i, double& lo,
                                   double& hi) noexcept {
  const std::size_t msb = i >> kSubBits;
  const std::size_t sub = i & ((1u << kSubBits) - 1);
  if (msb < kSubBits) {
    // Degenerate small buckets: values below 2^kSubBits land in bucket
    // (msb, 0) and cover exactly [2^msb, 2^(msb+1)).
    lo = static_cast<double>(std::uint64_t{1} << msb);
    hi = static_cast<double>(std::uint64_t{1} << (msb + 1));
    if (i == 0) lo = 0.0;  // bucket 0 also holds the value 0
    return;
  }
  const double base = static_cast<double>(std::uint64_t{1} << msb);
  const double step = base / static_cast<double>(1u << kSubBits);
  lo = base + step * static_cast<double>(sub);
  hi = lo + step;
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  std::array<std::uint64_t, kBuckets> bins;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    bins[i] = bins_[i].load(std::memory_order_relaxed);
    total += bins[i];
  }
  snap.count = total;
  snap.maxNs = max_.load(std::memory_order_relaxed);
  if (total == 0) return snap;
  snap.meanNs = static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                static_cast<double>(total);

  const double ranks[3] = {0.50 * static_cast<double>(total),
                           0.90 * static_cast<double>(total),
                           0.99 * static_cast<double>(total)};
  double* outs[3] = {&snap.p50Ns, &snap.p90Ns, &snap.p99Ns};
  std::size_t next = 0;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets && next < 3; ++i) {
    if (bins[i] == 0) continue;
    const double before = cumulative;
    cumulative += static_cast<double>(bins[i]);
    while (next < 3 && ranks[next] <= cumulative) {
      double lo = 0.0;
      double hi = 0.0;
      bucketRange(i, lo, hi);
      const double frac =
          (ranks[next] - before) / static_cast<double>(bins[i]);
      *outs[next] = lo + (hi - lo) * frac;
      ++next;
    }
  }
  // Quantiles cannot exceed the observed max.
  for (double* q : outs) {
    if (*q > static_cast<double>(snap.maxNs)) {
      *q = static_cast<double>(snap.maxNs);
    }
  }
  return snap;
}

namespace {

void writeHistogram(std::ostream& out, const char* name,
                    const LatencyHistogram& hist) {
  const LatencyHistogram::Snapshot snap = hist.snapshot();
  char buffer[160];
  std::snprintf(buffer, sizeof buffer,
                "\"%s\":{\"count\":%llu,\"meanNs\":%.1f,\"p50Ns\":%.1f,"
                "\"p90Ns\":%.1f,\"p99Ns\":%.1f,\"maxNs\":%llu}",
                name, static_cast<unsigned long long>(snap.count),
                snap.meanNs, snap.p50Ns, snap.p90Ns, snap.p99Ns,
                static_cast<unsigned long long>(snap.maxNs));
  out << buffer;
}

std::uint64_t load(const std::atomic<std::uint64_t>& value) {
  return value.load(std::memory_order_relaxed);
}

}  // namespace

void FabricMetrics::writeJson(std::ostream& out) const {
  out << "{";
  writeHistogram(out, "acquire", acquireNs);
  out << ",";
  writeHistogram(out, "rebuild", rebuildNs);
  out << ",";
  writeHistogram(out, "snapshotLifetime", snapshotLifetimeNs);
  out << ",\"publishes\":" << load(publishes)
      << ",\"reclaims\":" << load(reclaims)
      << ",\"retireDepthMax\":" << load(retireDepthMax)
      << ",\"readersRegistered\":" << load(readersRegistered)
      << ",\"readerPinnedMax\":" << load(readerPinnedMax)
      << ",\"transitionsSeen\":" << load(transitionsSeen)
      << ",\"windowsOpened\":" << load(windowsOpened)
      << ",\"windowExtensions\":" << load(windowExtensions)
      << ",\"rebuildsRun\":" << load(rebuildsRun)
      << ",\"rebuildsIncremental\":" << load(rebuildsIncremental)
      << ",\"flapsCancelled\":" << load(flapsCancelled)
      << ",\"dirtyDestinationsTotal\":" << load(dirtyDestinationsTotal)
      << ",\"dirtyDestinationsMax\":" << load(dirtyDestinationsMax) << "}";
}

}  // namespace downup::fabric
