// Epoch-swapped publication of immutable routing tables.
//
// A fabric controller must keep answering route lookups while a rebuild is
// in flight, so the routing table the readers see is never mutated: every
// reconfiguration produces a NEW RoutingTable, wrapped in an epoch-tagged
// TableSnapshot, and the swap is one atomic pointer store.  Readers pin the
// snapshot they are about to use through a per-reader announcement slot —
// one cache line holding the pinned snapshot pointer — so the read path is
// lock-free: an acquire-load of the current pointer, one RMW on the
// reader's own slot, and a validating re-load.  No mutex, no shared
// counter, no allocation.
//
// Reclamation is epoch-based with per-reader announcements (an inline
// single-slot hazard scheme; no hazard-pointer library): the writer retires
// the previous snapshot on publish and frees a retired snapshot only once
// no reader slot announces it.  The announce/validate handshake makes this
// safe without blocking readers:
//
//   reader                         writer
//   p = current        (seq_cst)
//   slot <- p          (seq_cst)   current <- next   (seq_cst)
//   if current == p: pinned        scan slots        (seq_cst)
//   else: retry (never deref p)    free retired snapshots no slot announces
//
// In the seq_cst total order, if the reader's validating load still saw p,
// the announcement precedes the writer's swap and therefore its scan — the
// writer keeps p alive.  If the writer swapped first, the validation fails
// and the reader retries against the new pointer without ever dereferencing
// the stale one.  A slot may transiently hold a stale pointer from a failed
// validation; the writer then errs on the side of keeping that address
// alive (delayed reclamation, never a use-after-free).  All ordering flows
// through atomic objects (no standalone fences), so ThreadSanitizer can
// check the protocol.
//
// Single-writer: publish() / tryReclaim() are called from one thread at a
// time (FabricManager's rebuild thread, or the simulator thread in driven
// mode).  Readers are arbitrary threads, one Reader handle per thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "fabric/metrics.hpp"
#include "routing/routing_table.hpp"

namespace downup::fabric {

/// One published routing epoch: an immutable routing table tagged with a
/// monotonically increasing epoch number.  Epoch 0 borrows the caller's
/// baseline table; rebuilt epochs own their table and the TurnPermissions
/// it references (moved in together so the internal pointer stays valid).
class TableSnapshot {
 public:
  /// Borrowed baseline — `table` must outlive the snapshot.
  TableSnapshot(std::uint64_t epoch, const routing::RoutingTable* table)
      : epoch_(epoch), table_(table) {}

  /// Owned epoch from a rebuild.
  TableSnapshot(std::uint64_t epoch,
                std::unique_ptr<routing::TurnPermissions> perms,
                std::unique_ptr<routing::RoutingTable> table)
      : epoch_(epoch),
        table_(table.get()),
        ownedPerms_(std::move(perms)),
        ownedTable_(std::move(table)) {}

  std::uint64_t epoch() const noexcept { return epoch_; }
  const routing::RoutingTable& table() const noexcept { return *table_; }

  /// Steady-clock ns at publish (0 for the borrowed baseline).  Written by
  /// the publisher at publish time, read at reclaim for lifetime metrics.
  std::uint64_t publishNs() const noexcept { return publishNs_; }

 private:
  friend class EpochPublisher;
  std::uint64_t publishNs_ = 0;
  std::uint64_t epoch_;
  const routing::RoutingTable* table_;
  std::unique_ptr<routing::TurnPermissions> ownedPerms_;
  std::unique_ptr<routing::RoutingTable> ownedTable_;
};

/// Per-reader announcement slot.  Cache-line sized so concurrent readers
/// never false-share their pin stores.
struct alignas(64) ReaderSlot {
  std::atomic<const TableSnapshot*> pinned{nullptr};
};

class EpochPublisher;

/// A registered reader identity: one announcement slot inside one
/// publisher.  Cheap to copy; must be used from one thread at a time.
class Reader {
 public:
  Reader() = default;

 private:
  friend class EpochPublisher;
  Reader(EpochPublisher* publisher, ReaderSlot* slot)
      : publisher_(publisher), slot_(slot) {}

  EpochPublisher* publisher_ = nullptr;
  ReaderSlot* slot_ = nullptr;
};

/// RAII pin on one snapshot.  While live, the snapshot (and its table)
/// cannot be reclaimed.  A Reader holds at most one pin: acquiring again
/// through the same Reader supersedes the previous pin, so keep the newest
/// handle and drop the old one (the engine's swap path does exactly this).
class PinnedSnapshot {
 public:
  PinnedSnapshot() = default;
  PinnedSnapshot(PinnedSnapshot&& other) noexcept
      : slot_(other.slot_), snapshot_(other.snapshot_) {
    other.slot_ = nullptr;
    other.snapshot_ = nullptr;
  }
  PinnedSnapshot& operator=(PinnedSnapshot&& other) noexcept {
    if (this != &other) {
      release();
      slot_ = other.slot_;
      snapshot_ = other.snapshot_;
      other.slot_ = nullptr;
      other.snapshot_ = nullptr;
    }
    return *this;
  }
  PinnedSnapshot(const PinnedSnapshot&) = delete;
  PinnedSnapshot& operator=(const PinnedSnapshot&) = delete;
  ~PinnedSnapshot() { release(); }

  bool valid() const noexcept { return snapshot_ != nullptr; }
  std::uint64_t epoch() const noexcept { return snapshot_->epoch(); }
  const routing::RoutingTable& table() const noexcept {
    return snapshot_->table();
  }

  /// Unpins early (idempotent).  Only clears the slot when it still
  /// announces this snapshot — a newer pin through the same Reader is left
  /// untouched.
  void release() noexcept {
    if (slot_ == nullptr) return;
    if (slot_->pinned.load(std::memory_order_relaxed) == snapshot_) {
      slot_->pinned.store(nullptr, std::memory_order_release);
    }
    slot_ = nullptr;
    snapshot_ = nullptr;
  }

 private:
  friend class EpochPublisher;
  PinnedSnapshot(ReaderSlot* slot, const TableSnapshot* snapshot)
      : slot_(slot), snapshot_(snapshot) {}

  ReaderSlot* slot_ = nullptr;
  const TableSnapshot* snapshot_ = nullptr;
};

/// Double-buffered-and-beyond snapshot store: the current epoch, the
/// retired-but-possibly-pinned predecessors, and the reader registry.
class EpochPublisher {
 public:
  /// `maxReaders` bounds the registry (slot addresses must stay stable, so
  /// the slot array is allocated once).  `baseline` becomes epoch 0 and is
  /// borrowed — it must outlive the publisher.
  EpochPublisher(const routing::RoutingTable& baseline,
                 std::size_t maxReaders = 64);
  ~EpochPublisher();

  EpochPublisher(const EpochPublisher&) = delete;
  EpochPublisher& operator=(const EpochPublisher&) = delete;

  /// Attaches service metrics (pin-acquire latency, snapshot lifetime,
  /// retire-list depth, reader-slot occupancy).  nullptr detaches — the
  /// default, and the read path then pays exactly one branch.  Must be set
  /// before readers start acquiring; the pointer is shared unsynchronised.
  void setMetrics(FabricMetrics* metrics) noexcept { metrics_ = metrics; }

  /// Registers a reader slot (mutex-guarded; NOT the read path).  Throws
  /// std::length_error past maxReaders.
  Reader makeReader();

  /// Lock-free pin of the current snapshot (see the protocol note above).
  PinnedSnapshot acquire(Reader& reader);

  /// Current epoch number (readers may race this; informational).
  std::uint64_t currentEpoch() const noexcept {
    return current_.load(std::memory_order_acquire)->epoch();
  }

  // --- writer side (single caller at a time) ---

  /// Publishes a rebuilt table as the next epoch with one atomic pointer
  /// swap and retires the predecessor.  Returns the new epoch number.
  std::uint64_t publish(std::unique_ptr<routing::TurnPermissions> perms,
                        std::unique_ptr<routing::RoutingTable> table);

  /// Writer-side peek at the current snapshot (for incremental rebuilds
  /// against the epoch being replaced).
  const TableSnapshot& currentForWriter() const noexcept {
    return *current_.load(std::memory_order_acquire);
  }

  /// Frees every retired snapshot no reader slot announces; returns how
  /// many were reclaimed.  Non-blocking — pinned epochs simply stay on the
  /// retired list until a later call finds them released.
  std::size_t tryReclaim();

  /// Retired-but-not-yet-reclaimed snapshots (epoch-lifecycle tests).
  std::size_t retiredCount() const noexcept { return retired_.size(); }
  /// Total snapshots reclaimed over the publisher's lifetime.
  std::uint64_t reclaimedCount() const noexcept { return reclaimed_; }

 private:
  std::atomic<const TableSnapshot*> current_;
  std::unique_ptr<TableSnapshot> currentOwned_;
  std::vector<std::unique_ptr<TableSnapshot>> retired_;
  std::uint64_t reclaimed_ = 0;

  std::unique_ptr<ReaderSlot[]> slots_;
  std::size_t maxReaders_;
  std::size_t readerCount_ = 0;  // guarded by registerMutex_
  std::mutex registerMutex_;
  FabricMetrics* metrics_ = nullptr;
};

}  // namespace downup::fabric
