#include "fabric/epoch.hpp"

#include <chrono>
#include <stdexcept>

namespace downup::fabric {

namespace {

std::uint64_t steadyNowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EpochPublisher::EpochPublisher(const routing::RoutingTable& baseline,
                               std::size_t maxReaders)
    : currentOwned_(std::make_unique<TableSnapshot>(0, &baseline)),
      slots_(std::make_unique<ReaderSlot[]>(maxReaders)),
      maxReaders_(maxReaders) {
  current_.store(currentOwned_.get(), std::memory_order_release);
}

EpochPublisher::~EpochPublisher() = default;

Reader EpochPublisher::makeReader() {
  std::lock_guard<std::mutex> lock(registerMutex_);
  if (readerCount_ >= maxReaders_) {
    throw std::length_error("EpochPublisher: reader registry full");
  }
  if (metrics_ != nullptr) {
    metrics_->readersRegistered.fetch_add(1, std::memory_order_relaxed);
  }
  return Reader(this, &slots_[readerCount_++]);
}

PinnedSnapshot EpochPublisher::acquire(Reader& reader) {
  FabricMetrics* metrics = metrics_;
  const std::uint64_t startNs = metrics != nullptr ? steadyNowNs() : 0;
  ReaderSlot* slot = reader.slot_;
  for (;;) {
    const TableSnapshot* p = current_.load(std::memory_order_seq_cst);
    // Announce BEFORE validating; seq_cst RMW so the announcement and the
    // writer's swap have a single total order TSan can reason about.
    slot->pinned.exchange(p, std::memory_order_seq_cst);
    if (current_.load(std::memory_order_seq_cst) == p) {
      if (metrics != nullptr) {
        metrics->acquireNs.record(steadyNowNs() - startNs);
      }
      return PinnedSnapshot(slot, p);
    }
    // The writer swapped between our load and announcement; the stale
    // announcement is harmless (it only delays reclamation).  Retry.
  }
}

std::uint64_t EpochPublisher::publish(
    std::unique_ptr<routing::TurnPermissions> perms,
    std::unique_ptr<routing::RoutingTable> table) {
  const std::uint64_t epoch = currentOwned_->epoch() + 1;
  auto next = std::make_unique<TableSnapshot>(epoch, std::move(perms),
                                              std::move(table));
  if (metrics_ != nullptr) next->publishNs_ = steadyNowNs();
  current_.store(next.get(), std::memory_order_seq_cst);
  retired_.push_back(std::move(currentOwned_));
  currentOwned_ = std::move(next);
  if (metrics_ != nullptr) {
    metrics_->publishes.fetch_add(1, std::memory_order_relaxed);
    atomicMax(metrics_->retireDepthMax, retired_.size());
  }
  return epoch;
}

std::size_t EpochPublisher::tryReclaim() {
  if (retired_.empty()) return 0;
  const std::uint64_t nowNs = metrics_ != nullptr ? steadyNowNs() : 0;
  std::size_t freed = 0;
  for (std::size_t i = 0; i < retired_.size();) {
    const TableSnapshot* candidate = retired_[i].get();
    bool pinned = false;
    for (std::size_t s = 0; s < maxReaders_; ++s) {
      if (slots_[s].pinned.load(std::memory_order_seq_cst) == candidate) {
        pinned = true;
        break;
      }
    }
    if (pinned) {
      ++i;
    } else {
      if (metrics_ != nullptr && candidate->publishNs_ != 0) {
        metrics_->snapshotLifetimeNs.record(nowNs - candidate->publishNs_);
      }
      retired_[i] = std::move(retired_.back());
      retired_.pop_back();
      ++freed;
    }
  }
  reclaimed_ += freed;
  if (metrics_ != nullptr) {
    metrics_->reclaims.fetch_add(freed, std::memory_order_relaxed);
    std::uint64_t pinnedSlots = 0;
    // Scan the full registry — readerCount_ is mutex-guarded and readers
    // may still be registering while the writer reclaims.
    for (std::size_t s = 0; s < maxReaders_; ++s) {
      pinnedSlots +=
          slots_[s].pinned.load(std::memory_order_relaxed) != nullptr;
    }
    atomicMax(metrics_->readerPinnedMax, pinnedSlots);
  }
  return freed;
}

}  // namespace downup::fabric
