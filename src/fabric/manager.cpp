#include "fabric/manager.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "verify/gate.hpp"

namespace downup::fabric {

FabricManager::FabricManager(const topo::Topology& topo,
                             const routing::RoutingTable& baseline,
                             Options options)
    : topo_(&topo),
      reconfigurator_(topo, options.pool),
      publisher_(baseline, options.maxReaders),
      options_(options),
      flight_(options.flightCapacity),
      desiredLink_(topo.linkCount(), 1),
      desiredNode_(topo.nodeCount(), 1),
      appliedLink_(topo.linkCount(), 1),
      appliedNode_(topo.nodeCount(), 1) {
  reconfigurator_.setSpans(options_.spans);
  reconfigurator_.setOracle(options_.oracle);
  publisher_.setMetrics(options_.metrics);
}

FabricManager::~FabricManager() { stopService(); }

void FabricManager::onLinkStateChanged(std::uint64_t cycle, topo::LinkId link,
                                       bool alive) {
  queue_.push({cycle, FaultTransition::Entity::kLink, link, alive});
  flight_.record(obs::FabricEventKind::kTransitionPosted, cycle, /*entity=*/0,
                 link, alive);
  if (options_.metrics != nullptr) {
    options_.metrics->transitionsSeen.fetch_add(1, std::memory_order_relaxed);
  }
}

void FabricManager::onNodeStateChanged(std::uint64_t cycle, topo::NodeId node,
                                       bool alive) {
  queue_.push({cycle, FaultTransition::Entity::kNode, node, alive});
  flight_.record(obs::FabricEventKind::kTransitionPosted, cycle, /*entity=*/1,
                 node, alive);
  if (options_.metrics != nullptr) {
    options_.metrics->transitionsSeen.fetch_add(1, std::memory_order_relaxed);
  }
}

bool FabricManager::foldBatch(std::span<const FaultTransition> batch) {
  for (const FaultTransition& t : batch) {
    const std::uint8_t alive = t.alive ? 1 : 0;
    if (t.entity == FaultTransition::Entity::kLink) {
      desiredLink_[t.id] = alive;
    } else {
      desiredNode_[t.id] = alive;
    }
  }
  return desiredLink_ != appliedLink_ || desiredNode_ != appliedNode_;
}

PublishResult FabricManager::rebuildAndPublish(
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive, bool incremental,
    std::uint64_t batchSize) {
  FabricMetrics* const metrics = options_.metrics;
  const auto startTime = std::chrono::steady_clock::now();
  flight_.record(obs::FabricEventKind::kRebuildStarted, 0,
                 incremental ? 1 : 0, batchSize);

  rebuildActive_.store(true, std::memory_order_release);
  fault::ReconfigOutcome outcome =
      incremental
          ? reconfigurator_.rebuildIncremental(
                publisher_.currentForWriter().table(), linkAlive, nodeAlive)
          : reconfigurator_.rebuild(linkAlive, nodeAlive);

  PublishResult result;
  result.published = true;
  result.incremental = outcome.incremental;
  result.rebuiltDestinations = outcome.rebuiltDestinations;
  result.unreachablePairs = outcome.unreachablePairs;
  result.components = outcome.components;
  result.ok = outcome.ok();
  // Independent gate on the epoch about to go live.  Shared by driven and
  // service publishes; observational only (the publish proceeds so the
  // engine's deterministic swap protocol is unaffected).
  if (options_.oracle != nullptr) {
    std::vector<std::uint8_t> channelAlive(topo_->channelCount(), 0);
    for (topo::LinkId l = 0; l < topo_->linkCount(); ++l) {
      const auto [a, b] = topo_->linkEnds(l);
      const std::uint8_t alive = linkAlive[l] && nodeAlive[a] && nodeAlive[b];
      channelAlive[2 * l] = alive;
      channelAlive[2 * l + 1] = alive;
    }
    verify::OracleInput input;
    input.perms = outcome.perms.get();
    input.table = outcome.table.get();
    input.channelAlive = channelAlive;
    const std::uint64_t nextEpoch = publisher_.currentEpoch() + 1;
    if (!options_.oracle->audit(input,
                                {.point = "epoch_publish", .epoch = nextEpoch})) {
      oracleViolations_.fetch_add(1, std::memory_order_relaxed);
      flight_.record(
          obs::FabricEventKind::kAnomaly, 0,
          static_cast<std::uint64_t>(obs::AnomalyCode::kOracleViolation),
          nextEpoch);
    }
  }
  {
    util::ScopedSpan publishSpan(options_.spans, "publish");
    result.epoch =
        publisher_.publish(std::move(outcome.perms), std::move(outcome.table));
    rebuildActive_.store(false, std::memory_order_release);

    std::copy(linkAlive.begin(), linkAlive.end(), appliedLink_.begin());
    std::copy(nodeAlive.begin(), nodeAlive.end(), appliedNode_.begin());

    flight_.record(obs::FabricEventKind::kRebuildFinished, 0, result.epoch,
                   result.rebuiltDestinations, result.ok);
    flight_.record(obs::FabricEventKind::kPublish, 0, result.epoch,
                   publisher_.retiredCount());
    const std::size_t freed = publisher_.tryReclaim();
    flight_.record(obs::FabricEventKind::kReclaim, 0, freed,
                   publisher_.retiredCount());
    publishSpan.arg("epoch", static_cast<double>(result.epoch));
    publishSpan.arg("reclaimed", static_cast<double>(freed));
  }

  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.incremental) {
    rebuildsIncremental_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!result.ok) {
    allOk_.store(false, std::memory_order_relaxed);
    flight_.record(obs::FabricEventKind::kAnomaly, 0,
                   static_cast<std::uint64_t>(
                       obs::AnomalyCode::kUnverifiedRouting));
  }
  if (metrics != nullptr) {
    metrics->rebuildsRun.fetch_add(1, std::memory_order_relaxed);
    if (outcome.incremental) {
      metrics->rebuildsIncremental.fetch_add(1, std::memory_order_relaxed);
    }
    metrics->dirtyDestinationsTotal.fetch_add(result.rebuiltDestinations,
                                              std::memory_order_relaxed);
    atomicMax(metrics->dirtyDestinationsMax, result.rebuiltDestinations);
    metrics->rebuildNs.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - startTime)
            .count()));
  }
  return result;
}

PublishResult FabricManager::publishFromMasks(
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive, bool incremental) {
  // Drain for coalescing stats and to keep desired masks tracking the
  // controller's view; the passed masks stay the authoritative input, and
  // driven mode always publishes — the engine decides when a swap happens.
  util::ScopedSpan rebuildSpan(options_.spans, "rebuild");
  util::ScopedSpan dequeueSpan(options_.spans, "event_dequeue");
  batch_.clear();
  const std::size_t drained = queue_.drain(batch_);
  foldBatch(batch_);
  dequeueSpan.arg("drained", static_cast<double>(drained));
  dequeueSpan.close();
  transitionsAbsorbed_.fetch_add(drained, std::memory_order_relaxed);
  std::uint64_t prevMax = largestBatch_.load(std::memory_order_relaxed);
  while (drained > prevMax &&
         !largestBatch_.compare_exchange_weak(prevMax, drained,
                                              std::memory_order_relaxed)) {
  }

  PublishResult result =
      rebuildAndPublish(linkAlive, nodeAlive, incremental, drained);
  result.transitionsAbsorbed = drained;
  // The engine's masks are ground truth; fold them into desired so a later
  // service start would not see phantom divergence.
  std::copy(linkAlive.begin(), linkAlive.end(), desiredLink_.begin());
  std::copy(nodeAlive.begin(), nodeAlive.end(), desiredNode_.begin());
  return result;
}

double FabricManager::incrementalDirtyFraction(
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive) const {
  return reconfigurator_.incrementalDirtyFraction(
      publisher_.currentForWriter().table(), linkAlive, nodeAlive);
}

void FabricManager::startService() {
  if (serviceThread_.joinable()) return;
  serviceStop_.store(false, std::memory_order_release);
  serviceThread_ = std::thread([this] { serviceLoop(); });
}

void FabricManager::stopService() {
  if (!serviceThread_.joinable()) return;
  serviceStop_.store(true, std::memory_order_release);
  queue_.notify();
  serviceThread_.join();
}

void FabricManager::serviceLoop() {
  util::SpanRecorder* const spans = options_.spans;
  FabricMetrics* const metrics = options_.metrics;
  for (;;) {
    const bool stopping = serviceStop_.load(std::memory_order_acquire);
    if (queue_.empty()) {
      if (stopping) return;
      queue_.waitNonEmpty(serviceStop_, /*timeoutMicros=*/50'000);
      continue;
    }
    // First transition of a burst observed: one `rebuild` root span covers
    // the whole decision — coalescing wait, drain, construction, publish.
    util::ScopedSpan rebuildSpan(spans, "rebuild");
    flight_.record(obs::FabricEventKind::kWindowOpened, 0,
                   queue_.pushedCount() -
                       transitionsAbsorbed_.load(std::memory_order_relaxed));
    if (metrics != nullptr) {
      metrics->windowsOpened.fetch_add(1, std::memory_order_relaxed);
    }
    if (!stopping && options_.coalesceWindowMicros > 0) {
      // Sleep out the coalescing window so the rest of the burst (including
      // a matching UP) lands in this batch.
      util::ScopedSpan waitSpan(spans, "coalesce_wait");
      const std::uint64_t pushedBefore = queue_.pushedCount();
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.coalesceWindowMicros));
      const std::uint64_t arrived = queue_.pushedCount() - pushedBefore;
      waitSpan.arg("arrived", static_cast<double>(arrived));
      if (arrived > 0) {
        flight_.record(obs::FabricEventKind::kWindowExtended, 0, arrived);
        if (metrics != nullptr) {
          metrics->windowExtensions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    util::ScopedSpan dequeueSpan(spans, "event_dequeue");
    batch_.clear();
    const std::size_t drained = queue_.drain(batch_);
    const bool changed = drained > 0 && foldBatch(batch_);
    dequeueSpan.arg("drained", static_cast<double>(drained));
    dequeueSpan.close();
    if (drained > 0) {
      transitionsAbsorbed_.fetch_add(drained, std::memory_order_relaxed);
      std::uint64_t prevMax = largestBatch_.load(std::memory_order_relaxed);
      while (drained > prevMax &&
             !largestBatch_.compare_exchange_weak(prevMax, drained,
                                                  std::memory_order_relaxed)) {
      }
      if (changed) {
        PublishResult result = rebuildAndPublish(
            desiredLink_, desiredNode_, options_.incremental, drained);
        result.transitionsAbsorbed = drained;
      } else {
        // The burst cancelled out (flap): desired == applied, nothing to do.
        rebuildsSkipped_.fetch_add(1, std::memory_order_relaxed);
        flight_.record(obs::FabricEventKind::kRebuildSkipped, 0, drained);
        if (metrics != nullptr) {
          metrics->flapsCancelled.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
}

}  // namespace downup::fabric
