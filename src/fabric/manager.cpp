#include "fabric/manager.hpp"

#include <algorithm>
#include <chrono>

namespace downup::fabric {

FabricManager::FabricManager(const topo::Topology& topo,
                             const routing::RoutingTable& baseline,
                             Options options)
    : topo_(&topo),
      reconfigurator_(topo, options.pool),
      publisher_(baseline, options.maxReaders),
      options_(options),
      desiredLink_(topo.linkCount(), 1),
      desiredNode_(topo.nodeCount(), 1),
      appliedLink_(topo.linkCount(), 1),
      appliedNode_(topo.nodeCount(), 1) {}

FabricManager::~FabricManager() { stopService(); }

void FabricManager::onLinkStateChanged(std::uint64_t cycle, topo::LinkId link,
                                       bool alive) {
  queue_.push({cycle, FaultTransition::Entity::kLink, link, alive});
}

void FabricManager::onNodeStateChanged(std::uint64_t cycle, topo::NodeId node,
                                       bool alive) {
  queue_.push({cycle, FaultTransition::Entity::kNode, node, alive});
}

bool FabricManager::foldBatch(std::span<const FaultTransition> batch) {
  for (const FaultTransition& t : batch) {
    const std::uint8_t alive = t.alive ? 1 : 0;
    if (t.entity == FaultTransition::Entity::kLink) {
      desiredLink_[t.id] = alive;
    } else {
      desiredNode_[t.id] = alive;
    }
  }
  return desiredLink_ != appliedLink_ || desiredNode_ != appliedNode_;
}

PublishResult FabricManager::rebuildAndPublish(
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive, bool incremental) {
  rebuildActive_.store(true, std::memory_order_release);
  fault::ReconfigOutcome outcome =
      incremental
          ? reconfigurator_.rebuildIncremental(
                publisher_.currentForWriter().table(), linkAlive, nodeAlive)
          : reconfigurator_.rebuild(linkAlive, nodeAlive);

  PublishResult result;
  result.published = true;
  result.incremental = outcome.incremental;
  result.rebuiltDestinations = outcome.rebuiltDestinations;
  result.unreachablePairs = outcome.unreachablePairs;
  result.components = outcome.components;
  result.ok = outcome.ok();
  result.epoch =
      publisher_.publish(std::move(outcome.perms), std::move(outcome.table));
  rebuildActive_.store(false, std::memory_order_release);

  std::copy(linkAlive.begin(), linkAlive.end(), appliedLink_.begin());
  std::copy(nodeAlive.begin(), nodeAlive.end(), appliedNode_.begin());

  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.incremental) {
    rebuildsIncremental_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!result.ok) allOk_.store(false, std::memory_order_relaxed);
  publisher_.tryReclaim();
  return result;
}

PublishResult FabricManager::publishFromMasks(
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive, bool incremental) {
  // Drain for coalescing stats and to keep desired masks tracking the
  // controller's view; the passed masks stay the authoritative input, and
  // driven mode always publishes — the engine decides when a swap happens.
  batch_.clear();
  const std::size_t drained = queue_.drain(batch_);
  foldBatch(batch_);
  transitionsAbsorbed_.fetch_add(drained, std::memory_order_relaxed);
  std::uint64_t prevMax = largestBatch_.load(std::memory_order_relaxed);
  while (drained > prevMax &&
         !largestBatch_.compare_exchange_weak(prevMax, drained,
                                              std::memory_order_relaxed)) {
  }

  PublishResult result = rebuildAndPublish(linkAlive, nodeAlive, incremental);
  result.transitionsAbsorbed = drained;
  // The engine's masks are ground truth; fold them into desired so a later
  // service start would not see phantom divergence.
  std::copy(linkAlive.begin(), linkAlive.end(), desiredLink_.begin());
  std::copy(nodeAlive.begin(), nodeAlive.end(), desiredNode_.begin());
  return result;
}

double FabricManager::incrementalDirtyFraction(
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive) const {
  return reconfigurator_.incrementalDirtyFraction(
      publisher_.currentForWriter().table(), linkAlive, nodeAlive);
}

void FabricManager::startService() {
  if (serviceThread_.joinable()) return;
  serviceStop_.store(false, std::memory_order_release);
  serviceThread_ = std::thread([this] { serviceLoop(); });
}

void FabricManager::stopService() {
  if (!serviceThread_.joinable()) return;
  serviceStop_.store(true, std::memory_order_release);
  queue_.notify();
  serviceThread_.join();
}

void FabricManager::serviceLoop() {
  for (;;) {
    const bool stopping = serviceStop_.load(std::memory_order_acquire);
    if (!stopping && queue_.empty()) {
      queue_.waitNonEmpty(serviceStop_, /*timeoutMicros=*/50'000);
      continue;
    }
    if (!queue_.empty() && !stopping && options_.coalesceWindowMicros > 0) {
      // First transition of a burst: sleep out the coalescing window so the
      // rest of the burst (including a matching UP) lands in this batch.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.coalesceWindowMicros));
    }
    batch_.clear();
    const std::size_t drained = queue_.drain(batch_);
    if (drained > 0) {
      transitionsAbsorbed_.fetch_add(drained, std::memory_order_relaxed);
      std::uint64_t prevMax = largestBatch_.load(std::memory_order_relaxed);
      while (drained > prevMax &&
             !largestBatch_.compare_exchange_weak(prevMax, drained,
                                                  std::memory_order_relaxed)) {
      }
      if (foldBatch(batch_)) {
        PublishResult result =
            rebuildAndPublish(desiredLink_, desiredNode_, options_.incremental);
        result.transitionsAbsorbed = drained;
      } else {
        // The burst cancelled out (flap): desired == applied, nothing to do.
        rebuildsSkipped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (stopping && queue_.empty()) return;
  }
}

}  // namespace downup::fabric
