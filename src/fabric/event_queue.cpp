#include "fabric/event_queue.hpp"

#include <chrono>

namespace downup::fabric {

FabricEventQueue::~FabricEventQueue() {
  Node* n = head_.exchange(nullptr, std::memory_order_acquire);
  while (n != nullptr) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

void FabricEventQueue::push(const FaultTransition& t) {
  Node* node = new Node{t, nullptr};
  Node* expected = head_.load(std::memory_order_relaxed);
  do {
    node->next = expected;
  } while (!head_.compare_exchange_weak(expected, node,
                                        std::memory_order_release,
                                        std::memory_order_relaxed));
  pushed_.fetch_add(1, std::memory_order_relaxed);
  // Pairs with waitNonEmpty(): the lock orders this wake after the
  // sleeper's empty-check, so no notification is lost.
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
  }
  wakeCv_.notify_one();
}

std::size_t FabricEventQueue::drain(std::vector<FaultTransition>& out) {
  Node* n = head_.exchange(nullptr, std::memory_order_acquire);
  // The detached list is newest-first; reverse for push (FIFO) order.
  Node* reversed = nullptr;
  while (n != nullptr) {
    Node* next = n->next;
    n->next = reversed;
    reversed = n;
    n = next;
  }
  std::size_t drained = 0;
  while (reversed != nullptr) {
    out.push_back(reversed->event);
    Node* next = reversed->next;
    delete reversed;
    reversed = next;
    ++drained;
  }
  return drained;
}

bool FabricEventQueue::waitNonEmpty(const std::atomic<bool>& stop,
                                    std::uint64_t timeoutMicros) {
  std::unique_lock<std::mutex> lock(wakeMutex_);
  const auto ready = [&] {
    return !empty() || stop.load(std::memory_order_acquire);
  };
  if (timeoutMicros == 0) {
    wakeCv_.wait(lock, ready);
  } else {
    wakeCv_.wait_for(lock, std::chrono::microseconds(timeoutMicros), ready);
  }
  return !empty();
}

void FabricEventQueue::notify() {
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
  }
  wakeCv_.notify_all();
}

}  // namespace downup::fabric
