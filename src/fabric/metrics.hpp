// Opt-in service metrics for the fabric control plane.
//
// FabricMetrics is a bag of lock-free counters and log-scale latency
// histograms shared by FabricManager and EpochPublisher.  Attach one via
// FabricManager::Options::metrics before readers start; every hook is
// guarded by a null check, so the detached path costs nothing (no clock
// reads, no atomics, no allocation) and the attached path never blocks —
// readers record pin-acquire latency with a handful of relaxed fetch_adds.
//
// The histograms bucket by (octave, 2 mantissa bits) — 4 sub-buckets per
// power of two — so quantiles interpolate to within ~12.5% across the full
// ns..minutes range with a fixed 256-slot footprint and no allocation.
// That is deliberately coarser than util::QuantileSketch: the sketch is
// single-writer and allocates; these histograms take concurrent writers on
// the lock-free read path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace downup::fabric {

/// Relaxed-atomic running max.
inline void atomicMax(std::atomic<std::uint64_t>& target,
                      std::uint64_t value) noexcept {
  std::uint64_t prev = target.load(std::memory_order_relaxed);
  while (prev < value && !target.compare_exchange_weak(
                             prev, value, std::memory_order_relaxed)) {
  }
}

/// Lock-free log-scale latency histogram (concurrent writers, any-thread
/// snapshot).  Values are nanoseconds.
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBits = 2;  // 4 sub-buckets per octave
  static constexpr std::size_t kBuckets = 64 << kSubBits;

  void record(std::uint64_t ns) noexcept {
    bins_[bucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    atomicMax(max_, ns);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p90Ns = 0.0;
    double p99Ns = 0.0;
    std::uint64_t maxNs = 0;
  };

  /// Point-in-time summary; consistent enough under concurrent writers
  /// (counters are monotone, so quantiles are at worst slightly stale).
  Snapshot snapshot() const;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t bucketOf(std::uint64_t ns) noexcept {
    const int msb = 63 - __builtin_clzll(ns | 1);
    const std::size_t sub =
        msb >= static_cast<int>(kSubBits)
            ? (ns >> (msb - kSubBits)) & ((1u << kSubBits) - 1)
            : 0;
    return (static_cast<std::size_t>(msb) << kSubBits) | sub;
  }
  /// Inclusive value range covered by bucket `i` (quantile interpolation).
  static void bucketRange(std::size_t i, double& lo, double& hi) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> bins_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// The fabric service's control-plane metrics.  All fields are readable
/// from any thread at any time.
struct FabricMetrics {
  // --- read path ---
  LatencyHistogram acquireNs;  // PinnedSnapshot acquisition latency

  // --- epoch lifecycle ---
  LatencyHistogram rebuildNs;           // rebuild-and-publish duration
  LatencyHistogram snapshotLifetimeNs;  // publish -> reclaim per epoch
  std::atomic<std::uint64_t> publishes{0};
  std::atomic<std::uint64_t> reclaims{0};
  std::atomic<std::uint64_t> retireDepthMax{0};  // retired list high-water
  std::atomic<std::uint64_t> readersRegistered{0};
  std::atomic<std::uint64_t> readerPinnedMax{0};  // pinned slots high-water

  // --- coalescing ledger ---
  std::atomic<std::uint64_t> transitionsSeen{0};
  std::atomic<std::uint64_t> windowsOpened{0};
  std::atomic<std::uint64_t> windowExtensions{0};
  std::atomic<std::uint64_t> rebuildsRun{0};
  std::atomic<std::uint64_t> rebuildsIncremental{0};
  std::atomic<std::uint64_t> flapsCancelled{0};
  std::atomic<std::uint64_t> dirtyDestinationsTotal{0};
  std::atomic<std::uint64_t> dirtyDestinationsMax{0};

  /// One JSON object (no trailing newline) with every counter and
  /// histogram snapshot — appended to bench rows and --metrics-out lines.
  void writeJson(std::ostream& out) const;
};

}  // namespace downup::fabric
