// Multi-producer single-consumer queue carrying alive-state transitions
// from fault reporters to the fabric rebuild thread.
//
// Producers are lock-free: push is one CAS loop onto a Treiber stack.  The
// single consumer detaches the whole stack with one exchange and reverses
// it, so drain() yields events in push order (FIFO).  A condition variable
// exists only to park the service thread between bursts — it is never on
// the producer's fast path unless a sleeper is registered.
//
// The queue carries *transitions*, not raw schedule events: the producer
// (FaultController) has already folded cascade semantics (a node death
// killing its incident links, down-depth on double faults), so each entry
// states "this link/node is now alive/dead as of cycle C".  Coalescing is
// the consumer's job: FabricManager folds a drained batch into desired
// alive masks, so a DOWN and UP of the same link inside one window cancel
// out and N failures become one rebuild over the union dirty set.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "topology/topology.hpp"

namespace downup::fabric {

struct FaultTransition {
  enum class Entity : std::uint8_t { kLink, kNode };

  std::uint64_t cycle = 0;
  Entity entity = Entity::kLink;
  std::uint32_t id = 0;  // LinkId or NodeId
  bool alive = false;    // the NEW state

  bool operator==(const FaultTransition&) const = default;
};

class FabricEventQueue {
 public:
  FabricEventQueue() = default;
  ~FabricEventQueue();

  FabricEventQueue(const FabricEventQueue&) = delete;
  FabricEventQueue& operator=(const FabricEventQueue&) = delete;

  /// Lock-free push (any thread).  Wakes a waitNonEmpty() sleeper if one is
  /// parked.
  void push(const FaultTransition& t);

  /// Detaches every queued event and appends them to `out` in push order.
  /// Single consumer only.  Returns the number drained.
  std::size_t drain(std::vector<FaultTransition>& out);

  /// Approximate emptiness (exact for the single consumer between pushes).
  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

  /// Total events ever pushed (relaxed counter, for stats).
  std::uint64_t pushedCount() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }

  /// Parks the consumer until the queue is non-empty, `stop` becomes true,
  /// or `timeoutMicros` elapses (0 = no timeout).  Returns !empty().
  bool waitNonEmpty(const std::atomic<bool>& stop,
                    std::uint64_t timeoutMicros = 0);

  /// Wakes a parked consumer without pushing (shutdown path).
  void notify();

 private:
  struct Node {
    FaultTransition event;
    Node* next = nullptr;
  };

  std::atomic<Node*> head_{nullptr};
  std::atomic<std::uint64_t> pushed_{0};

  std::mutex wakeMutex_;
  std::condition_variable wakeCv_;
};

}  // namespace downup::fabric
