// Replayable oracle witness cases.
//
// When the gate catches a violation it serialises everything the oracle
// needs to reproduce the verdict offline — topology, channel directions,
// the global turn set with per-node releases/blocks, the alive mask, the
// occupancy overlay and the witness cycles — as one strict JSONL file
// (schema `oracle_case/1`, parsed with util/jsonl.hpp; see DESIGN.md §15
// and results/README.md for the record layout).  examples/oracle_replay.cpp
// reloads a case and re-runs the oracle on the reconstructed state.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "verify/oracle.hpp"

namespace downup::verify {

/// Context the gate attaches to a dumped case (where in the system the
/// audited snapshot came from).
struct CaseContext {
  std::string point;  // "table_build", "epoch_publish", "mid_reconfig", ...
  std::uint64_t cycle = 0;
  std::uint64_t epoch = 0;
  /// Optional WaitForSampler witness observed around the violation.
  std::vector<ChannelId> waitForWitness;
};

/// Serialises `input` + `report` (+ context) as oracle_case/1 JSONL.
void writeReplayCase(std::ostream& out, const OracleInput& input,
                     const OracleReport& report, const CaseContext& context);

/// A fully reconstructed case: the topology and permissions are owned here
/// and `input` points into them (no table — the table layer is not
/// serialised; rule and state layers reproduce the verdict).
struct ReplayCase {
  CaseContext context;
  bool expectedRuleDeadlockFree = true;
  bool expectedStateDrains = true;
  std::vector<ChannelId> recordedRuleCycle;
  std::vector<ChannelId> recordedStateCycle;

  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<routing::TurnPermissions> perms;
  std::vector<std::uint8_t> channelAlive;
  std::vector<OccupancyEdge> holdEdges;
  std::vector<OccupancyEdge> requestEdges;

  /// The reconstructed oracle input (borrows the members above).
  OracleInput input() const;
};

/// Parses an oracle_case/1 stream.  Throws std::runtime_error with a
/// `source:line` diagnostic on any malformed, truncated or out-of-range
/// record (same strictness contract as topo::load).
ReplayCase loadReplayCase(std::istream& in, std::string_view source);

}  // namespace downup::verify
