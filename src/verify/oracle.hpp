// Independent deadlock-freedom oracle.
//
// The constructive pipeline already checks its own work: verifyRouting()
// runs an iterative three-color DFS over the channel-dependency graph
// (routing/cdg.cpp) and trusts the routing table's own distance field for
// connectivity.  This oracle re-derives both verdicts through a different
// algorithm and a different formulation so that a bug in the constructive
// path and a bug in its checker are unlikely to coincide.
//
// Condition.  Mendlovic & Matias (2025, PAPERS.md) characterise
// deadlock-free routing through an escape property: a configuration can
// wedge iff there is a non-empty set S of channels in which every channel's
// permitted continuations all lead back into S — no member of S can ever
// drain.  For a fixed routing relation this is the greatest fixed point of
// the "keep channels with a non-drainable successor" operator, and the
// routing is deadlock-free iff that fixed point is empty.  We compute it by
// Kahn-style peeling: repeatedly remove channels whose out-degree in the
// dependency graph (restricted to not-yet-removed channels) is zero — such
// a channel can always drain.  The residual set after peeling converges is
// exactly the greatest fixed point; on a finite graph it is empty iff the
// graph is acyclic, so the verdict provably agrees with Dally & Seitz
// acyclicity while sharing no code or traversal order with the DFS.
//
// The oracle audits three independent layers, each optional beyond the
// first:
//   1. Rule check — peel the permission CDG restricted to alive channels.
//      Residual non-empty => the published turn rule itself can wedge.
//   2. State check — peel the occupancy graph of a running network: hold
//      edges (worm occupies channel A and extends onto channel B) plus
//      request edges (blocked header on A waiting for a fully-owned
//      channel B).  This is what the mid-reconfiguration quarantine state
//      is audited with: survivors routed under the *old* rule coexist with
//      the frozen fabric, and a residual here is an actual wedged worm set
//      regardless of what any rule says.  Note the state check deliberately
//      does NOT union old-epoch hold edges with new-rule permission edges:
//      a fully-routed survivor drains unconditionally, so that union would
//      manufacture false cycles.
//   3. Table cross-check — every candidate row must satisfy the turn rule
//      and the steps law (steps(dst, out) + 1 == steps(dst, in)); the deep
//      variant re-derives all-pairs distances by *forward* BFS over the
//      channel graph (the table builds them by reverse BFS) and compares.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "routing/routing_table.hpp"

namespace downup::verify {

using routing::ChannelId;
using routing::NodeId;

/// One directed occupancy edge between channels (holds and requests share
/// the shape; the oracle treats both as "from cannot drain before to").
struct OccupancyEdge {
  ChannelId from = 0;
  ChannelId to = 0;
};

struct OracleInput {
  /// The turn rule to audit (required).
  const routing::TurnPermissions* perms = nullptr;
  /// Optional channel liveness, one byte per channel (empty = all alive).
  /// Dead channels are excluded from every layer.
  std::span<const std::uint8_t> channelAlive = {};
  /// Optional occupancy overlay for the state check: hold edges are
  /// committed worm extensions, request edges point at fully-owned targets.
  std::span<const OccupancyEdge> holdEdges = {};
  std::span<const OccupancyEdge> requestEdges = {};
  /// Optional routing table for the candidate cross-check.  Must have been
  /// built against a rule equivalent to `perms` on the same topology.
  const routing::RoutingTable* table = nullptr;
  /// Re-derive all-pairs distances by forward BFS and compare against the
  /// table (O(nodes x channels); only meaningful when `table` is set).
  bool deepDistanceCheck = false;
};

struct OracleReport {
  // Layer 1: rule check.
  bool ruleDeadlockFree = false;
  std::uint32_t aliveChannels = 0;
  std::uint64_t ruleEdges = 0;
  /// Channels never peeled — the greatest fixed point.  0 iff deadlock-free.
  std::uint32_t ruleResidual = 0;
  /// A witness cycle inside the residual core (empty when deadlock-free):
  /// c0 -> c1 -> ... -> c0, first element not repeated.
  std::vector<ChannelId> ruleCycle;

  // Layer 2: state check (trivially true when no occupancy edges given).
  bool stateDrains = true;
  std::uint32_t stateResidual = 0;
  std::vector<ChannelId> stateCycle;
  /// Hold edges the current rule would not permit — worms committed under
  /// an older epoch's rule.  Informational: such worms still drain.
  std::uint64_t crossEpochHolds = 0;

  // Layer 3: table cross-check (trivially true when no table given).
  bool tableConsistent = true;
  /// Candidate-row entries violating the turn rule or the steps law.
  std::uint64_t candidateViolations = 0;
  /// Pairs where the forward-BFS distance disagrees with the table.
  std::uint64_t distanceMismatches = 0;

  bool ok() const noexcept {
    return ruleDeadlockFree && stateDrains && tableConsistent;
  }
  /// One-line human summary ("ok" or the failing layers).
  std::string describe() const;
};

/// Runs every layer the input enables.  Pure: no RNG, no global state, no
/// mutation of the audited structures.
OracleReport runOracle(const OracleInput& input);

}  // namespace downup::verify
