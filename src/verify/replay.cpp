#include "verify/replay.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "routing/direction.hpp"
#include "topology/topology.hpp"
#include "util/jsonl.hpp"

namespace downup::verify {

using routing::Dir;
using routing::kDirCount;
using routing::TurnPermissions;
using routing::TurnSet;
using topo::Topology;
using util::JsonlField;

namespace {

void writeEscaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void writeCycle(std::ostream& out, const char* key,
                std::span<const ChannelId> cycle) {
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    out << "{\"k\":\"" << key << "\",\"i\":" << i << ",\"c\":" << cycle[i]
        << "}\n";
  }
}

[[noreturn]] void fail(std::string_view source, std::size_t lineNo,
                       const std::string& message) {
  throw std::runtime_error("oracle case: " + std::string(source) + ":" +
                           std::to_string(lineNo) + ": " + message);
}

std::uint64_t asUnsigned(const JsonlField& f, std::uint64_t max,
                         std::string_view source, std::size_t lineNo) {
  if (f.intValue < 0 || static_cast<std::uint64_t>(f.intValue) > max) {
    fail(source, lineNo, "field \"" + f.key + "\" out of range");
  }
  return static_cast<std::uint64_t>(f.intValue);
}

}  // namespace

void writeReplayCase(std::ostream& out, const OracleInput& input,
                     const OracleReport& report, const CaseContext& context) {
  const TurnPermissions& perms = *input.perms;
  const Topology& topo = perms.topology();
  out << "{\"schema\":\"oracle_case/1\",\"point\":";
  writeEscaped(out, context.point);
  out << ",\"cycle\":" << context.cycle << ",\"epoch\":" << context.epoch
      << ",\"nodes\":" << topo.nodeCount() << ",\"links\":" << topo.linkCount()
      << ",\"ruleDeadlockFree\":" << (report.ruleDeadlockFree ? "true" : "false")
      << ",\"stateDrains\":" << (report.stateDrains ? "true" : "false")
      << ",\"tableConsistent\":" << (report.tableConsistent ? "true" : "false")
      << "}\n";
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    out << "{\"k\":\"link\",\"id\":" << l << ",\"a\":" << a << ",\"b\":" << b
        << "}\n";
  }
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    out << "{\"k\":\"dir\",\"c\":" << c
        << ",\"d\":" << routing::index(perms.dir(c)) << "}\n";
  }
  for (const auto& [d1, d2] : perms.global().prohibitedList()) {
    out << "{\"k\":\"prohibit\",\"from\":" << routing::index(d1)
        << ",\"to\":" << routing::index(d2) << "}\n";
  }
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    for (std::size_t i = 0; i < kDirCount; ++i) {
      for (std::size_t j = 0; j < kDirCount; ++j) {
        const Dir d1 = static_cast<Dir>(i);
        const Dir d2 = static_cast<Dir>(j);
        if (perms.isReleasedAt(v, d1, d2)) {
          out << "{\"k\":\"release\",\"node\":" << v << ",\"from\":" << i
              << ",\"to\":" << j << "}\n";
        }
        if (perms.isBlockedAt(v, d1, d2)) {
          out << "{\"k\":\"block\",\"node\":" << v << ",\"from\":" << i
              << ",\"to\":" << j << "}\n";
        }
      }
    }
  }
  if (!input.channelAlive.empty()) {
    for (ChannelId c = 0; c < topo.channelCount(); ++c) {
      if (input.channelAlive[c] == 0) {
        out << "{\"k\":\"dead\",\"c\":" << c << "}\n";
      }
    }
  }
  for (const OccupancyEdge& e : input.holdEdges) {
    out << "{\"k\":\"hold\",\"from\":" << e.from << ",\"to\":" << e.to << "}\n";
  }
  for (const OccupancyEdge& e : input.requestEdges) {
    out << "{\"k\":\"request\",\"from\":" << e.from << ",\"to\":" << e.to
        << "}\n";
  }
  writeCycle(out, "rule_cycle", report.ruleCycle);
  writeCycle(out, "state_cycle", report.stateCycle);
  writeCycle(out, "waitfor", context.waitForWitness);
}

OracleInput ReplayCase::input() const {
  OracleInput in;
  in.perms = perms.get();
  if (!channelAlive.empty()) in.channelAlive = channelAlive;
  in.holdEdges = holdEdges;
  in.requestEdges = requestEdges;
  return in;
}

ReplayCase loadReplayCase(std::istream& in, std::string_view source) {
  ReplayCase rc;
  std::string line;
  std::size_t lineNo = 0;

  if (!std::getline(in, line)) fail(source, 1, "empty file");
  ++lineNo;
  const auto meta = util::parseJsonlLine(line, source, lineNo);
  const auto& schema = util::requireField(meta, "schema",
                                          JsonlField::Kind::kString, source,
                                          lineNo);
  if (schema.stringValue != "oracle_case/1") {
    fail(source, lineNo, "unsupported schema \"" + schema.stringValue + "\"");
  }
  rc.context.point = util::requireField(meta, "point",
                                        JsonlField::Kind::kString, source,
                                        lineNo)
                         .stringValue;
  rc.context.cycle =
      asUnsigned(util::requireField(meta, "cycle", JsonlField::Kind::kInt,
                                    source, lineNo),
                 std::numeric_limits<std::int64_t>::max(), source, lineNo);
  rc.context.epoch =
      asUnsigned(util::requireField(meta, "epoch", JsonlField::Kind::kInt,
                                    source, lineNo),
                 std::numeric_limits<std::int64_t>::max(), source, lineNo);
  const std::uint64_t nodes =
      asUnsigned(util::requireField(meta, "nodes", JsonlField::Kind::kInt,
                                    source, lineNo),
                 1u << 24, source, lineNo);
  const std::uint64_t links =
      asUnsigned(util::requireField(meta, "links", JsonlField::Kind::kInt,
                                    source, lineNo),
                 1u << 26, source, lineNo);
  rc.expectedRuleDeadlockFree =
      util::requireField(meta, "ruleDeadlockFree", JsonlField::Kind::kBool,
                         source, lineNo)
          .intValue != 0;
  rc.expectedStateDrains =
      util::requireField(meta, "stateDrains", JsonlField::Kind::kBool, source,
                         lineNo)
          .intValue != 0;

  rc.topology = std::make_unique<Topology>(static_cast<NodeId>(nodes));
  const std::uint64_t channels = 2 * links;
  routing::DirectionMap dirs(channels, Dir::kRdTree);
  std::vector<std::uint8_t> dirSeen(channels, 0);
  TurnSet global = TurnSet::allAllowed();
  struct NodeTurn {
    NodeId node;
    Dir from, to;
  };
  std::vector<NodeTurn> releases;
  std::vector<NodeTurn> blocks;
  rc.channelAlive.clear();

  const auto channelField = [&](const std::vector<JsonlField>& fields,
                                std::string_view key, std::size_t no) {
    return static_cast<ChannelId>(asUnsigned(
        util::requireField(fields, key, JsonlField::Kind::kInt, source, no),
        channels == 0 ? 0 : channels - 1, source, no));
  };
  const auto dirField = [&](const std::vector<JsonlField>& fields,
                            std::string_view key, std::size_t no) {
    return static_cast<Dir>(asUnsigned(
        util::requireField(fields, key, JsonlField::Kind::kInt, source, no),
        kDirCount - 1, source, no));
  };

  while (std::getline(in, line)) {
    ++lineNo;
    const auto fields = util::parseJsonlLine(line, source, lineNo);
    const std::string& k =
        util::requireField(fields, "k", JsonlField::Kind::kString, source,
                           lineNo)
            .stringValue;
    if (k == "link") {
      const std::uint64_t id = asUnsigned(
          util::requireField(fields, "id", JsonlField::Kind::kInt, source,
                             lineNo),
          links == 0 ? 0 : links - 1, source, lineNo);
      if (id != rc.topology->linkCount()) {
        fail(source, lineNo, "link records must appear in id order");
      }
      const auto a = static_cast<NodeId>(asUnsigned(
          util::requireField(fields, "a", JsonlField::Kind::kInt, source,
                             lineNo),
          nodes == 0 ? 0 : nodes - 1, source, lineNo));
      const auto b = static_cast<NodeId>(asUnsigned(
          util::requireField(fields, "b", JsonlField::Kind::kInt, source,
                             lineNo),
          nodes == 0 ? 0 : nodes - 1, source, lineNo));
      try {
        rc.topology->addLink(a, b);
      } catch (const std::invalid_argument& e) {
        fail(source, lineNo, e.what());
      }
    } else if (k == "dir") {
      const ChannelId c = channelField(fields, "c", lineNo);
      dirs[c] = dirField(fields, "d", lineNo);
      dirSeen[c] = 1;
    } else if (k == "prohibit") {
      global.prohibit(dirField(fields, "from", lineNo),
                      dirField(fields, "to", lineNo));
    } else if (k == "release" || k == "block") {
      NodeTurn t;
      t.node = static_cast<NodeId>(asUnsigned(
          util::requireField(fields, "node", JsonlField::Kind::kInt, source,
                             lineNo),
          nodes == 0 ? 0 : nodes - 1, source, lineNo));
      t.from = dirField(fields, "from", lineNo);
      t.to = dirField(fields, "to", lineNo);
      (k == "release" ? releases : blocks).push_back(t);
    } else if (k == "dead") {
      if (rc.channelAlive.empty()) rc.channelAlive.assign(channels, 1);
      rc.channelAlive[channelField(fields, "c", lineNo)] = 0;
    } else if (k == "hold" || k == "request") {
      OccupancyEdge e;
      e.from = channelField(fields, "from", lineNo);
      e.to = channelField(fields, "to", lineNo);
      (k == "hold" ? rc.holdEdges : rc.requestEdges).push_back(e);
    } else if (k == "rule_cycle") {
      rc.recordedRuleCycle.push_back(channelField(fields, "c", lineNo));
    } else if (k == "state_cycle") {
      rc.recordedStateCycle.push_back(channelField(fields, "c", lineNo));
    } else if (k == "waitfor") {
      rc.context.waitForWitness.push_back(channelField(fields, "c", lineNo));
    } else {
      fail(source, lineNo, "unknown record kind \"" + k + "\"");
    }
  }
  if (rc.topology->linkCount() != links) {
    fail(source, lineNo,
         "truncated case: " + std::to_string(rc.topology->linkCount()) +
             " of " + std::to_string(links) + " link records present");
  }
  for (ChannelId c = 0; c < channels; ++c) {
    if (!dirSeen[c]) {
      fail(source, lineNo,
           "truncated case: no dir record for channel " + std::to_string(c));
    }
  }
  rc.perms = std::make_unique<TurnPermissions>(*rc.topology, std::move(dirs),
                                               global);
  for (const NodeTurn& t : releases) rc.perms->releaseAt(t.node, t.from, t.to);
  for (const NodeTurn& t : blocks) rc.perms->blockAt(t.node, t.from, t.to);
  return rc;
}

}  // namespace downup::verify
