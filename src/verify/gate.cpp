#include "verify/gate.hpp"

#include <fstream>
#include <optional>

#include "routing/audit.hpp"
#include "topology/topology.hpp"

namespace downup::verify {

using routing::DirectionMap;
using routing::TurnPermissions;
using routing::TurnSet;
using topo::Topology;

TurnPermissions unrestrictedCopy(const TurnPermissions& perms) {
  const Topology& topo = perms.topology();
  DirectionMap dirs(topo.channelCount());
  for (ChannelId c = 0; c < topo.channelCount(); ++c) dirs[c] = perms.dir(c);
  return TurnPermissions(topo, std::move(dirs), TurnSet::allAllowed());
}

namespace {

void buildHookTrampoline(void* ctx, const TurnPermissions& perms,
                         const routing::RoutingTable& table,
                         std::span<const std::uint64_t> channelAlive) {
  auto* gate = static_cast<OracleGate*>(ctx);
  OracleInput input;
  input.perms = &perms;
  input.table = &table;
  // The build mask is bit-packed; the oracle takes bytes.
  std::vector<std::uint8_t> alive;
  if (!channelAlive.empty()) {
    alive.resize(perms.topology().channelCount());
    for (ChannelId c = 0; c < alive.size(); ++c) {
      alive[c] = (channelAlive[c >> 6] >> (c & 63)) & 1u;
    }
    input.channelAlive = alive;
  }
  gate->audit(input, {.point = "table_build"});
}

}  // namespace

OracleGate::~OracleGate() { uninstallBuildHook(); }

void OracleGate::installBuildHook() {
  routing::setTableAuditHook(&buildHookTrampoline, this);
}

void OracleGate::uninstallBuildHook() {
  routing::setTableAuditHook(nullptr, nullptr);
}

bool OracleGate::audit(const OracleInput& input, const CaseContext& context) {
  if (!options_.enabled) return true;
  audits_.fetch_add(1, std::memory_order_relaxed);

  OracleInput effective = input;
  std::optional<TurnPermissions> planted;
  if (options_.plantViolation) {
    // Audit the corrupted rule: the table (built against the real rule) no
    // longer matches it, so keep only the rule and state layers — the point
    // of planting is to prove the cycle detector and the dump path fire.
    planted.emplace(unrestrictedCopy(*input.perms));
    effective.perms = &*planted;
    effective.table = nullptr;
  }
  if (effective.table != nullptr) {
    effective.deepDistanceCheck =
        effective.deepDistanceCheck ||
        (options_.deepDistanceCheck &&
         effective.perms->topology().channelCount() <= options_.deepMaxChannels);
  }

  const OracleReport report = runOracle(effective);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pointAudits_[context.point];
    if (!report.ok()) lastViolation_ = report;
  }
  if (report.ok()) return true;

  violations_.fetch_add(1, std::memory_order_relaxed);
  dumpCase(effective, report, context);
  return false;
}

void OracleGate::dumpCase(const OracleInput& input, const OracleReport& report,
                          const CaseContext& context) {
  if (options_.dumpPathPrefix.empty()) return;
  const std::uint64_t n = casesDumped_.fetch_add(1, std::memory_order_relaxed);
  if (n >= options_.maxDumpedCases) {
    casesDumped_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  const std::string path =
      options_.dumpPathPrefix + ".case" + std::to_string(n) + ".jsonl";
  std::ofstream out(path);
  if (!out) {
    casesDumped_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  writeReplayCase(out, input, report, context);
  std::lock_guard<std::mutex> lock(mutex_);
  lastCasePath_ = path;
}

std::uint64_t OracleGate::auditsAt(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pointAudits_.find(point);
  return it == pointAudits_.end() ? 0 : it->second;
}

std::string OracleGate::lastCasePath() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lastCasePath_;
}

OracleReport OracleGate::lastViolation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lastViolation_;
}

}  // namespace downup::verify
