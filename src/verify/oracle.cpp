#include "verify/oracle.hpp"

#include <algorithm>
#include <cstddef>

#include "topology/topology.hpp"

namespace downup::verify {

using routing::kNoPath;
using routing::TurnPermissions;
using topo::Topology;

namespace {

constexpr std::uint32_t kUnseen = static_cast<std::uint32_t>(-1);

bool aliveChannel(std::span<const std::uint8_t> mask, ChannelId c) {
  return mask.empty() || mask[c] != 0;
}

/// Peels vertices of out-degree zero until convergence and reports the
/// residual (the greatest fixed point of "has a non-drainable successor").
/// `adjacency` is CSR over the vertex universe [0, n); `inCore` receives
/// one byte per vertex.  Returns the residual size.
struct PeelGraph {
  std::vector<std::uint32_t> offsets;  // n + 1
  std::vector<ChannelId> targets;
  std::vector<std::uint8_t> member;  // vertex participates at all
};

std::uint32_t peelResidual(const PeelGraph& g, std::vector<std::uint8_t>& inCore) {
  const std::size_t n = g.member.size();
  std::vector<std::uint32_t> outdeg(n, 0);
  // Reverse adjacency, counting-sort style.
  std::vector<std::uint32_t> rOffsets(n + 1, 0);
  for (const ChannelId t : g.targets) ++rOffsets[t + 1];
  for (std::size_t v = 0; v < n; ++v) rOffsets[v + 1] += rOffsets[v];
  std::vector<ChannelId> rSources(g.targets.size());
  {
    std::vector<std::uint32_t> cursor(rOffsets.begin(), rOffsets.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        rSources[cursor[g.targets[e]]++] = static_cast<ChannelId>(v);
      }
    }
  }
  std::vector<ChannelId> worklist;
  std::uint32_t live = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!g.member[v]) continue;
    ++live;
    outdeg[v] = g.offsets[v + 1] - g.offsets[v];
    if (outdeg[v] == 0) worklist.push_back(static_cast<ChannelId>(v));
  }
  std::uint32_t peeled = 0;
  while (!worklist.empty()) {
    const ChannelId v = worklist.back();
    worklist.pop_back();
    ++peeled;
    for (std::uint32_t e = rOffsets[v]; e < rOffsets[v + 1]; ++e) {
      const ChannelId p = rSources[e];
      if (--outdeg[p] == 0) worklist.push_back(p);
    }
  }
  inCore.assign(n, 0);
  if (peeled == live) return 0;
  for (std::size_t v = 0; v < n; ++v) {
    inCore[v] = g.member[v] && outdeg[v] > 0;
  }
  return live - peeled;
}

/// Walks successor edges inside the residual core until a vertex repeats;
/// the suffix from its first visit is a genuine cycle (every core vertex
/// keeps at least one successor in the core, so the walk never stalls).
std::vector<ChannelId> extractCoreCycle(const PeelGraph& g,
                                        const std::vector<std::uint8_t>& inCore) {
  const std::size_t n = inCore.size();
  ChannelId start = kUnseen;
  for (std::size_t v = 0; v < n; ++v) {
    if (inCore[v]) {
      start = static_cast<ChannelId>(v);
      break;
    }
  }
  if (start == kUnseen) return {};
  std::vector<std::uint32_t> walkIndex(n, kUnseen);
  std::vector<ChannelId> walk;
  ChannelId cur = start;
  while (walkIndex[cur] == kUnseen) {
    walkIndex[cur] = static_cast<std::uint32_t>(walk.size());
    walk.push_back(cur);
    ChannelId next = kUnseen;
    for (std::uint32_t e = g.offsets[cur]; e < g.offsets[cur + 1]; ++e) {
      if (inCore[g.targets[e]]) {
        next = g.targets[e];
        break;
      }
    }
    if (next == kUnseen) return {};  // unreachable for a true residual
    cur = next;
  }
  return {walk.begin() + walkIndex[cur], walk.end()};
}

/// CSR of the permission CDG restricted to alive channels: edge c -> c'
/// when dst(c) may forward a packet from c onto c'.
PeelGraph buildRuleGraph(const TurnPermissions& perms,
                         std::span<const std::uint8_t> alive) {
  const Topology& topo = perms.topology();
  const std::uint32_t channels = topo.channelCount();
  PeelGraph g;
  g.member.assign(channels, 0);
  g.offsets.assign(channels + 1, 0);
  for (ChannelId c = 0; c < channels; ++c) {
    if (!aliveChannel(alive, c)) continue;
    g.member[c] = 1;
    const topo::NodeId via = topo.channelDst(c);
    for (const ChannelId out : topo.outputChannels(via)) {
      if (aliveChannel(alive, out) && perms.allowed(via, c, out)) {
        ++g.offsets[c + 1];
      }
    }
  }
  for (ChannelId c = 0; c < channels; ++c) g.offsets[c + 1] += g.offsets[c];
  g.targets.resize(g.offsets[channels]);
  {
    std::vector<std::uint32_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
    for (ChannelId c = 0; c < channels; ++c) {
      if (!g.member[c]) continue;
      const topo::NodeId via = topo.channelDst(c);
      for (const ChannelId out : topo.outputChannels(via)) {
        if (aliveChannel(alive, out) && perms.allowed(via, c, out)) {
          g.targets[cursor[c]++] = out;
        }
      }
    }
  }
  return g;
}

/// CSR of the occupancy graph: hold and request edges over the channels
/// they touch.  Edges touching dead channels are dropped (their worms were
/// quarantined) and vertices never touched stay out of the peel universe.
PeelGraph buildStateGraph(std::uint32_t channels,
                          std::span<const std::uint8_t> alive,
                          std::span<const OccupancyEdge> holds,
                          std::span<const OccupancyEdge> requests) {
  PeelGraph g;
  g.member.assign(channels, 0);
  g.offsets.assign(channels + 1, 0);
  const auto keep = [&](const OccupancyEdge& e) {
    return e.from < channels && e.to < channels &&
           aliveChannel(alive, e.from) && aliveChannel(alive, e.to);
  };
  for (const auto edges : {holds, requests}) {
    for (const OccupancyEdge& e : edges) {
      if (!keep(e)) continue;
      g.member[e.from] = 1;
      g.member[e.to] = 1;
      ++g.offsets[e.from + 1];
    }
  }
  for (ChannelId c = 0; c < channels; ++c) g.offsets[c + 1] += g.offsets[c];
  g.targets.resize(g.offsets[channels]);
  {
    std::vector<std::uint32_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
    for (const auto edges : {holds, requests}) {
      for (const OccupancyEdge& e : edges) {
        if (keep(e)) g.targets[cursor[e.from]++] = e.to;
      }
    }
  }
  return g;
}

/// Candidate-row audit: every first/next row must contain exactly the
/// outputs the turn rule and the steps law admit.  Counts discrepancies in
/// either direction (illegal entry present, legal entry omitted).
std::uint64_t auditCandidates(const routing::RoutingTable& table,
                              const TurnPermissions& perms,
                              std::span<const std::uint8_t> alive) {
  const Topology& topo = perms.topology();
  const NodeId n = topo.nodeCount();
  const std::uint32_t channels = topo.channelCount();
  std::uint64_t violations = 0;
  std::vector<ChannelId> expected;
  const auto mismatch = [&](std::span<const ChannelId> got) {
    if (got.size() != expected.size()) return true;
    return !std::equal(got.begin(), got.end(), expected.begin());
  };
  for (NodeId dst = 0; dst < n; ++dst) {
    for (NodeId src = 0; src < n; ++src) {
      expected.clear();
      if (src != dst) {
        // Injection has no in-channel constraint: every alive output that
        // starts a minimal legal path is a candidate.
        std::uint16_t best = kNoPath;
        for (const ChannelId o : topo.outputChannels(src)) {
          if (!aliveChannel(alive, o)) continue;
          best = std::min(best, table.channelSteps(dst, o));
        }
        if (best != kNoPath) {
          for (const ChannelId o : topo.outputChannels(src)) {
            if (aliveChannel(alive, o) && table.channelSteps(dst, o) == best) {
              expected.push_back(o);
            }
          }
          if (table.distance(src, dst) != best) ++violations;
        } else if (table.distance(src, dst) != kNoPath) {
          ++violations;
        }
      }
      if (mismatch(table.firstChannels(src, dst))) ++violations;
    }
    for (ChannelId c = 0; c < channels; ++c) {
      expected.clear();
      const std::uint16_t steps = table.channelSteps(dst, c);
      const NodeId via = topo.channelDst(c);
      if (aliveChannel(alive, c) && steps != kNoPath && steps > 1 &&
          via != dst) {
        for (const ChannelId o : topo.outputChannels(via)) {
          if (aliveChannel(alive, o) && perms.allowed(via, c, o) &&
              table.channelSteps(dst, o) + 1 == steps) {
            expected.push_back(o);
          }
        }
      }
      if (mismatch(table.nextChannels(c, dst))) ++violations;
    }
  }
  return violations;
}

/// Forward BFS over the channel graph from every source; the table builds
/// its distances by reverse BFS per destination, so agreement here is an
/// independent derivation, not a replay.
std::uint64_t auditDistances(const routing::RoutingTable& table,
                             const TurnPermissions& perms,
                             std::span<const std::uint8_t> alive) {
  const Topology& topo = perms.topology();
  const NodeId n = topo.nodeCount();
  const std::uint32_t channels = topo.channelCount();
  std::uint64_t mismatches = 0;
  std::vector<std::uint16_t> depth(channels);
  std::vector<std::uint16_t> nodeDist(n);
  std::vector<ChannelId> queue;
  for (NodeId src = 0; src < n; ++src) {
    std::fill(depth.begin(), depth.end(), kNoPath);
    std::fill(nodeDist.begin(), nodeDist.end(), kNoPath);
    nodeDist[src] = 0;
    queue.clear();
    for (const ChannelId o : topo.outputChannels(src)) {
      if (!aliveChannel(alive, o)) continue;
      depth[o] = 1;
      queue.push_back(o);
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const ChannelId c = queue[head];
      const NodeId via = topo.channelDst(c);
      nodeDist[via] = std::min(nodeDist[via], depth[c]);
      for (const ChannelId o : topo.outputChannels(via)) {
        if (depth[o] != kNoPath) continue;
        if (!aliveChannel(alive, o)) continue;
        if (!perms.allowed(via, c, o)) continue;
        depth[o] = static_cast<std::uint16_t>(depth[c] + 1);
        queue.push_back(o);
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (table.distance(src, dst) != nodeDist[dst]) ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

OracleReport runOracle(const OracleInput& input) {
  OracleReport report;
  const TurnPermissions& perms = *input.perms;
  const std::uint32_t channels = perms.topology().channelCount();

  // Layer 1: rule check.
  const PeelGraph rule = buildRuleGraph(perms, input.channelAlive);
  report.ruleEdges = rule.targets.size();
  for (ChannelId c = 0; c < channels; ++c) report.aliveChannels += rule.member[c];
  std::vector<std::uint8_t> core;
  report.ruleResidual = peelResidual(rule, core);
  report.ruleDeadlockFree = report.ruleResidual == 0;
  if (!report.ruleDeadlockFree) report.ruleCycle = extractCoreCycle(rule, core);

  // Layer 2: state check.
  if (!input.holdEdges.empty() || !input.requestEdges.empty()) {
    const PeelGraph state = buildStateGraph(channels, input.channelAlive,
                                            input.holdEdges, input.requestEdges);
    report.stateResidual = peelResidual(state, core);
    report.stateDrains = report.stateResidual == 0;
    if (!report.stateDrains) report.stateCycle = extractCoreCycle(state, core);
    const Topology& topo = perms.topology();
    for (const OccupancyEdge& e : input.holdEdges) {
      if (e.from >= channels || e.to >= channels) continue;
      const NodeId via = topo.channelDst(e.from);
      if (topo.channelSrc(e.to) != via || !perms.allowed(via, e.from, e.to)) {
        ++report.crossEpochHolds;
      }
    }
  }

  // Layer 3: table cross-check.
  if (input.table != nullptr) {
    report.candidateViolations =
        auditCandidates(*input.table, perms, input.channelAlive);
    if (input.deepDistanceCheck) {
      report.distanceMismatches =
          auditDistances(*input.table, perms, input.channelAlive);
    }
    report.tableConsistent =
        report.candidateViolations == 0 && report.distanceMismatches == 0;
  }
  return report;
}

std::string OracleReport::describe() const {
  if (ok()) return "ok";
  std::string out = "VIOLATION:";
  if (!ruleDeadlockFree) {
    out += " rule residual=" + std::to_string(ruleResidual) +
           " cycle=" + std::to_string(ruleCycle.size());
  }
  if (!stateDrains) {
    out += " state residual=" + std::to_string(stateResidual) +
           " cycle=" + std::to_string(stateCycle.size());
  }
  if (!tableConsistent) {
    out += " table candidates=" + std::to_string(candidateViolations) +
           " distances=" + std::to_string(distanceMismatches);
  }
  return out;
}

}  // namespace downup::verify
