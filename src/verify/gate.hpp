// OracleGate: the opt-in enforcement wrapper around runOracle().
//
// One gate instance is shared by every audit point in a process — the
// RoutingTable::build hook, the Reconfigurator's merge results, every
// FabricManager epoch publish and the simulator's mid-reconfiguration
// snapshots.  The gate serialises audits behind a mutex (table builds can
// run concurrently inside sweeps), counts verdicts per audit point, and on
// a violation dumps a replayable oracle_case/1 JSONL witness
// (verify/replay.hpp).  It never mutates the audited structures, draws no
// RNG and never blocks a publish: enforcement is the caller's job (benches
// exit nonzero, the fabric records a kOracleViolation anomaly), so
// driven-mode determinism is preserved even under a failing gate.
//
// `plantViolation` is the built-in fault injection: instead of the real
// rule the gate audits an unrestricted copy (every turn allowed, blocks
// dropped) which has a cyclic dependency graph on any topology containing
// an undirected cycle.  CI uses it to prove the gate actually fires.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "verify/replay.hpp"

namespace downup::verify {

/// A copy of `perms` with every turn allowed and every per-node block
/// dropped (releases become irrelevant).  On any topology with an
/// undirected cycle the result has a cyclic CDG — a genuine planted
/// violation with a real witness, not a synthetic report.
routing::TurnPermissions unrestrictedCopy(const routing::TurnPermissions& perms);

class OracleGate {
 public:
  struct Options {
    bool enabled = true;
    /// Run the forward-BFS distance cross-check when a table is supplied
    /// and the topology has at most `deepMaxChannels` channels (the check
    /// is O(nodes x channels)).
    bool deepDistanceCheck = true;
    std::uint32_t deepMaxChannels = 8192;
    /// When non-empty, violations dump to `<prefix>.case<N>.jsonl`.
    std::string dumpPathPrefix;
    std::uint32_t maxDumpedCases = 8;
    /// Fault injection: audit an unrestricted copy of each rule instead of
    /// the rule itself (see unrestrictedCopy).
    bool plantViolation = false;
  };

  explicit OracleGate(Options options) : options_(std::move(options)) {}
  OracleGate() : OracleGate(Options{}) {}

  OracleGate(const OracleGate&) = delete;
  OracleGate& operator=(const OracleGate&) = delete;
  ~OracleGate();

  /// Audits one snapshot; true = clean.  Thread-safe; read-only on the
  /// audited structures; disabled gates return true without running.
  bool audit(const OracleInput& input, const CaseContext& context);

  /// Installs this gate as the global RoutingTable::build audit hook
  /// (routing/audit.hpp); every table construction in the process is then
  /// audited at point "table_build".  The destructor uninstalls.
  void installBuildHook();
  static void uninstallBuildHook();

  bool enabled() const noexcept { return options_.enabled; }
  std::uint64_t audits() const noexcept {
    return audits_.load(std::memory_order_relaxed);
  }
  std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }
  std::uint64_t casesDumped() const noexcept {
    return casesDumped_.load(std::memory_order_relaxed);
  }
  /// Audits observed at one audit point ("table_build", "epoch_publish",
  /// "mid_reconfig_quarantine", ...).
  std::uint64_t auditsAt(std::string_view point) const;
  std::string lastCasePath() const;
  /// The last violating report (empty-default when none).
  OracleReport lastViolation() const;

 private:
  void dumpCase(const OracleInput& input, const OracleReport& report,
                const CaseContext& context);

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> pointAudits_;
  std::string lastCasePath_;
  OracleReport lastViolation_;
  std::atomic<std::uint64_t> audits_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> casesDumped_{0};
};

}  // namespace downup::verify
