// A small fixed-size thread pool used to parallelise embarrassingly-parallel
// experiment work (independent simulation runs).  The simulator itself is
// single-threaded and deterministic; parallelism lives only at the
// run-per-task granularity, so results are identical at any pool width.
//
// Two layers of fan-out are supported: parallelFor() uses a work-sharing
// group in which the *calling* thread also executes items, so it is safe to
// call from inside a pool task (nested fan-out — e.g. samples across the
// pool, load points within each sample).  A nested caller always drains its
// own group, so no cyclic wait between pool workers can form.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace downup::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  Do NOT call from
  /// inside a pool task (a worker waiting on the pool it runs in deadlocks);
  /// nested code should use parallelFor instead.
  void wait();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// The calling thread participates, so this may be invoked from inside a
/// pool task (nested parallelism) without risk of deadlock.  Item execution
/// order is unspecified; callers needing determinism must fold indexed
/// results in a fixed order.
void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Like the reference overload, but `pool == nullptr` (or a single-thread
/// pool) runs serially on the calling thread.
void parallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace downup::util
