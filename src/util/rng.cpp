#include "util/rng.hpp"

#ifdef __SIZEOF_INT128__
using uint128 = unsigned __int128;
#else
#error "xoshiro bounded generation requires 128-bit integer support"
#endif

namespace downup::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire 2019: unbiased bounded generation without division in the common
  // case.
  std::uint64_t x = (*this)();
  uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<uint128>(x) * static_cast<uint128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::uint32_t> randomPermutation(std::uint32_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  rng.shuffle(std::span<std::uint32_t>(perm));
  return perm;
}

}  // namespace downup::util
