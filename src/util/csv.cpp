#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace downup::util {

CsvWriter::CsvWriter(const std::string& path) : file_(path), out_(&file_) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  header(std::vector<std::string>(names.begin(), names.end()));
}

void CsvWriter::header(const std::vector<std::string>& names) {
  if (headerDone_ || rowOpen_ || rows_ > 0) {
    throw std::logic_error("CsvWriter: header must be first");
  }
  bool first = true;
  for (const auto& name : names) {
    if (!first) *out_ << ',';
    *out_ << escape(name);
    first = false;
  }
  *out_ << '\n';
  headerDone_ = true;
}

CsvWriter& CsvWriter::cell(std::string_view value) {
  rawCell(escape(value));
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  rawCell(buf);
  return *this;
}

CsvWriter& CsvWriter::cell(long long value) {
  rawCell(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::cell(unsigned long long value) {
  rawCell(std::to_string(value));
  return *this;
}

void CsvWriter::endRow() {
  *out_ << '\n';
  rowOpen_ = false;
  ++rows_;
}

void CsvWriter::rawCell(std::string_view formatted) {
  if (rowOpen_) *out_ << ',';
  *out_ << formatted;
  rowOpen_ = true;
}

std::string CsvWriter::escape(std::string_view value) {
  const bool needsQuote =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needsQuote) return std::string(value);
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace downup::util
