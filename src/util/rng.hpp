// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (topology generation, tree child
// ordering for policy M2, adaptive output selection, traffic processes) draw
// from an explicitly-seeded Rng instance so that every experiment is exactly
// replayable from its seed.  We implement xoshiro256** (Blackman & Vigna)
// seeded through SplitMix64, which is both faster and statistically stronger
// than std::mt19937 and — unlike the standard engines — has a guaranteed,
// implementation-independent output sequence.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

namespace downup::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.  Also a
/// perfectly serviceable standalone generator for cheap hashing needs.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound == 0 returns 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Uniformly chosen index into a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[below(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  /// Derives an independent child stream; useful to decorrelate subsystems
  /// (traffic vs. arbitration) that share one experiment seed.
  Rng fork() noexcept { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Returns a shuffled copy of 0..n-1.
std::vector<std::uint32_t> randomPermutation(std::uint32_t n, Rng& rng);

}  // namespace downup::util
