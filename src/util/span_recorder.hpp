// Wall-clock span tracing for the control plane (routing construction and
// the fabric rebuild pipeline).
//
// The recorder lives in util/ — the bottom layer — so that routing/, core/,
// fault/ and fabric/ can all emit spans without a dependency on obs/ (which
// itself depends on routing/).  obs/span.hpp re-exports the type under the
// obs namespace and owns the JSONL / Perfetto exporters; callers above the
// routing layer should include that header instead.
//
// Contract (mirrors the simulator observability discipline):
//   * every hook is guarded by a null check — a component handed a nullptr
//     recorder performs no clock read, no allocation, no synchronization;
//   * spans never draw RNG and never alter scheduling, so instrumented
//     builds stay bit-for-bit identical to uninstrumented ones;
//   * begin/end pairs nest per thread (ScopedSpan enforces this); spans
//     from different threads interleave freely and carry a dense per-thread
//     index for the exporters;
//   * recording is thread-safe behind one mutex — control-plane events are
//     rare (rebuilds per second, not packets per cycle), so contention is
//     not a concern and the simple structure keeps dump() trivially
//     consistent.
//
// Timestamps are steady_clock nanoseconds relative to the recorder's
// construction, so one recorder shared across threads yields one coherent
// timeline.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace downup::util {

class SpanRecorder {
 public:
  static constexpr std::uint32_t kNoParent = ~std::uint32_t{0};
  static constexpr std::size_t kMaxArgs = 4;

  /// One numeric annotation (name -> value); keys must be string literals
  /// (the recorder stores the pointer, not a copy).
  struct Arg {
    const char* key = nullptr;
    double value = 0.0;
  };

  struct Span {
    const char* name = nullptr;  // static string
    std::uint32_t parent = kNoParent;  // index into the span list
    std::uint32_t tid = 0;       // dense per-recorder thread index
    std::uint16_t depth = 0;     // root = 0
    std::uint64_t startNs = 0;   // since recorder construction
    std::uint64_t endNs = 0;     // 0 while still open
    std::array<Arg, kMaxArgs> args{};
    std::uint8_t argCount = 0;

    std::uint64_t durationNs() const noexcept {
      return endNs >= startNs ? endNs - startNs : 0;
    }
  };

  SpanRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Opens a span on the calling thread, nested under the thread's
  /// innermost open span.  `name` must be a string literal (stored by
  /// pointer).  Returns the span's index.
  std::uint32_t begin(const char* name);

  /// Closes the span `index` (must be the calling thread's innermost open
  /// span — ScopedSpan guarantees this).
  void end(std::uint32_t index);

  /// Attaches a numeric annotation to an open span (up to kMaxArgs;
  /// further args are dropped).
  void addArg(std::uint32_t index, const char* key, double value);

  /// Snapshot of every recorded span (closed or still open), in begin
  /// order.  Safe to call from any thread.
  std::vector<Span> snapshot() const;

  std::size_t size() const;

  /// Drops every recorded span (reuse across runs).  Call between runs,
  /// not while spans are open — frames still on a thread's stack would
  /// dangle into the next recording.
  void clear();

  /// Nanoseconds since the recorder's construction (the span timebase).
  std::uint64_t nowNs() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::uint32_t threadIndexLocked();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::uint32_t threadCount_ = 0;  // dense tids handed out so far
};

/// RAII span: no-op when the recorder is null, so call sites read
///   ScopedSpan span(spans, "bfs");
///   span.arg("destinations", n);
/// and cost one branch when tracing is disabled.
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder* recorder, const char* name)
      : recorder_(recorder),
        index_(recorder != nullptr ? recorder->begin(name) : 0) {}
  ~ScopedSpan() { close(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(const char* key, double value) {
    if (recorder_ != nullptr) recorder_->addArg(index_, key, value);
  }

  /// Closes the span early (idempotent).
  void close() {
    if (recorder_ != nullptr) {
      recorder_->end(index_);
      recorder_ = nullptr;
    }
  }

 private:
  SpanRecorder* recorder_;
  std::uint32_t index_;
};

}  // namespace downup::util
