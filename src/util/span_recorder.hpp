// Wall-clock span tracing for the control plane (routing construction and
// the fabric rebuild pipeline), with optional micro-architectural counter
// deltas and allocation attribution per span.
//
// The recorder lives in util/ — the bottom layer — so that routing/, core/,
// fault/ and fabric/ can all emit spans without a dependency on obs/ (which
// itself depends on routing/).  obs/span.hpp re-exports the type under the
// obs namespace and owns the JSONL / Perfetto exporters; callers above the
// routing layer should include that header instead.
//
// Contract (mirrors the simulator observability discipline):
//   * every hook is guarded by a null check — a component handed a nullptr
//     recorder performs no clock read, no allocation, no synchronization;
//   * spans never draw RNG and never alter scheduling, so instrumented
//     builds stay bit-for-bit identical to uninstrumented ones;
//   * begin/end pairs nest per thread (ScopedSpan enforces this); spans
//     from different threads interleave freely and carry a dense per-thread
//     index for the exporters;
//   * recording is thread-safe behind one mutex — control-plane events are
//     rare (rebuilds per second, not packets per cycle), so contention is
//     not a concern and the simple structure keeps dump() trivially
//     consistent.
//
// Three opt-in extensions share the substrate:
//   * attachCounters(PerfCounterGroup*): spans begun on the counter group's
//     owning thread carry counter deltas (cycles, instructions, cache and
//     branch misses — whatever subset the environment opened; see
//     util/perf_counters.hpp for the availability model).  Deltas include
//     child spans, so nesting is monotone: child <= parent per event.
//   * setAllocTracking(true): allocation count + bytes are charged to the
//     thread's INNERMOST open span (exclusive attribution — parents do not
//     include children).  Requires the binary to route the global
//     allocation functions through util::noteAllocation (the
//     util/alloc_hooks.hpp pattern the zero-allocation test binaries
//     already use); without the hooks the spans just report zero with
//     allocTracked set, never silently.  The charge path reads and writes
//     thread-locals only — no locks, no allocation — so it is reentrancy-
//     safe under the global-new override and costs one thread-local read
//     when no tracked span is open.
//   * registerAggregate()/accumulate(): per-name accumulated {ns, count,
//     counter deltas} slots for per-cycle hot paths (the engine's phase
//     profiler) where one span per occurrence would be unaffordable.
//     accumulate() is lock-free (relaxed atomics into stable slots).
//
// Timestamps are steady_clock nanoseconds relative to the recorder's
// construction, so one recorder shared across threads yields one coherent
// timeline.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "util/perf_counters.hpp"

namespace downup::util {

class SpanRecorder {
 public:
  static constexpr std::uint32_t kNoParent = ~std::uint32_t{0};
  static constexpr std::size_t kMaxArgs = 4;

  /// One numeric annotation (name -> value); keys must be string literals
  /// (the recorder stores the pointer, not a copy).
  struct Arg {
    const char* key = nullptr;
    double value = 0.0;
  };

  struct Span {
    const char* name = nullptr;  // static string
    std::uint32_t parent = kNoParent;  // index into the span list
    std::uint32_t tid = 0;       // dense per-recorder thread index
    std::uint16_t depth = 0;     // root = 0
    std::uint64_t startNs = 0;   // since recorder construction
    std::uint64_t endNs = 0;     // 0 while still open
    std::array<Arg, kMaxArgs> args{};
    std::uint8_t argCount = 0;
    /// Counter deltas over the span (children included); mask == 0 when the
    /// recorder had no counters, the group was unavailable, or the span ran
    /// on a non-counting thread — absent, never zero.
    PerfCounts counters{};
    /// Allocations charged to this span exclusively (innermost-span
    /// attribution); meaningful only when allocTracked.
    std::uint64_t allocCount = 0;
    std::uint64_t allocBytes = 0;
    bool allocTracked = false;

    std::uint64_t durationNs() const noexcept {
      return endNs >= startNs ? endNs - startNs : 0;
    }
  };

  /// Snapshot of one aggregated stage (see registerAggregate).
  struct Aggregate {
    const char* name = nullptr;
    std::uint64_t count = 0;    // occurrences accumulated
    std::uint64_t totalNs = 0;  // summed wall-clock nanoseconds
    PerfCounts counters{};      // summed counter deltas (mask = union seen)
  };

  SpanRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Opens a span on the calling thread, nested under the thread's
  /// innermost open span.  `name` must be a string literal (stored by
  /// pointer).  Returns the span's index.
  std::uint32_t begin(const char* name);

  /// Closes the span `index` (must be the calling thread's innermost open
  /// span — ScopedSpan guarantees this).
  void end(std::uint32_t index);

  /// Attaches a numeric annotation to an open span (up to kMaxArgs;
  /// further args are dropped).
  void addArg(std::uint32_t index, const char* key, double value);

  /// Attaches a counter group: spans begun on the CALLING thread (which
  /// must be the group's constructing thread for the numbers to mean
  /// anything) carry counter deltas from here on.  nullptr detaches.
  /// Attach before recording — not thread-safe against concurrent begins.
  void attachCounters(PerfCounterGroup* counters);
  const PerfCounterGroup* counters() const noexcept { return counters_; }

  /// Opts spans into allocation attribution via util::noteAllocation.
  /// Toggle before recording; spans begun while enabled mark allocTracked.
  void setAllocTracking(bool enabled) noexcept { allocTracking_ = enabled; }
  bool allocTracking() const noexcept { return allocTracking_; }

  /// Registers an aggregated stage slot (locks; call during setup, not on
  /// the hot path).  Re-registering the same name returns the same id.
  std::uint32_t registerAggregate(const char* name);

  /// Adds one occurrence of `ns` to an aggregate slot.  Lock-free; safe
  /// from any thread (relaxed atomics — totals are read after the run).
  void accumulate(std::uint32_t id, std::uint64_t ns) noexcept;

  /// Folds a counter delta into an aggregate slot (same discipline).
  void accumulateCounts(std::uint32_t id, const PerfCounts& delta) noexcept;

  /// Zeroes one aggregate slot's totals (registration survives).
  void resetAggregate(std::uint32_t id) noexcept;

  /// Snapshot of every aggregate slot in registration order.
  std::vector<Aggregate> aggregates() const;

  /// Total nanoseconds accumulated into one slot so far.
  std::uint64_t aggregateNs(std::uint32_t id) const noexcept;
  /// Occurrences accumulated into one slot so far.
  std::uint64_t aggregateCount(std::uint32_t id) const noexcept;

  /// Snapshot of every recorded span (closed or still open), in begin
  /// order.  Safe to call from any thread.
  std::vector<Span> snapshot() const;

  std::size_t size() const;

  /// Drops every recorded span and zeroes aggregate totals (registrations
  /// survive, so cached aggregate ids stay valid).  Call between runs,
  /// not while spans are open — frames still on a thread's stack would
  /// dangle into the next recording.
  void clear();

  /// Nanoseconds since the recorder's construction (the span timebase).
  std::uint64_t nowNs() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  struct AggregateSlot {
    const char* name = nullptr;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> totalNs{0};
    std::array<std::atomic<std::uint64_t>, kPerfEventCount> counters{};
    std::atomic<std::uint8_t> counterMask{0};
  };

  std::uint32_t threadIndexLocked();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::uint32_t threadCount_ = 0;  // dense tids handed out so far
  // Deque: slot addresses stay stable across registration, so accumulate()
  // needs no lock.
  std::deque<AggregateSlot> aggregates_;
  PerfCounterGroup* counters_ = nullptr;
  std::thread::id counterThread_{};
  bool allocTracking_ = false;
};

/// Allocation hook entry point: binaries that override the global
/// allocation functions (util/alloc_hooks.hpp, or a test's own counting
/// override) call this with every allocation's size.  Charges the
/// calling thread's innermost open alloc-tracking span; one thread-local
/// read and nothing else when no such span is open.  Never allocates,
/// never locks — safe to call from inside operator new.
void noteAllocation(std::size_t bytes) noexcept;

/// RAII span: no-op when the recorder is null, so call sites read
///   ScopedSpan span(spans, "bfs");
///   span.arg("destinations", n);
/// and cost one branch when tracing is disabled.
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder* recorder, const char* name)
      : recorder_(recorder),
        index_(recorder != nullptr ? recorder->begin(name) : 0) {}
  ~ScopedSpan() { close(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(const char* key, double value) {
    if (recorder_ != nullptr) recorder_->addArg(index_, key, value);
  }

  /// Closes the span early (idempotent).
  void close() {
    if (recorder_ != nullptr) {
      recorder_->end(index_);
      recorder_ = nullptr;
    }
  }

 private:
  SpanRecorder* recorder_;
  std::uint32_t index_;
};

}  // namespace downup::util
