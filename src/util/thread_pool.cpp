#include "util/thread_pool.hpp"

#include <algorithm>

namespace downup::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  taskReady_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--inFlight_ == 0) allDone_.notify_all();
    }
  }
}

void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

}  // namespace downup::util
