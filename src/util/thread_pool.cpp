#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace downup::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  taskReady_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--inFlight_ == 0) allDone_.notify_all();
    }
  }
}

namespace {

/// Shared state of one parallelFor call.  Pool workers and the calling
/// thread all pull indexes from `next`; whoever finishes the last item
/// signals `done`.  The caller drains indexes itself, so even with every
/// pool worker busy (or recursively waiting on groups of their own) the
/// group always completes — that is what makes nesting deadlock-free.
struct WorkGroup {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> finished{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::mutex mutex;
  std::condition_variable done;

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      (*fn)(i);
      if (finished.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard lock(mutex);
        done.notify_all();
      }
    }
  }
};

}  // namespace

void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || pool.threadCount() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto group = std::make_shared<WorkGroup>();
  group->n = n;
  group->fn = &fn;
  // n - 1 helpers at most: the caller is the n-th executor.
  const std::size_t helpers = std::min(pool.threadCount(), n - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool.submit([group] { group->drain(); });
  }
  group->drain();
  std::unique_lock lock(group->mutex);
  group->done.wait(lock, [&group] {
    return group->finished.load(std::memory_order_acquire) == group->n;
  });
}

void parallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->threadCount() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  parallelFor(*pool, n, fn);
}

}  // namespace downup::util
