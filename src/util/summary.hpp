// Streaming summary statistics used throughout the experiment harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace downup::util {

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStat& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Population variance (divides by n); matches the paper's "traffic load"
  /// definition, which is the standard deviation over all nodes.
  double variance() const noexcept {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  /// Sample variance (divides by n-1), for cross-sample error bars.
  double sampleVariance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double sampleStddev() const noexcept { return std::sqrt(sampleVariance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean of a span; 0 for empty input.
double mean(std::span<const double> xs) noexcept;

/// Population standard deviation of a span; 0 for empty input.
double populationStddev(std::span<const double> xs) noexcept;

/// q-quantile (0 <= q <= 1) by linear interpolation on a sorted copy.
double quantile(std::span<const double> xs, double q);

/// Bounded-memory streaming summary of a value stream: exact mean (running
/// sum in insertion order, so it reproduces mean() over the same values
/// bit-for-bit) plus quantiles.  Quantiles are *exact* — identical to
/// quantile() on the full sample — until `exactCap` values have been added;
/// beyond that the buffer collapses into a fixed-width histogram spanning
/// the observed range and quantiles are interpolated within bins (error
/// bounded by the bin width; the tracked min/max clamp the extremes).  This
/// keeps per-run memory O(exactCap + bins) regardless of how many packets a
/// measurement window delivers.
class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t exactCap = 1 << 16,
                          std::size_t bins = 4096);

  void add(double x);

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// q-quantile (0 <= q <= 1); 0 for an empty sketch.
  double quantile(double q) const;

  /// True while every added value is still held exactly.
  bool exact() const noexcept { return collapsed_.empty(); }
  /// The raw values (insertion order) while exact(); empty afterwards.
  std::span<const double> exactValues() const noexcept { return values_; }

  /// Point-in-time summary of the sketch, cheap enough to take once per
  /// measurement window (time-series snapshots).  All fields are 0 for an
  /// empty sketch.
  struct Snapshot {
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    bool operator==(const Snapshot&) const = default;
  };
  Snapshot snapshot() const;

  /// Empties the sketch for reuse (per-window accumulators) without
  /// releasing the exact-phase buffer's capacity — steady-state reuse
  /// performs no allocation while the window stays under exactCap values.
  void clear() noexcept;

  /// Folds `other` into this sketch.  The merge is exact (same result as
  /// replaying other's values) while both sides are in the exact phase and
  /// the union fits exactCap; otherwise both collapse and other's bins are
  /// re-binned by midpoint into this sketch's grid, keeping count/mean/
  /// min/max exact and quantile error bounded by the coarser bin width.
  void mergeFrom(const QuantileSketch& other);

 private:
  void collapse();
  void regrid();

  std::size_t exactCap_;
  std::size_t binCount_;
  std::vector<double> values_;      // exact phase (insertion order)
  std::vector<std::uint64_t> collapsed_;  // histogram phase (empty = exact)
  double lo_ = 0.0;
  double width_ = 1.0;
  double sum_ = 0.0;
  std::size_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); values outside clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t binCount() const noexcept { return counts_.size(); }
  std::uint64_t binValue(std::size_t i) const noexcept { return counts_[i]; }
  double binLow(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }
  std::uint64_t total() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace downup::util
