// Global allocation hooks feeding util::noteAllocation, so spans opted into
// allocation attribution (SpanRecorder::setAllocTracking) see every heap
// allocation the process makes on their thread.
//
// Include this header in exactly ONE translation unit of a BINARY (never a
// library): it replaces the global allocation functions for the whole
// program, the same single-TU pattern the zero-allocation test binaries
// already use (tests/obs/zero_overhead_test.cpp et al.).  Binaries that
// don't include it simply report zero allocations with allocTracked set —
// visible as "hooks absent", never as silent success.
//
// The hooks add one thread-local read per allocation when no tracking span
// is open (noteAllocation's fast path), and never allocate or lock
// themselves, so they are safe under reentrancy and measurably free for
// binaries that never enable tracking.
#pragma once

#include <cstdlib>
#include <new>

#include "util/span_recorder.hpp"

namespace downup::util::detail {

inline void* hookedAlloc(std::size_t size) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) noteAllocation(size);
  return p;
}

inline void* hookedAllocAligned(std::size_t size,
                                std::align_val_t align) noexcept {
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size != 0 ? size : 1) != 0) {
    return nullptr;
  }
  noteAllocation(size);
  return p;
}

}  // namespace downup::util::detail

void* operator new(std::size_t size) {
  void* p = downup::util::detail::hookedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = downup::util::detail::hookedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return downup::util::detail::hookedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return downup::util::detail::hookedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = downup::util::detail::hookedAllocAligned(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = downup::util::detail::hookedAllocAligned(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return downup::util::detail::hookedAllocAligned(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return downup::util::detail::hookedAllocAligned(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
