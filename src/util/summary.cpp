#include "util/summary.hpp"

#include <cassert>

namespace downup::util {

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double populationStddev(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

QuantileSketch::QuantileSketch(std::size_t exactCap, std::size_t bins)
    : exactCap_(std::max<std::size_t>(1, exactCap)),
      binCount_(std::max<std::size_t>(2, bins)) {}

void QuantileSketch::add(double x) {
  sum_ += x;
  ++count_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (collapsed_.empty()) {
    values_.push_back(x);
    if (values_.size() >= exactCap_) collapse();
    return;
  }
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(collapsed_.size()) - 1);
  ++collapsed_[static_cast<std::size_t>(idx)];
}

void QuantileSketch::collapse() {
  // Span the observed range with headroom above: latency-style streams only
  // grow their upper tail after warm-up, so values below lo_ are rare and
  // clamp into the first bin.
  lo_ = min_;
  const double range = std::max(max_ - min_, 1.0);
  width_ = 1.5 * range / static_cast<double>(binCount_);
  collapsed_.assign(binCount_, 0);
  for (double x : values_) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(collapsed_.size()) - 1);
    ++collapsed_[static_cast<std::size_t>(idx)];
  }
  values_.clear();
  values_.shrink_to_fit();
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (collapsed_.empty()) return util::quantile(values_, q);
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(count_ - 1);
  // Find the bin containing rank floor(pos) and interpolate inside it,
  // assuming values spread evenly across the bin.
  std::uint64_t seen = 0;
  const auto rank = static_cast<std::uint64_t>(pos);
  for (std::size_t b = 0; b < collapsed_.size(); ++b) {
    const std::uint64_t inBin = collapsed_[b];
    if (inBin == 0) continue;
    if (seen + inBin > rank) {
      const double within =
          (static_cast<double>(rank - seen) + (pos - static_cast<double>(rank))) /
          static_cast<double>(inBin);
      const double value = lo_ + width_ * (static_cast<double>(b) + within);
      return std::clamp(value, min_, max_);
    }
    seen += inBin;
  }
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

}  // namespace downup::util
