#include "util/summary.hpp"

#include <cassert>

namespace downup::util {

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double populationStddev(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

QuantileSketch::QuantileSketch(std::size_t exactCap, std::size_t bins)
    : exactCap_(std::max<std::size_t>(1, exactCap)),
      binCount_(std::max<std::size_t>(2, bins)) {}

void QuantileSketch::add(double x) {
  sum_ += x;
  ++count_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (collapsed_.empty()) {
    values_.push_back(x);
    if (values_.size() >= exactCap_) collapse();
    return;
  }
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(collapsed_.size()) - 1);
  ++collapsed_[static_cast<std::size_t>(idx)];
}

void QuantileSketch::collapse() {
  // Span the observed range with headroom above: latency-style streams only
  // grow their upper tail after warm-up, so values below lo_ are rare and
  // clamp into the first bin.
  lo_ = min_;
  const double range = std::max(max_ - min_, 1.0);
  width_ = 1.5 * range / static_cast<double>(binCount_);
  collapsed_.assign(binCount_, 0);
  for (double x : values_) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(collapsed_.size()) - 1);
    ++collapsed_[static_cast<std::size_t>(idx)];
  }
  values_.clear();
  values_.shrink_to_fit();
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (collapsed_.empty()) return util::quantile(values_, q);
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(count_ - 1);
  // Find the bin containing rank floor(pos) and interpolate inside it,
  // assuming values spread evenly across the bin.
  std::uint64_t seen = 0;
  const auto rank = static_cast<std::uint64_t>(pos);
  for (std::size_t b = 0; b < collapsed_.size(); ++b) {
    const std::uint64_t inBin = collapsed_[b];
    if (inBin == 0) continue;
    if (seen + inBin > rank) {
      const double within =
          (static_cast<double>(rank - seen) + (pos - static_cast<double>(rank))) /
          static_cast<double>(inBin);
      const double value = lo_ + width_ * (static_cast<double>(b) + within);
      return std::clamp(value, min_, max_);
    }
    seen += inBin;
  }
  return max_;
}

void QuantileSketch::regrid() {
  // Re-bins the existing histogram onto a fresh grid spanning the current
  // min_/max_ (same headroom rule as collapse); each old bin's mass moves
  // to its midpoint's new bin, so the error stays bounded by the old width.
  const std::vector<std::uint64_t> old = collapsed_;
  const double oldLo = lo_;
  const double oldWidth = width_;
  lo_ = min_;
  const double range = std::max(max_ - min_, 1.0);
  width_ = 1.5 * range / static_cast<double>(binCount_);
  collapsed_.assign(binCount_, 0);
  for (std::size_t b = 0; b < old.size(); ++b) {
    if (old[b] == 0) continue;
    const double mid = oldLo + oldWidth * (static_cast<double>(b) + 0.5);
    auto idx = static_cast<std::ptrdiff_t>((mid - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(collapsed_.size()) - 1);
    collapsed_[static_cast<std::size_t>(idx)] += old[b];
  }
}

QuantileSketch::Snapshot QuantileSketch::snapshot() const {
  Snapshot snap;
  if (count_ == 0) return snap;
  snap.count = count_;
  snap.mean = mean();
  snap.min = min_;
  snap.max = max_;
  snap.p50 = quantile(0.5);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

void QuantileSketch::clear() noexcept {
  values_.clear();  // keeps capacity: steady-state reuse allocates nothing
  collapsed_.clear();
  lo_ = 0.0;
  width_ = 1.0;
  sum_ = 0.0;
  count_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void QuantileSketch::mergeFrom(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (exact() && other.exact() &&
      values_.size() + other.values_.size() < exactCap_) {
    // Exact x exact: replay other's values; identical to having added them
    // here in the first place (mean uses the same left-to-right sum order).
    for (double x : other.values_) add(x);
    return;
  }
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  if (collapsed_.empty()) {
    collapse();  // grids over the already-updated union min_/max_
  } else if (min_ < lo_ ||
             max_ >= lo_ + width_ * static_cast<double>(binCount_)) {
    regrid();  // disjoint windows: widen the grid to span the union
  }
  const auto addWeighted = [this](double x, std::uint64_t weight) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(collapsed_.size()) - 1);
    collapsed_[static_cast<std::size_t>(idx)] += weight;
  };
  if (other.collapsed_.empty()) {
    for (double x : other.values_) addWeighted(x, 1);
  } else {
    for (std::size_t b = 0; b < other.collapsed_.size(); ++b) {
      if (other.collapsed_[b] == 0) continue;
      const double mid =
          other.lo_ + other.width_ * (static_cast<double>(b) + 0.5);
      addWeighted(std::clamp(mid, other.min_, other.max_),
                  other.collapsed_[b]);
    }
  }
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

}  // namespace downup::util
