#include "util/span_recorder.hpp"

namespace downup::util {

namespace {

/// Per-thread stack of open spans, shared across recorders (frames carry
/// the recorder they belong to).  Strict begin/end nesting per thread makes
/// a plain stack sufficient even when two recorders interleave.
struct OpenFrame {
  const SpanRecorder* recorder;
  std::uint32_t index;
  std::uint16_t depth;
};

thread_local std::vector<OpenFrame> tOpenStack;

/// Dense thread index, cached per (thread, recorder).  One cache entry per
/// thread suffices in practice (a thread talks to one recorder at a time);
/// a different recorder simply re-registers.
struct TidCache {
  const SpanRecorder* recorder = nullptr;
  std::uint32_t tid = 0;
};

thread_local TidCache tTidCache;

}  // namespace

std::uint32_t SpanRecorder::threadIndexLocked() {
  if (tTidCache.recorder != this) {
    tTidCache.recorder = this;
    tTidCache.tid = threadCount_++;
  }
  return tTidCache.tid;
}

std::uint32_t SpanRecorder::begin(const char* name) {
  const std::uint64_t start = nowNs();
  // Innermost open span of this thread *on this recorder* is the parent.
  std::uint32_t parent = kNoParent;
  std::uint16_t depth = 0;
  for (auto it = tOpenStack.rbegin(); it != tOpenStack.rend(); ++it) {
    if (it->recorder == this) {
      parent = it->index;
      depth = static_cast<std::uint16_t>(it->depth + 1);
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto index = static_cast<std::uint32_t>(spans_.size());
  Span span;
  span.name = name;
  span.parent = parent;
  span.tid = threadIndexLocked();
  span.depth = depth;
  span.startNs = start;
  spans_.push_back(span);
  tOpenStack.push_back({this, index, depth});
  return index;
}

void SpanRecorder::end(std::uint32_t index) {
  const std::uint64_t now = nowNs();
  while (!tOpenStack.empty() && tOpenStack.back().recorder == this &&
         tOpenStack.back().index != index) {
    tOpenStack.pop_back();  // defensive: drop frames a missed end() leaked
  }
  if (!tOpenStack.empty() && tOpenStack.back().recorder == this) {
    tOpenStack.pop_back();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (index < spans_.size() && spans_[index].endNs == 0) {
    spans_[index].endNs = now;
  }
}

void SpanRecorder::addArg(std::uint32_t index, const char* key, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= spans_.size()) return;
  Span& span = spans_[index];
  if (span.argCount >= kMaxArgs) return;
  span.args[span.argCount++] = {key, value};
}

std::vector<SpanRecorder::Span> SpanRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t SpanRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void SpanRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

}  // namespace downup::util
