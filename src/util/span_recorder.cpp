#include "util/span_recorder.hpp"

#include <cstring>

namespace downup::util {

namespace {

/// Per-thread stack of open spans, shared across recorders (frames carry
/// the recorder they belong to).  Strict begin/end nesting per thread makes
/// a plain stack sufficient even when two recorders interleave.
struct OpenFrame {
  const SpanRecorder* recorder;
  std::uint32_t index;
  std::uint16_t depth;
  // Counter snapshot at begin(), taken only when the span runs on the
  // recorder's counting thread (hasCounters).
  bool hasCounters = false;
  PerfCounts startCounts{};
  // Allocation attribution: charges accumulate here (no recorder mutex —
  // noteAllocation runs inside operator new) and flush into the Span at
  // end().  prevTracking restores the innermost-tracking chain on pop.
  bool tracksAlloc = false;
  std::uint64_t allocCount = 0;
  std::uint64_t allocBytes = 0;
  std::int32_t prevTracking = -1;
};

thread_local std::vector<OpenFrame> tOpenStack;

/// Index into tOpenStack of the calling thread's innermost alloc-tracking
/// frame, or -1.  Kept as a chain (OpenFrame::prevTracking) so push/pop
/// and noteAllocation are all O(1).
thread_local std::int32_t tTrackingTop = -1;

/// Dense thread index, cached per (thread, recorder).  One cache entry per
/// thread suffices in practice (a thread talks to one recorder at a time);
/// a different recorder simply re-registers.
struct TidCache {
  const SpanRecorder* recorder = nullptr;
  std::uint32_t tid = 0;
};

thread_local TidCache tTidCache;

void popFrame() noexcept {
  if (tOpenStack.back().tracksAlloc) {
    tTrackingTop = tOpenStack.back().prevTracking;
  }
  tOpenStack.pop_back();
}

}  // namespace

void noteAllocation(std::size_t bytes) noexcept {
  if (tTrackingTop < 0) return;
  OpenFrame& frame = tOpenStack[static_cast<std::size_t>(tTrackingTop)];
  frame.allocCount += 1;
  frame.allocBytes += bytes;
}

std::uint32_t SpanRecorder::threadIndexLocked() {
  if (tTidCache.recorder != this) {
    tTidCache.recorder = this;
    tTidCache.tid = threadCount_++;
  }
  return tTidCache.tid;
}

std::uint32_t SpanRecorder::begin(const char* name) {
  const std::uint64_t start = nowNs();
  // Innermost open span of this thread *on this recorder* is the parent.
  std::uint32_t parent = kNoParent;
  std::uint16_t depth = 0;
  for (auto it = tOpenStack.rbegin(); it != tOpenStack.rend(); ++it) {
    if (it->recorder == this) {
      parent = it->index;
      depth = static_cast<std::uint16_t>(it->depth + 1);
      break;
    }
  }
  OpenFrame frame{this, 0, depth};
  if (counters_ != nullptr && counters_->available() &&
      std::this_thread::get_id() == counterThread_) {
    frame.hasCounters = true;
  }
  frame.tracksAlloc = allocTracking_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    frame.index = static_cast<std::uint32_t>(spans_.size());
    Span span;
    span.name = name;
    span.parent = parent;
    span.tid = threadIndexLocked();
    span.depth = depth;
    span.startNs = start;
    span.allocTracked = frame.tracksAlloc;
    spans_.push_back(span);
  }
  // Grow the stack (may allocate — still charged to the parent frame, which
  // is correct: recorder overhead belongs to the enclosing span) before
  // linking this frame into the tracking chain and snapping counters, so
  // neither the counter baseline nor this span's own charge sees the push.
  tOpenStack.push_back(frame);
  OpenFrame& placed = tOpenStack.back();
  if (placed.tracksAlloc) {
    placed.prevTracking = tTrackingTop;
    tTrackingTop = static_cast<std::int32_t>(tOpenStack.size() - 1);
  }
  if (placed.hasCounters) placed.startCounts = counters_->read();
  return placed.index;
}

void SpanRecorder::end(std::uint32_t index) {
  const std::uint64_t now = nowNs();
  bool hasCounters = false;
  PerfCounts counterDelta;
  std::uint64_t allocCount = 0;
  std::uint64_t allocBytes = 0;
  while (!tOpenStack.empty() && tOpenStack.back().recorder == this &&
         tOpenStack.back().index != index) {
    popFrame();  // defensive: drop frames a missed end() leaked
  }
  if (!tOpenStack.empty() && tOpenStack.back().recorder == this) {
    const OpenFrame& frame = tOpenStack.back();
    if (frame.hasCounters && counters_ != nullptr) {
      counterDelta = counters_->read().deltaSince(frame.startCounts);
      hasCounters = true;
    }
    allocCount = frame.allocCount;
    allocBytes = frame.allocBytes;
    popFrame();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (index < spans_.size() && spans_[index].endNs == 0) {
    Span& span = spans_[index];
    span.endNs = now;
    if (hasCounters) span.counters = counterDelta;
    span.allocCount = allocCount;
    span.allocBytes = allocBytes;
  }
}

void SpanRecorder::addArg(std::uint32_t index, const char* key, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= spans_.size()) return;
  Span& span = spans_[index];
  if (span.argCount >= kMaxArgs) return;
  span.args[span.argCount++] = {key, value};
}

void SpanRecorder::attachCounters(PerfCounterGroup* counters) {
  counters_ = counters;
  counterThread_ =
      counters != nullptr ? std::this_thread::get_id() : std::thread::id{};
}

std::uint32_t SpanRecorder::registerAggregate(const char* name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < aggregates_.size(); ++i) {
    if (std::strcmp(aggregates_[i].name, name) == 0) {
      return static_cast<std::uint32_t>(i);
    }
  }
  aggregates_.emplace_back();
  aggregates_.back().name = name;
  return static_cast<std::uint32_t>(aggregates_.size() - 1);
}

void SpanRecorder::accumulate(std::uint32_t id, std::uint64_t ns) noexcept {
  if (id >= aggregates_.size()) return;
  AggregateSlot& slot = aggregates_[id];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.totalNs.fetch_add(ns, std::memory_order_relaxed);
}

void SpanRecorder::accumulateCounts(std::uint32_t id,
                                    const PerfCounts& delta) noexcept {
  if (id >= aggregates_.size() || delta.empty()) return;
  AggregateSlot& slot = aggregates_[id];
  for (std::size_t e = 0; e < kPerfEventCount; ++e) {
    if ((delta.mask >> e) & 1u) {
      slot.counters[e].fetch_add(delta.value[e], std::memory_order_relaxed);
    }
  }
  slot.counterMask.fetch_or(delta.mask, std::memory_order_relaxed);
}

void SpanRecorder::resetAggregate(std::uint32_t id) noexcept {
  if (id >= aggregates_.size()) return;
  AggregateSlot& slot = aggregates_[id];
  slot.count.store(0, std::memory_order_relaxed);
  slot.totalNs.store(0, std::memory_order_relaxed);
  for (auto& c : slot.counters) c.store(0, std::memory_order_relaxed);
  slot.counterMask.store(0, std::memory_order_relaxed);
}

std::vector<SpanRecorder::Aggregate> SpanRecorder::aggregates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Aggregate> out;
  out.reserve(aggregates_.size());
  for (const AggregateSlot& slot : aggregates_) {
    Aggregate agg;
    agg.name = slot.name;
    agg.count = slot.count.load(std::memory_order_relaxed);
    agg.totalNs = slot.totalNs.load(std::memory_order_relaxed);
    agg.counters.mask = slot.counterMask.load(std::memory_order_relaxed);
    for (std::size_t e = 0; e < kPerfEventCount; ++e) {
      if ((agg.counters.mask >> e) & 1u) {
        agg.counters.value[e] = slot.counters[e].load(std::memory_order_relaxed);
      }
    }
    out.push_back(agg);
  }
  return out;
}

std::uint64_t SpanRecorder::aggregateNs(std::uint32_t id) const noexcept {
  if (id >= aggregates_.size()) return 0;
  return aggregates_[id].totalNs.load(std::memory_order_relaxed);
}

std::uint64_t SpanRecorder::aggregateCount(std::uint32_t id) const noexcept {
  if (id >= aggregates_.size()) return 0;
  return aggregates_[id].count.load(std::memory_order_relaxed);
}

std::vector<SpanRecorder::Span> SpanRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t SpanRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void SpanRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  for (AggregateSlot& slot : aggregates_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.totalNs.store(0, std::memory_order_relaxed);
    for (auto& c : slot.counters) c.store(0, std::memory_order_relaxed);
    slot.counterMask.store(0, std::memory_order_relaxed);
  }
}

}  // namespace downup::util
