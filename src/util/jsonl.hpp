// Strict line-oriented JSON-object scanner for the repo's JSONL formats
// (traffic traces, oracle replay cases).
//
// Deliberately minimal: each line must be exactly one flat JSON object with
// string keys and integer, string or boolean values — no nesting, no
// floats, no duplicate keys, no trailing garbage.  Anything else fails with
// a `source:line: message` diagnostic, the same contract topo::load
// established for topology files (DESIGN.md §7): a malformed byte is an
// error at its exact location, never a silently skipped record.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace downup::util {

struct JsonlField {
  enum class Kind : std::uint8_t { kInt, kString, kBool };
  std::string key;
  Kind kind = Kind::kInt;
  std::int64_t intValue = 0;  // also holds bools (0/1)
  std::string stringValue;
};

/// Parses one JSONL line into its fields (declaration order preserved).
/// Throws std::runtime_error("jsonl: <source>:<lineNo>: <message>") on any
/// deviation: missing braces, unquoted keys, duplicate keys, non-integer
/// numbers, nested values, truncation, trailing garbage.
std::vector<JsonlField> parseJsonlLine(std::string_view line,
                                       std::string_view source,
                                       std::size_t lineNo);

/// Convenience over a parsed line: returns the field with `key` or throws
/// the same source:line diagnostic when absent or of the wrong kind.
const JsonlField& requireField(const std::vector<JsonlField>& fields,
                               std::string_view key, JsonlField::Kind kind,
                               std::string_view source, std::size_t lineNo);

/// Like requireField but returns nullptr when the key is absent (still
/// throws on a present-but-wrong-kind field).
const JsonlField* findField(const std::vector<JsonlField>& fields,
                            std::string_view key, JsonlField::Kind kind,
                            std::string_view source, std::size_t lineNo);

}  // namespace downup::util
