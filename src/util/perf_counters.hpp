// Micro-architectural performance counters via perf_event_open: task-clock,
// cycles, instructions, cache-references/misses and branch-misses for the
// calling thread, read as one consistent group snapshot.
//
// Availability is a spectrum, not a boolean — this header models it
// explicitly so consumers can never print silent zeros:
//   * full PMU access: every event opens, `eventMask()` has all bits;
//   * virtualized / PMU-less hosts (common CI containers): the hardware
//     events fail with ENOENT but the software task-clock still opens —
//     `available()` is true with a partial mask;
//   * seccomp-filtered or perf_event_paranoid-locked environments: nothing
//     opens — `available()` is false and `unavailableReason()` carries the
//     first errno string for the report.
// Consumers must check `PerfCounts::has()` per event (or the mask) before
// deriving IPC / miss rates; a missing event is *absent*, never zero.
//
// The counters are attached to the CONSTRUCTING thread (pid=0, cpu=-1) and
// count from construction; read() from any thread still observes that
// thread's counts, but attribution layers (util::SpanRecorder) only stamp
// spans begun on the counting thread.  User-space only (exclude_kernel),
// so the group opens at perf_event_paranoid <= 2.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace downup::util {

/// Counter kinds, in the fixed order used by PerfCounts::value and the
/// event mask bits.
enum class PerfEvent : std::uint8_t {
  kTaskClock = 0,   // software: on-CPU nanoseconds (opens almost anywhere)
  kCycles,          // PERF_COUNT_HW_CPU_CYCLES
  kInstructions,    // PERF_COUNT_HW_INSTRUCTIONS
  kCacheReferences, // PERF_COUNT_HW_CACHE_REFERENCES
  kCacheMisses,     // PERF_COUNT_HW_CACHE_MISSES
  kBranchMisses,    // PERF_COUNT_HW_BRANCH_MISSES
};

inline constexpr std::size_t kPerfEventCount = 6;

const char* toString(PerfEvent event) noexcept;

/// One snapshot (or delta between snapshots) of the group.  Only events
/// whose bit is set in `mask` carry a value; everything else is absent.
struct PerfCounts {
  std::array<std::uint64_t, kPerfEventCount> value{};
  std::uint8_t mask = 0;

  bool has(PerfEvent event) const noexcept {
    return (mask >> static_cast<std::uint8_t>(event)) & 1u;
  }
  std::uint64_t get(PerfEvent event) const noexcept {
    return value[static_cast<std::uint8_t>(event)];
  }
  bool empty() const noexcept { return mask == 0; }

  /// Instructions per cycle; < 0 when either event is absent.
  double ipc() const noexcept;
  /// cache-misses / cache-references in [0, 1]; < 0 when absent.
  double cacheMissRate() const noexcept;
  /// branch-misses per kilo-instruction; < 0 when absent.
  double branchMissesPerKiloInstruction() const noexcept;

  /// Delta of two snapshots of the SAME group (mask intersects; counts are
  /// monotone, so saturating subtraction only guards clock skew on the
  /// task-clock).
  PerfCounts deltaSince(const PerfCounts& earlier) const noexcept;

  /// Accumulates another delta (mask unions; used by aggregated stages).
  void accumulate(const PerfCounts& other) noexcept;
};

/// A perf_event group on the calling thread.  Construction opens whatever
/// subset of the six events the environment permits; destruction closes
/// the file descriptors.  read() is one syscall for the whole group, so
/// every snapshot is internally consistent.
class PerfCounterGroup {
 public:
  struct Options {
    /// Skip the syscalls entirely and report unavailable ("disabled by
    /// caller") — pins the fallback path in tests and honours explicit
    /// opt-outs without an #ifdef at every call site.
    bool disabled = false;
  };

  PerfCounterGroup();
  explicit PerfCounterGroup(const Options& options);
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when at least one event opened; check eventMask() for which.
  bool available() const noexcept { return mask_ != 0; }
  std::uint8_t eventMask() const noexcept { return mask_; }
  bool has(PerfEvent event) const noexcept {
    return (mask_ >> static_cast<std::uint8_t>(event)) & 1u;
  }

  /// Why the FIRST event failed to open (errno string); empty when
  /// available().  Partial groups keep the first hardware-event failure in
  /// degradedReason() so reports can say *why* IPC is missing.
  const std::string& unavailableReason() const noexcept { return reason_; }
  const std::string& degradedReason() const noexcept {
    return mask_ == 0 ? reason_ : degraded_;
  }

  /// Cumulative counts since construction (monotone).  Returns an empty
  /// PerfCounts (mask 0) when unavailable or when the group read fails.
  PerfCounts read() const noexcept;

 private:
  int groupFd_ = -1;                         // leader (first opened event)
  std::array<int, kPerfEventCount> fds_;     // -1 for unopened events
  std::array<std::uint64_t, kPerfEventCount> ids_{};  // kernel event ids
  std::uint8_t mask_ = 0;
  std::string reason_;    // first failure overall
  std::string degraded_;  // first hardware-event failure (partial groups)
};

}  // namespace downup::util
