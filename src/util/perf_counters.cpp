#include "util/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace downup::util {

const char* toString(PerfEvent event) noexcept {
  switch (event) {
    case PerfEvent::kTaskClock: return "task_clock_ns";
    case PerfEvent::kCycles: return "cycles";
    case PerfEvent::kInstructions: return "instructions";
    case PerfEvent::kCacheReferences: return "cache_references";
    case PerfEvent::kCacheMisses: return "cache_misses";
    case PerfEvent::kBranchMisses: return "branch_misses";
  }
  return "unknown";
}

double PerfCounts::ipc() const noexcept {
  if (!has(PerfEvent::kCycles) || !has(PerfEvent::kInstructions)) return -1.0;
  const std::uint64_t cycles = get(PerfEvent::kCycles);
  if (cycles == 0) return -1.0;
  return static_cast<double>(get(PerfEvent::kInstructions)) /
         static_cast<double>(cycles);
}

double PerfCounts::cacheMissRate() const noexcept {
  if (!has(PerfEvent::kCacheReferences) || !has(PerfEvent::kCacheMisses)) {
    return -1.0;
  }
  const std::uint64_t refs = get(PerfEvent::kCacheReferences);
  if (refs == 0) return -1.0;
  return static_cast<double>(get(PerfEvent::kCacheMisses)) /
         static_cast<double>(refs);
}

double PerfCounts::branchMissesPerKiloInstruction() const noexcept {
  if (!has(PerfEvent::kBranchMisses) || !has(PerfEvent::kInstructions)) {
    return -1.0;
  }
  const std::uint64_t instructions = get(PerfEvent::kInstructions);
  if (instructions == 0) return -1.0;
  return 1000.0 * static_cast<double>(get(PerfEvent::kBranchMisses)) /
         static_cast<double>(instructions);
}

PerfCounts PerfCounts::deltaSince(const PerfCounts& earlier) const noexcept {
  PerfCounts delta;
  delta.mask = static_cast<std::uint8_t>(mask & earlier.mask);
  for (std::size_t e = 0; e < kPerfEventCount; ++e) {
    if (!((delta.mask >> e) & 1u)) continue;
    delta.value[e] = value[e] >= earlier.value[e]
                         ? value[e] - earlier.value[e]
                         : 0;
  }
  return delta;
}

void PerfCounts::accumulate(const PerfCounts& other) noexcept {
  mask = static_cast<std::uint8_t>(mask | other.mask);
  for (std::size_t e = 0; e < kPerfEventCount; ++e) {
    if ((other.mask >> e) & 1u) value[e] += other.value[e];
  }
}

PerfCounterGroup::PerfCounterGroup() : PerfCounterGroup(Options{}) {}

#if defined(__linux__)

namespace {

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::array<EventSpec, kPerfEventCount> kEventSpecs = {{
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
}};

int openEvent(const EventSpec& spec, int groupFd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = spec.type;
  attr.config = spec.config;
  // User-space only: opens at perf_event_paranoid <= 2 without privileges.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  const long fd = syscall(__NR_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          groupFd, /*flags=*/0);
  return static_cast<int>(fd);
}

}  // namespace

PerfCounterGroup::PerfCounterGroup(const Options& options) {
  fds_.fill(-1);
  if (options.disabled) {
    reason_ = "disabled by caller";
    return;
  }
  for (std::size_t e = 0; e < kPerfEventCount; ++e) {
    const int fd = openEvent(kEventSpecs[e], groupFd_);
    if (fd < 0) {
      const char* error = std::strerror(errno);
      if (reason_.empty()) {
        reason_ = std::string(toString(static_cast<PerfEvent>(e))) + ": " +
                  error;
      }
      if (degraded_.empty() && kEventSpecs[e].type == PERF_TYPE_HARDWARE) {
        degraded_ = std::string(toString(static_cast<PerfEvent>(e))) + ": " +
                    error;
      }
      continue;
    }
    if (groupFd_ < 0) groupFd_ = fd;
    fds_[e] = fd;
    std::uint64_t id = 0;
    if (ioctl(fd, PERF_EVENT_IOC_ID, &id) == 0) {
      ids_[e] = id;
      mask_ = static_cast<std::uint8_t>(mask_ | (1u << e));
    } else {
      close(fd);
      fds_[e] = -1;
      if (fd == groupFd_) groupFd_ = -1;
    }
  }
  if (mask_ != 0) reason_.clear();
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

PerfCounts PerfCounterGroup::read() const noexcept {
  PerfCounts counts;
  if (groupFd_ < 0) return counts;
  // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout: nr, then {value, id} pairs.
  std::array<std::uint64_t, 1 + 2 * kPerfEventCount> buffer{};
  const ssize_t got = ::read(groupFd_, buffer.data(), sizeof buffer);
  if (got < static_cast<ssize_t>(sizeof(std::uint64_t))) return counts;
  const std::uint64_t nr = buffer[0];
  for (std::uint64_t i = 0; i < nr && i < kPerfEventCount; ++i) {
    const std::uint64_t value = buffer[1 + 2 * i];
    const std::uint64_t id = buffer[2 + 2 * i];
    for (std::size_t e = 0; e < kPerfEventCount; ++e) {
      if (fds_[e] >= 0 && ids_[e] == id) {
        counts.value[e] = value;
        counts.mask = static_cast<std::uint8_t>(counts.mask | (1u << e));
        break;
      }
    }
  }
  return counts;
}

#else  // !__linux__

PerfCounterGroup::PerfCounterGroup(const Options& options) {
  fds_.fill(-1);
  reason_ = options.disabled ? "disabled by caller"
                             : "perf_event_open: unsupported platform";
}

PerfCounterGroup::~PerfCounterGroup() = default;

PerfCounts PerfCounterGroup::read() const noexcept { return {}; }

#endif

}  // namespace downup::util
