// Minimal CSV emission for experiment results.  Values are quoted only when
// needed (comma, quote or newline present), per RFC 4180.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace downup::util {

/// Writes one CSV table to a stream the caller owns (or to a file it opens).
class CsvWriter {
 public:
  /// Writes to an external stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Emits the header row; must be called before any data row (enforced).
  void header(std::initializer_list<std::string_view> names);
  void header(const std::vector<std::string>& names);

  /// Starts a new row.  Append cells with `cell(...)`, finish with `endRow()`.
  CsvWriter& cell(std::string_view value);
  CsvWriter& cell(double value);
  CsvWriter& cell(long long value);
  CsvWriter& cell(unsigned long long value);
  CsvWriter& cell(int value) { return cell(static_cast<long long>(value)); }
  CsvWriter& cell(unsigned value) {
    return cell(static_cast<unsigned long long>(value));
  }
  CsvWriter& cell(std::size_t value) {
    return cell(static_cast<unsigned long long>(value));
  }
  void endRow();

  std::size_t rowsWritten() const noexcept { return rows_; }

 private:
  void rawCell(std::string_view formatted);
  static std::string escape(std::string_view value);

  std::ofstream file_;
  std::ostream* out_;
  bool rowOpen_ = false;
  bool headerDone_ = false;
  std::size_t rows_ = 0;
};

}  // namespace downup::util
