// A tiny declarative command-line parser for the benches and examples.
//
//   util::Cli cli("exp_fig8", "Reproduces Figure 8");
//   auto ports  = cli.option<int>("ports", 4, "switch port count");
//   auto full   = cli.flag("full", "run the paper-scale configuration");
//   cli.parse(argc, argv);              // exits(2) with usage on bad input
//   if (*full) ...
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace downup::util {

class Cli {
 public:
  Cli(std::string programName, std::string description);

  /// Registers --name <value>.  Returns a stable handle to the parsed value.
  template <typename T>
  std::shared_ptr<T> option(std::string name, T defaultValue,
                            std::string help) {
    auto slot = std::make_shared<T>(defaultValue);
    addOption(std::move(name), std::move(help), describeDefault(defaultValue),
              [slot](std::string_view text) { return parseInto(text, *slot); });
    return slot;
  }

  /// Like option(), but rejects zero and negative values (and, for the
  /// unsigned instantiations, the silent "-1" -> huge wraparound) with an
  /// error naming the constraint.  For counts: --switches, --ports, ...
  template <typename T>
  std::shared_ptr<T> positiveOption(std::string name, T defaultValue,
                                    std::string help) {
    auto slot = std::make_shared<T>(defaultValue);
    addOption(std::move(name), std::move(help), describeDefault(defaultValue),
              [slot](std::string_view text) {
                T parsed{};
                if (!parseInto(text, parsed) || parsed <= 0) return false;
                *slot = parsed;
                return true;
              },
              "must be a positive number");
    return slot;
  }

  /// Registers boolean --name (no argument).
  std::shared_ptr<bool> flag(std::string name, std::string help);

  /// Parses argv.  On error or --help, prints usage and exits.
  void parse(int argc, const char* const* argv);

  /// Parses a token vector; returns false and fills `error` on bad input
  /// instead of exiting (used by unit tests).
  bool tryParse(const std::vector<std::string>& args, std::string* error);

  std::string usage() const;

 private:
  struct Spec {
    std::string name;
    std::string help;
    std::string defaultText;
    std::string constraint;  // appended to bad-value errors when non-empty
    bool isFlag = false;
    std::function<bool(std::string_view)> apply;
  };

  void addOption(std::string name, std::string help, std::string defaultText,
                 std::function<bool(std::string_view)> apply,
                 std::string constraint = "");
  const Spec* find(std::string_view name) const;

  static bool parseInto(std::string_view text, int& out);
  static bool parseInto(std::string_view text, unsigned& out);
  static bool parseInto(std::string_view text, std::uint64_t& out);
  static bool parseInto(std::string_view text, double& out);
  static bool parseInto(std::string_view text, std::string& out);

  static std::string describeDefault(int v) { return std::to_string(v); }
  static std::string describeDefault(unsigned v) { return std::to_string(v); }
  static std::string describeDefault(std::uint64_t v) { return std::to_string(v); }
  static std::string describeDefault(double v);
  static std::string describeDefault(const std::string& v) { return v; }

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
};

}  // namespace downup::util
