#include "util/jsonl.hpp"

#include <charconv>
#include <stdexcept>

namespace downup::util {

namespace {

[[noreturn]] void fail(std::string_view source, std::size_t lineNo,
                       const std::string& message) {
  throw std::runtime_error("jsonl: " + std::string(source) + ":" +
                           std::to_string(lineNo) + ": " + message);
}

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  std::string_view source;
  std::size_t lineNo;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skipSpaces() {
    while (!done() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
  void expect(char c, const char* what) {
    skipSpaces();
    if (done() || peek() != c) {
      fail(source, lineNo,
           std::string("expected ") + what + (done() ? " but line ended"
                                                     : " at column " +
                                                           std::to_string(pos + 1)));
    }
    ++pos;
  }

  std::string parseString() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (done()) fail(source, lineNo, "unterminated string (truncated line?)");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (done()) fail(source, lineNo, "unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default:
            fail(source, lineNo,
                 std::string("unsupported escape '\\") + e + "'");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  std::int64_t parseInt() {
    skipSpaces();
    const std::size_t start = pos;
    if (!done() && peek() == '-') ++pos;
    while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      fail(source, lineNo, "expected an integer value");
    }
    if (!done() && (peek() == '.' || peek() == 'e' || peek() == 'E')) {
      fail(source, lineNo, "non-integer numbers are not allowed");
    }
    std::int64_t value = 0;
    const auto res = std::from_chars(text.data() + start, text.data() + pos, value);
    if (res.ec != std::errc{} || res.ptr != text.data() + pos) {
      fail(source, lineNo, "integer out of range");
    }
    return value;
  }

  bool tryKeyword(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }
};

}  // namespace

std::vector<JsonlField> parseJsonlLine(std::string_view line,
                                       std::string_view source,
                                       std::size_t lineNo) {
  // Tolerate a trailing carriage return (files written on Windows).
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  Cursor cur{line, 0, source, lineNo};
  cur.skipSpaces();
  if (cur.done()) fail(source, lineNo, "empty line (blank lines are not allowed)");
  cur.expect('{', "'{'");
  std::vector<JsonlField> fields;
  cur.skipSpaces();
  if (!cur.done() && cur.peek() == '}') {
    ++cur.pos;
  } else {
    while (true) {
      JsonlField field;
      field.key = cur.parseString();
      for (const JsonlField& prev : fields) {
        if (prev.key == field.key) {
          fail(source, lineNo, "duplicate key \"" + field.key + "\"");
        }
      }
      cur.expect(':', "':'");
      cur.skipSpaces();
      if (cur.done()) fail(source, lineNo, "value missing (truncated line?)");
      const char c = cur.peek();
      if (c == '"') {
        field.kind = JsonlField::Kind::kString;
        field.stringValue = cur.parseString();
      } else if (c == 't' && cur.tryKeyword("true")) {
        field.kind = JsonlField::Kind::kBool;
        field.intValue = 1;
      } else if (c == 'f' && cur.tryKeyword("false")) {
        field.kind = JsonlField::Kind::kBool;
        field.intValue = 0;
      } else if (c == '{' || c == '[') {
        fail(source, lineNo, "nested objects/arrays are not allowed");
      } else {
        field.kind = JsonlField::Kind::kInt;
        field.intValue = cur.parseInt();
      }
      fields.push_back(std::move(field));
      cur.skipSpaces();
      if (cur.done()) fail(source, lineNo, "object not closed (truncated line?)");
      if (cur.peek() == ',') {
        ++cur.pos;
        continue;
      }
      cur.expect('}', "',' or '}'");
      break;
    }
  }
  cur.skipSpaces();
  if (!cur.done()) {
    fail(source, lineNo,
         "trailing garbage after object at column " + std::to_string(cur.pos + 1));
  }
  return fields;
}

const JsonlField* findField(const std::vector<JsonlField>& fields,
                            std::string_view key, JsonlField::Kind kind,
                            std::string_view source, std::size_t lineNo) {
  for (const JsonlField& f : fields) {
    if (f.key == key) {
      if (f.kind != kind) {
        fail(source, lineNo, "field \"" + std::string(key) + "\" has the wrong type");
      }
      return &f;
    }
  }
  return nullptr;
}

const JsonlField& requireField(const std::vector<JsonlField>& fields,
                               std::string_view key, JsonlField::Kind kind,
                               std::string_view source, std::size_t lineNo) {
  const JsonlField* f = findField(fields, key, kind, source, lineNo);
  if (f == nullptr) {
    fail(source, lineNo, "missing required field \"" + std::string(key) + "\"");
  }
  return *f;
}

}  // namespace downup::util
