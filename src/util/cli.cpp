#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace downup::util {

Cli::Cli(std::string programName, std::string description)
    : program_(std::move(programName)), description_(std::move(description)) {}

std::shared_ptr<bool> Cli::flag(std::string name, std::string help) {
  auto slot = std::make_shared<bool>(false);
  Spec spec;
  spec.name = std::move(name);
  spec.help = std::move(help);
  spec.defaultText = "off";
  spec.isFlag = true;
  spec.apply = [slot](std::string_view) {
    *slot = true;
    return true;
  };
  specs_.push_back(std::move(spec));
  return slot;
}

void Cli::addOption(std::string name, std::string help, std::string defaultText,
                    std::function<bool(std::string_view)> apply,
                    std::string constraint) {
  Spec spec;
  spec.name = std::move(name);
  spec.help = std::move(help);
  spec.defaultText = std::move(defaultText);
  spec.constraint = std::move(constraint);
  spec.apply = std::move(apply);
  specs_.push_back(std::move(spec));
}

const Cli::Spec* Cli::find(std::string_view name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

void Cli::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  std::string error;
  if (!tryParse(args, &error)) {
    if (error == "help") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    std::fprintf(stderr, "%s: %s\n%s", program_.c_str(), error.c_str(),
                 usage().c_str());
    std::exit(2);
  }
}

bool Cli::tryParse(const std::vector<std::string>& args, std::string* error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string_view arg = args[i];
    if (arg == "--help" || arg == "-h") {
      if (error) *error = "help";
      return false;
    }
    if (!arg.starts_with("--")) {
      if (error) *error = "unexpected positional argument '" + args[i] + "'";
      return false;
    }
    arg.remove_prefix(2);
    std::string_view value;
    bool hasInlineValue = false;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasInlineValue = true;
    }
    const Spec* spec = find(arg);
    if (spec == nullptr) {
      if (error) *error = "unknown option --" + std::string(arg);
      return false;
    }
    if (spec->isFlag) {
      if (hasInlineValue) {
        if (error) *error = "flag --" + spec->name + " takes no value";
        return false;
      }
      spec->apply({});
      continue;
    }
    if (!hasInlineValue) {
      if (i + 1 >= args.size()) {
        if (error) *error = "option --" + spec->name + " needs a value";
        return false;
      }
      value = args[++i];
    }
    if (!spec->apply(value)) {
      if (error) {
        *error = "bad value '" + std::string(value) + "' for --" + spec->name;
        if (!spec->constraint.empty()) {
          *error += " (" + spec->constraint + ")";
        }
      }
      return false;
    }
  }
  return true;
}

std::string Cli::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& spec : specs_) {
    out << "  --" << spec.name;
    if (!spec.isFlag) out << " <value>";
    out << "\n      " << spec.help << " (default: " << spec.defaultText
        << ")\n";
  }
  return out.str();
}

namespace {
template <typename T>
bool fromChars(std::string_view text, T& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}
}  // namespace

bool Cli::parseInto(std::string_view text, int& out) { return fromChars(text, out); }
bool Cli::parseInto(std::string_view text, unsigned& out) { return fromChars(text, out); }
bool Cli::parseInto(std::string_view text, std::uint64_t& out) { return fromChars(text, out); }

bool Cli::parseInto(std::string_view text, double& out) {
  // GCC 12 libstdc++ supports from_chars for double.
  return fromChars(text, out);
}

bool Cli::parseInto(std::string_view text, std::string& out) {
  out.assign(text);
  return true;
}

std::string Cli::describeDefault(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace downup::util
