// Graphviz export of topologies, optionally annotated with a coordinated
// tree (tree links solid, cross links dashed, nodes labelled with their
// (X, Y) coordinates) — handy for eyeballing the structures the routing
// algorithms are built on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>

#include "topology/topology.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::tree {

/// Plain undirected graph.
void exportGraphviz(const topo::Topology& topo, std::ostream& out);

/// Annotated with the coordinated tree.
void exportGraphviz(const topo::Topology& topo, const CoordinatedTree& ct,
                    std::ostream& out);

/// Measurement overlay for exportGraphvizHeatmap.  Either series may be
/// empty (that dimension is simply not drawn); a non-empty series must be
/// indexed exactly like the topology — channelUtilization per directed
/// channel (link l owns channels 2l and 2l+1), nodeBlockedCycles per node.
struct HeatmapOverlay {
  std::span<const double> channelUtilization;        // flits/cycle, in [0, 1]
  std::span<const std::uint64_t> nodeBlockedCycles;  // header-blocked cycles
};

/// Tree-annotated export with congestion colouring: node fill shades
/// white -> red with blocked cycles (relative to the hottest node), edge
/// colour/penwidth scale with the busier direction of the link (relative
/// to the busiest channel).  Intended for the anti-hot-spot comparison
/// plots: render with `dot -Tsvg` / `neato -Tsvg`.
void exportGraphvizHeatmap(const topo::Topology& topo,
                           const CoordinatedTree& ct,
                           const HeatmapOverlay& overlay, std::ostream& out);

}  // namespace downup::tree
