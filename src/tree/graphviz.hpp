// Graphviz export of topologies, optionally annotated with a coordinated
// tree (tree links solid, cross links dashed, nodes labelled with their
// (X, Y) coordinates) — handy for eyeballing the structures the routing
// algorithms are built on.
#pragma once

#include <iosfwd>

#include "topology/topology.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::tree {

/// Plain undirected graph.
void exportGraphviz(const topo::Topology& topo, std::ostream& out);

/// Annotated with the coordinated tree.
void exportGraphviz(const topo::Topology& topo, const CoordinatedTree& ct,
                    std::ostream& out);

}  // namespace downup::tree
