// Depth-first-search spanning tree, used by the up*/down*-DFS baseline
// (Robles, Duato & Sancho, ISHPC 2000): DFS visit order gives the channel
// up/down labelling, which empirically spreads "up" channels away from a
// single root better than BFS labelling.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace downup::tree {

class DfsTree {
 public:
  /// DFS from `root`, visiting neighbors in ascending id order.
  /// Throws std::invalid_argument if disconnected or root out of range.
  static DfsTree build(const topo::Topology& topo, topo::NodeId root = 0);

  topo::NodeId root() const noexcept { return root_; }
  topo::NodeId parent(topo::NodeId v) const noexcept { return parent_[v]; }

  /// Position of v in DFS visit order (root == 0); unique per node.
  std::uint32_t order(topo::NodeId v) const noexcept { return order_[v]; }

 private:
  topo::NodeId root_ = 0;
  std::vector<topo::NodeId> parent_;
  std::vector<std::uint32_t> order_;
};

}  // namespace downup::tree
