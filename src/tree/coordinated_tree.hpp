// Coordinated tree (Definition 2): a BFS spanning tree whose nodes carry 2-D
// coordinates — X(v) = preorder-traversal index, Y(v) = tree level — from
// which every channel direction in the paper is derived.
//
// The paper evaluates three sibling orderings for the preorder traversal:
//   M1: smallest node id first  (the paper's proposed construction, §4.1)
//   M2: uniformly random order
//   M3: largest node id first
// BFS discovery itself always scans neighbors in ascending id order (Step 4
// of the paper's construction); the policies only affect preorder X.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace downup::tree {

using topo::LinkId;
using topo::NodeId;
using topo::Topology;

enum class TreePolicy : std::uint8_t {
  kM1SmallestFirst,
  kM2Random,
  kM3LargestFirst,
};

std::string_view toString(TreePolicy policy) noexcept;

class CoordinatedTree {
 public:
  /// Builds the BFS coordinated tree of `topo` rooted at `root` (the paper
  /// uses the smallest node id, 0).  `rng` is only consulted for M2.
  /// Throws std::invalid_argument if the topology is disconnected or the
  /// root is out of range.
  static CoordinatedTree build(const Topology& topo, TreePolicy policy,
                               util::Rng& rng, NodeId root = 0);

  /// Builds a tree from an explicit parent array (parent[root] must be
  /// kInvalidNode).  Sibling preorder follows `siblingRank`: children of a
  /// node are visited in ascending siblingRank[child] (ascending node id if
  /// empty).  Used to reproduce the paper's worked examples, whose trees are
  /// not M1 trees.
  static CoordinatedTree fromParents(const Topology& topo,
                                     std::span<const NodeId> parents,
                                     NodeId root,
                                     std::span<const std::uint32_t> siblingRank = {});

  NodeId root() const noexcept { return root_; }
  NodeId nodeCount() const noexcept { return static_cast<NodeId>(parent_.size()); }

  NodeId parent(NodeId v) const noexcept { return parent_[v]; }
  std::span<const NodeId> children(NodeId v) const noexcept { return children_[v]; }

  /// X(v): 0-based preorder index (unique).
  std::uint32_t x(NodeId v) const noexcept { return x_[v]; }
  /// Y(v): tree level; 0 at the root.
  std::uint32_t y(NodeId v) const noexcept { return y_[v]; }

  /// Nodes in preorder (preorder()[x(v)] == v).
  std::span<const NodeId> preorder() const noexcept { return preorder_; }

  std::uint32_t depth() const noexcept { return depth_; }

  /// Number of nodes at each level.
  std::span<const std::uint32_t> levelPopulation() const noexcept {
    return levelPopulation_;
  }

  bool isLeaf(NodeId v) const noexcept { return children_[v].empty(); }
  std::vector<NodeId> leaves() const;

  /// True iff link (a, b) is a tree link (one endpoint parents the other).
  bool isTreeLink(NodeId a, NodeId b) const noexcept {
    return parent_[a] == b || parent_[b] == a;
  }

  NodeId lowestCommonAncestor(NodeId a, NodeId b) const;

  /// True when every non-tree link joins levels differing by at most one —
  /// guaranteed for BFS-built trees, checkable for explicit ones.
  bool isBfsTree(const Topology& topo) const;

 private:
  CoordinatedTree() = default;
  void assignCoordinates();

  NodeId root_ = 0;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;  // in preorder sibling order
  std::vector<std::uint32_t> x_;
  std::vector<std::uint32_t> y_;
  std::vector<NodeId> preorder_;
  std::vector<std::uint32_t> levelPopulation_;
  std::uint32_t depth_ = 0;
};

}  // namespace downup::tree
