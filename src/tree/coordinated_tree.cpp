#include "tree/coordinated_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace downup::tree {

std::string_view toString(TreePolicy policy) noexcept {
  switch (policy) {
    case TreePolicy::kM1SmallestFirst: return "M1";
    case TreePolicy::kM2Random: return "M2";
    case TreePolicy::kM3LargestFirst: return "M3";
  }
  return "?";
}

CoordinatedTree CoordinatedTree::build(const Topology& topo, TreePolicy policy,
                                       util::Rng& rng, NodeId root) {
  const NodeId n = topo.nodeCount();
  if (root >= n) throw std::invalid_argument("CoordinatedTree: bad root");

  CoordinatedTree tree;
  tree.root_ = root;
  tree.parent_.assign(n, topo::kInvalidNode);
  tree.children_.assign(n, {});

  // BFS (Steps 1-5 of the paper): neighbors scanned in ascending id order.
  std::vector<bool> visited(n, false);
  std::vector<NodeId> queue;
  queue.reserve(n);
  visited[root] = true;
  queue.push_back(root);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId v = queue[head];
    for (NodeId w : topo.neighbors(v)) {  // neighbors() is sorted ascending
      if (visited[w]) continue;
      visited[w] = true;
      tree.parent_[w] = v;
      tree.children_[v].push_back(w);
      queue.push_back(w);
    }
  }
  if (queue.size() != n) {
    throw std::invalid_argument("CoordinatedTree: topology is disconnected");
  }

  // Sibling order for the preorder traversal (Step 6 + policies M1/M2/M3).
  for (auto& siblings : tree.children_) {
    switch (policy) {
      case TreePolicy::kM1SmallestFirst:
        // BFS already appended in ascending id order.
        break;
      case TreePolicy::kM2Random:
        rng.shuffle(std::span<NodeId>(siblings));
        break;
      case TreePolicy::kM3LargestFirst:
        std::reverse(siblings.begin(), siblings.end());
        break;
    }
  }

  tree.assignCoordinates();
  return tree;
}

CoordinatedTree CoordinatedTree::fromParents(
    const Topology& topo, std::span<const NodeId> parents, NodeId root,
    std::span<const std::uint32_t> siblingRank) {
  const NodeId n = topo.nodeCount();
  if (parents.size() != n) {
    throw std::invalid_argument("CoordinatedTree: parent array size mismatch");
  }
  if (!siblingRank.empty() && siblingRank.size() != n) {
    throw std::invalid_argument("CoordinatedTree: sibling rank size mismatch");
  }
  if (root >= n || parents[root] != topo::kInvalidNode) {
    throw std::invalid_argument("CoordinatedTree: bad root");
  }

  CoordinatedTree tree;
  tree.root_ = root;
  tree.parent_.assign(parents.begin(), parents.end());
  tree.children_.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    const NodeId p = parents[v];
    if (p >= n || !topo.hasLink(p, v)) {
      throw std::invalid_argument(
          "CoordinatedTree: parent edge missing from topology");
    }
    tree.children_[p].push_back(v);  // ascending id order by construction
  }
  if (!siblingRank.empty()) {
    for (auto& siblings : tree.children_) {
      std::sort(siblings.begin(), siblings.end(),
                [&siblingRank](NodeId a, NodeId b) {
                  return siblingRank[a] < siblingRank[b];
                });
    }
  }

  tree.assignCoordinates();
  if (tree.preorder_.size() != n) {
    throw std::invalid_argument("CoordinatedTree: parent array is not a tree");
  }
  return tree;
}

void CoordinatedTree::assignCoordinates() {
  const NodeId n = nodeCount();
  x_.assign(n, 0);
  y_.assign(n, 0);
  preorder_.clear();
  preorder_.reserve(n);

  // Iterative preorder honouring the stored sibling order.
  std::vector<std::pair<NodeId, std::size_t>> stack;  // (node, next child idx)
  preorder_.push_back(root_);
  x_[root_] = 0;
  y_[root_] = 0;
  stack.emplace_back(root_, 0);
  while (!stack.empty()) {
    auto& [v, nextChild] = stack.back();
    if (nextChild >= children_[v].size()) {
      stack.pop_back();
      continue;
    }
    const NodeId c = children_[v][nextChild++];
    x_[c] = static_cast<std::uint32_t>(preorder_.size());
    y_[c] = y_[v] + 1;
    preorder_.push_back(c);
    stack.emplace_back(c, 0);
  }

  depth_ = 0;
  for (NodeId v : preorder_) depth_ = std::max(depth_, y_[v]);
  levelPopulation_.assign(depth_ + 1, 0);
  for (NodeId v : preorder_) ++levelPopulation_[y_[v]];
}

std::vector<NodeId> CoordinatedTree::leaves() const {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < nodeCount(); ++v) {
    if (isLeaf(v)) result.push_back(v);
  }
  return result;
}

NodeId CoordinatedTree::lowestCommonAncestor(NodeId a, NodeId b) const {
  while (a != b) {
    if (y_[a] > y_[b]) {
      a = parent_[a];
    } else if (y_[b] > y_[a]) {
      b = parent_[b];
    } else {
      a = parent_[a];
      b = parent_[b];
    }
  }
  return a;
}

bool CoordinatedTree::isBfsTree(const Topology& topo) const {
  for (LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    const std::uint32_t ya = y_[a];
    const std::uint32_t yb = y_[b];
    if ((ya > yb ? ya - yb : yb - ya) > 1) return false;
  }
  return true;
}

}  // namespace downup::tree
