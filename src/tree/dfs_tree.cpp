#include "tree/dfs_tree.hpp"

#include <stdexcept>
#include <utility>

namespace downup::tree {

DfsTree DfsTree::build(const topo::Topology& topo, topo::NodeId root) {
  const topo::NodeId n = topo.nodeCount();
  if (root >= n) throw std::invalid_argument("DfsTree: bad root");

  DfsTree tree;
  tree.root_ = root;
  tree.parent_.assign(n, topo::kInvalidNode);
  tree.order_.assign(n, 0);

  std::vector<bool> visited(n, false);
  std::vector<std::pair<topo::NodeId, std::size_t>> stack;  // (node, next idx)
  std::uint32_t counter = 0;
  visited[root] = true;
  tree.order_[root] = counter++;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto& [v, next] = stack.back();
    const auto neighbors = topo.neighbors(v);
    if (next >= neighbors.size()) {
      stack.pop_back();
      continue;
    }
    const topo::NodeId w = neighbors[next++];
    if (visited[w]) continue;
    visited[w] = true;
    tree.parent_[w] = v;
    tree.order_[w] = counter++;
    stack.emplace_back(w, 0);
  }
  if (counter != n) {
    throw std::invalid_argument("DfsTree: topology is disconnected");
  }
  return tree;
}

}  // namespace downup::tree
