#include "tree/graphviz.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace downup::tree {

namespace {

// Cold colour (white for node fills, mid-gray for edges so they stay
// visible on a white page) to saturated red at frac 1, as a hex colour.
void appendHeatColor(std::ostream& out, double frac, int coolLevel = 255) {
  frac = std::clamp(frac, 0.0, 1.0);
  const auto lerp = [frac](int from, int to) {
    return static_cast<int>(from + (to - from) * frac + 0.5);
  };
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", lerp(coolLevel, 255),
                lerp(coolLevel, 0), lerp(coolLevel, 0));
  out << buf;
}

}  // namespace

void exportGraphviz(const topo::Topology& topo, std::ostream& out) {
  out << "graph downup {\n  node [shape=circle];\n";
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    out << "  n" << a << " -- n" << b << ";\n";
  }
  out << "}\n";
}

void exportGraphviz(const topo::Topology& topo, const CoordinatedTree& ct,
                    std::ostream& out) {
  out << "graph downup {\n  node [shape=circle];\n";
  for (topo::NodeId v = 0; v < topo.nodeCount(); ++v) {
    out << "  n" << v << " [label=\"" << v << "\\n(" << ct.x(v) << ","
        << ct.y(v) << ")\"";
    if (v == ct.root()) out << " style=bold";
    out << "];\n";
  }
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    out << "  n" << a << " -- n" << b;
    if (!ct.isTreeLink(a, b)) out << " [style=dashed]";
    out << ";\n";
  }
  out << "}\n";
}

void exportGraphvizHeatmap(const topo::Topology& topo,
                           const CoordinatedTree& ct,
                           const HeatmapOverlay& overlay, std::ostream& out) {
  const bool haveNodes = !overlay.nodeBlockedCycles.empty();
  const bool haveChannels = !overlay.channelUtilization.empty();

  std::uint64_t maxBlocked = 0;
  if (haveNodes) {
    for (std::uint64_t b : overlay.nodeBlockedCycles) {
      maxBlocked = std::max(maxBlocked, b);
    }
  }
  double maxUtil = 0.0;
  if (haveChannels) {
    for (double u : overlay.channelUtilization) maxUtil = std::max(maxUtil, u);
  }

  out << "graph downup {\n  node [shape=circle style=filled];\n";
  for (topo::NodeId v = 0; v < topo.nodeCount(); ++v) {
    out << "  n" << v << " [label=\"" << v << "\\n(" << ct.x(v) << ","
        << ct.y(v) << ")\" fillcolor=\"";
    const double frac =
        (haveNodes && maxBlocked > 0)
            ? static_cast<double>(overlay.nodeBlockedCycles[v]) /
                  static_cast<double>(maxBlocked)
            : 0.0;
    appendHeatColor(out, frac);
    out << "\"";
    if (v == ct.root()) out << " penwidth=3";
    out << "];\n";
  }
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    out << "  n" << a << " -- n" << b << " [";
    if (!ct.isTreeLink(a, b)) out << "style=dashed ";
    // Colour by the busier of the two directed channels of this link.
    double util = 0.0;
    if (haveChannels) {
      util = std::max(overlay.channelUtilization[2 * l],
                      overlay.channelUtilization[2 * l + 1]);
    }
    const double frac = (maxUtil > 0.0) ? util / maxUtil : 0.0;
    out << "color=\"";
    appendHeatColor(out, frac, 176);
    char label[32];
    std::snprintf(label, sizeof(label), "%.3f", util);
    out << "\" penwidth=" << 1.0 + 5.0 * frac << " label=\"" << label
        << "\" fontsize=9];\n";
  }
  out << "}\n";
}

}  // namespace downup::tree
