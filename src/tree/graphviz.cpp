#include "tree/graphviz.hpp"

#include <ostream>

namespace downup::tree {

void exportGraphviz(const topo::Topology& topo, std::ostream& out) {
  out << "graph downup {\n  node [shape=circle];\n";
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    out << "  n" << a << " -- n" << b << ";\n";
  }
  out << "}\n";
}

void exportGraphviz(const topo::Topology& topo, const CoordinatedTree& ct,
                    std::ostream& out) {
  out << "graph downup {\n  node [shape=circle];\n";
  for (topo::NodeId v = 0; v < topo.nodeCount(); ++v) {
    out << "  n" << v << " [label=\"" << v << "\\n(" << ct.x(v) << ","
        << ct.y(v) << ")\"";
    if (v == ct.root()) out << " style=bold";
    out << "];\n";
  }
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    out << "  n" << a << " -- n" << b;
    if (!ct.isTreeLink(a, b)) out << " [style=dashed]";
    out << ";\n";
  }
  out << "}\n";
}

}  // namespace downup::tree
