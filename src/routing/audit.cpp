#include "routing/audit.hpp"

#include <atomic>

namespace downup::routing {

namespace {

std::atomic<TableAuditHook> g_hook{nullptr};
std::atomic<void*> g_ctx{nullptr};

}  // namespace

void setTableAuditHook(TableAuditHook hook, void* ctx) noexcept {
  // Context first so a racing invoke never pairs the new hook with a stale
  // context (hooks are installed before builds start; this is belt and
  // braces for test teardown).
  if (hook == nullptr) {
    g_hook.store(nullptr, std::memory_order_release);
    g_ctx.store(nullptr, std::memory_order_release);
  } else {
    g_ctx.store(ctx, std::memory_order_release);
    g_hook.store(hook, std::memory_order_release);
  }
}

void invokeTableAuditHook(const TurnPermissions& perms,
                          const RoutingTable& table,
                          std::span<const std::uint64_t> channelAlive) noexcept {
  const TableAuditHook hook = g_hook.load(std::memory_order_acquire);
  if (hook == nullptr) return;
  hook(g_ctx.load(std::memory_order_acquire), perms, table, channelAlive);
}

}  // namespace downup::routing
