#include "routing/turns.hpp"

#include <bit>
#include <stdexcept>

namespace downup::routing {

std::vector<std::pair<Dir, Dir>> TurnSet::prohibitedList() const {
  std::vector<std::pair<Dir, Dir>> list;
  for (std::size_t i = 0; i < kDirCount; ++i) {
    for (std::size_t j = 0; j < kDirCount; ++j) {
      if (i != j && !allowed_[i][j]) {
        list.emplace_back(static_cast<Dir>(i), static_cast<Dir>(j));
      }
    }
  }
  return list;
}

std::size_t TurnSet::prohibitedCount() const noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < kDirCount; ++i) {
    for (std::size_t j = 0; j < kDirCount; ++j) {
      if (i != j && !allowed_[i][j]) ++count;
    }
  }
  return count;
}

TurnSet upDownTurnSet() noexcept {
  TurnSet set = TurnSet::allAllowed();
  set.prohibit(Dir::kRdTree, Dir::kLuTree);
  return set;
}

TurnSet lturnTurnSet() noexcept {
  TurnSet set = TurnSet::allAllowed();
  // down -> up
  for (Dir down : {Dir::kLdCross, Dir::kRdCross}) {
    for (Dir up : {Dir::kLuCross, Dir::kRuCross}) set.prohibit(down, up);
  }
  // horizontal -> up
  for (Dir horiz : {Dir::kLCross, Dir::kRCross}) {
    for (Dir up : {Dir::kLuCross, Dir::kRuCross}) set.prohibit(horiz, up);
  }
  // break same-level cycles
  set.prohibit(Dir::kLCross, Dir::kRCross);
  return set;
}

TurnPermissions::TurnPermissions(const Topology& topo, DirectionMap channelDirs,
                                 TurnSet global)
    : topo_(&topo),
      dirs_(std::move(channelDirs)),
      global_(global),
      released_(topo.nodeCount(), 0),
      blocked_(topo.nodeCount(), 0) {
  if (dirs_.size() != topo.channelCount()) {
    throw std::invalid_argument(
        "TurnPermissions: direction map size mismatch");
  }
}

std::size_t TurnPermissions::releaseCount() const noexcept {
  std::size_t count = 0;
  for (std::uint64_t mask : released_) count += std::popcount(mask);
  return count;
}

std::size_t TurnPermissions::blockCount() const noexcept {
  std::size_t count = 0;
  for (std::uint64_t mask : blocked_) count += std::popcount(mask);
  return count;
}

}  // namespace downup::routing
