#include "routing/path_analysis.hpp"

#include <algorithm>
#include <numeric>

namespace downup::routing {

PathAnalysis analyzePaths(const RoutingTable& table) {
  const Topology& topo = table.topology();
  const TurnPermissions& perms = table.permissions();
  const NodeId n = topo.nodeCount();
  const std::uint32_t channels = topo.channelCount();

  PathAnalysis analysis;
  analysis.expectedLoad.assign(channels, 0.0);
  analysis.pathCount.assign(static_cast<std::size_t>(n) * n, 1.0);

  std::vector<ChannelId> order(channels);
  std::vector<double> inflow(channels);
  std::vector<double> paths(channels);
  std::vector<ChannelId> successors;
  std::vector<ChannelId> firsts;

  for (NodeId dst = 0; dst < n; ++dst) {
    // Channels reachable to dst, sorted by remaining steps descending: flow
    // propagates along edges that decrease steps by exactly one.
    order.clear();
    for (ChannelId c = 0; c < channels; ++c) {
      if (table.channelSteps(dst, c) != kNoPath) order.push_back(c);
    }
    std::sort(order.begin(), order.end(),
              [&table, dst](ChannelId a, ChannelId b) {
                return table.channelSteps(dst, a) > table.channelSteps(dst, b);
              });

    // Path counts, in increasing-steps order (reverse of `order`).
    std::fill(paths.begin(), paths.end(), 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const ChannelId c = *it;
      const std::uint16_t remaining = table.channelSteps(dst, c);
      if (remaining == 1) {
        paths[c] = 1.0;
        continue;
      }
      const NodeId via = topo.channelDst(c);
      double total = 0.0;
      for (ChannelId next : topo.outputChannels(via)) {
        if (table.channelSteps(dst, next) == remaining - 1 &&
            perms.allowed(via, c, next)) {
          total += paths[next];
        }
      }
      paths[c] = total;
    }

    // Source injection: every s != dst splits one unit of flow uniformly
    // over its minimal first channels.
    std::fill(inflow.begin(), inflow.end(), 0.0);
    for (NodeId s = 0; s < n; ++s) {
      if (s == dst) continue;
      firsts.clear();
      table.firstChannels(s, dst, firsts);
      if (firsts.empty()) continue;  // unreachable pair
      const double share = 1.0 / static_cast<double>(firsts.size());
      for (ChannelId c : firsts) inflow[c] += share;

      double count = 0.0;
      for (ChannelId c : firsts) count += paths[c];
      analysis.pathCount[static_cast<std::size_t>(s) * n + dst] = count;
    }

    // Propagate in decreasing-steps order with uniform splitting.
    for (ChannelId c : order) {
      if (inflow[c] <= 0.0) continue;
      analysis.expectedLoad[c] += inflow[c];
      const std::uint16_t remaining = table.channelSteps(dst, c);
      if (remaining <= 1) continue;  // consumed at the destination
      const NodeId via = topo.channelDst(c);
      successors.clear();
      for (ChannelId next : topo.outputChannels(via)) {
        if (table.channelSteps(dst, next) == remaining - 1 &&
            perms.allowed(via, c, next)) {
          successors.push_back(next);
        }
      }
      const double share =
          inflow[c] / static_cast<double>(successors.size());
      for (ChannelId next : successors) inflow[next] += share;
    }
  }

  if (channels > 0) {
    analysis.maxLoad =
        *std::max_element(analysis.expectedLoad.begin(),
                          analysis.expectedLoad.end());
    analysis.meanLoad = std::accumulate(analysis.expectedLoad.begin(),
                                        analysis.expectedLoad.end(), 0.0) /
                        static_cast<double>(channels);
  }
  if (n > 1) {
    double sum = 0.0;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (s != d) sum += analysis.pathCount[static_cast<std::size_t>(s) * n + d];
      }
    }
    analysis.meanPathCount =
        sum / static_cast<double>(static_cast<std::uint64_t>(n) * (n - 1));
  }
  return analysis;
}

std::vector<ChannelId> samplePath(const RoutingTable& table, NodeId src,
                                  NodeId dst, util::Rng* rng) {
  std::vector<ChannelId> path;
  if (src == dst || table.distance(src, dst) == kNoPath) return path;
  std::vector<ChannelId> options;
  table.firstChannels(src, dst, options);
  while (!options.empty()) {
    const ChannelId next =
        rng == nullptr ? options.front()
                       : options[rng->below(options.size())];
    path.push_back(next);
    if (table.topology().channelDst(next) == dst) break;
    options.clear();
    table.nextChannels(next, dst, options);
  }
  return path;
}

std::vector<std::vector<ChannelId>> enumerateMinimalPaths(
    const RoutingTable& table, NodeId src, NodeId dst, std::size_t limit) {
  std::vector<std::vector<ChannelId>> paths;
  if (src == dst || limit == 0 || table.distance(src, dst) == kNoPath) {
    return paths;
  }
  // DFS over per-hop candidate lists; candidates come out of the table in
  // ascending channel order, so paths emerge lexicographically.
  struct Frame {
    std::vector<ChannelId> options;
    std::size_t next = 0;
  };
  std::vector<Frame> stack(1);
  std::vector<ChannelId> current;
  table.firstChannels(src, dst, stack[0].options);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.options.size()) {
      stack.pop_back();
      if (!current.empty()) current.pop_back();
      continue;
    }
    const ChannelId chosen = frame.options[frame.next++];
    current.push_back(chosen);
    if (table.topology().channelDst(chosen) == dst) {
      paths.push_back(current);
      if (paths.size() >= limit) return paths;
      current.pop_back();
      continue;
    }
    Frame child;
    table.nextChannels(chosen, dst, child.options);
    stack.push_back(std::move(child));
  }
  return paths;
}

double averageAdaptivity(const RoutingTable& table) {
  const Topology& topo = table.topology();
  std::vector<ChannelId> firsts;
  double sum = 0.0;
  std::uint64_t pairs = 0;
  for (NodeId s = 0; s < topo.nodeCount(); ++s) {
    for (NodeId d = 0; d < topo.nodeCount(); ++d) {
      if (s == d) continue;
      firsts.clear();
      table.firstChannels(s, d, firsts);
      sum += static_cast<double>(firsts.size());
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

}  // namespace downup::routing
