// Channel directions (Definition 5) and the classifiers that map every
// communication channel of a topology onto a direction, given a spanning
// tree.  One 8-value enum serves all four routing algorithms:
//
//   DOWN/UP     uses all 8 values (tree and cross links are distinct);
//   L-turn      uses the 6 *_CROSS values for every link (its defining
//               property — tree and cross links share direction definitions);
//   up*/down*   uses only LU_TREE ("up") and RD_TREE ("down").
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "topology/topology.hpp"
#include "tree/coordinated_tree.hpp"
#include "tree/dfs_tree.hpp"

namespace downup::routing {

using topo::ChannelId;
using topo::kInvalidChannel;
using topo::NodeId;
using topo::Topology;

enum class Dir : std::uint8_t {
  kLuTree,   // tree channel toward the parent (left-up)
  kRdTree,   // tree channel toward a child (right-down)
  kLuCross,  // cross channel, sink is left-up of source
  kLdCross,  // cross channel, sink is left-down of source
  kRuCross,  // cross channel, sink is right-up of source
  kRdCross,  // cross channel, sink is right-down of source
  kRCross,   // cross channel, sink is right of source (same level)
  kLCross,   // cross channel, sink is left of source (same level)
};

inline constexpr std::size_t kDirCount = 8;

inline constexpr std::size_t index(Dir d) noexcept {
  return static_cast<std::size_t>(d);
}

std::string_view toString(Dir d) noexcept;

/// True for the two directions whose sink is closer to the root via a
/// cross link (used by the release pass).
inline constexpr bool isUpCross(Dir d) noexcept {
  return d == Dir::kLuCross || d == Dir::kRuCross;
}

/// Per-channel direction assignment, indexed by ChannelId.
using DirectionMap = std::vector<Dir>;

/// DOWN/UP classification (Definition 5): tree channels become
/// LU_TREE/RD_TREE, cross channels one of the six cross directions based on
/// the coordinated tree's (X, Y) coordinates.
DirectionMap classifyDownUp(const Topology& topo,
                            const tree::CoordinatedTree& ct);

/// L-turn classification: identical coordinate comparison but tree links are
/// *not* distinguished — every channel gets one of the six cross values
/// (a tree channel toward the parent is LU_CROSS, toward a child RD_CROSS).
DirectionMap classifyCoordinate(const Topology& topo,
                                const tree::CoordinatedTree& ct);

/// Classic BFS up*/down*: a channel is "up" (LU_TREE) when it points to a
/// node at a lower tree level, or to a lower node id within the same level;
/// otherwise "down" (RD_TREE).
DirectionMap classifyUpDown(const Topology& topo,
                            const tree::CoordinatedTree& ct);

/// DFS up*/down* (Robles et al.): "up" when the sink has a smaller DFS
/// visit index.
DirectionMap classifyUpDownDfs(const Topology& topo, const tree::DfsTree& dt);

}  // namespace downup::routing
