#include "routing/lturn.hpp"

namespace downup::routing {

Routing buildLTurn(const Topology& topo, const tree::CoordinatedTree& ct) {
  TurnPermissions perms(topo, classifyCoordinate(topo, ct), lturnTurnSet());
  return Routing("lturn", std::move(perms));
}

}  // namespace downup::routing
