#include "routing/direction.hpp"

#include <cassert>

namespace downup::routing {

std::string_view toString(Dir d) noexcept {
  switch (d) {
    case Dir::kLuTree: return "LU_TREE";
    case Dir::kRdTree: return "RD_TREE";
    case Dir::kLuCross: return "LU_CROSS";
    case Dir::kLdCross: return "LD_CROSS";
    case Dir::kRuCross: return "RU_CROSS";
    case Dir::kRdCross: return "RD_CROSS";
    case Dir::kRCross: return "R_CROSS";
    case Dir::kLCross: return "L_CROSS";
  }
  return "?";
}

namespace {

/// Definition 4 applied to a channel <v1, v2>: compares coordinates and
/// returns the cross-style direction value.
Dir coordinateDirection(const tree::CoordinatedTree& ct, NodeId v1, NodeId v2) {
  const auto x1 = ct.x(v1);
  const auto x2 = ct.x(v2);
  const auto y1 = ct.y(v1);
  const auto y2 = ct.y(v2);
  assert(x1 != x2 && "preorder indices are unique");
  if (y2 < y1) return x2 < x1 ? Dir::kLuCross : Dir::kRuCross;
  if (y2 > y1) return x2 < x1 ? Dir::kLdCross : Dir::kRdCross;
  return x2 < x1 ? Dir::kLCross : Dir::kRCross;
}

}  // namespace

DirectionMap classifyDownUp(const Topology& topo,
                            const tree::CoordinatedTree& ct) {
  DirectionMap dirs(topo.channelCount());
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    const NodeId v1 = topo.channelSrc(c);
    const NodeId v2 = topo.channelDst(c);
    if (ct.isTreeLink(v1, v2)) {
      // Parent has strictly smaller preorder X and level Y: left-up.
      dirs[c] = ct.parent(v1) == v2 ? Dir::kLuTree : Dir::kRdTree;
    } else {
      dirs[c] = coordinateDirection(ct, v1, v2);
    }
  }
  return dirs;
}

DirectionMap classifyCoordinate(const Topology& topo,
                                const tree::CoordinatedTree& ct) {
  DirectionMap dirs(topo.channelCount());
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    dirs[c] = coordinateDirection(ct, topo.channelSrc(c), topo.channelDst(c));
  }
  return dirs;
}

DirectionMap classifyUpDown(const Topology& topo,
                            const tree::CoordinatedTree& ct) {
  DirectionMap dirs(topo.channelCount());
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    const NodeId v1 = topo.channelSrc(c);
    const NodeId v2 = topo.channelDst(c);
    const bool up = ct.y(v2) < ct.y(v1) || (ct.y(v2) == ct.y(v1) && v2 < v1);
    dirs[c] = up ? Dir::kLuTree : Dir::kRdTree;
  }
  return dirs;
}

DirectionMap classifyUpDownDfs(const Topology& topo, const tree::DfsTree& dt) {
  DirectionMap dirs(topo.channelCount());
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    const bool up = dt.order(topo.channelDst(c)) < dt.order(topo.channelSrc(c));
    dirs[c] = up ? Dir::kLuTree : Dir::kRdTree;
  }
  return dirs;
}

}  // namespace downup::routing
