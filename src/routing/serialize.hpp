// Serialisation of a computed routing: the per-channel direction map, the
// global turn set and every per-node release/block override — everything
// needed to reproduce the routing relation on a known topology without
// re-running the construction, or to ship it to switch firmware.
//
// Format (line oriented, '#' comments allowed):
//   downup-routing v1
//   name <routing-name>
//   channels <C>
//   dir <channel> <DIRECTION>
//   prohibit <FROM> <TO>             # global turn rule
//   release <node> <FROM> <TO>       # per-node override: re-allow
//   block <node> <FROM> <TO>         # per-node override: prohibit
#pragma once

#include <iosfwd>
#include <string>

#include "routing/algorithm.hpp"

namespace downup::routing {

void saveRouting(const Routing& routing, std::ostream& out);
void saveRoutingFile(const Routing& routing, const std::string& path);

/// Rebuilds the routing (including its table) against `topo`, which must be
/// the topology the routing was computed on.  Throws std::runtime_error
/// with a line number on malformed input or a channel-count mismatch.
Routing loadRouting(const Topology& topo, std::istream& in);
Routing loadRoutingFile(const Topology& topo, const std::string& path);

/// Parses a direction name ("LU_TREE", ...); throws std::invalid_argument.
Dir dirFromString(std::string_view name);

/// Human-readable per-switch configuration: for every (input, output) port
/// pair of `node`, whether the turn is permitted — the form a switch
/// firmware table would take.
void exportSwitchConfig(const Routing& routing, NodeId node,
                        std::ostream& out);

}  // namespace downup::routing
