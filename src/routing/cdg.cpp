#include "routing/cdg.hpp"

#include <cstdint>

namespace downup::routing {

namespace {

enum class Mark : std::uint8_t { kWhite, kGray, kBlack };

/// Iterative DFS that records the gray path so a cycle witness can be
/// reconstructed without recursion (channel counts reach a few thousand).
struct CycleFinder {
  const TurnPermissions& perms;
  const Topology& topo;
  std::vector<Mark> mark;
  std::vector<ChannelId> path;  // current gray stack, in order

  explicit CycleFinder(const TurnPermissions& p)
      : perms(p), topo(p.topology()), mark(topo.channelCount(), Mark::kWhite) {}

  /// Returns true (and fills `cycle`) if a cycle is reachable from `start`.
  bool run(ChannelId start, std::vector<ChannelId>& cycle) {
    struct Frame {
      ChannelId channel;
      std::size_t nextIdx;  // index into outputs of dst(channel)
    };
    std::vector<Frame> stack;
    mark[start] = Mark::kGray;
    path.push_back(start);
    stack.push_back({start, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId via = topo.channelDst(frame.channel);
      const auto outputs = topo.outputChannels(via);
      bool descended = false;
      while (frame.nextIdx < outputs.size()) {
        const ChannelId next = outputs[frame.nextIdx++];
        if (!perms.allowed(via, frame.channel, next)) continue;
        if (mark[next] == Mark::kGray) {
          // Found a cycle: the suffix of `path` starting at `next`.
          for (std::size_t i = 0; i < path.size(); ++i) {
            if (path[i] == next) {
              cycle.assign(path.begin() + static_cast<std::ptrdiff_t>(i),
                           path.end());
              return true;
            }
          }
          cycle = path;  // defensive; should be unreachable
          return true;
        }
        if (mark[next] == Mark::kWhite) {
          mark[next] = Mark::kGray;
          path.push_back(next);
          stack.push_back({next, 0});
          descended = true;
          break;
        }
      }
      if (!descended && frame.nextIdx >= outputs.size()) {
        mark[frame.channel] = Mark::kBlack;
        path.pop_back();
        stack.pop_back();
      }
    }
    return false;
  }
};

}  // namespace

CdgResult checkChannelDependencies(const TurnPermissions& perms) {
  CdgResult result;
  CycleFinder finder(perms);
  const auto channels = perms.topology().channelCount();
  for (ChannelId c = 0; c < channels; ++c) {
    if (finder.mark[c] != Mark::kWhite) continue;
    if (finder.run(c, result.cycle)) {
      result.acyclic = false;
      return result;
    }
  }
  result.acyclic = true;
  return result;
}

bool channelReachable(const TurnPermissions& perms, ChannelId from,
                      ChannelId to) {
  const Topology& topo = perms.topology();
  std::vector<bool> seen(topo.channelCount(), false);
  std::vector<ChannelId> stack;
  seen[from] = true;
  stack.push_back(from);
  while (!stack.empty()) {
    const ChannelId c = stack.back();
    stack.pop_back();
    const NodeId via = topo.channelDst(c);
    for (ChannelId next : topo.outputChannels(via)) {
      if (!perms.allowed(via, c, next)) continue;
      if (next == to) return true;  // before the seen-check: to may equal from
      if (seen[next]) continue;
      seen[next] = true;
      stack.push_back(next);
    }
  }
  return false;
}

}  // namespace downup::routing
