#include "routing/routing_table.hpp"

#include <algorithm>

namespace downup::routing {

RoutingTable RoutingTable::build(const TurnPermissions& perms) {
  RoutingTable table;
  table.perms_ = &perms;
  const Topology& topo = perms.topology();
  const NodeId n = topo.nodeCount();
  table.nodeCount_ = n;
  table.channelCount_ = topo.channelCount();
  table.steps_.assign(static_cast<std::size_t>(n) * table.channelCount_,
                      kNoPath);

  // Reverse adjacency is implicit: the predecessors of channel c are the
  // input channels of src(c) whose turn onto c is allowed.
  std::vector<ChannelId> queue;
  queue.reserve(table.channelCount_);
  for (NodeId dst = 0; dst < n; ++dst) {
    auto* steps = &table.steps_[static_cast<std::size_t>(dst) *
                                table.channelCount_];
    queue.clear();
    for (ChannelId c = 0; c < table.channelCount_; ++c) {
      if (topo.channelDst(c) == dst) {
        steps[c] = 1;
        queue.push_back(c);
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const ChannelId c = queue[head];
      const NodeId via = topo.channelSrc(c);
      const std::uint16_t nextSteps = static_cast<std::uint16_t>(steps[c] + 1);
      // Predecessor channels: inputs of `via` = reverses of its outputs.
      for (ChannelId out : topo.outputChannels(via)) {
        const ChannelId in = Topology::reverseChannel(out);
        if (steps[in] != kNoPath) continue;
        if (!perms.allowed(via, in, c)) continue;
        steps[in] = nextSteps;
        queue.push_back(in);
      }
    }
  }
  table.buildSuccessorIndexes();
  return table;
}

void RoutingTable::buildSuccessorIndexes() {
  const Topology& topo = perms_->topology();
  const NodeId n = nodeCount_;

  // Candidate enumeration order must match the adjacency order used by the
  // appending queries below: the simulator's random pick indexes into these
  // rows, so reordering would change RNG-driven routing decisions.
  first_.offsets.assign(static_cast<std::size_t>(n) * n + 1, 0);
  next_.offsets.assign(static_cast<std::size_t>(n) * channelCount_ + 1, 0);
  nextAny_.offsets.assign(static_cast<std::size_t>(n) * channelCount_ + 1, 0);
  first_.entries.clear();
  next_.entries.clear();
  nextAny_.entries.clear();

  for (NodeId dst = 0; dst < n; ++dst) {
    const auto* steps = &steps_[static_cast<std::size_t>(dst) * channelCount_];

    for (NodeId src = 0; src < n; ++src) {
      if (src != dst) {
        std::uint16_t best = kNoPath;
        for (ChannelId c : topo.outputChannels(src)) {
          best = std::min(best, steps[c]);
        }
        if (best != kNoPath) {
          for (ChannelId c : topo.outputChannels(src)) {
            if (steps[c] == best) first_.entries.push_back(c);
          }
        }
      }
      first_.offsets[static_cast<std::size_t>(dst) * n + src + 1] =
          static_cast<std::uint32_t>(first_.entries.size());
    }

    for (ChannelId in = 0; in < channelCount_; ++in) {
      const std::uint16_t remaining = steps[in];
      if (remaining != kNoPath && remaining > 1) {  // <=1: dst(in) == dst
        const NodeId via = topo.channelDst(in);
        for (ChannelId next : topo.outputChannels(via)) {
          if (steps[next] != remaining - 1) continue;
          if (perms_->allowed(via, in, next)) next_.entries.push_back(next);
          if (next != Topology::reverseChannel(in)) {
            nextAny_.entries.push_back(next);
          }
        }
      }
      const std::size_t row = static_cast<std::size_t>(dst) * channelCount_ + in;
      next_.offsets[row + 1] = static_cast<std::uint32_t>(next_.entries.size());
      nextAny_.offsets[row + 1] =
          static_cast<std::uint32_t>(nextAny_.entries.size());
    }
  }
  first_.entries.shrink_to_fit();
  next_.entries.shrink_to_fit();
  nextAny_.entries.shrink_to_fit();
}

RoutingTable RoutingTable::remapComponents(
    const TurnPermissions& hostPerms, std::span<const ComponentMapping> parts) {
  RoutingTable host;
  host.perms_ = &hostPerms;
  const Topology& topo = hostPerms.topology();
  host.nodeCount_ = topo.nodeCount();
  host.channelCount_ = topo.channelCount();
  const std::size_t n = host.nodeCount_;
  const std::size_t channels = host.channelCount_;
  host.steps_.assign(n * channels, kNoPath);

  // Scatter the per-destination step fields.  Components are node- and
  // channel-disjoint, so writes never collide.
  for (const ComponentMapping& part : parts) {
    const RoutingTable& sub = *part.table;
    for (NodeId subDst = 0; subDst < sub.nodeCount_; ++subDst) {
      const std::size_t hostRow =
          static_cast<std::size_t>(part.nodeToHost[subDst]) * channels;
      const std::size_t subRow =
          static_cast<std::size_t>(subDst) * sub.channelCount_;
      for (ChannelId c = 0; c < sub.channelCount_; ++c) {
        host.steps_[hostRow + part.channelToHost[c]] = sub.steps_[subRow + c];
      }
    }
  }

  // Rebuild the three CSR candidate indexes by translating each sub row
  // into its host row.  Entry order within a row is preserved: sub node ids
  // ascend with host ids (ComponentMapping contract), so a sub adjacency
  // scan visits neighbors in the same relative order a host scan would.
  const auto translate = [&parts](auto rowsPerDst, auto subRowsOf,
                                  auto hostRowOf, Csr RoutingTable::*csr,
                                  RoutingTable& out) {
    std::vector<std::uint32_t> sizes(rowsPerDst + 1, 0);
    for (const ComponentMapping& part : parts) {
      const Csr& subCsr = part.table->*csr;
      const std::size_t subRows = subRowsOf(*part.table);
      for (std::size_t r = 0; r < subRows; ++r) {
        sizes[hostRowOf(part, r) + 1] +=
            subCsr.offsets[r + 1] - subCsr.offsets[r];
      }
    }
    Csr& hostCsr = out.*csr;
    hostCsr.offsets.assign(sizes.begin(), sizes.end());
    for (std::size_t r = 1; r < hostCsr.offsets.size(); ++r) {
      hostCsr.offsets[r] += hostCsr.offsets[r - 1];
    }
    hostCsr.entries.assign(hostCsr.offsets.back(), 0);
    for (const ComponentMapping& part : parts) {
      const Csr& subCsr = part.table->*csr;
      const std::size_t subRows = subRowsOf(*part.table);
      for (std::size_t r = 0; r < subRows; ++r) {
        std::uint32_t cursor = hostCsr.offsets[hostRowOf(part, r)];
        for (std::uint32_t e = subCsr.offsets[r]; e < subCsr.offsets[r + 1];
             ++e) {
          hostCsr.entries[cursor++] = part.channelToHost[subCsr.entries[e]];
        }
      }
    }
  };

  translate(
      n * n,
      [](const RoutingTable& sub) {
        return static_cast<std::size_t>(sub.nodeCount_) * sub.nodeCount_;
      },
      [n](const ComponentMapping& part, std::size_t r) {
        const std::size_t subN = part.table->nodeCount_;
        return static_cast<std::size_t>(part.nodeToHost[r / subN]) * n +
               part.nodeToHost[r % subN];
      },
      &RoutingTable::first_, host);
  const auto channelRows = [](const RoutingTable& sub) {
    return static_cast<std::size_t>(sub.nodeCount_) * sub.channelCount_;
  };
  const auto channelRowOf = [channels](const ComponentMapping& part,
                                       std::size_t r) {
    const std::size_t subChannels = part.table->channelCount_;
    return static_cast<std::size_t>(part.nodeToHost[r / subChannels]) *
               channels +
           part.channelToHost[r % subChannels];
  };
  translate(n * channels, channelRows, channelRowOf, &RoutingTable::next_,
            host);
  translate(n * channels, channelRows, channelRowOf, &RoutingTable::nextAny_,
            host);
  return host;
}

std::uint16_t RoutingTable::distance(NodeId src, NodeId dst) const noexcept {
  if (src == dst) return 0;
  std::uint16_t best = kNoPath;
  for (ChannelId c : perms_->topology().outputChannels(src)) {
    best = std::min(best, channelSteps(dst, c));
  }
  return best;
}

void RoutingTable::firstChannels(NodeId src, NodeId dst,
                                 std::vector<ChannelId>& out) const {
  const auto row = firstChannels(src, dst);
  out.insert(out.end(), row.begin(), row.end());
}

void RoutingTable::nextChannels(ChannelId in, NodeId dst,
                                std::vector<ChannelId>& out) const {
  const auto row = nextChannels(in, dst);
  out.insert(out.end(), row.begin(), row.end());
}

void RoutingTable::nextChannelsAnyTurn(ChannelId in, NodeId dst,
                                       std::vector<ChannelId>& out) const {
  const auto row = nextChannelsAnyTurn(in, dst);
  out.insert(out.end(), row.begin(), row.end());
}

bool RoutingTable::allPairsConnected() const noexcept {
  const NodeId n = perms_->topology().nodeCount();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s != d && distance(s, d) == kNoPath) return false;
    }
  }
  return true;
}

double RoutingTable::averagePathLength() const {
  const NodeId n = perms_->topology().nodeCount();
  double sum = 0.0;
  std::uint64_t pairs = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::uint16_t dist = distance(s, d);
      if (dist == kNoPath) continue;
      sum += dist;
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

}  // namespace downup::routing
