#include "routing/routing_table.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "routing/audit.hpp"
#include "util/thread_pool.hpp"

namespace downup::routing {

namespace {

inline bool aliveBit(std::span<const std::uint64_t> mask, ChannelId c) noexcept {
  return mask.empty() || ((mask[c >> 6] >> (c & 63)) & 1u);
}

/// Dynamic serial/parallel cutover: a null return routes every parallelFor
/// below through the serial path.  Small tables fan out slower than they
/// build (kParallelBuildMinDestinations); the choice never affects output.
inline util::ThreadPool* effectivePool(util::ThreadPool* pool,
                                       NodeId destinations) noexcept {
  if (pool == nullptr || pool->threadCount() <= 1 ||
      destinations < kParallelBuildMinDestinations) {
    return nullptr;
  }
  return pool;
}

/// Single source of truth for candidate enumeration: walks destination
/// `dst`'s candidate relation in the exact order the simulator depends on
/// (adjacency order within each row; the simulator's random pick indexes
/// into these rows, so reordering would change RNG-driven routing
/// decisions).  The serial single-pass build, the parallel counting pass
/// and the parallel fill pass all instantiate this with different emitters,
/// which is what makes them bit-for-bit interchangeable.
template <class FirstEntry, class FirstRowEnd, class ChanEntry,
          class ChanRowEnd>
void enumerateCandidatesForDst(const TurnPermissions& perms, NodeId n,
                               std::uint32_t channels,
                               const std::uint16_t* steps, NodeId dst,
                               FirstEntry&& firstEntry,
                               FirstRowEnd&& firstRowEnd, ChanEntry&& chanEntry,
                               ChanRowEnd&& chanRowEnd) {
  const Topology& topo = perms.topology();
  for (NodeId src = 0; src < n; ++src) {
    if (src != dst) {
      std::uint16_t best = kNoPath;
      for (ChannelId c : topo.outputChannels(src)) {
        best = std::min(best, steps[c]);
      }
      if (best != kNoPath) {
        for (ChannelId c : topo.outputChannels(src)) {
          if (steps[c] == best) firstEntry(c);
        }
      }
    }
    firstRowEnd(src);
  }
  for (ChannelId in = 0; in < channels; ++in) {
    const std::uint16_t remaining = steps[in];
    if (remaining != kNoPath && remaining > 1) {  // <=1: dst(in) == dst
      const NodeId via = topo.channelDst(in);
      for (ChannelId next : topo.outputChannels(via)) {
        if (steps[next] != remaining - 1) continue;
        chanEntry(next, perms.allowed(via, in, next),
                  next != Topology::reverseChannel(in));
      }
    }
    chanRowEnd(in);
  }
}

}  // namespace

void RoutingTable::bfsDestination(NodeId dst,
                                  std::span<const std::uint64_t> channelAlive,
                                  std::vector<ChannelId>& queue) {
  const Topology& topo = perms_->topology();
  auto* steps = &steps_[static_cast<std::size_t>(dst) * channelCount_];
  std::fill(steps, steps + channelCount_, kNoPath);
  queue.clear();
  queue.reserve(channelCount_);
  // Seeds are the input channels of dst (reverses of its outputs); the
  // final distances do not depend on intra-layer queue order, so any seed
  // enumeration order yields the same steps row.
  for (ChannelId out : topo.outputChannels(dst)) {
    const ChannelId c = Topology::reverseChannel(out);
    if (!aliveBit(channelAlive, c)) continue;
    steps[c] = 1;
    queue.push_back(c);
  }
  // Reverse adjacency is implicit: the predecessors of channel c are the
  // input channels of src(c) whose turn onto c is allowed.
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const ChannelId c = queue[head];
    const NodeId via = topo.channelSrc(c);
    const std::uint16_t nextSteps = static_cast<std::uint16_t>(steps[c] + 1);
    for (ChannelId out : topo.outputChannels(via)) {
      const ChannelId in = Topology::reverseChannel(out);
      if (steps[in] != kNoPath) continue;
      if (!aliveBit(channelAlive, in)) continue;
      if (!perms_->allowed(via, in, c)) continue;
      steps[in] = nextSteps;
      queue.push_back(in);
    }
  }
}

RoutingTable RoutingTable::build(const TurnPermissions& perms,
                                 util::ThreadPool* pool,
                                 std::span<const std::uint64_t> channelAlive,
                                 util::SpanRecorder* spans) {
  RoutingTable table;
  table.perms_ = &perms;
  const Topology& topo = perms.topology();
  const NodeId n = topo.nodeCount();
  table.nodeCount_ = n;
  table.channelCount_ = topo.channelCount();
  table.steps_.resize(static_cast<std::size_t>(n) * table.channelCount_);
  pool = effectivePool(pool, n);

  util::ScopedSpan buildSpan(spans, "table_build");
  buildSpan.arg("destinations", n);
  buildSpan.arg("threads", pool != nullptr ? pool->threadCount() : 1);
  buildSpan.arg("parallel", pool != nullptr ? 1 : 0);

  // Per-destination rows are disjoint, so the BFS fans out directly.  The
  // queue is per OS thread and grows once to channelCount_; repeated builds
  // on warm threads allocate nothing here.
  {
    util::ScopedSpan bfsSpan(spans, "bfs");
    util::parallelFor(pool, n, [&table, channelAlive](std::size_t dst) {
      thread_local std::vector<ChannelId> queue;
      table.bfsDestination(static_cast<NodeId>(dst), channelAlive, queue);
    });
  }
  {
    util::ScopedSpan fillSpan(spans, "candidate_fill");
    table.buildSuccessorIndexes(pool);
  }
  invokeTableAuditHook(perms, table, channelAlive);
  return table;
}

void RoutingTable::buildSuccessorIndexes(util::ThreadPool* pool) {
  const NodeId n = nodeCount_;
  const std::uint32_t channels = channelCount_;
  first_.offsets.assign(static_cast<std::size_t>(n) * n + 1, 0);
  next_.offsets.assign(static_cast<std::size_t>(n) * channels + 1, 0);
  nextAny_.offsets.assign(static_cast<std::size_t>(n) * channels + 1, 0);

  if (pool == nullptr || pool->threadCount() <= 1) {
    // Serial: one pass, appending entries and recording cumulative offsets.
    first_.entries.clear();
    next_.entries.clear();
    nextAny_.entries.clear();
    for (NodeId dst = 0; dst < n; ++dst) {
      const auto* steps =
          &steps_[static_cast<std::size_t>(dst) * channels];
      enumerateCandidatesForDst(
          *perms_, n, channels, steps, dst,
          [this](ChannelId c) { first_.entries.push_back(c); },
          [this, n, dst](NodeId src) {
            first_.offsets[static_cast<std::size_t>(dst) * n + src + 1] =
                static_cast<std::uint32_t>(first_.entries.size());
          },
          [this](ChannelId next, bool legal, bool anyTurn) {
            if (legal) next_.entries.push_back(next);
            if (anyTurn) nextAny_.entries.push_back(next);
          },
          [this, channels, dst](ChannelId in) {
            const std::size_t row =
                static_cast<std::size_t>(dst) * channels + in;
            next_.offsets[row + 1] =
                static_cast<std::uint32_t>(next_.entries.size());
            nextAny_.offsets[row + 1] =
                static_cast<std::uint32_t>(nextAny_.entries.size());
          });
    }
    first_.entries.shrink_to_fit();
    next_.entries.shrink_to_fit();
    nextAny_.entries.shrink_to_fit();
    return;
  }

  // Parallel: count per-row sizes into offsets[row + 1] (disjoint
  // destination blocks), serially prefix the per-destination totals, then
  // prefix-and-fill each destination block independently.  The fill replays
  // the same enumeration, so entries land exactly where the serial pass
  // would have appended them.
  std::vector<std::uint64_t> firstBase(n + 1, 0);
  std::vector<std::uint64_t> nextBase(n + 1, 0);
  std::vector<std::uint64_t> anyBase(n + 1, 0);
  util::parallelFor(pool, n, [&](std::size_t d) {
    const NodeId dst = static_cast<NodeId>(d);
    const auto* steps = &steps_[d * channels];
    std::uint32_t firstCount = 0;
    std::uint32_t nextCount = 0;
    std::uint32_t anyCount = 0;
    std::uint64_t firstTotal = 0;
    std::uint64_t nextTotal = 0;
    std::uint64_t anyTotal = 0;
    enumerateCandidatesForDst(
        *perms_, n, channels, steps, dst,
        [&](ChannelId) { ++firstCount; },
        [&](NodeId src) {
          first_.offsets[d * n + src + 1] = firstCount;
          firstTotal += firstCount;
          firstCount = 0;
        },
        [&](ChannelId, bool legal, bool anyTurn) {
          nextCount += legal;
          anyCount += anyTurn;
        },
        [&](ChannelId in) {
          const std::size_t row = d * channels + in;
          next_.offsets[row + 1] = nextCount;
          nextAny_.offsets[row + 1] = anyCount;
          nextTotal += nextCount;
          anyTotal += anyCount;
          nextCount = 0;
          anyCount = 0;
        });
    firstBase[d + 1] = firstTotal;
    nextBase[d + 1] = nextTotal;
    anyBase[d + 1] = anyTotal;
  });
  for (NodeId d = 0; d < n; ++d) {
    firstBase[d + 1] += firstBase[d];
    nextBase[d + 1] += nextBase[d];
    anyBase[d + 1] += anyBase[d];
  }
  assert(firstBase[n] <= 0xffffffffull && nextBase[n] <= 0xffffffffull &&
         anyBase[n] <= 0xffffffffull && "CSR entry count overflows uint32");
  first_.entries.resize(firstBase[n]);
  next_.entries.resize(nextBase[n]);
  nextAny_.entries.resize(anyBase[n]);
  util::parallelFor(pool, n, [&](std::size_t d) {
    const NodeId dst = static_cast<NodeId>(d);
    const auto* steps = &steps_[d * channels];
    // Turn this block's counts into absolute offsets.  The block boundary
    // offset is written by the previous destination's task; nothing reads
    // it until the barrier at the end of this parallelFor.
    std::uint32_t cursor = static_cast<std::uint32_t>(firstBase[d]);
    for (std::size_t row = d * n; row < (d + 1) * n; ++row) {
      cursor += first_.offsets[row + 1];
      first_.offsets[row + 1] = cursor;
    }
    std::uint32_t nextCursor = static_cast<std::uint32_t>(nextBase[d]);
    std::uint32_t anyCursor = static_cast<std::uint32_t>(anyBase[d]);
    for (std::size_t row = d * channels; row < (d + 1) * channels; ++row) {
      nextCursor += next_.offsets[row + 1];
      next_.offsets[row + 1] = nextCursor;
      anyCursor += nextAny_.offsets[row + 1];
      nextAny_.offsets[row + 1] = anyCursor;
    }
    std::uint32_t firstFill = static_cast<std::uint32_t>(firstBase[d]);
    std::uint32_t nextFill = static_cast<std::uint32_t>(nextBase[d]);
    std::uint32_t anyFill = static_cast<std::uint32_t>(anyBase[d]);
    enumerateCandidatesForDst(
        *perms_, n, channels, steps, dst,
        [&](ChannelId c) { first_.entries[firstFill++] = c; },
        [](NodeId) {},
        [&](ChannelId next, bool legal, bool anyTurn) {
          if (legal) next_.entries[nextFill++] = next;
          if (anyTurn) nextAny_.entries[anyFill++] = next;
        },
        [](ChannelId) {});
  });
}

bool RoutingTable::computeDeadDelta(std::span<const std::uint64_t> channelAlive,
                                    std::vector<ChannelId>& newlyDead,
                                    std::vector<std::uint8_t>& deadKey,
                                    std::vector<std::uint8_t>& dirty) const {
  const Topology& topo = perms_->topology();
  const NodeId n = nodeCount_;
  const std::uint32_t channels = channelCount_;

  // A channel was alive in this table iff it seeds its own destination's
  // BFS (steps == 1 in the row of its dst node); dead channels are kNoPath
  // everywhere, including there.
  newlyDead.clear();
  deadKey.assign(channels, 0);
  for (ChannelId c = 0; c < channels; ++c) {
    const bool alivePrev = channelSteps(topo.channelDst(c), c) == 1;
    const bool aliveNow = aliveBit(channelAlive, c);
    if (aliveNow && !alivePrev) return false;  // revival: full build needed
    if (alivePrev && !aliveNow) {
      newlyDead.push_back(c);
      deadKey[c] = 1;
    }
  }

  // Destination d is dirty iff some newly dead channel c participates in a
  // candidate row of d: it starts a minimal path from src(c) (its steps
  // match the best over src(c)'s outputs), or it continues some in-channel
  // e of src(c) (steps(d, e) == steps(d, c) + 1, e != reverse(c) — the
  // any-turn membership test, a superset of the turn-legal one).  Every
  // minimal-path edge of the table appears in one of those rows, so for a
  // clean destination no minimal path from any channel crosses c, and no
  // step value or candidate row besides c's own entries can change.
  dirty.assign(n, 0);
  for (NodeId d = 0; d < n; ++d) {
    const auto* steps = &steps_[static_cast<std::size_t>(d) * channels];
    for (const ChannelId c : newlyDead) {
      const std::uint16_t stepsC = steps[c];
      if (stepsC == kNoPath) continue;
      const NodeId src = topo.channelSrc(c);
      bool hit = false;
      if (src != d) {
        std::uint16_t best = kNoPath;
        for (ChannelId o : topo.outputChannels(src)) {
          best = std::min(best, steps[o]);
        }
        hit = stepsC == best;
      }
      if (!hit) {
        for (ChannelId o : topo.outputChannels(src)) {
          if (o == c) continue;  // reverse(o) == reverse(c): the U-turn pair
          if (steps[Topology::reverseChannel(o)] == stepsC + 1) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        dirty[d] = 1;
        break;
      }
    }
  }
  return true;
}

std::uint32_t RoutingTable::dirtyDestinationCount(
    std::span<const std::uint64_t> channelAlive) const {
  std::vector<ChannelId> newlyDead;
  std::vector<std::uint8_t> deadKey;
  std::vector<std::uint8_t> dirty;
  if (!computeDeadDelta(channelAlive, newlyDead, deadKey, dirty)) {
    return nodeCount_;
  }
  std::uint32_t count = 0;
  for (const std::uint8_t bit : dirty) count += bit;
  return count;
}

RoutingTable RoutingTable::rebuildDead(
    const RoutingTable& prev, util::ThreadPool* pool,
    std::span<const std::uint64_t> channelAlive,
    std::vector<NodeId>* dirtyDestinations, util::SpanRecorder* spans) {
  const TurnPermissions& perms = *prev.perms_;
  const NodeId n = prev.nodeCount_;
  const std::uint32_t channels = prev.channelCount_;
  pool = effectivePool(pool, n);

  util::ScopedSpan buildSpan(spans, "table_build");
  buildSpan.arg("destinations", n);
  buildSpan.arg("threads", pool != nullptr ? pool->threadCount() : 1);
  buildSpan.arg("parallel", pool != nullptr ? 1 : 0);
  buildSpan.arg("incremental", 1);

  std::vector<ChannelId> newlyDead;
  std::vector<std::uint8_t> deadKey;
  std::vector<std::uint8_t> dirty;
  std::uint32_t dirtyCount = 0;
  {
    util::ScopedSpan deltaSpan(spans, "dirty_delta");
    const bool applicable =
        prev.computeDeadDelta(channelAlive, newlyDead, deadKey, dirty);
    assert(applicable && "revived channel needs a full build");
    (void)applicable;
    for (const std::uint8_t bit : dirty) dirtyCount += bit;
    deltaSpan.arg("dirty", dirtyCount);
    deltaSpan.arg("deadChannels", newlyDead.size());
  }
  if (dirtyDestinations != nullptr) {
    dirtyDestinations->clear();
    for (NodeId d = 0; d < n; ++d) {
      if (dirty[d]) dirtyDestinations->push_back(d);
    }
  }

  RoutingTable table;
  table.perms_ = prev.perms_;
  table.nodeCount_ = n;
  table.channelCount_ = channels;
  table.steps_ = prev.steps_;
  util::ScopedSpan bfsSpan(spans, "bfs");
  bfsSpan.arg("dirty", dirtyCount);
  util::parallelFor(pool, n, [&](std::size_t d) {
    if (dirty[d]) {
      thread_local std::vector<ChannelId> queue;
      table.bfsDestination(static_cast<NodeId>(d), channelAlive, queue);
    } else {
      auto* steps = &table.steps_[d * channels];
      for (const ChannelId c : newlyDead) steps[c] = kNoPath;
    }
  });
  bfsSpan.close();
  util::ScopedSpan fillSpan(spans, "candidate_fill");

  // Candidate indexes: dirty destinations re-enumerate from the fresh
  // steps; clean destinations copy prev's rows verbatim (dead channels are
  // members of none of them), dropping only the rows keyed by dead
  // in-channels.  Same count / prefix / fill structure as the parallel
  // build, so the result matches a from-scratch masked build bit for bit.
  table.first_.offsets.assign(static_cast<std::size_t>(n) * n + 1, 0);
  table.next_.offsets.assign(static_cast<std::size_t>(n) * channels + 1, 0);
  table.nextAny_.offsets.assign(static_cast<std::size_t>(n) * channels + 1, 0);
  std::vector<std::uint64_t> firstBase(n + 1, 0);
  std::vector<std::uint64_t> nextBase(n + 1, 0);
  std::vector<std::uint64_t> anyBase(n + 1, 0);
  const auto prevRowSize = [](const Csr& csr, std::size_t row) {
    return csr.offsets[row + 1] - csr.offsets[row];
  };
  util::parallelFor(pool, n, [&](std::size_t d) {
    std::uint64_t firstTotal = 0;
    std::uint64_t nextTotal = 0;
    std::uint64_t anyTotal = 0;
    if (dirty[d]) {
      const NodeId dst = static_cast<NodeId>(d);
      const auto* steps = &table.steps_[d * channels];
      std::uint32_t firstCount = 0;
      std::uint32_t nextCount = 0;
      std::uint32_t anyCount = 0;
      enumerateCandidatesForDst(
          perms, n, channels, steps, dst,
          [&](ChannelId) { ++firstCount; },
          [&](NodeId src) {
            table.first_.offsets[d * n + src + 1] = firstCount;
            firstTotal += firstCount;
            firstCount = 0;
          },
          [&](ChannelId, bool legal, bool anyTurn) {
            nextCount += legal;
            anyCount += anyTurn;
          },
          [&](ChannelId in) {
            const std::size_t row = d * channels + in;
            table.next_.offsets[row + 1] = nextCount;
            table.nextAny_.offsets[row + 1] = anyCount;
            nextTotal += nextCount;
            anyTotal += anyCount;
            nextCount = 0;
            anyCount = 0;
          });
    } else {
      for (NodeId src = 0; src < n; ++src) {
        const std::size_t row = d * n + src;
        const std::uint32_t size = prevRowSize(prev.first_, row);
        table.first_.offsets[row + 1] = size;
        firstTotal += size;
      }
      for (ChannelId in = 0; in < channels; ++in) {
        const std::size_t row = d * channels + in;
        const std::uint32_t nextSize =
            deadKey[in] ? 0 : prevRowSize(prev.next_, row);
        const std::uint32_t anySize =
            deadKey[in] ? 0 : prevRowSize(prev.nextAny_, row);
        table.next_.offsets[row + 1] = nextSize;
        table.nextAny_.offsets[row + 1] = anySize;
        nextTotal += nextSize;
        anyTotal += anySize;
      }
    }
    firstBase[d + 1] = firstTotal;
    nextBase[d + 1] = nextTotal;
    anyBase[d + 1] = anyTotal;
  });
  for (NodeId d = 0; d < n; ++d) {
    firstBase[d + 1] += firstBase[d];
    nextBase[d + 1] += nextBase[d];
    anyBase[d + 1] += anyBase[d];
  }
  table.first_.entries.resize(firstBase[n]);
  table.next_.entries.resize(nextBase[n]);
  table.nextAny_.entries.resize(anyBase[n]);
  util::parallelFor(pool, n, [&](std::size_t d) {
    std::uint32_t firstFill = static_cast<std::uint32_t>(firstBase[d]);
    std::uint32_t nextFill = static_cast<std::uint32_t>(nextBase[d]);
    std::uint32_t anyFill = static_cast<std::uint32_t>(anyBase[d]);
    std::uint32_t cursor = firstFill;
    for (std::size_t row = d * n; row < (d + 1) * n; ++row) {
      cursor += table.first_.offsets[row + 1];
      table.first_.offsets[row + 1] = cursor;
    }
    std::uint32_t nextCursor = nextFill;
    std::uint32_t anyCursor = anyFill;
    for (std::size_t row = d * channels; row < (d + 1) * channels; ++row) {
      nextCursor += table.next_.offsets[row + 1];
      table.next_.offsets[row + 1] = nextCursor;
      anyCursor += table.nextAny_.offsets[row + 1];
      table.nextAny_.offsets[row + 1] = anyCursor;
    }
    if (dirty[d]) {
      const NodeId dst = static_cast<NodeId>(d);
      const auto* steps = &table.steps_[d * channels];
      enumerateCandidatesForDst(
          perms, n, channels, steps, dst,
          [&](ChannelId c) { table.first_.entries[firstFill++] = c; },
          [](NodeId) {},
          [&](ChannelId next, bool legal, bool anyTurn) {
            if (legal) table.next_.entries[nextFill++] = next;
            if (anyTurn) table.nextAny_.entries[anyFill++] = next;
          },
          [](ChannelId) {});
    } else {
      const std::size_t firstRow = d * n;
      const std::size_t firstCount =
          prev.first_.offsets[firstRow + n] - prev.first_.offsets[firstRow];
      std::memcpy(table.first_.entries.data() + firstFill,
                  prev.first_.entries.data() + prev.first_.offsets[firstRow],
                  firstCount * sizeof(ChannelId));
      const auto copyRow = [](const Csr& from, std::size_t row, Csr& to,
                              std::uint32_t& fill) {
        const std::uint32_t begin = from.offsets[row];
        const std::uint32_t size = from.offsets[row + 1] - begin;
        std::memcpy(to.entries.data() + fill, from.entries.data() + begin,
                    size * sizeof(ChannelId));
        fill += size;
      };
      for (ChannelId in = 0; in < channels; ++in) {
        if (deadKey[in]) continue;
        const std::size_t row = d * channels + in;
        copyRow(prev.next_, row, table.next_, nextFill);
        copyRow(prev.nextAny_, row, table.nextAny_, anyFill);
      }
    }
  });
  invokeTableAuditHook(*table.perms_, table, channelAlive);
  return table;
}

bool RoutingTable::identicalTo(const RoutingTable& other) const noexcept {
  const auto sameCsr = [](const Csr& a, const Csr& b) {
    return a.offsets == b.offsets && a.entries == b.entries;
  };
  return nodeCount_ == other.nodeCount_ &&
         channelCount_ == other.channelCount_ && steps_ == other.steps_ &&
         sameCsr(first_, other.first_) && sameCsr(next_, other.next_) &&
         sameCsr(nextAny_, other.nextAny_);
}

std::uint64_t RoutingTable::fingerprint() const noexcept {
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  mix(nodeCount_);
  mix(channelCount_);
  for (const std::uint16_t s : steps_) mix(s);
  for (const Csr* csr : {&first_, &next_, &nextAny_}) {
    for (const std::uint32_t o : csr->offsets) mix(o);
    for (const ChannelId e : csr->entries) mix(e);
  }
  return hash;
}

RoutingTable RoutingTable::remapComponents(
    const TurnPermissions& hostPerms, std::span<const ComponentMapping> parts) {
  RoutingTable host;
  host.perms_ = &hostPerms;
  const Topology& topo = hostPerms.topology();
  host.nodeCount_ = topo.nodeCount();
  host.channelCount_ = topo.channelCount();
  const std::size_t n = host.nodeCount_;
  const std::size_t channels = host.channelCount_;
  host.steps_.assign(n * channels, kNoPath);

  // Scatter the per-destination step fields.  Components are node- and
  // channel-disjoint, so writes never collide.
  for (const ComponentMapping& part : parts) {
    const RoutingTable& sub = *part.table;
    for (NodeId subDst = 0; subDst < sub.nodeCount_; ++subDst) {
      const std::size_t hostRow =
          static_cast<std::size_t>(part.nodeToHost[subDst]) * channels;
      const std::size_t subRow =
          static_cast<std::size_t>(subDst) * sub.channelCount_;
      for (ChannelId c = 0; c < sub.channelCount_; ++c) {
        host.steps_[hostRow + part.channelToHost[c]] = sub.steps_[subRow + c];
      }
    }
  }

  // Rebuild the three CSR candidate indexes by translating each sub row
  // into its host row.  Entry order within a row is preserved: sub node ids
  // ascend with host ids (ComponentMapping contract), so a sub adjacency
  // scan visits neighbors in the same relative order a host scan would.
  const auto translate = [&parts](auto rowsPerDst, auto subRowsOf,
                                  auto hostRowOf, Csr RoutingTable::*csr,
                                  RoutingTable& out) {
    std::vector<std::uint32_t> sizes(rowsPerDst + 1, 0);
    for (const ComponentMapping& part : parts) {
      const Csr& subCsr = part.table->*csr;
      const std::size_t subRows = subRowsOf(*part.table);
      for (std::size_t r = 0; r < subRows; ++r) {
        sizes[hostRowOf(part, r) + 1] +=
            subCsr.offsets[r + 1] - subCsr.offsets[r];
      }
    }
    Csr& hostCsr = out.*csr;
    hostCsr.offsets.assign(sizes.begin(), sizes.end());
    for (std::size_t r = 1; r < hostCsr.offsets.size(); ++r) {
      hostCsr.offsets[r] += hostCsr.offsets[r - 1];
    }
    hostCsr.entries.assign(hostCsr.offsets.back(), 0);
    for (const ComponentMapping& part : parts) {
      const Csr& subCsr = part.table->*csr;
      const std::size_t subRows = subRowsOf(*part.table);
      for (std::size_t r = 0; r < subRows; ++r) {
        std::uint32_t cursor = hostCsr.offsets[hostRowOf(part, r)];
        for (std::uint32_t e = subCsr.offsets[r]; e < subCsr.offsets[r + 1];
             ++e) {
          hostCsr.entries[cursor++] = part.channelToHost[subCsr.entries[e]];
        }
      }
    }
  };

  translate(
      n * n,
      [](const RoutingTable& sub) {
        return static_cast<std::size_t>(sub.nodeCount_) * sub.nodeCount_;
      },
      [n](const ComponentMapping& part, std::size_t r) {
        const std::size_t subN = part.table->nodeCount_;
        return static_cast<std::size_t>(part.nodeToHost[r / subN]) * n +
               part.nodeToHost[r % subN];
      },
      &RoutingTable::first_, host);
  const auto channelRows = [](const RoutingTable& sub) {
    return static_cast<std::size_t>(sub.nodeCount_) * sub.channelCount_;
  };
  const auto channelRowOf = [channels](const ComponentMapping& part,
                                       std::size_t r) {
    const std::size_t subChannels = part.table->channelCount_;
    return static_cast<std::size_t>(part.nodeToHost[r / subChannels]) *
               channels +
           part.channelToHost[r % subChannels];
  };
  translate(n * channels, channelRows, channelRowOf, &RoutingTable::next_,
            host);
  translate(n * channels, channelRows, channelRowOf, &RoutingTable::nextAny_,
            host);
  return host;
}

std::uint16_t RoutingTable::distance(NodeId src, NodeId dst) const noexcept {
  if (src == dst) return 0;
  std::uint16_t best = kNoPath;
  for (ChannelId c : perms_->topology().outputChannels(src)) {
    best = std::min(best, channelSteps(dst, c));
  }
  return best;
}

void RoutingTable::firstChannels(NodeId src, NodeId dst,
                                 std::vector<ChannelId>& out) const {
  const auto row = firstChannels(src, dst);
  out.insert(out.end(), row.begin(), row.end());
}

void RoutingTable::nextChannels(ChannelId in, NodeId dst,
                                std::vector<ChannelId>& out) const {
  const auto row = nextChannels(in, dst);
  out.insert(out.end(), row.begin(), row.end());
}

void RoutingTable::nextChannelsAnyTurn(ChannelId in, NodeId dst,
                                       std::vector<ChannelId>& out) const {
  const auto row = nextChannelsAnyTurn(in, dst);
  out.insert(out.end(), row.begin(), row.end());
}

bool RoutingTable::allPairsConnected() const noexcept {
  const NodeId n = perms_->topology().nodeCount();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s != d && distance(s, d) == kNoPath) return false;
    }
  }
  return true;
}

double RoutingTable::averagePathLength() const {
  const NodeId n = perms_->topology().nodeCount();
  double sum = 0.0;
  std::uint64_t pairs = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::uint16_t dist = distance(s, d);
      if (dist == kNoPath) continue;
      sum += dist;
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

}  // namespace downup::routing
