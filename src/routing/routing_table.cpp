#include "routing/routing_table.hpp"

#include <algorithm>

namespace downup::routing {

RoutingTable RoutingTable::build(const TurnPermissions& perms) {
  RoutingTable table;
  table.perms_ = &perms;
  const Topology& topo = perms.topology();
  const NodeId n = topo.nodeCount();
  table.channelCount_ = topo.channelCount();
  table.steps_.assign(static_cast<std::size_t>(n) * table.channelCount_,
                      kNoPath);

  // Reverse adjacency is implicit: the predecessors of channel c are the
  // input channels of src(c) whose turn onto c is allowed.
  std::vector<ChannelId> queue;
  queue.reserve(table.channelCount_);
  for (NodeId dst = 0; dst < n; ++dst) {
    auto* steps = &table.steps_[static_cast<std::size_t>(dst) *
                                table.channelCount_];
    queue.clear();
    for (ChannelId c = 0; c < table.channelCount_; ++c) {
      if (topo.channelDst(c) == dst) {
        steps[c] = 1;
        queue.push_back(c);
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const ChannelId c = queue[head];
      const NodeId via = topo.channelSrc(c);
      const std::uint16_t nextSteps = static_cast<std::uint16_t>(steps[c] + 1);
      // Predecessor channels: inputs of `via` = reverses of its outputs.
      for (ChannelId out : topo.outputChannels(via)) {
        const ChannelId in = Topology::reverseChannel(out);
        if (steps[in] != kNoPath) continue;
        if (!perms.allowed(via, in, c)) continue;
        steps[in] = nextSteps;
        queue.push_back(in);
      }
    }
  }
  return table;
}

std::uint16_t RoutingTable::distance(NodeId src, NodeId dst) const noexcept {
  if (src == dst) return 0;
  std::uint16_t best = kNoPath;
  for (ChannelId c : perms_->topology().outputChannels(src)) {
    best = std::min(best, channelSteps(dst, c));
  }
  return best;
}

void RoutingTable::firstChannels(NodeId src, NodeId dst,
                                 std::vector<ChannelId>& out) const {
  const std::uint16_t best = distance(src, dst);
  if (best == kNoPath || best == 0) return;
  for (ChannelId c : perms_->topology().outputChannels(src)) {
    if (channelSteps(dst, c) == best) out.push_back(c);
  }
}

void RoutingTable::nextChannels(ChannelId in, NodeId dst,
                                std::vector<ChannelId>& out) const {
  const Topology& topo = perms_->topology();
  const NodeId via = topo.channelDst(in);
  const std::uint16_t remaining = channelSteps(dst, in);
  if (remaining == kNoPath || remaining <= 1) return;  // <=1: v == dst
  for (ChannelId next : topo.outputChannels(via)) {
    if (channelSteps(dst, next) == remaining - 1 &&
        perms_->allowed(via, in, next)) {
      out.push_back(next);
    }
  }
}

void RoutingTable::nextChannelsAnyTurn(ChannelId in, NodeId dst,
                                       std::vector<ChannelId>& out) const {
  const Topology& topo = perms_->topology();
  const NodeId via = topo.channelDst(in);
  const std::uint16_t remaining = channelSteps(dst, in);
  if (remaining == kNoPath || remaining <= 1) return;
  for (ChannelId next : topo.outputChannels(via)) {
    if (next == Topology::reverseChannel(in)) continue;
    if (channelSteps(dst, next) == remaining - 1) out.push_back(next);
  }
}

bool RoutingTable::allPairsConnected() const noexcept {
  const NodeId n = perms_->topology().nodeCount();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s != d && distance(s, d) == kNoPath) return false;
    }
  }
  return true;
}

double RoutingTable::averagePathLength() const {
  const NodeId n = perms_->topology().nodeCount();
  double sum = 0.0;
  std::uint64_t pairs = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::uint16_t dist = distance(s, d);
      if (dist == kNoPath) continue;
      sum += dist;
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

}  // namespace downup::routing
