// The original 2D-mesh turn model (Glass & Ni, reference [1] of the paper):
// the foundation the 2D tree-based turn models generalise.  Implemented on
// the same machinery as the irregular-network routings — mesh channels are
// classified into the four geographic directions and each algorithm is a
// TurnSet — so the identical CDG checker, routing tables and simulator
// apply.
//
// Direction mapping (reverse pairs must match Dir's reverse pairs):
//   west  (x decreases) -> L_CROSS      east  (x increases) -> R_CROSS
//   north (y decreases) -> LU_CROSS     south (y increases) -> RD_CROSS
//
// Prohibited turns (2 of the 8 mesh turns each, one per rotational sense;
// Glass & Ni's analysis, re-verified here by the CDG checker):
//   west-first      {N->W, S->W}   — all west hops happen first
//   north-last      {N->E, N->W}   — once heading north, stay north
//   negative-first  {E->N, S->W}   — negative hops (west, north) first
//   xy              {N->E, N->W, S->E, S->W} — dimension order (x then y),
//                                    the deterministic baseline
#pragma once

#include "routing/algorithm.hpp"

namespace downup::routing {

enum class MeshTurnModel : std::uint8_t {
  kWestFirst,
  kNorthLast,
  kNegativeFirst,
  kXY,
};

std::string_view toString(MeshTurnModel model) noexcept;

/// Classifies the channels of a `topo::mesh(width, height)`-shaped topology
/// (node id == y * width + x) into the four mesh directions.  Throws
/// std::invalid_argument on any link that is not a unit horizontal or
/// vertical mesh link.
DirectionMap classifyMesh(const Topology& topo, NodeId width, NodeId height);

/// The prohibited-turn set of each algorithm.
TurnSet meshTurnSet(MeshTurnModel model) noexcept;

/// Builds the routing (classifier + turn set + shortest-path table).
Routing buildMeshRouting(const Topology& topo, NodeId width, NodeId height,
                         MeshTurnModel model);

}  // namespace downup::routing
