// Channel-dependency-graph analysis.
//
// In wormhole switching a deadlock requires a cycle of channels each waiting
// on the next; an adaptive routing relation is deadlock-free iff the graph
// whose vertices are channels and whose edges are the *allowed turns*
// between consecutive channels is acyclic (Dally & Seitz; Definition 7 and
// Lemma 1 of the paper express the same through turn cycles).
#pragma once

#include <vector>

#include "routing/turns.hpp"

namespace downup::routing {

struct CdgResult {
  bool acyclic = false;
  /// When cyclic: a witness turn cycle as a channel sequence
  /// c0 -> c1 -> ... -> c0 (first element repeated at the end is omitted).
  std::vector<ChannelId> cycle;
};

/// Checks acyclicity of the channel-dependency graph induced by `perms`.
CdgResult checkChannelDependencies(const TurnPermissions& perms);

/// Is channel `to` reachable from channel `from` by traversing allowed
/// turns?  (`from` itself counts as traversed; reachability of `from` from
/// itself requires a genuine cycle.)
bool channelReachable(const TurnPermissions& perms, ChannelId from,
                      ChannelId to);

}  // namespace downup::routing
