// Reconstructed L-turn routing (Jouraku, Funahashi, Amano, Koibuchi,
// ICPP 2001) — the paper's primary baseline.  See DESIGN.md §5 for the
// reconstruction and its deadlock-freedom argument: six coordinate
// directions shared by tree and cross links; prohibited turns are all
// down->up, all horizontal->up, and L->R.
#pragma once

#include "routing/algorithm.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::routing {

Routing buildLTurn(const Topology& topo, const tree::CoordinatedTree& ct);

}  // namespace downup::routing
