// Reconstructed Left/Right routing — the second routing algorithm proposed
// on the 2D turn model (Jouraku, Funahashi, Amano, Koibuchi, I-SPAN 2002).
//
// Reconstruction (the original text is unavailable here; see DESIGN.md §5):
// with the six coordinate directions shared by tree and cross links, every
// turn from a rightward direction {RU, R, RD} onto a leftward direction
// {LU, L, LD} is prohibited (9 turns).  Deadlock-freedom argument: around
// any channel cycle the number of left->right and right->left class
// transitions is equal, so a cycle containing both classes needs a
// prohibited right->left turn; a single-class cycle is monotone in X.
// Connectivity: tree-up channels are leftward (LU), tree-down channels
// rightward (RD), and left->right turns stay legal, so every up*/down*
// tree path survives.
#pragma once

#include "routing/algorithm.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::routing {

/// The Left/Right turn rule (9 prohibitions on the 6 coordinate directions).
TurnSet leftRightTurnSet() noexcept;

Routing buildLeftRight(const Topology& topo, const tree::CoordinatedTree& ct);

}  // namespace downup::routing
