#include "routing/verify.hpp"

#include <algorithm>
#include <sstream>

#include "routing/cdg.hpp"
#include "topology/properties.hpp"

namespace downup::routing {

std::string VerifyReport::describe() const {
  std::ostringstream out;
  out << (deadlockFree ? "deadlock-free" : "HAS CHANNEL-DEPENDENCY CYCLE")
      << ", " << (connected ? "connected" : "NOT CONNECTED");
  if (unreachablePairs > 0) out << " (" << unreachablePairs << " pairs unreachable)";
  out << ", avg path " << averagePathLength << ", avg stretch "
      << averageStretch << ", max stretch " << maxStretch;
  return out.str();
}

VerifyReport verifyRouting(const Routing& routing) {
  VerifyReport report;
  const auto cdg = checkChannelDependencies(routing.permissions());
  report.deadlockFree = cdg.acyclic;
  report.cycleWitness = cdg.cycle;

  const RoutingTable& table = routing.table();
  const Topology& topo = table.topology();
  const NodeId n = topo.nodeCount();
  double pathSum = 0.0;
  double stretchSum = 0.0;
  std::uint64_t pairs = 0;
  for (NodeId s = 0; s < n; ++s) {
    const auto graphDist = topo::bfsDistances(topo, s);
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::uint16_t legal = table.distance(s, d);
      if (legal == kNoPath) {
        ++report.unreachablePairs;
        continue;
      }
      pathSum += legal;
      const double stretch =
          graphDist[d] == 0 ? 1.0
                            : static_cast<double>(legal) /
                                  static_cast<double>(graphDist[d]);
      stretchSum += stretch;
      report.maxStretch = std::max(report.maxStretch, stretch);
      ++pairs;
    }
  }
  report.connected = report.unreachablePairs == 0 && n > 0;
  report.averagePathLength =
      pairs == 0 ? 0.0 : pathSum / static_cast<double>(pairs);
  report.averageStretch =
      pairs == 0 ? 0.0 : stretchSum / static_cast<double>(pairs);
  return report;
}

}  // namespace downup::routing
