#include "routing/updown.hpp"

#include "tree/dfs_tree.hpp"

namespace downup::routing {

Routing buildUpDown(const Topology& topo, const tree::CoordinatedTree& ct) {
  TurnPermissions perms(topo, classifyUpDown(topo, ct), upDownTurnSet());
  return Routing("updown-bfs", std::move(perms));
}

Routing buildUpDownDfs(const Topology& topo, NodeId root) {
  const tree::DfsTree dt = tree::DfsTree::build(topo, root);
  TurnPermissions perms(topo, classifyUpDownDfs(topo, dt), upDownTurnSet());
  return Routing("updown-dfs", std::move(perms));
}

}  // namespace downup::routing
