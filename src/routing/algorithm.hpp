// A Routing bundles a named turn-permission assignment with its routing
// table.  TurnPermissions lives behind a unique_ptr so the table's internal
// reference stays valid when a Routing is moved.  The Topology (and, for the
// classifiers, the spanning tree) must outlive the Routing.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "routing/routing_table.hpp"

namespace downup::routing {

class Routing {
 public:
  /// `pool` (optional) parallelises the table build; output is identical
  /// at any thread count.  `spans` (optional) records the table-build
  /// stage spans.  Neither pointer is retained.
  Routing(std::string name, TurnPermissions perms,
          util::ThreadPool* pool = nullptr,
          util::SpanRecorder* spans = nullptr)
      : name_(std::move(name)),
        perms_(std::make_unique<TurnPermissions>(std::move(perms))),
        table_(RoutingTable::build(*perms_, pool, {}, spans)) {}

  const std::string& name() const noexcept { return name_; }
  const TurnPermissions& permissions() const noexcept { return *perms_; }
  TurnPermissions& permissionsMutable() noexcept { return *perms_; }
  const RoutingTable& table() const noexcept { return table_; }

  /// Recomputes the table after permissions changed (e.g. a release pass).
  void rebuildTable(util::ThreadPool* pool = nullptr) {
    table_ = RoutingTable::build(*perms_, pool);
  }

 private:
  std::string name_;
  std::unique_ptr<TurnPermissions> perms_;
  RoutingTable table_;
};

}  // namespace downup::routing
