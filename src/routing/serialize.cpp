#include "routing/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace downup::routing {

namespace {
[[noreturn]] void fail(std::size_t lineNo, const std::string& message) {
  throw std::runtime_error("routing load: line " + std::to_string(lineNo) +
                           ": " + message);
}
}  // namespace

Dir dirFromString(std::string_view name) {
  for (std::size_t i = 0; i < kDirCount; ++i) {
    const Dir d = static_cast<Dir>(i);
    if (toString(d) == name) return d;
  }
  throw std::invalid_argument("unknown direction name '" + std::string(name) +
                              "'");
}

void saveRouting(const Routing& routing, std::ostream& out) {
  const TurnPermissions& perms = routing.permissions();
  const Topology& topo = perms.topology();
  out << "downup-routing v1\n";
  out << "name " << routing.name() << "\n";
  out << "channels " << topo.channelCount() << "\n";
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    out << "dir " << c << " " << toString(perms.dir(c)) << "\n";
  }
  for (const auto& [from, to] : perms.global().prohibitedList()) {
    out << "prohibit " << toString(from) << " " << toString(to) << "\n";
  }
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    for (std::size_t i = 0; i < kDirCount; ++i) {
      for (std::size_t j = 0; j < kDirCount; ++j) {
        const Dir d1 = static_cast<Dir>(i);
        const Dir d2 = static_cast<Dir>(j);
        if (perms.isReleasedAt(v, d1, d2)) {
          out << "release " << v << " " << toString(d1) << " " << toString(d2)
              << "\n";
        }
        if (perms.isBlockedAt(v, d1, d2)) {
          out << "block " << v << " " << toString(d1) << " " << toString(d2)
              << "\n";
        }
      }
    }
  }
}

void saveRoutingFile(const Routing& routing, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("routing save: cannot open " + path);
  saveRouting(routing, out);
}

Routing loadRouting(const Topology& topo, std::istream& in) {
  std::string lineText;
  std::size_t lineNo = 0;
  bool sawMagic = false;
  std::string name = "loaded";
  std::optional<DirectionMap> dirs;
  TurnSet global = TurnSet::allAllowed();
  struct Override {
    bool isBlock;
    NodeId node;
    Dir from;
    Dir to;
  };
  std::vector<Override> overrides;

  const auto parseDir = [&lineNo](std::istringstream& line) {
    std::string word;
    if (!(line >> word)) fail(lineNo, "expected a direction name");
    try {
      return dirFromString(word);
    } catch (const std::invalid_argument& e) {
      fail(lineNo, e.what());
    }
  };

  while (std::getline(in, lineText)) {
    ++lineNo;
    std::istringstream line(lineText);
    std::string keyword;
    if (!(line >> keyword) || keyword.starts_with('#')) continue;
    if (!sawMagic) {
      std::string version;
      if (keyword != "downup-routing" || !(line >> version) || version != "v1") {
        fail(lineNo, "expected header 'downup-routing v1'");
      }
      sawMagic = true;
      continue;
    }
    if (keyword == "name") {
      line >> name;
    } else if (keyword == "channels") {
      std::uint32_t count = 0;
      if (!(line >> count)) fail(lineNo, "bad channel count");
      if (count != topo.channelCount()) {
        fail(lineNo, "channel count does not match the topology");
      }
      dirs.emplace(count, Dir::kLuTree);
    } else if (keyword == "dir") {
      if (!dirs) fail(lineNo, "'dir' before 'channels'");
      ChannelId c = 0;
      if (!(line >> c) || c >= dirs->size()) fail(lineNo, "bad channel id");
      (*dirs)[c] = parseDir(line);
    } else if (keyword == "prohibit") {
      const Dir from = parseDir(line);
      const Dir to = parseDir(line);
      global.prohibit(from, to);
    } else if (keyword == "release" || keyword == "block") {
      NodeId v = 0;
      if (!(line >> v) || v >= topo.nodeCount()) fail(lineNo, "bad node id");
      const Dir from = parseDir(line);
      const Dir to = parseDir(line);
      overrides.push_back({keyword == "block", v, from, to});
    } else {
      fail(lineNo, "unknown keyword '" + keyword + "'");
    }
  }
  if (!dirs) throw std::runtime_error("routing load: missing 'channels'");

  TurnPermissions perms(topo, *std::move(dirs), global);
  for (const Override& o : overrides) {
    if (o.isBlock) {
      perms.blockAt(o.node, o.from, o.to);
    } else {
      perms.releaseAt(o.node, o.from, o.to);
    }
  }
  return Routing(name, std::move(perms));
}

Routing loadRoutingFile(const Topology& topo, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("routing load: cannot open " + path);
  return loadRouting(topo, in);
}

void exportSwitchConfig(const Routing& routing, NodeId node,
                        std::ostream& out) {
  const TurnPermissions& perms = routing.permissions();
  const Topology& topo = perms.topology();
  const auto neighbors = topo.neighbors(node);
  const auto outputs = topo.outputChannels(node);

  out << "switch " << node << " (" << routing.name() << "), "
      << neighbors.size() << " ports\n";
  out << std::left << std::setw(14) << "in\\out";
  for (NodeId peer : neighbors) {
    out << std::setw(8) << ("->" + std::to_string(peer));
  }
  out << "\n";
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    const ChannelId in = Topology::reverseChannel(outputs[i]);
    std::ostringstream label;
    label << "<-" << neighbors[i] << " " << toString(perms.dir(in));
    out << std::setw(14) << label.str();
    for (ChannelId candidate : outputs) {
      out << std::setw(8)
          << (perms.allowed(node, in, candidate) ? "yes" : "-");
    }
    out << "\n";
  }
}

}  // namespace downup::routing
