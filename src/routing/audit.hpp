// Process-global audit hook for routing-table construction.
//
// The verify subsystem (src/verify/) wants to observe every table the
// process ever builds, but routing cannot link verify (verify sits above
// routing in the dependency DAG).  The seam is a single global function
// pointer: RoutingTable::build and rebuildDead invoke it — when installed —
// with the finished table, the rule it was built against and the alive
// mask.  The hook must be read-only on its arguments and must not build
// tables itself.  Installation is not synchronised with concurrent builds:
// install before construction starts (the observer contract every other
// hook in this repo follows).
#pragma once

#include <cstdint>
#include <span>

namespace downup::routing {

class RoutingTable;
class TurnPermissions;

using TableAuditHook = void (*)(void* ctx, const TurnPermissions& perms,
                                const RoutingTable& table,
                                std::span<const std::uint64_t> channelAlive);

/// Installs (or with nullptr clears) the global hook.
void setTableAuditHook(TableAuditHook hook, void* ctx) noexcept;

/// Invoked by RoutingTable::build / rebuildDead; no-op when unset.
void invokeTableAuditHook(const TurnPermissions& perms,
                          const RoutingTable& table,
                          std::span<const std::uint64_t> channelAlive) noexcept;

}  // namespace downup::routing
