#include "routing/leftright.hpp"

namespace downup::routing {

TurnSet leftRightTurnSet() noexcept {
  TurnSet set = TurnSet::allAllowed();
  for (Dir right : {Dir::kRuCross, Dir::kRCross, Dir::kRdCross}) {
    for (Dir left : {Dir::kLuCross, Dir::kLCross, Dir::kLdCross}) {
      set.prohibit(right, left);
    }
  }
  return set;
}

Routing buildLeftRight(const Topology& topo, const tree::CoordinatedTree& ct) {
  TurnPermissions perms(topo, classifyCoordinate(topo, ct),
                        leftRightTurnSet());
  return Routing("leftright", std::move(perms));
}

}  // namespace downup::routing
