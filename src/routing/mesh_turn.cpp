#include "routing/mesh_turn.hpp"

#include <stdexcept>

namespace downup::routing {

namespace {
// Geographic aliases for the shared direction enum.
constexpr Dir kWest = Dir::kLCross;
constexpr Dir kEast = Dir::kRCross;
constexpr Dir kNorth = Dir::kLuCross;
constexpr Dir kSouth = Dir::kRdCross;
}  // namespace

std::string_view toString(MeshTurnModel model) noexcept {
  switch (model) {
    case MeshTurnModel::kWestFirst: return "west-first";
    case MeshTurnModel::kNorthLast: return "north-last";
    case MeshTurnModel::kNegativeFirst: return "negative-first";
    case MeshTurnModel::kXY: return "xy";
  }
  return "?";
}

DirectionMap classifyMesh(const Topology& topo, NodeId width, NodeId height) {
  if (width == 0 || height == 0 ||
      topo.nodeCount() != width * height) {
    throw std::invalid_argument("classifyMesh: node count != width * height");
  }
  DirectionMap dirs(topo.channelCount());
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    const NodeId src = topo.channelSrc(c);
    const NodeId dst = topo.channelDst(c);
    const auto x1 = static_cast<std::int64_t>(src % width);
    const auto y1 = static_cast<std::int64_t>(src / width);
    const auto x2 = static_cast<std::int64_t>(dst % width);
    const auto y2 = static_cast<std::int64_t>(dst / width);
    const std::int64_t dx = x2 - x1;
    const std::int64_t dy = y2 - y1;
    if (dx == 1 && dy == 0) {
      dirs[c] = kEast;
    } else if (dx == -1 && dy == 0) {
      dirs[c] = kWest;
    } else if (dx == 0 && dy == 1) {
      dirs[c] = kSouth;
    } else if (dx == 0 && dy == -1) {
      dirs[c] = kNorth;
    } else {
      throw std::invalid_argument(
          "classifyMesh: link is not a unit mesh link");
    }
  }
  return dirs;
}

TurnSet meshTurnSet(MeshTurnModel model) noexcept {
  TurnSet set = TurnSet::allAllowed();
  switch (model) {
    case MeshTurnModel::kWestFirst:
      set.prohibit(kNorth, kWest);
      set.prohibit(kSouth, kWest);
      break;
    case MeshTurnModel::kNorthLast:
      set.prohibit(kNorth, kEast);
      set.prohibit(kNorth, kWest);
      break;
    case MeshTurnModel::kNegativeFirst:
      set.prohibit(kEast, kNorth);
      set.prohibit(kSouth, kWest);
      break;
    case MeshTurnModel::kXY:
      set.prohibit(kNorth, kEast);
      set.prohibit(kNorth, kWest);
      set.prohibit(kSouth, kEast);
      set.prohibit(kSouth, kWest);
      break;
  }
  return set;
}

Routing buildMeshRouting(const Topology& topo, NodeId width, NodeId height,
                         MeshTurnModel model) {
  TurnPermissions perms(topo, classifyMesh(topo, width, height),
                        meshTurnSet(model));
  return Routing(std::string(toString(model)), std::move(perms));
}

}  // namespace downup::routing
