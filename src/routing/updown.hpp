// The up*/down* baselines (Schroeder et al., Autonet; Robles et al. for the
// DFS variant): every packet travels zero or more "up" channels followed by
// zero or more "down" channels, enforced by the single prohibited turn
// down -> up.
#pragma once

#include "routing/algorithm.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::routing {

/// BFS up*/down* over the coordinated tree's levels (ties broken by id).
Routing buildUpDown(const Topology& topo, const tree::CoordinatedTree& ct);

/// DFS up*/down*: channels point "up" toward smaller DFS visit indices.
Routing buildUpDownDfs(const Topology& topo, NodeId root = 0);

}  // namespace downup::routing
