// Turn-restricted shortest-path routing tables.
//
// Because legality of a hop depends on the direction of the channel a packet
// arrived on, shortest paths are computed on the *channel graph*: vertices
// are channels, and channel c may be followed by channel c' when
// dst(c) == src(c') and the turn (dir(c) -> dir(c')) is allowed at that
// node.  For every destination d we run one reverse BFS over that graph,
// yielding steps(d, c) = minimal number of channels on an allowed path that
// starts by traversing c and ends at d.
//
// The adaptive routing relation the simulator consumes falls out directly:
// at node v (arrived via `in`, heading to d) every allowed output channel o
// with steps(d, o) == steps(d, in) - 1 lies on a globally minimal legal
// path, and all such channels are candidates (Section 5 of the paper routes
// on "the shortest possible paths", choosing among them at random).
//
// Route computation is throughput-critical for the simulator, so build()
// additionally materialises the candidate relation as three CSR successor
// indexes (first hop per (dst, node); legal and any-turn continuations per
// (dst, in-channel)).  The simulator's allocation fast path iterates those
// via spans — no per-header scratch vectors, no candidate recomputation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "routing/turns.hpp"
#include "util/span_recorder.hpp"

namespace downup::util {
class ThreadPool;
}  // namespace downup::util

namespace downup::routing {

inline constexpr std::uint16_t kNoPath = 0xffff;

/// Destination count below which RoutingTable::build/rebuildDead run
/// serially even when handed a multi-thread pool: per-destination BFS work
/// at these sizes is smaller than the pool's dispatch overhead (measured in
/// results/BENCH_build.json — the parallel path loses ~20% up through a few
/// hundred switches on this container).  Cutover changes scheduling only;
/// outputs stay bit-for-bit identical either way.
inline constexpr std::uint32_t kParallelBuildMinDestinations = 256;

class RoutingTable {
 public:
  /// Builds the table; O(destinations x channels x avg-degree) work.
  ///
  /// Per-destination rows are independent, so the reverse BFS and the
  /// successor-index construction fan out over `pool` (nullptr, a
  /// single-thread pool, or fewer than kParallelBuildMinDestinations
  /// destinations run serially).  Output is bit-for-bit identical at
  /// any thread count: BFS distances do not depend on intra-layer visit
  /// order, and the parallel index build reproduces the serial enumeration
  /// exactly via per-destination counting + prefix sums.
  ///
  /// `channelAlive` (optional, one bit per channel, empty = all alive)
  /// masks dead channels out of the table: they seed no BFS, relax no
  /// predecessor, keep kNoPath steps everywhere, and appear in no candidate
  /// row — the contract remapComponents() establishes for dead links, so a
  /// running simulator can consume a masked table directly.
  ///
  /// `spans` (optional) records a `table_build` span with `bfs` and
  /// `candidate_fill` children annotated with destination/thread counts;
  /// nullptr (the default) takes a branch-per-stage and nothing else.
  static RoutingTable build(const TurnPermissions& perms,
                            util::ThreadPool* pool = nullptr,
                            std::span<const std::uint64_t> channelAlive = {},
                            util::SpanRecorder* spans = nullptr);

  /// Incremental rebuild after channel deaths: produces a table with
  /// contents identical to build(prev.permissions(), pool, channelAlive)
  /// while re-running the per-destination BFS + candidate enumeration only
  /// for *dirty* destinations — those where some newly dead channel
  /// participates in a candidate row (it starts a minimal path from its
  /// source node, or some other channel's minimal continuation set contains
  /// it).  Clean destinations provably keep every step value and candidate
  /// row (the dead channels were on none of their minimal paths), so their
  /// rows are copied, with dead channels pinned to kNoPath and rows keyed
  /// by dead in-channels emptied.
  ///
  /// Precondition: `channelAlive` may only clear bits relative to the set
  /// prev was built with (reviving a channel needs a full build).  If
  /// `dirtyDestinations` is non-null it receives the dirty set (ascending).
  static RoutingTable rebuildDead(const RoutingTable& prev,
                                  util::ThreadPool* pool,
                                  std::span<const std::uint64_t> channelAlive,
                                  std::vector<NodeId>* dirtyDestinations = nullptr,
                                  util::SpanRecorder* spans = nullptr);

  /// Number of destinations rebuildDead(*this, ..., channelAlive) would
  /// recompute, or nodeCount() when a channel revived relative to this
  /// table (the incremental path does not apply).  Cheap — O(dead channels
  /// x nodes x degree) — so the engine can size the reconfiguration window
  /// before running the rebuild itself.
  std::uint32_t dirtyDestinationCount(
      std::span<const std::uint64_t> channelAlive) const;

  /// Points the table at an identical permission set (same topology, same
  /// turn rule).  Used when an epoch swap copies the permissions it was
  /// built against; `perms` must outlive the table.
  void rebindPermissions(const TurnPermissions& perms) noexcept {
    perms_ = &perms;
  }

  const TurnPermissions& permissions() const noexcept { return *perms_; }
  const Topology& topology() const noexcept { return perms_->topology(); }

  /// Channels on a minimal legal path to dst whose first hop is c
  /// (kNoPath if dst is unreachable through c).
  std::uint16_t channelSteps(NodeId dst, ChannelId c) const noexcept {
    return steps_[static_cast<std::size_t>(dst) * channelCount_ + c];
  }

  /// Minimal legal hop count from src to dst; kNoPath if unreachable,
  /// 0 when src == dst.
  std::uint16_t distance(NodeId src, NodeId dst) const noexcept;

  // --- allocation-free candidate queries (the simulator's fast path) ---

  /// Every output channel of src that starts a minimal legal path to dst
  /// (injection: no input-channel constraint), in outputChannels(src) order.
  std::span<const ChannelId> firstChannels(NodeId src, NodeId dst) const noexcept {
    return first_.row(static_cast<std::size_t>(dst) * nodeCount_ + src);
  }

  /// Every output channel at v == dst(in) that continues a minimal legal
  /// path to dst, honouring the turn constraint against `in`, in
  /// outputChannels(v) order.
  std::span<const ChannelId> nextChannels(ChannelId in, NodeId dst) const noexcept {
    return next_.row(static_cast<std::size_t>(dst) * channelCount_ + in);
  }

  /// Like nextChannels but ignoring the turn rule (U-turns still excluded):
  /// every output whose legal-steps potential is exactly one less than
  /// `in`'s.  This is the adaptive-class candidate set of the
  /// escape-channel routing scheme (sim/config.hpp): because steps(d, c) is
  /// defined over *legal* continuations, a turn-legal escape successor
  /// always exists from any channel this relation can reach.
  std::span<const ChannelId> nextChannelsAnyTurn(ChannelId in,
                                                 NodeId dst) const noexcept {
    return nextAny_.row(static_cast<std::size_t>(dst) * channelCount_ + in);
  }

  // --- appending variants (batch/analysis callers) ---

  void firstChannels(NodeId src, NodeId dst, std::vector<ChannelId>& out) const;
  void nextChannels(ChannelId in, NodeId dst, std::vector<ChannelId>& out) const;
  void nextChannelsAnyTurn(ChannelId in, NodeId dst,
                           std::vector<ChannelId>& out) const;

  // --- online reconfiguration (fault/reconfigure.cpp) ---

  /// One connected component of a degraded topology, routed independently.
  /// `table` was built on a compacted sub-topology; the maps take its node
  /// and channel ids back into the host numbering.  Sub node ids must have
  /// been assigned in ascending host-id order so that adjacency — and
  /// therefore candidate-row — order is preserved under the mapping.
  struct ComponentMapping {
    const RoutingTable* table = nullptr;
    std::span<const NodeId> nodeToHost;
    std::span<const ChannelId> channelToHost;
  };

  /// Merges independently-routed components into one table expressed in the
  /// host topology's numbering, so a running simulator can hot-swap routing
  /// without renumbering its channel state.  Host channels outside every
  /// mapping (dead links) keep kNoPath steps and empty candidate rows and
  /// are therefore never offered as outputs; node pairs in different
  /// components are unreachable.  `hostPerms` must express the merged turn
  /// rule in host numbering and must outlive the returned table.
  static RoutingTable remapComponents(const TurnPermissions& hostPerms,
                                      std::span<const ComponentMapping> parts);

  /// True when the two tables hold identical routing contents (steps and
  /// all three candidate indexes; the permissions pointer is not compared).
  /// Used by the determinism and incremental-equivalence tests.
  bool identicalTo(const RoutingTable& other) const noexcept;

  /// FNV-1a hash over the full table contents (steps, offsets, entries).
  /// Stable across thread counts and build paths; golden-pinned in tests.
  std::uint64_t fingerprint() const noexcept;

  /// True when distance(s, d) is finite for every ordered pair.
  bool allPairsConnected() const noexcept;

  /// Mean legal hop count over ordered pairs (src != dst); unreachable
  /// pairs are skipped (and counted by verify()).
  double averagePathLength() const;

 private:
  /// Compressed sparse rows of channel ids (one row per (dst, key) pair).
  struct Csr {
    std::vector<std::uint32_t> offsets;  // rows + 1
    std::vector<ChannelId> entries;

    std::span<const ChannelId> row(std::size_t r) const noexcept {
      return {entries.data() + offsets[r], offsets[r + 1] - offsets[r]};
    }
  };

  RoutingTable() = default;
  void bfsDestination(NodeId dst, std::span<const std::uint64_t> channelAlive,
                      std::vector<ChannelId>& queue);
  void buildSuccessorIndexes(util::ThreadPool* pool);
  bool computeDeadDelta(std::span<const std::uint64_t> channelAlive,
                        std::vector<ChannelId>& newlyDead,
                        std::vector<std::uint8_t>& deadKey,
                        std::vector<std::uint8_t>& dirty) const;

  const TurnPermissions* perms_ = nullptr;
  std::uint32_t channelCount_ = 0;
  std::uint32_t nodeCount_ = 0;
  std::vector<std::uint16_t> steps_;  // [dst * channelCount_ + channel]
  Csr first_;    // rows: dst * nodeCount_ + node
  Csr next_;     // rows: dst * channelCount_ + in
  Csr nextAny_;  // rows: dst * channelCount_ + in
};

}  // namespace downup::routing
