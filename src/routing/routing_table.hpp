// Turn-restricted shortest-path routing tables.
//
// Because legality of a hop depends on the direction of the channel a packet
// arrived on, shortest paths are computed on the *channel graph*: vertices
// are channels, and channel c may be followed by channel c' when
// dst(c) == src(c') and the turn (dir(c) -> dir(c')) is allowed at that
// node.  For every destination d we run one reverse BFS over that graph,
// yielding steps(d, c) = minimal number of channels on an allowed path that
// starts by traversing c and ends at d.
//
// The adaptive routing relation the simulator consumes falls out directly:
// at node v (arrived via `in`, heading to d) every allowed output channel o
// with steps(d, o) == steps(d, in) - 1 lies on a globally minimal legal
// path, and all such channels are candidates (Section 5 of the paper routes
// on "the shortest possible paths", choosing among them at random).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/turns.hpp"

namespace downup::routing {

inline constexpr std::uint16_t kNoPath = 0xffff;

class RoutingTable {
 public:
  /// Builds the table; O(destinations x channels x avg-degree).
  static RoutingTable build(const TurnPermissions& perms);

  const TurnPermissions& permissions() const noexcept { return *perms_; }
  const Topology& topology() const noexcept { return perms_->topology(); }

  /// Channels on a minimal legal path to dst whose first hop is c
  /// (kNoPath if dst is unreachable through c).
  std::uint16_t channelSteps(NodeId dst, ChannelId c) const noexcept {
    return steps_[static_cast<std::size_t>(dst) * channelCount_ + c];
  }

  /// Minimal legal hop count from src to dst; kNoPath if unreachable,
  /// 0 when src == dst.
  std::uint16_t distance(NodeId src, NodeId dst) const noexcept;

  /// Appends to `out` every output channel of src that starts a minimal
  /// legal path to dst (injection: no input-channel constraint).
  void firstChannels(NodeId src, NodeId dst, std::vector<ChannelId>& out) const;

  /// Appends to `out` every output channel at v == dst(in) that continues a
  /// minimal legal path to dst, honouring the turn constraint against `in`.
  void nextChannels(ChannelId in, NodeId dst, std::vector<ChannelId>& out) const;

  /// Like nextChannels but ignoring the turn rule (U-turns still excluded):
  /// every output whose legal-steps potential is exactly one less than
  /// `in`'s.  This is the adaptive-class candidate set of the
  /// escape-channel routing scheme (sim/config.hpp): because steps(d, c) is
  /// defined over *legal* continuations, a turn-legal escape successor
  /// always exists from any channel this relation can reach.
  void nextChannelsAnyTurn(ChannelId in, NodeId dst,
                           std::vector<ChannelId>& out) const;

  /// True when distance(s, d) is finite for every ordered pair.
  bool allPairsConnected() const noexcept;

  /// Mean legal hop count over ordered pairs (src != dst); unreachable
  /// pairs are skipped (and counted by verify()).
  double averagePathLength() const;

 private:
  RoutingTable() = default;

  const TurnPermissions* perms_ = nullptr;
  std::uint32_t channelCount_ = 0;
  std::vector<std::uint16_t> steps_;  // [dst * channelCount_ + channel]
};

}  // namespace downup::routing
