// Turn sets (global direction-pair rules) and per-node turn permissions.
//
// A TurnSet answers "may a packet that arrived on a d1-direction channel
// continue on a d2-direction channel?" for d1 != d2.  Continuing in the same
// direction (d1 == d2) is always allowed: a chain of same-direction channels
// is strictly monotone in X or Y and can never close a cycle.
//
// TurnPermissions binds a TurnSet to a concrete topology + channel-direction
// map and layers per-node overrides on top:
//   * releases — the DOWN/UP release pass re-allows a globally prohibited
//     turn at individual nodes where it cannot close a turn cycle;
//   * blocks   — the repair pass (core/repair.hpp) prohibits a globally
//     allowed turn at individual nodes to break residual turn cycles (the
//     published DOWN/UP turn set is not fully acyclic; see DESIGN.md §4.4).
// Blocks take precedence over everything, including the same-direction
// continuation rule.  It also enforces the structural no-U-turn rule: a
// packet never leaves a node over the reverse of the channel it arrived on.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "routing/direction.hpp"

namespace downup::routing {

class TurnSet {
 public:
  /// All distinct-direction turns allowed.
  static TurnSet allAllowed() noexcept { return TurnSet(); }

  void prohibit(Dir from, Dir to) noexcept {
    allowed_[index(from)][index(to)] = false;
  }
  void allow(Dir from, Dir to) noexcept {
    allowed_[index(from)][index(to)] = true;
  }
  bool isAllowed(Dir from, Dir to) const noexcept {
    return from == to || allowed_[index(from)][index(to)];
  }

  /// All prohibited (from, to) pairs in row-major direction order.
  std::vector<std::pair<Dir, Dir>> prohibitedList() const;

  std::size_t prohibitedCount() const noexcept;

  bool operator==(const TurnSet&) const = default;

 private:
  TurnSet() noexcept {
    for (auto& row : allowed_) row.fill(true);
  }

  std::array<std::array<bool, kDirCount>, kDirCount> allowed_;
};

/// The classic up*/down* rule: down (RD_TREE) may never turn onto up
/// (LU_TREE).  Used with classifyUpDown / classifyUpDownDfs.
TurnSet upDownTurnSet() noexcept;

/// Reconstructed L-turn rule on the six coordinate directions (see
/// DESIGN.md §5): prohibits every down->up turn, every horizontal->up turn,
/// and L->R.  Used with classifyCoordinate.
TurnSet lturnTurnSet() noexcept;

class TurnPermissions {
 public:
  TurnPermissions(const Topology& topo, DirectionMap channelDirs,
                  TurnSet global);

  const Topology& topology() const noexcept { return *topo_; }
  Dir dir(ChannelId c) const noexcept { return dirs_[c]; }
  const TurnSet& global() const noexcept { return global_; }

  /// May a packet arriving at `via` on `in` continue on `out`?
  /// `via` must be dst(in) and src(out).
  bool allowed(NodeId via, ChannelId in, ChannelId out) const noexcept {
    if (out == Topology::reverseChannel(in)) return false;  // no U-turns
    const Dir d1 = dirs_[in];
    const Dir d2 = dirs_[out];
    const std::uint64_t mask = bit(d1, d2);
    if ((blocked_[via] & mask) != 0) return false;
    if (global_.isAllowed(d1, d2)) return true;
    return (released_[via] & mask) != 0;
  }

  /// Direction-level query including per-node overrides (for reporting).
  bool allowedDirs(NodeId via, Dir d1, Dir d2) const noexcept {
    const std::uint64_t mask = bit(d1, d2);
    if ((blocked_[via] & mask) != 0) return false;
    return global_.isAllowed(d1, d2) || (released_[via] & mask) != 0;
  }

  void releaseAt(NodeId v, Dir d1, Dir d2) noexcept {
    released_[v] |= bit(d1, d2);
  }
  void revokeReleaseAt(NodeId v, Dir d1, Dir d2) noexcept {
    released_[v] &= ~bit(d1, d2);
  }
  bool isReleasedAt(NodeId v, Dir d1, Dir d2) const noexcept {
    return (released_[v] & bit(d1, d2)) != 0;
  }

  void blockAt(NodeId v, Dir d1, Dir d2) noexcept {
    blocked_[v] |= bit(d1, d2);
  }
  bool isBlockedAt(NodeId v, Dir d1, Dir d2) const noexcept {
    return (blocked_[v] & bit(d1, d2)) != 0;
  }

  /// Total number of (node, turn) releases / blocks in effect.
  std::size_t releaseCount() const noexcept;
  std::size_t blockCount() const noexcept;

 private:
  static std::uint64_t bit(Dir d1, Dir d2) noexcept {
    return std::uint64_t{1} << (index(d1) * kDirCount + index(d2));
  }

  const Topology* topo_;
  DirectionMap dirs_;
  TurnSet global_;
  std::vector<std::uint64_t> released_;  // 8x8 bitmask per node
  std::vector<std::uint64_t> blocked_;   // 8x8 bitmask per node
};

}  // namespace downup::routing
