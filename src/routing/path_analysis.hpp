// Static path analysis over a routing table: without running a simulation,
// predict how traffic distributes when every source-destination pair splits
// its flow uniformly across all minimal legal paths.
//
// This is the classical "path counting" analysis: for each destination a
// forward/backward DP over the channel DAG (channels ordered by remaining
// steps) yields, per channel, the expected fraction of (s, d) flows crossing
// it.  The resulting static channel loads predict the simulator's measured
// utilizations remarkably well below saturation, and the static analogues of
// the paper's Table 1-4 metrics can be computed in milliseconds — see
// bench/exp_static_analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/routing_table.hpp"
#include "util/rng.hpp"

namespace downup::routing {

struct PathAnalysis {
  /// expectedLoad[c]: sum over ordered pairs (s != d) of the probability
  /// that the pair's flow crosses channel c (uniform splitting at every
  /// adaptive branch).  Sum over channels == sum of legal path lengths over
  /// pairs (each pair contributes its path length in channel-visits).
  std::vector<double> expectedLoad;

  /// Number of distinct minimal legal paths per ordered pair, saturating at
  /// 2^63 (informational; paths can be exponential on large networks).
  /// pathCount[s * n + d]; 1 on the diagonal by convention.
  std::vector<double> pathCount;

  double maxLoad = 0.0;
  double meanLoad = 0.0;

  /// Mean over ordered pairs of the number of minimal legal paths.
  double meanPathCount = 0.0;
};

/// Runs the analysis; O(destinations x channels x degree).
PathAnalysis analyzePaths(const RoutingTable& table);

/// Mean number of minimal legal first-hop choices over ordered pairs — the
/// adaptivity figure used by the examples.
double averageAdaptivity(const RoutingTable& table);

/// One minimal legal path src -> dst as a channel sequence; uniformly random
/// among per-hop choices when `rng` is given, lowest-numbered otherwise.
/// Empty when src == dst or dst is unreachable.
std::vector<ChannelId> samplePath(const RoutingTable& table, NodeId src,
                                  NodeId dst, util::Rng* rng = nullptr);

/// Every minimal legal path src -> dst, up to `limit` paths (path counts can
/// be exponential).  Paths are produced in lexicographic channel order.
std::vector<std::vector<ChannelId>> enumerateMinimalPaths(
    const RoutingTable& table, NodeId src, NodeId dst, std::size_t limit = 64);

}  // namespace downup::routing
