// One-call validation of a routing: deadlock freedom (acyclic channel
// dependencies) and connectivity (every ordered pair reachable on legal
// paths), plus path-quality diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/algorithm.hpp"

namespace downup::routing {

struct VerifyReport {
  bool deadlockFree = false;
  bool connected = false;
  /// Non-empty iff !deadlockFree: a witness channel cycle.
  std::vector<ChannelId> cycleWitness;
  std::uint64_t unreachablePairs = 0;
  double averagePathLength = 0.0;
  /// Mean over connected pairs of legal-distance / graph-distance (>= 1).
  double averageStretch = 0.0;
  double maxStretch = 0.0;

  bool ok() const noexcept { return deadlockFree && connected; }
  std::string describe() const;
};

VerifyReport verifyRouting(const Routing& routing);

}  // namespace downup::routing
