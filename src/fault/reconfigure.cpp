#include "fault/reconfigure.hpp"

#include <memory>
#include <vector>

#include "core/downup_routing.hpp"
#include "routing/cdg.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/rng.hpp"
#include "verify/gate.hpp"

namespace downup::fault {

using routing::ChannelId;
using routing::Dir;
using routing::DirectionMap;
using routing::kDirCount;
using routing::NodeId;
using routing::RoutingTable;
using routing::TurnPermissions;
using topo::LinkId;
using topo::Topology;

namespace {

constexpr std::uint32_t kNoComp = static_cast<std::uint32_t>(-1);

/// One alive component routed on its compacted sub-topology.  The sub
/// topology and routing sit behind unique_ptrs because the routing table and
/// turn permissions hold raw pointers into them.
struct Component {
  std::vector<NodeId> nodeToHost;       // ascending (remap contract)
  std::vector<ChannelId> channelToHost;
  std::unique_ptr<Topology> sub;
  std::unique_ptr<routing::Routing> routing;
};

/// A dead endpoint kills the link regardless of its own state.
std::vector<std::uint8_t> effectiveLinks(const Topology& topo,
                                         std::span<const std::uint8_t> linkAlive,
                                         std::span<const std::uint8_t> nodeAlive,
                                         std::uint32_t& aliveLinks) {
  const LinkId linkCount = topo.linkCount();
  std::vector<std::uint8_t> effLink(linkCount, 0);
  aliveLinks = 0;
  for (LinkId l = 0; l < linkCount; ++l) {
    const auto [a, b] = topo.linkEnds(l);
    effLink[l] = linkAlive[l] && nodeAlive[a] && nodeAlive[b];
    aliveLinks += effLink[l];
  }
  return effLink;
}

struct ComponentLabels {
  std::vector<std::uint32_t> comp;  // kNoComp for dead nodes
  std::uint32_t count = 0;
  std::uint32_t aliveNodes = 0;
  std::uint64_t sameComponentPairs = 0;
};

/// Labels alive components (DFS over alive nodes through alive links).
ComponentLabels labelComponents(const Topology& topo,
                                std::span<const std::uint8_t> effLink,
                                std::span<const std::uint8_t> nodeAlive) {
  const NodeId n = topo.nodeCount();
  ComponentLabels labels;
  labels.comp.assign(n, kNoComp);
  std::vector<NodeId> stack;
  std::vector<std::uint64_t> sizes;
  for (NodeId v = 0; v < n; ++v) {
    if (!nodeAlive[v] || labels.comp[v] != kNoComp) continue;
    std::uint64_t size = 0;
    labels.comp[v] = labels.count;
    stack.push_back(v);
    ++size;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      const auto neighbors = topo.neighbors(u);
      const auto channels = topo.outputChannels(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (!effLink[Topology::linkOf(channels[i])]) continue;
        const NodeId w = neighbors[i];
        if (labels.comp[w] != kNoComp) continue;
        labels.comp[w] = labels.count;
        stack.push_back(w);
        ++size;
      }
    }
    ++labels.count;
    labels.aliveNodes += static_cast<std::uint32_t>(size);
    labels.sameComponentPairs += size * (size - 1);
  }
  return labels;
}

}  // namespace

ReconfigOutcome Reconfigurator::rebuild(
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive) const {
  const Topology& topo = *topo_;
  const NodeId n = topo.nodeCount();
  const LinkId linkCount = topo.linkCount();

  ReconfigOutcome out;
  out.deadlockFree = true;
  out.componentsConnected = true;

  util::ScopedSpan partitionSpan(spans_, "partition");
  const std::vector<std::uint8_t> effLink =
      effectiveLinks(topo, linkAlive, nodeAlive, out.aliveLinks);
  const ComponentLabels labels = labelComponents(topo, effLink, nodeAlive);
  out.components = labels.count;
  out.aliveNodes = labels.aliveNodes;
  out.rebuiltDestinations = labels.aliveNodes;

  // Collect members per component in ascending host order (the remap
  // contract: sub node ids must ascend with host ids so that adjacency —
  // and therefore candidate-row — order survives the mapping).
  std::vector<std::vector<NodeId>> members(out.components);
  for (NodeId v = 0; v < n; ++v) {
    if (labels.comp[v] != kNoComp) members[labels.comp[v]].push_back(v);
  }
  partitionSpan.arg("components", labels.count);
  partitionSpan.arg("aliveNodes", labels.aliveNodes);
  partitionSpan.close();

  // Route every component with at least two switches independently: its own
  // compacted topology, coordinated tree (M1 is deterministic; the RNG is
  // never consulted) and DOWN/UP rule with the repair and release passes.
  std::vector<Component> parts;
  std::vector<NodeId> hostToSub(n, topo::kInvalidNode);
  double pathLengthSum = 0.0;
  std::uint64_t reachablePairs = 0;
  for (const auto& m : members) {
    if (m.size() < 2) continue;
    Component part;
    part.nodeToHost = m;
    util::ScopedSpan subtopoSpan(spans_, "subtopo");
    subtopoSpan.arg("nodes", m.size());
    for (NodeId i = 0; i < m.size(); ++i) hostToSub[m[i]] = i;
    part.sub = std::make_unique<Topology>(static_cast<NodeId>(m.size()));
    for (LinkId l = 0; l < linkCount; ++l) {
      if (!effLink[l]) continue;
      const auto [a, b] = topo.linkEnds(l);
      if (labels.comp[a] != labels.comp[m[0]]) continue;
      // addLink preserves endpoint order, so sub channel 2k+p is host
      // channel 2l+p: the channel map preserves parity.
      part.sub->addLink(hostToSub[a], hostToSub[b]);
      part.channelToHost.push_back(2 * l);
      part.channelToHost.push_back(2 * l + 1);
    }
    subtopoSpan.close();
    util::Rng rng(0);
    util::ScopedSpan treeSpan(spans_, "tree");
    const auto ct = tree::CoordinatedTree::build(
        *part.sub, tree::TreePolicy::kM1SmallestFirst, rng);
    treeSpan.close();
    part.routing = std::make_unique<routing::Routing>(
        core::buildDownUp(*part.sub, ct, {.pool = pool_, .spans = spans_}));

    util::ScopedSpan verifySpan(spans_, "verify");
    const routing::VerifyReport report = routing::verifyRouting(*part.routing);
    verifySpan.close();
    out.deadlockFree = out.deadlockFree && report.deadlockFree;
    out.componentsConnected = out.componentsConnected && report.connected;
    out.unreachablePairs += report.unreachablePairs;
    const std::uint64_t pairs =
        static_cast<std::uint64_t>(m.size()) * (m.size() - 1) -
        report.unreachablePairs;
    pathLengthSum += report.averagePathLength * static_cast<double>(pairs);
    reachablePairs += pairs;
    parts.push_back(std::move(part));
  }
  out.averagePathLength =
      reachablePairs == 0 ? 0.0
                          : pathLengthSum / static_cast<double>(reachablePairs);
  // Ordered alive pairs in different components are unreachable by design.
  out.unreachablePairs += static_cast<std::uint64_t>(out.aliveNodes) *
                              (out.aliveNodes - 1) -
                          labels.sameComponentPairs;

  // Merge the per-component rules into host numbering.  Dead channels keep
  // an arbitrary direction: their steps stay kNoPath and their candidate
  // rows stay empty, so the table never offers them.
  util::ScopedSpan mergeSpan(spans_, "merge");
  mergeSpan.arg("parts", parts.size());
  DirectionMap hostDirs(topo.channelCount(), Dir::kRdTree);
  for (const Component& part : parts) {
    for (ChannelId c = 0; c < part.channelToHost.size(); ++c) {
      hostDirs[part.channelToHost[c]] = part.routing->permissions().dir(c);
    }
  }
  out.perms = std::make_unique<TurnPermissions>(topo, std::move(hostDirs),
                                                core::downUpTurnSet());
  std::vector<RoutingTable::ComponentMapping> mappings;
  mappings.reserve(parts.size());
  for (const Component& part : parts) {
    const TurnPermissions& sub = part.routing->permissions();
    for (NodeId v = 0; v < part.nodeToHost.size(); ++v) {
      for (std::size_t i = 0; i < kDirCount; ++i) {
        for (std::size_t j = 0; j < kDirCount; ++j) {
          const Dir d1 = static_cast<Dir>(i);
          const Dir d2 = static_cast<Dir>(j);
          if (sub.isReleasedAt(v, d1, d2)) {
            out.perms->releaseAt(part.nodeToHost[v], d1, d2);
          }
          if (sub.isBlockedAt(v, d1, d2)) {
            out.perms->blockAt(part.nodeToHost[v], d1, d2);
          }
        }
      }
    }
    mappings.push_back({&part.routing->table(), part.nodeToHost,
                        part.channelToHost});
  }
  out.table = std::make_unique<RoutingTable>(
      RoutingTable::remapComponents(*out.perms, mappings));
  auditOutcome(out, linkAlive, nodeAlive, "reconfig_full");
  return out;
}

void Reconfigurator::auditOutcome(const ReconfigOutcome& out,
                                  std::span<const std::uint8_t> linkAlive,
                                  std::span<const std::uint8_t> nodeAlive,
                                  const char* point) const {
  if (oracle_ == nullptr) return;
  const Topology& topo = *topo_;
  std::vector<std::uint8_t> channelAlive(topo.channelCount(), 0);
  for (LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    const std::uint8_t alive = linkAlive[l] && nodeAlive[a] && nodeAlive[b];
    channelAlive[2 * l] = alive;
    channelAlive[2 * l + 1] = alive;
  }
  verify::OracleInput input;
  input.perms = out.perms.get();
  input.table = out.table.get();
  input.channelAlive = channelAlive;
  oracle_->audit(input, {.point = point});
}

std::vector<std::uint64_t> Reconfigurator::channelAliveWords(
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive) const {
  const Topology& topo = *topo_;
  std::vector<std::uint64_t> words((topo.channelCount() + 63) / 64, 0);
  for (LinkId l = 0; l < topo.linkCount(); ++l) {
    const auto [a, b] = topo.linkEnds(l);
    if (!(linkAlive[l] && nodeAlive[a] && nodeAlive[b])) continue;
    for (const ChannelId c : {2 * l, 2 * l + 1}) {
      words[c >> 6] |= std::uint64_t{1} << (c & 63);
    }
  }
  return words;
}

double Reconfigurator::incrementalDirtyFraction(
    const routing::RoutingTable& prevTable,
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive) const {
  const NodeId n = topo_->nodeCount();
  if (n == 0) return 1.0;
  const std::vector<std::uint64_t> alive =
      channelAliveWords(linkAlive, nodeAlive);
  const std::uint32_t dirty = prevTable.dirtyDestinationCount(alive);
  // Never report zero work: even an empty dirty set pays the delta scan.
  return std::max(1.0 / static_cast<double>(n),
                  static_cast<double>(dirty) / static_cast<double>(n));
}

ReconfigOutcome Reconfigurator::rebuildIncremental(
    const routing::RoutingTable& prevTable,
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive) const {
  const Topology& topo = *topo_;
  const std::vector<std::uint64_t> alive =
      channelAliveWords(linkAlive, nodeAlive);

  // A channel that is alive now but was dead in the previous epoch revived;
  // its epoch's turn rule never classified it, so only a full rebuild can
  // route through it.
  {
    util::ScopedSpan applicabilitySpan(spans_, "dirty_set");
    for (ChannelId c = 0; c < topo.channelCount(); ++c) {
      const bool aliveNow = (alive[c >> 6] >> (c & 63)) & 1u;
      const bool alivePrev =
          prevTable.channelSteps(topo.channelDst(c), c) == 1;
      if (aliveNow && !alivePrev) {
        applicabilitySpan.arg("revived", 1);
        applicabilitySpan.close();
        return rebuild(linkAlive, nodeAlive);
      }
    }
  }

  ReconfigOutcome out;
  out.incremental = true;
  util::ScopedSpan partitionSpan(spans_, "partition");
  const std::vector<std::uint8_t> effLink =
      effectiveLinks(topo, linkAlive, nodeAlive, out.aliveLinks);
  const ComponentLabels labels = labelComponents(topo, effLink, nodeAlive);
  out.components = labels.count;
  out.aliveNodes = labels.aliveNodes;
  partitionSpan.arg("components", labels.count);
  partitionSpan.arg("aliveNodes", labels.aliveNodes);
  partitionSpan.close();

  out.perms = std::make_unique<TurnPermissions>(prevTable.permissions());
  std::vector<NodeId> dirty;
  out.table = std::make_unique<RoutingTable>(
      RoutingTable::rebuildDead(prevTable, pool_, alive, &dirty, spans_));
  out.table->rebindPermissions(*out.perms);
  out.rebuiltDestinations = static_cast<std::uint32_t>(dirty.size());

  util::ScopedSpan verifySpan(spans_, "verify");
  // The inherited rule's channel-dependency graph was acyclic and lost only
  // vertices/edges, so the epoch is deadlock-free by construction; the
  // check below re-verifies the (superset) inherited graph.
  out.deadlockFree = routing::checkChannelDependencies(*out.perms).acyclic;

  // Unreachability under the inherited rule.  Cross-component pairs are
  // unreachable by design; a within-component unreachable pair means the
  // old tree cannot serve the degraded graph (e.g. the failure cut the
  // region the turn rule funnels traffic through) — re-rooting may fix
  // that, so fall back to the full rebuild.
  const NodeId n = topo.nodeCount();
  std::uint64_t reachable = 0;
  double pathSum = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    if (labels.comp[s] == kNoComp) continue;
    for (NodeId d = 0; d < n; ++d) {
      if (d == s || labels.comp[d] == kNoComp) continue;
      const std::uint16_t dist = out.table->distance(s, d);
      if (dist == routing::kNoPath) {
        ++out.unreachablePairs;
      } else {
        ++reachable;
        pathSum += dist;
      }
    }
  }
  const std::uint64_t crossComponentPairs =
      static_cast<std::uint64_t>(out.aliveNodes) * (out.aliveNodes - 1) -
      labels.sameComponentPairs;
  out.componentsConnected = out.unreachablePairs == crossComponentPairs;
  verifySpan.close();
  if (!out.componentsConnected || !out.deadlockFree) {
    return rebuild(linkAlive, nodeAlive);
  }
  out.averagePathLength =
      reachable == 0 ? 0.0 : pathSum / static_cast<double>(reachable);
  auditOutcome(out, linkAlive, nodeAlive, "reconfig_incremental");
  return out;
}

}  // namespace downup::fault
