#include "fault/reconfigure.hpp"

#include <memory>
#include <vector>

#include "core/downup_routing.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/rng.hpp"

namespace downup::fault {

using routing::ChannelId;
using routing::Dir;
using routing::DirectionMap;
using routing::kDirCount;
using routing::NodeId;
using routing::RoutingTable;
using routing::TurnPermissions;
using topo::LinkId;
using topo::Topology;

namespace {

/// One alive component routed on its compacted sub-topology.  The sub
/// topology and routing sit behind unique_ptrs because the routing table and
/// turn permissions hold raw pointers into them.
struct Component {
  std::vector<NodeId> nodeToHost;       // ascending (remap contract)
  std::vector<ChannelId> channelToHost;
  std::unique_ptr<Topology> sub;
  std::unique_ptr<routing::Routing> routing;
};

}  // namespace

ReconfigOutcome Reconfigurator::rebuild(
    std::span<const std::uint8_t> linkAlive,
    std::span<const std::uint8_t> nodeAlive) const {
  const Topology& topo = *topo_;
  const NodeId n = topo.nodeCount();
  const LinkId linkCount = topo.linkCount();

  ReconfigOutcome out;
  out.deadlockFree = true;
  out.componentsConnected = true;

  // A dead endpoint kills the link regardless of its own state.
  std::vector<std::uint8_t> effLink(linkCount, 0);
  for (LinkId l = 0; l < linkCount; ++l) {
    const auto [a, b] = topo.linkEnds(l);
    effLink[l] = linkAlive[l] && nodeAlive[a] && nodeAlive[b];
    out.aliveLinks += effLink[l];
  }

  // Label alive components (DFS over alive nodes through alive links).
  constexpr std::uint32_t kNoComp = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> comp(n, kNoComp);
  std::vector<NodeId> stack;
  for (NodeId v = 0; v < n; ++v) {
    if (!nodeAlive[v] || comp[v] != kNoComp) continue;
    comp[v] = out.components;
    stack.push_back(v);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      const auto neighbors = topo.neighbors(u);
      const auto channels = topo.outputChannels(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (!effLink[Topology::linkOf(channels[i])]) continue;
        const NodeId w = neighbors[i];
        if (comp[w] != kNoComp) continue;
        comp[w] = out.components;
        stack.push_back(w);
      }
    }
    ++out.components;
  }

  // Collect members per component in ascending host order (the remap
  // contract: sub node ids must ascend with host ids so that adjacency —
  // and therefore candidate-row — order survives the mapping).
  std::vector<std::vector<NodeId>> members(out.components);
  for (NodeId v = 0; v < n; ++v) {
    if (comp[v] != kNoComp) members[comp[v]].push_back(v);
  }
  for (const auto& m : members) {
    out.aliveNodes += static_cast<std::uint32_t>(m.size());
  }

  // Route every component with at least two switches independently: its own
  // compacted topology, coordinated tree (M1 is deterministic; the RNG is
  // never consulted) and DOWN/UP rule with the repair and release passes.
  std::vector<Component> parts;
  std::vector<NodeId> hostToSub(n, topo::kInvalidNode);
  double pathLengthSum = 0.0;
  std::uint64_t reachablePairs = 0;
  for (const auto& m : members) {
    if (m.size() < 2) continue;
    Component part;
    part.nodeToHost = m;
    for (NodeId i = 0; i < m.size(); ++i) hostToSub[m[i]] = i;
    part.sub = std::make_unique<Topology>(static_cast<NodeId>(m.size()));
    for (LinkId l = 0; l < linkCount; ++l) {
      if (!effLink[l]) continue;
      const auto [a, b] = topo.linkEnds(l);
      if (comp[a] != comp[m[0]]) continue;
      // addLink preserves endpoint order, so sub channel 2k+p is host
      // channel 2l+p: the channel map preserves parity.
      part.sub->addLink(hostToSub[a], hostToSub[b]);
      part.channelToHost.push_back(2 * l);
      part.channelToHost.push_back(2 * l + 1);
    }
    util::Rng rng(0);
    const auto ct = tree::CoordinatedTree::build(
        *part.sub, tree::TreePolicy::kM1SmallestFirst, rng);
    part.routing = std::make_unique<routing::Routing>(
        core::buildDownUp(*part.sub, ct));

    const routing::VerifyReport report = routing::verifyRouting(*part.routing);
    out.deadlockFree = out.deadlockFree && report.deadlockFree;
    out.componentsConnected = out.componentsConnected && report.connected;
    out.unreachablePairs += report.unreachablePairs;
    const std::uint64_t pairs =
        static_cast<std::uint64_t>(m.size()) * (m.size() - 1) -
        report.unreachablePairs;
    pathLengthSum += report.averagePathLength * static_cast<double>(pairs);
    reachablePairs += pairs;
    parts.push_back(std::move(part));
  }
  out.averagePathLength =
      reachablePairs == 0 ? 0.0
                          : pathLengthSum / static_cast<double>(reachablePairs);
  // Ordered alive pairs in different components are unreachable by design.
  std::uint64_t sameComponentPairs = 0;
  for (const auto& m : members) {
    sameComponentPairs += static_cast<std::uint64_t>(m.size()) * (m.size() - 1);
  }
  out.unreachablePairs += static_cast<std::uint64_t>(out.aliveNodes) *
                              (out.aliveNodes - 1) -
                          sameComponentPairs;

  // Merge the per-component rules into host numbering.  Dead channels keep
  // an arbitrary direction: their steps stay kNoPath and their candidate
  // rows stay empty, so the table never offers them.
  DirectionMap hostDirs(topo.channelCount(), Dir::kRdTree);
  for (const Component& part : parts) {
    for (ChannelId c = 0; c < part.channelToHost.size(); ++c) {
      hostDirs[part.channelToHost[c]] = part.routing->permissions().dir(c);
    }
  }
  out.perms = std::make_unique<TurnPermissions>(topo, std::move(hostDirs),
                                                core::downUpTurnSet());
  std::vector<RoutingTable::ComponentMapping> mappings;
  mappings.reserve(parts.size());
  for (const Component& part : parts) {
    const TurnPermissions& sub = part.routing->permissions();
    for (NodeId v = 0; v < part.nodeToHost.size(); ++v) {
      for (std::size_t i = 0; i < kDirCount; ++i) {
        for (std::size_t j = 0; j < kDirCount; ++j) {
          const Dir d1 = static_cast<Dir>(i);
          const Dir d2 = static_cast<Dir>(j);
          if (sub.isReleasedAt(v, d1, d2)) {
            out.perms->releaseAt(part.nodeToHost[v], d1, d2);
          }
          if (sub.isBlockedAt(v, d1, d2)) {
            out.perms->blockAt(part.nodeToHost[v], d1, d2);
          }
        }
      }
    }
    mappings.push_back({&part.routing->table(), part.nodeToHost,
                        part.channelToHost});
  }
  out.table = std::make_unique<RoutingTable>(
      RoutingTable::remapComponents(*out.perms, mappings));
  return out;
}

}  // namespace downup::fault
