#include "fault/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "topology/properties.hpp"
#include "util/rng.hpp"

namespace downup::fault {

const char* toString(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kNodeDown: return "node_down";
    case FaultKind::kNodeUp: return "node_up";
  }
  return "unknown";
}

namespace {

/// Same-cycle ordering class: downs (0) apply before ups (1).  A link that
/// both fails and recovers at one cycle therefore deterministically flaps —
/// down, then up, net alive — instead of depending on insertion order,
/// which is what a coalescing consumer must see to cancel the pair.
inline int kindRank(FaultKind kind) noexcept {
  return kind == FaultKind::kLinkUp || kind == FaultKind::kNodeUp ? 1 : 0;
}

}  // namespace

FaultSchedule& FaultSchedule::add(std::uint64_t cycle, FaultKind kind,
                                  std::uint32_t id) {
  const FaultEvent event{cycle, kind, id};
  // Stable insertion within (cycle, rank): after every event already
  // scheduled at this cycle and rank, before any same-cycle up when adding
  // a down.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) {
        if (a.cycle != b.cycle) return a.cycle < b.cycle;
        return kindRank(a.kind) < kindRank(b.kind);
      });
  events_.insert(pos, event);
  return *this;
}

FaultSchedule& FaultSchedule::linkDown(std::uint64_t cycle, topo::LinkId link) {
  return add(cycle, FaultKind::kLinkDown, link);
}

FaultSchedule& FaultSchedule::linkUp(std::uint64_t cycle, topo::LinkId link) {
  return add(cycle, FaultKind::kLinkUp, link);
}

FaultSchedule& FaultSchedule::linkFlap(std::uint64_t cycle, topo::LinkId link,
                                       std::uint64_t downCycles) {
  linkDown(cycle, link);
  return linkUp(cycle + downCycles, link);
}

FaultSchedule& FaultSchedule::nodeDown(std::uint64_t cycle, topo::NodeId node) {
  return add(cycle, FaultKind::kNodeDown, node);
}

FaultSchedule& FaultSchedule::nodeUp(std::uint64_t cycle, topo::NodeId node) {
  return add(cycle, FaultKind::kNodeUp, node);
}

namespace {

/// Connectivity of `topo` restricted to links with alive[l] != 0 (all nodes
/// participate; used to veto partitioning failures).
bool aliveSubgraphConnected(const topo::Topology& topo,
                            const std::vector<std::uint8_t>& alive) {
  const topo::NodeId n = topo.nodeCount();
  if (n == 0) return true;
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<topo::NodeId> stack{0};
  seen[0] = 1;
  topo::NodeId visited = 1;
  while (!stack.empty()) {
    const topo::NodeId v = stack.back();
    stack.pop_back();
    const auto neighbors = topo.neighbors(v);
    const auto channels = topo.outputChannels(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (!alive[topo::Topology::linkOf(channels[i])]) continue;
      const topo::NodeId w = neighbors[i];
      if (seen[w]) continue;
      seen[w] = 1;
      ++visited;
      stack.push_back(w);
    }
  }
  return visited == n;
}

}  // namespace

FaultSchedule FaultSchedule::randomLinkFailures(const topo::Topology& topo,
                                                unsigned count,
                                                std::uint64_t firstCycle,
                                                std::uint64_t cycleStep,
                                                std::uint64_t seed,
                                                bool avoidPartition) {
  FaultSchedule schedule;
  util::Rng rng(seed);
  std::vector<std::uint8_t> alive(topo.linkCount(), 1);
  std::vector<topo::LinkId> candidates(topo.linkCount());
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) candidates[l] = l;

  std::uint64_t cycle = firstCycle;
  for (unsigned k = 0; k < count && !candidates.empty(); ) {
    const std::size_t pick = rng.below(candidates.size());
    const topo::LinkId link = candidates[pick];
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    alive[link] = 0;
    if (avoidPartition && !aliveSubgraphConnected(topo, alive)) {
      alive[link] = 1;  // would split the network; try another link
      continue;
    }
    schedule.linkDown(cycle, link);
    cycle += cycleStep;
    ++k;
  }
  return schedule;
}

void FaultSchedule::validate(const topo::Topology& topo) const {
  for (const FaultEvent& event : events_) {
    const bool isLink = event.kind == FaultKind::kLinkDown ||
                        event.kind == FaultKind::kLinkUp;
    const std::uint32_t limit = isLink ? topo.linkCount() : topo.nodeCount();
    if (event.id >= limit) {
      throw std::invalid_argument(
          std::string("FaultSchedule: ") + toString(event.kind) + " id " +
          std::to_string(event.id) + " out of range (" +
          (isLink ? "links: " : "nodes: ") + std::to_string(limit) + ")");
    }
  }
}

}  // namespace downup::fault
