// Observer interface for alive-state transitions.
//
// FaultController applies schedule events, folds cascade semantics (a node
// death killing its incident links, down-depth on double faults) and posts
// the resulting *effective* transitions here — each call states "this
// link/node is now alive/dead as of cycle C", never a raw schedule event.
// Implemented by fabric::FabricManager (the interface lives in fault/ so
// the fault layer never depends on fabric/).  Calls arrive on whichever
// thread drives applyEventsAt(); implementations must be safe to call from
// that thread while other threads read their state.
#pragma once

#include <cstdint>

#include "topology/topology.hpp"

namespace downup::fault {

class FaultEventSink {
 public:
  virtual ~FaultEventSink() = default;
  virtual void onLinkStateChanged(std::uint64_t cycle, topo::LinkId link,
                                  bool alive) = 0;
  virtual void onNodeStateChanged(std::uint64_t cycle, topo::NodeId node,
                                  bool alive) = 0;
};

}  // namespace downup::fault
