// Runtime fault state for one simulation: applies a FaultSchedule's events
// as the clock passes them, tracks which links/nodes are currently alive,
// and owns the reconfiguration-window clock.
//
// Aliveness model: a link is alive iff it has not been explicitly failed
// (kLinkDown without a matching kLinkUp) AND both endpoint switches are
// alive.  Down/up events are idempotent — failing a dead link or switch
// again is a no-op, so one kLinkUp always suffices — and a link that failed
// on its own stays dead while an endpoint is also down.
//
// The controller is pure bookkeeping: it never touches simulator state.
// The engine asks applyEventsAt() which links/nodes just died (to drop the
// flits occupying them), then opens a reconfiguration window and, when the
// window elapses, rebuilds routing from the alive masks (Reconfigurator)
// and hot-swaps the table.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/event_sink.hpp"
#include "fault/schedule.hpp"

namespace downup::fault {

class FaultController {
 public:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// `schedule` (validated against `topo`) and `topo` must outlive the
  /// controller.
  FaultController(const topo::Topology& topo, const FaultSchedule& schedule);

  /// Cycle of the next unapplied event; kNever once exhausted.
  std::uint64_t nextEventCycle() const noexcept {
    return cursor_ < schedule_->size() ? schedule_->events()[cursor_].cycle
                                       : kNever;
  }

  struct Applied {
    /// Links that transitioned alive -> dead during this batch.
    std::span<const topo::LinkId> newlyDeadLinks;
    /// Switches that transitioned alive -> dead during this batch.
    std::span<const topo::NodeId> newlyDeadNodes;
    /// Any alive-state transition happened (links or nodes, either way).
    bool topologyChanged = false;
  };

  /// Applies every scheduled event at exactly `cycle` (in schedule order)
  /// and reports the transitions.  The returned spans point into scratch
  /// buffers valid until the next call.
  Applied applyEventsAt(std::uint64_t cycle);

  /// Registers an observer for effective alive-state transitions (cascades
  /// and down-depth already folded); nullptr detaches.  Every transition
  /// applyEventsAt produces — links both ways, nodes both ways — is posted
  /// in application order.  The sink must outlive the controller or be
  /// detached first.
  void attachSink(FaultEventSink* sink) noexcept { sink_ = sink; }

  bool linkAlive(topo::LinkId l) const noexcept { return linkAlive_[l] != 0; }
  bool channelAlive(topo::ChannelId c) const noexcept {
    return linkAlive_[topo::Topology::linkOf(c)] != 0;
  }
  bool nodeAlive(topo::NodeId v) const noexcept { return nodeAlive_[v] != 0; }

  /// True while any link or switch is currently dead.
  bool anyFault() const noexcept {
    return explicitDownCount_ + deadNodeCount_ > 0;
  }

  // Alive masks in Reconfigurator::rebuild() form.  linkAliveMask() already
  // folds dead endpoints in (it is the effective mask).
  std::span<const std::uint8_t> linkAliveMask() const noexcept {
    return linkAlive_;
  }
  std::span<const std::uint8_t> nodeAliveMask() const noexcept {
    return nodeAlive_;
  }

  // --- reconfiguration window (engine-driven clock) ---

  /// Opens the window, or extends it when already open (a second fault
  /// during reconfiguration restarts the protocol's timer).
  void openWindowUntil(std::uint64_t endCycle) noexcept {
    windowOpen_ = true;
    if (endCycle > windowEnd_) windowEnd_ = endCycle;
  }
  bool windowOpen() const noexcept { return windowOpen_; }
  /// First cycle at which the swap may happen (valid while windowOpen()).
  std::uint64_t windowEnd() const noexcept { return windowEnd_; }
  void closeWindow() noexcept { windowOpen_ = false; }

 private:
  void refreshLink(topo::LinkId l);

  const topo::Topology* topo_;
  const FaultSchedule* schedule_;
  std::size_t cursor_ = 0;

  std::vector<std::uint8_t> linkExplicitDown_;
  std::vector<std::uint8_t> linkAlive_;  // effective: explicit + endpoints
  std::vector<std::uint8_t> nodeAlive_;
  std::uint32_t explicitDownCount_ = 0;
  std::uint32_t deadNodeCount_ = 0;

  bool windowOpen_ = false;
  std::uint64_t windowEnd_ = 0;

  FaultEventSink* sink_ = nullptr;
  std::uint64_t batchCycle_ = 0;  // cycle of the batch being applied
  bool batchChanged_ = false;
  std::vector<topo::LinkId> newlyDeadLinks_;   // scratch for Applied
  std::vector<topo::NodeId> newlyDeadNodes_;
};

}  // namespace downup::fault
