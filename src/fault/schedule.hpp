// Deterministic fault schedules for the wormhole simulator.
//
// A FaultSchedule is a cycle-ordered list of topology events — link
// failures/recoveries and whole-node (switch) failures/recoveries — that the
// engine applies while a simulation runs.  Schedules are plain data: they
// never draw RNG at simulation time, so the same schedule attached to the
// same SimConfig seed reproduces the same run bit for bit at any thread
// count of the surrounding sweep.  The randomised generator below draws all
// of its randomness up front from its own seed.
//
// Semantics of the event stream (enforced by the engine's FaultController):
//   * a link is alive while its down-depth is zero: explicit kLinkDown and
//     the failure of either endpoint node each push a down, the matching
//     kLinkUp / kNodeUp pops it — so a link that failed on its own stays
//     dead while its switch is also down, and recovers only when both
//     causes have cleared;
//   * node events cascade to every incident link;
//   * events at the same cycle are applied in schedule order, then trigger
//     a single reconfiguration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/topology.hpp"

namespace downup::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kNodeDown,
  kNodeUp,
};

const char* toString(FaultKind kind) noexcept;

struct FaultEvent {
  std::uint64_t cycle = 0;
  FaultKind kind = FaultKind::kLinkDown;
  std::uint32_t id = 0;  // LinkId for link events, NodeId for node events

  bool operator==(const FaultEvent&) const = default;
};

/// What happens to packets generated while a reconfiguration window is open
/// (SimConfig::faultInjectionPolicy).
enum class InjectionPolicy : std::uint8_t {
  kPark,  // queue at the source; they route once the new table is live
  kDrop,  // discard at generation, counted as packetsDroppedInjection
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  // Builders keep the event list sorted by (cycle, down-before-up): at the
  // same cycle every down applies before any up — so a same-cycle flap of
  // one link deterministically nets out alive — and insertion order is
  // stable within each class.  Builders return *this for chaining.
  FaultSchedule& linkDown(std::uint64_t cycle, topo::LinkId link);
  FaultSchedule& linkUp(std::uint64_t cycle, topo::LinkId link);
  /// Transient flap: down at `cycle`, back up at `cycle + downCycles`.
  FaultSchedule& linkFlap(std::uint64_t cycle, topo::LinkId link,
                          std::uint64_t downCycles);
  FaultSchedule& nodeDown(std::uint64_t cycle, topo::NodeId node);
  FaultSchedule& nodeUp(std::uint64_t cycle, topo::NodeId node);

  /// Seeded random schedule: `count` distinct link failures at cycles
  /// firstCycle, firstCycle + cycleStep, ...  With `avoidPartition` every
  /// failed link is chosen so the surviving subgraph stays connected (links
  /// whose cumulative removal would split the network are skipped; if no
  /// such link remains, fewer than `count` failures are scheduled).  All
  /// randomness comes from `seed` — simulation-time behaviour is untouched.
  static FaultSchedule randomLinkFailures(const topo::Topology& topo,
                                          unsigned count,
                                          std::uint64_t firstCycle,
                                          std::uint64_t cycleStep,
                                          std::uint64_t seed,
                                          bool avoidPartition = true);

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }
  std::span<const FaultEvent> events() const noexcept { return events_; }

  /// Throws std::invalid_argument when an event names an out-of-range link
  /// or node id for `topo`.
  void validate(const topo::Topology& topo) const;

 private:
  FaultSchedule& add(std::uint64_t cycle, FaultKind kind, std::uint32_t id);

  std::vector<FaultEvent> events_;  // (cycle, down-before-up), stable within
};

}  // namespace downup::fault
