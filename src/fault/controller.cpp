#include "fault/controller.hpp"

namespace downup::fault {

FaultController::FaultController(const topo::Topology& topo,
                                 const FaultSchedule& schedule)
    : topo_(&topo),
      schedule_(&schedule),
      linkExplicitDown_(topo.linkCount(), 0),
      linkAlive_(topo.linkCount(), 1),
      nodeAlive_(topo.nodeCount(), 1) {
  schedule.validate(topo);
}

void FaultController::refreshLink(topo::LinkId l) {
  const auto [a, b] = topo_->linkEnds(l);
  const std::uint8_t alive =
      !linkExplicitDown_[l] && nodeAlive_[a] && nodeAlive_[b];
  if (alive == linkAlive_[l]) return;
  batchChanged_ = true;
  if (!alive) newlyDeadLinks_.push_back(l);
  linkAlive_[l] = alive;
  if (sink_ != nullptr) sink_->onLinkStateChanged(batchCycle_, l, alive != 0);
}

FaultController::Applied FaultController::applyEventsAt(std::uint64_t cycle) {
  newlyDeadLinks_.clear();
  newlyDeadNodes_.clear();
  batchCycle_ = cycle;
  batchChanged_ = false;
  const auto events = schedule_->events();
  for (; cursor_ < events.size() && events[cursor_].cycle == cycle; ++cursor_) {
    const FaultEvent& event = events[cursor_];
    switch (event.kind) {
      case FaultKind::kLinkDown:
        if (!linkExplicitDown_[event.id]) {
          linkExplicitDown_[event.id] = 1;
          ++explicitDownCount_;
          refreshLink(event.id);
        }
        break;
      case FaultKind::kLinkUp:
        if (linkExplicitDown_[event.id]) {
          linkExplicitDown_[event.id] = 0;
          --explicitDownCount_;
          refreshLink(event.id);
        }
        break;
      case FaultKind::kNodeDown:
        if (nodeAlive_[event.id]) {
          nodeAlive_[event.id] = 0;
          ++deadNodeCount_;
          newlyDeadNodes_.push_back(event.id);
          batchChanged_ = true;
          if (sink_ != nullptr) {
            sink_->onNodeStateChanged(cycle, event.id, false);
          }
          for (topo::ChannelId c : topo_->outputChannels(event.id)) {
            refreshLink(topo::Topology::linkOf(c));
          }
        }
        break;
      case FaultKind::kNodeUp:
        if (!nodeAlive_[event.id]) {
          nodeAlive_[event.id] = 1;
          --deadNodeCount_;
          batchChanged_ = true;
          if (sink_ != nullptr) {
            sink_->onNodeStateChanged(cycle, event.id, true);
          }
          for (topo::ChannelId c : topo_->outputChannels(event.id)) {
            refreshLink(topo::Topology::linkOf(c));
          }
        }
        break;
    }
  }
  return {newlyDeadLinks_, newlyDeadNodes_, batchChanged_};
}

}  // namespace downup::fault
