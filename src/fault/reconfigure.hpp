// Online DOWN/UP reconfiguration: rebuild the coordinated tree, the
// Definition-5 turn rule (with the repair and release passes) and the
// shortest-path table on whatever topology is left after faults, expressed
// in the ORIGINAL topology's node/channel numbering so a running simulator
// can hot-swap the table without renumbering any of its channel state.
//
// The degraded graph may be disconnected (node failures isolate switches,
// link failures can split the network).  Every alive connected component
// with at least two switches is routed independently — its own compacted
// sub-topology, coordinated tree and DOWN/UP rule — and the per-component
// tables are merged with RoutingTable::remapComponents.  Channel-dependency
// graphs of distinct components are disjoint, so the merged rule is
// deadlock-free iff each component's rule is; pairs in different components
// stay unreachable and are reported for the engine to drop with attribution.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "routing/routing_table.hpp"
#include "routing/verify.hpp"

namespace downup::verify {
class OracleGate;
}

namespace downup::fault {

/// One rebuilt routing epoch.  `table` indexes the ORIGINAL topology's
/// channels; `perms` (which `table` references) lives alongside it.
struct ReconfigOutcome {
  std::unique_ptr<routing::TurnPermissions> perms;
  std::unique_ptr<routing::RoutingTable> table;

  unsigned components = 0;      // alive components (isolated switches count)
  std::uint32_t aliveNodes = 0;
  std::uint32_t aliveLinks = 0;
  /// Ordered alive-node pairs with no legal path (cross-component pairs
  /// plus any within-component unreachability — the latter is a bug and
  /// implies !deadlockFree or a verify failure).
  std::uint64_t unreachablePairs = 0;
  /// Every component's channel-dependency graph verified acyclic.
  bool deadlockFree = false;
  /// Every within-component ordered pair reachable on legal paths.
  bool componentsConnected = false;
  /// Mean legal hop count over reachable pairs, across components.
  double averagePathLength = 0.0;
  /// Epoch was produced by the incremental path: previous turn rule kept,
  /// only dirty destinations rebuilt.
  bool incremental = false;
  /// Destinations whose table rows were recomputed (aliveNodes on a full
  /// rebuild; the incremental path's dirty-set size otherwise).
  std::uint32_t rebuiltDestinations = 0;

  bool ok() const noexcept { return deadlockFree && componentsConnected; }
};

class Reconfigurator {
 public:
  /// `topo` is the healthy (full) topology; it must outlive the
  /// reconfigurator and every outcome it produces.  `pool` (optional) must
  /// outlive the reconfigurator and parallelises table construction;
  /// outcomes are identical at any thread count.
  explicit Reconfigurator(const topo::Topology& topo,
                          util::ThreadPool* pool = nullptr)
      : topo_(&topo), pool_(pool) {}

  const topo::Topology& topology() const noexcept { return *topo_; }

  /// Attaches a span recorder: every rebuild emits partition / subtopo /
  /// tree / classify / repair / release / table_build / verify / merge
  /// stage spans.  nullptr (the default) detaches; the pointer must stay
  /// valid across rebuild calls and is shared with them unsynchronised, so
  /// set it before rebuilds start.
  void setSpans(util::SpanRecorder* spans) noexcept { spans_ = spans; }

  /// Attaches the independent deadlock oracle (verify/gate.hpp): every
  /// merged outcome — full rebuilds at "reconfig_full", incremental epochs
  /// at "reconfig_incremental" — is audited against its alive-channel mask
  /// before it is returned.  Same lifetime/synchronisation contract as
  /// setSpans; nullptr (the default) is a never-taken branch per rebuild.
  void setOracle(verify::OracleGate* oracle) noexcept { oracle_ = oracle; }

  /// Rebuilds routing over the subgraph restricted to nodes with
  /// nodeAlive[v] != 0 and links with linkAlive[l] != 0 (a dead endpoint
  /// implies a dead link regardless of linkAlive).  Deterministic: uses the
  /// paper's M1 tree policy, no RNG.
  ReconfigOutcome rebuild(std::span<const std::uint8_t> linkAlive,
                          std::span<const std::uint8_t> nodeAlive) const;

  /// Incremental epoch: keeps `prevTable`'s turn rule — restricting an
  /// acyclic channel-dependency graph to surviving channels cannot create a
  /// cycle, so deadlock freedom is inherited — and recomputes only the
  /// destinations whose minimal-path structure a newly dead channel can
  /// touch (RoutingTable::rebuildDead).  Falls back to a full rebuild()
  /// when a channel revived relative to prevTable, or when the inherited
  /// rule leaves a within-component pair unreachable that re-rooting could
  /// serve (e.g. the failure cut off the old tree root's region).  The
  /// outcome reports which path ran via `incremental`.
  ReconfigOutcome rebuildIncremental(
      const routing::RoutingTable& prevTable,
      std::span<const std::uint8_t> linkAlive,
      std::span<const std::uint8_t> nodeAlive) const;

  /// Fraction (0, 1] of per-destination construction work an incremental
  /// epoch would redo given the masks; 1.0 when the incremental path cannot
  /// apply.  The engine uses this to size the reconfiguration window at
  /// fault time, before the rebuild itself runs.
  double incrementalDirtyFraction(const routing::RoutingTable& prevTable,
                                  std::span<const std::uint8_t> linkAlive,
                                  std::span<const std::uint8_t> nodeAlive) const;

 private:
  std::vector<std::uint64_t> channelAliveWords(
      std::span<const std::uint8_t> linkAlive,
      std::span<const std::uint8_t> nodeAlive) const;

  void auditOutcome(const ReconfigOutcome& out,
                    std::span<const std::uint8_t> linkAlive,
                    std::span<const std::uint8_t> nodeAlive,
                    const char* point) const;

  const topo::Topology* topo_;
  util::ThreadPool* pool_ = nullptr;
  util::SpanRecorder* spans_ = nullptr;
  verify::OracleGate* oracle_ = nullptr;
};

}  // namespace downup::fault
