#include "stats/experiment.hpp"

#include <cstdio>
#include <memory>

#include "stats/metrics.hpp"
#include "topology/generate.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace downup::stats {

ExperimentConfig ExperimentConfig::quick() { return ExperimentConfig{}; }

ExperimentConfig ExperimentConfig::paperScale() {
  ExperimentConfig config;
  config.switches = 128;
  config.samples = 10;
  config.sim.warmupCycles = 8000;
  config.sim.measureCycles = 30000;
  config.loadPoints = 10;
  return config;
}

const Cell* ExperimentResults::find(unsigned ports, tree::TreePolicy policy,
                                    core::Algorithm algorithm) const noexcept {
  for (const Cell& cell : cells) {
    if (cell.ports == ports && cell.policy == policy &&
        cell.algorithm == algorithm) {
      return &cell;
    }
  }
  return nullptr;
}

Cell* ExperimentResults::find(unsigned ports, tree::TreePolicy policy,
                              core::Algorithm algorithm) noexcept {
  for (Cell& cell : cells) {
    if (cell.ports == ports && cell.policy == policy &&
        cell.algorithm == algorithm) {
      return &cell;
    }
  }
  return nullptr;
}

namespace {

std::uint64_t mixSeed(std::uint64_t base, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c = 0, std::uint64_t d = 0) {
  util::SplitMix64 sm(base ^ (a * 0x9e3779b97f4a7c15ULL) ^
                      (b * 0xbf58476d1ce4e5b9ULL) ^
                      (c * 0x94d049bb133111ebULL) ^ (d + 1));
  return sm.next();
}

/// Everything one (ports, sample, policy, algorithm) combination
/// contributes, computed inside a worker and folded deterministically.
struct CellOutcome {
  bool valid = false;
  double avgPathLength = 0.0;
  double zeroLoadLatency = 0.0;
  double maxAccepted = 0.0;
  double nodeUtilization = 0.0;
  double trafficLoad = 0.0;
  double hotspotPercent = 0.0;
  double leafUtilization = 0.0;
  struct Point {
    double accepted = 0.0;
    double latency = 0.0;
  };
  std::vector<Point> points;  // aligned with the shared load grid prefix
};

/// Simulates one sample of one port configuration across every policy and
/// algorithm.  Outcome layout: [policyIdx * algorithms + algoIdx].
std::vector<CellOutcome> runSample(const ExperimentConfig& config,
                                   unsigned ports, unsigned sample,
                                   const std::vector<double>& loads,
                                   util::ThreadPool* pool) {
  std::vector<CellOutcome> outcomes(config.policies.size() *
                                    config.algorithms.size());
  util::Rng topoRng(mixSeed(config.baseSeed, ports, sample, 1));
  const topo::Topology topo =
      topo::randomIrregular(config.switches, {.maxPorts = ports}, topoRng);
  const sim::UniformTraffic traffic(topo.nodeCount());

  for (std::size_t policyIdx = 0; policyIdx < config.policies.size();
       ++policyIdx) {
    const tree::TreePolicy policy = config.policies[policyIdx];
    util::Rng treeRng(mixSeed(config.baseSeed, ports, sample, 2,
                              static_cast<std::uint64_t>(policy)));
    const tree::CoordinatedTree ct =
        tree::CoordinatedTree::build(topo, policy, treeRng);

    for (std::size_t algoIdx = 0; algoIdx < config.algorithms.size();
         ++algoIdx) {
      const core::Algorithm algorithm = config.algorithms[algoIdx];
      const routing::Routing routing = core::buildRouting(algorithm, topo, ct);

      sim::SimConfig simConfig = config.sim;
      simConfig.seed =
          mixSeed(config.baseSeed, ports, sample, 3,
                  static_cast<std::uint64_t>(policy) * 16 +
                      static_cast<std::uint64_t>(algorithm));
      const std::vector<SweepPoint> sweep =
          runSweep(routing.table(), traffic, loads, simConfig, {}, pool);
      if (sweep.empty()) continue;

      CellOutcome& outcome =
          outcomes[policyIdx * config.algorithms.size() + algoIdx];
      outcome.valid = true;
      outcome.avgPathLength = routing.table().averagePathLength();
      outcome.zeroLoadLatency = sweep.front().stats.avgLatency;
      outcome.points.reserve(sweep.size());
      for (const SweepPoint& point : sweep) {
        outcome.points.push_back(
            {point.stats.acceptedFlitsPerNodePerCycle, point.stats.avgLatency});
      }
      const Saturation saturation = findSaturation(sweep);
      outcome.maxAccepted = saturation.maxAccepted;
      const sim::RunStats& peak = sweep[saturation.peakIndex].stats;
      const PaperMetrics metrics =
          computePaperMetrics(topo, ct, peak.channelUtilization);
      outcome.nodeUtilization = metrics.meanNodeUtilization;
      outcome.trafficLoad = metrics.trafficLoad;
      outcome.hotspotPercent = metrics.hotspotDegreePercent;
      outcome.leafUtilization = metrics.leafUtilization;
    }
  }
  return outcomes;
}

}  // namespace

ExperimentResults runExperiment(const ExperimentConfig& config) {
  ExperimentResults results;
  results.config = config;

  // Pre-create every cell so aggregation order is stable.
  for (unsigned ports : config.portConfigs) {
    for (tree::TreePolicy policy : config.policies) {
      for (core::Algorithm algorithm : config.algorithms) {
        Cell cell;
        cell.ports = ports;
        cell.policy = policy;
        cell.algorithm = algorithm;
        results.cells.push_back(std::move(cell));
      }
    }
  }
  const auto cellOf = [&results](unsigned ports, tree::TreePolicy policy,
                                 core::Algorithm algorithm) -> Cell& {
    return *results.find(ports, policy, algorithm);
  };

  std::unique_ptr<util::ThreadPool> pool;
  if (config.threads != 1) {
    pool = std::make_unique<util::ThreadPool>(config.threads);
  }

  for (unsigned ports : config.portConfigs) {
    // Shared load grid for every cell of this port configuration.
    double top = config.maxLoadPerPort * ports;
    if (config.autoLoadRange) {
      // Probe once on the first sample with the M1 DOWN/UP routing; 1.8x
      // the best probed load comfortably brackets saturation for every
      // cell sharing this grid.
      util::Rng topoRng(mixSeed(config.baseSeed, ports, 0, 1));
      const topo::Topology topo = topo::randomIrregular(
          config.switches, {.maxPorts = ports}, topoRng);
      const sim::UniformTraffic traffic(topo.nodeCount());
      util::Rng probeTreeRng(mixSeed(config.baseSeed, ports, 0, 4));
      const tree::CoordinatedTree probeTree = tree::CoordinatedTree::build(
          topo, tree::TreePolicy::kM1SmallestFirst, probeTreeRng);
      const routing::Routing probeRouting =
          core::buildRouting(core::Algorithm::kDownUp, topo, probeTree);
      sim::SimConfig probeConfig = config.sim;
      probeConfig.seed = mixSeed(config.baseSeed, ports, 0, 5);
      const double probed =
          probeSaturationLoad(probeRouting.table(), traffic, probeConfig);
      top = std::min(1.0, 1.8 * probed);
      if (config.verbose) {
        std::fprintf(stderr,
                     "[experiment] ports=%u probed saturation ~%.3f, sweep "
                     "grid top %.3f\n",
                     ports, probed, top);
      }
    }
    const std::vector<double> loads = loadGrid(top, config.loadPoints);

    // Simulate samples (in parallel when configured), then fold in sample
    // order so aggregation is identical at any thread count.
    // Samples fan out across the pool; inside each sample the load points
    // fan out again (runSweep's pool overload).  Both levels use the
    // work-sharing parallelFor, so the nesting cannot deadlock.
    std::vector<std::vector<CellOutcome>> bySample(config.samples);
    util::ThreadPool* poolPtr = pool.get();
    const auto task = [&config, &bySample, ports, &loads,
                       poolPtr](std::size_t sample) {
      bySample[sample] = runSample(config, ports,
                                   static_cast<unsigned>(sample), loads,
                                   poolPtr);
    };
    util::parallelFor(poolPtr, config.samples, task);

    for (unsigned sample = 0; sample < config.samples; ++sample) {
      for (std::size_t policyIdx = 0; policyIdx < config.policies.size();
           ++policyIdx) {
        for (std::size_t algoIdx = 0; algoIdx < config.algorithms.size();
             ++algoIdx) {
          const CellOutcome& outcome =
              bySample[sample][policyIdx * config.algorithms.size() + algoIdx];
          if (!outcome.valid) continue;
          Cell& cell = cellOf(ports, config.policies[policyIdx],
                              config.algorithms[algoIdx]);
          cell.avgPathLength.add(outcome.avgPathLength);
          cell.zeroLoadLatency.add(outcome.zeroLoadLatency);
          cell.maxAccepted.add(outcome.maxAccepted);
          cell.nodeUtilization.add(outcome.nodeUtilization);
          cell.trafficLoad.add(outcome.trafficLoad);
          cell.hotspotPercent.add(outcome.hotspotPercent);
          cell.leafUtilization.add(outcome.leafUtilization);
          if (cell.curve.empty()) {
            cell.curve.resize(loads.size());
            for (std::size_t i = 0; i < loads.size(); ++i) {
              cell.curve[i].offeredLoad = loads[i];
            }
          }
          for (std::size_t i = 0; i < outcome.points.size(); ++i) {
            cell.curve[i].accepted.add(outcome.points[i].accepted);
            cell.curve[i].latency.add(outcome.points[i].latency);
          }
          if (config.verbose) {
            std::fprintf(
                stderr,
                "[experiment] ports=%u sample=%u tree=%.*s algo=%.*s "
                "sat=%.4f flits/node/clk\n",
                ports, sample,
                static_cast<int>(
                    tree::toString(config.policies[policyIdx]).size()),
                tree::toString(config.policies[policyIdx]).data(),
                static_cast<int>(
                    core::toString(config.algorithms[algoIdx]).size()),
                core::toString(config.algorithms[algoIdx]).data(),
                outcome.maxAccepted);
          }
        }
      }
    }
  }
  return results;
}

}  // namespace downup::stats
