// The shared experiment driver behind every table/figure bench: it executes
// the paper's methodology end to end —
//
//   for each port configuration (4, 8):
//     for each of `samples` random irregular topologies:
//       for each coordinated-tree policy (M1, M2, M3):
//         for each routing algorithm (L-turn, DOWN/UP, ...):
//           sweep offered load to saturation, record the latency /
//           accepted-traffic curve, and compute the Table 1-4 metrics at the
//           peak-throughput point;
//
// aggregating every quantity across samples.  The default configuration is
// sized to finish quickly on one core; ExperimentConfig::paperScale() selects
// the paper's 128-switch / 10-sample setup.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/downup_routing.hpp"
#include "sim/config.hpp"
#include "stats/sweep.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/summary.hpp"

namespace downup::stats {

struct ExperimentConfig {
  std::vector<unsigned> portConfigs = {4, 8};
  topo::NodeId switches = 32;
  unsigned samples = 3;
  std::vector<tree::TreePolicy> policies = {
      tree::TreePolicy::kM1SmallestFirst, tree::TreePolicy::kM2Random,
      tree::TreePolicy::kM3LargestFirst};
  std::vector<core::Algorithm> algorithms = {core::Algorithm::kLTurn,
                                             core::Algorithm::kDownUp};
  sim::SimConfig sim;
  /// When true (default) the sweep grid top is sized per port-configuration
  /// by a coarse saturation probe on the first sample (DOWN/UP, M1), so
  /// networks of any scale actually reach saturation.  When false the top
  /// is the fixed value maxLoadPerPort * ports.
  bool autoLoadRange = true;
  double maxLoadPerPort = 0.06;
  unsigned loadPoints = 8;
  std::uint64_t baseSeed = 2004;
  bool verbose = false;  // progress lines on stderr
  /// Worker threads for the simulations (0 = hardware concurrency,
  /// 1 = serial).  Samples fan out across the pool and each sample's load
  /// points fan out within it (nested work-sharing).  Results are
  /// bit-identical at any width: every simulation is an independent
  /// fixed-seed run and aggregation folds in a fixed order.
  unsigned threads = 1;

  /// The paper's setup: 128 switches, 10 samples, longer windows.
  static ExperimentConfig paperScale();
  /// A minutes-scale reduced setup (the default values above).
  static ExperimentConfig quick();
};

struct CurvePoint {
  double offeredLoad = 0.0;
  util::RunningStat accepted;  // across samples, flits/node/cycle
  util::RunningStat latency;   // across samples, cycles
};

/// Aggregated results for one (ports, policy, algorithm) combination.
struct Cell {
  unsigned ports = 0;
  tree::TreePolicy policy = tree::TreePolicy::kM1SmallestFirst;
  core::Algorithm algorithm = core::Algorithm::kDownUp;

  // Table 1-4 metrics at each sample's peak-throughput point.
  util::RunningStat nodeUtilization;
  util::RunningStat trafficLoad;
  util::RunningStat hotspotPercent;
  util::RunningStat leafUtilization;

  // Figure-8 scalars.
  util::RunningStat maxAccepted;       // saturation throughput
  util::RunningStat zeroLoadLatency;   // latency at the lowest sweep load
  util::RunningStat avgPathLength;     // legal shortest-path mean

  std::vector<CurvePoint> curve;  // latency & accepted vs offered load
};

struct ExperimentResults {
  ExperimentConfig config;
  std::vector<Cell> cells;

  const Cell* find(unsigned ports, tree::TreePolicy policy,
                   core::Algorithm algorithm) const noexcept;
  Cell* find(unsigned ports, tree::TreePolicy policy,
             core::Algorithm algorithm) noexcept;
};

ExperimentResults runExperiment(const ExperimentConfig& config);

}  // namespace downup::stats
