#include "stats/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"

namespace downup::stats {

void printPaperTable(std::ostream& out, std::string_view title,
                     const ExperimentResults& results, const CellValue& value,
                     int precision, std::string_view suffix) {
  const auto& config = results.config;
  out << title << "\n";

  out << std::left << std::setw(6) << "";
  for (core::Algorithm algorithm : config.algorithms) {
    for (unsigned ports : config.portConfigs) {
      std::ostringstream header;
      header << core::toString(algorithm) << " " << ports << "p";
      out << std::setw(20) << header.str();
    }
  }
  out << "\n";

  for (tree::TreePolicy policy : config.policies) {
    out << std::left << std::setw(6) << tree::toString(policy);
    for (core::Algorithm algorithm : config.algorithms) {
      for (unsigned ports : config.portConfigs) {
        const Cell* cell = results.find(ports, policy, algorithm);
        std::ostringstream text;
        if (cell == nullptr || cell->nodeUtilization.count() == 0) {
          text << "-";
        } else {
          text << std::fixed << std::setprecision(precision) << value(*cell)
               << suffix;
        }
        out << std::setw(20) << text.str();
      }
    }
    out << "\n";
  }
  out << std::flush;
}

void printLatencyCurves(std::ostream& out, const ExperimentResults& results) {
  const auto& config = results.config;
  for (unsigned ports : config.portConfigs) {
    for (tree::TreePolicy policy : config.policies) {
      for (core::Algorithm algorithm : config.algorithms) {
        const Cell* cell = results.find(ports, policy, algorithm);
        if (cell == nullptr || cell->curve.empty()) continue;
        out << "# " << ports << "-port " << tree::toString(policy) << " "
            << core::toString(algorithm) << "\n";
        out << std::left << std::setw(14) << "offered" << std::setw(14)
            << "accepted" << std::setw(14) << "latency" << "\n";
        for (const CurvePoint& point : cell->curve) {
          if (point.accepted.count() == 0) continue;
          out << std::fixed << std::setprecision(5) << std::left
              << std::setw(14) << point.offeredLoad << std::setw(14)
              << point.accepted.mean() << std::setw(14) << std::setprecision(1)
              << point.latency.mean() << "\n";
        }
      }
    }
  }
  out << std::flush;
}

void writeCurvesCsv(const ExperimentResults& results,
                    const std::string& path) {
  util::CsvWriter csv(path);
  csv.header({"ports", "tree", "algorithm", "offered_load",
              "accepted_flits_per_node_per_cycle", "avg_latency_cycles",
              "samples"});
  for (const Cell& cell : results.cells) {
    for (const CurvePoint& point : cell.curve) {
      if (point.accepted.count() == 0) continue;
      csv.cell(cell.ports)
          .cell(tree::toString(cell.policy))
          .cell(core::toString(cell.algorithm))
          .cell(point.offeredLoad)
          .cell(point.accepted.mean())
          .cell(point.latency.mean())
          .cell(point.accepted.count());
      csv.endRow();
    }
  }
}

void writeMetricsCsv(const ExperimentResults& results,
                     const std::string& path) {
  util::CsvWriter csv(path);
  csv.header({"ports", "tree", "algorithm", "node_utilization",
              "traffic_load", "hotspot_percent", "leaf_utilization",
              "max_accepted", "zero_load_latency", "avg_path_length",
              "samples"});
  for (const Cell& cell : results.cells) {
    if (cell.nodeUtilization.count() == 0) continue;
    csv.cell(cell.ports)
        .cell(tree::toString(cell.policy))
        .cell(core::toString(cell.algorithm))
        .cell(cell.nodeUtilization.mean())
        .cell(cell.trafficLoad.mean())
        .cell(cell.hotspotPercent.mean())
        .cell(cell.leafUtilization.mean())
        .cell(cell.maxAccepted.mean())
        .cell(cell.zeroLoadLatency.mean())
        .cell(cell.avgPathLength.mean())
        .cell(cell.nodeUtilization.count());
    csv.endRow();
  }
}

}  // namespace downup::stats
