#include "stats/report.hpp"

#include <algorithm>
#include <functional>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/csv.hpp"

namespace downup::stats {

void printPaperTable(std::ostream& out, std::string_view title,
                     const ExperimentResults& results, const CellValue& value,
                     int precision, std::string_view suffix) {
  const auto& config = results.config;
  out << title << "\n";

  out << std::left << std::setw(6) << "";
  for (core::Algorithm algorithm : config.algorithms) {
    for (unsigned ports : config.portConfigs) {
      std::ostringstream header;
      header << core::toString(algorithm) << " " << ports << "p";
      out << std::setw(20) << header.str();
    }
  }
  out << "\n";

  for (tree::TreePolicy policy : config.policies) {
    out << std::left << std::setw(6) << tree::toString(policy);
    for (core::Algorithm algorithm : config.algorithms) {
      for (unsigned ports : config.portConfigs) {
        const Cell* cell = results.find(ports, policy, algorithm);
        std::ostringstream text;
        if (cell == nullptr || cell->nodeUtilization.count() == 0) {
          text << "-";
        } else {
          text << std::fixed << std::setprecision(precision) << value(*cell)
               << suffix;
        }
        out << std::setw(20) << text.str();
      }
    }
    out << "\n";
  }
  out << std::flush;
}

void printLatencyCurves(std::ostream& out, const ExperimentResults& results) {
  const auto& config = results.config;
  for (unsigned ports : config.portConfigs) {
    for (tree::TreePolicy policy : config.policies) {
      for (core::Algorithm algorithm : config.algorithms) {
        const Cell* cell = results.find(ports, policy, algorithm);
        if (cell == nullptr || cell->curve.empty()) continue;
        out << "# " << ports << "-port " << tree::toString(policy) << " "
            << core::toString(algorithm) << "\n";
        out << std::left << std::setw(14) << "offered" << std::setw(14)
            << "accepted" << std::setw(14) << "latency" << "\n";
        for (const CurvePoint& point : cell->curve) {
          if (point.accepted.count() == 0) continue;
          out << std::fixed << std::setprecision(5) << std::left
              << std::setw(14) << point.offeredLoad << std::setw(14)
              << point.accepted.mean() << std::setw(14) << std::setprecision(1)
              << point.latency.mean() << "\n";
        }
      }
    }
  }
  out << std::flush;
}

void writeCurvesCsv(const ExperimentResults& results,
                    const std::string& path) {
  util::CsvWriter csv(path);
  csv.header({"ports", "tree", "algorithm", "offered_load",
              "accepted_flits_per_node_per_cycle", "avg_latency_cycles",
              "samples"});
  for (const Cell& cell : results.cells) {
    for (const CurvePoint& point : cell.curve) {
      if (point.accepted.count() == 0) continue;
      csv.cell(cell.ports)
          .cell(tree::toString(cell.policy))
          .cell(core::toString(cell.algorithm))
          .cell(point.offeredLoad)
          .cell(point.accepted.mean())
          .cell(point.latency.mean())
          .cell(point.accepted.count());
      csv.endRow();
    }
  }
}

void writeMetricsCsv(const ExperimentResults& results,
                     const std::string& path) {
  util::CsvWriter csv(path);
  csv.header({"ports", "tree", "algorithm", "node_utilization",
              "traffic_load", "hotspot_percent", "leaf_utilization",
              "max_accepted", "zero_load_latency", "avg_path_length",
              "samples"});
  for (const Cell& cell : results.cells) {
    if (cell.nodeUtilization.count() == 0) continue;
    csv.cell(cell.ports)
        .cell(tree::toString(cell.policy))
        .cell(core::toString(cell.algorithm))
        .cell(cell.nodeUtilization.mean())
        .cell(cell.trafficLoad.mean())
        .cell(cell.hotspotPercent.mean())
        .cell(cell.leafUtilization.mean())
        .cell(cell.maxAccepted.mean())
        .cell(cell.zeroLoadLatency.mean())
        .cell(cell.avgPathLength.mean())
        .cell(cell.nodeUtilization.count());
    csv.endRow();
  }
}

void printHotspotReport(std::ostream& out, const obs::MetricsRegistry& metrics,
                        std::size_t topN) {
  using routing::Dir;
  constexpr std::uint32_t kDirs =
      static_cast<std::uint32_t>(routing::kDirCount);
  const auto rowName = [](std::uint32_t row) -> std::string {
    if (row == obs::MetricsRegistry::kInjectRow) return "INJECT";
    return std::string(routing::toString(static_cast<Dir>(row)));
  };

  // --- root-distance congestion histogram ---
  out << "per-level congestion (level 0 = root)\n";
  out << std::left << std::setw(8) << "level" << std::right << std::setw(8)
      << "nodes" << std::setw(16) << "flits" << std::setw(16) << "blocked"
      << std::setw(16) << "flits/node" << std::setw(16) << "blocked/node"
      << "\n";
  const auto levelFlits = metrics.levelFlits();
  const auto levelBlocked = metrics.levelBlockedCycles();
  const auto population = metrics.levelPopulation();
  for (std::uint32_t level = 0; level < metrics.levelCount(); ++level) {
    const double nodes = std::max<std::uint32_t>(population[level], 1);
    out << std::left << std::setw(8) << level << std::right << std::setw(8)
        << population[level] << std::setw(16) << levelFlits[level]
        << std::setw(16) << levelBlocked[level] << std::fixed
        << std::setprecision(1) << std::setw(16)
        << static_cast<double>(levelFlits[level]) / nodes << std::setw(16)
        << static_cast<double>(levelBlocked[level]) / nodes << "\n";
  }

  // --- most-blocked nodes ---
  std::vector<std::pair<std::uint64_t, topo::NodeId>> ranked;
  ranked.reserve(metrics.nodeCount());
  for (topo::NodeId v = 0; v < metrics.nodeCount(); ++v) {
    const std::uint64_t blocked = metrics.nodeBlockedCycles(v);
    if (blocked > 0) ranked.emplace_back(blocked, v);
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  if (ranked.size() > topN) ranked.resize(topN);

  const double totalBlocked =
      std::max<double>(static_cast<double>(metrics.totalBlockedCycles()), 1.0);
  out << "\ntop blocked nodes (" << ranked.size() << " of "
      << metrics.nodeCount() << ")\n";
  out << std::left << std::setw(8) << "node" << std::right << std::setw(8)
      << "level" << std::setw(16) << "blocked" << std::setw(10) << "share"
      << "  dominant turn\n";
  for (const auto& [blocked, node] : ranked) {
    std::uint64_t best = 0;
    std::uint32_t bestRow = 0;
    std::uint32_t bestDir = 0;
    for (std::uint32_t row = 0; row < obs::MetricsRegistry::kTurnRows; ++row) {
      for (std::uint32_t dir = 0; dir < kDirs; ++dir) {
        const std::uint64_t cell = metrics.blockedCycles(node, row, dir);
        if (cell > best) {
          best = cell;
          bestRow = row;
          bestDir = dir;
        }
      }
    }
    out << std::left << std::setw(8) << node << std::right << std::setw(8)
        << metrics.nodeLevel(node) << std::setw(16) << blocked << std::fixed
        << std::setprecision(1) << std::setw(9)
        << 100.0 * static_cast<double>(blocked) / totalBlocked << "%"
        << "  T(" << rowName(bestRow) << " -> "
        << routing::toString(static_cast<Dir>(bestDir)) << ")\n";
  }

  // --- turn usage, released turns always shown ---
  const auto isReleased = [](std::uint32_t row, std::uint32_t dir) {
    return dir == static_cast<std::uint32_t>(routing::index(Dir::kRdTree)) &&
           (row == static_cast<std::uint32_t>(routing::index(Dir::kLuCross)) ||
            row == static_cast<std::uint32_t>(routing::index(Dir::kRuCross)));
  };
  struct TurnRow {
    std::uint64_t taken;
    std::uint64_t blocked;
    std::uint32_t row;
    std::uint32_t dir;
  };
  std::vector<TurnRow> turns;
  for (std::uint32_t row = 0; row < obs::MetricsRegistry::kTurnRows; ++row) {
    for (std::uint32_t dir = 0; dir < kDirs; ++dir) {
      const std::uint64_t taken = metrics.turnTaken(row, dir);
      if (taken > 0 || isReleased(row, dir)) {
        turns.push_back({taken, metrics.turnBlockedCycles(row, dir), row, dir});
      }
    }
  }
  std::sort(turns.begin(), turns.end(), [](const TurnRow& a, const TurnRow& b) {
    return a.taken > b.taken;
  });
  const double totalTurns =
      std::max<double>(static_cast<double>(metrics.totalTurnsTaken()), 1.0);
  out << "\nturn usage (* = turn released by the DOWN/UP cycle analysis)\n";
  out << std::left << std::setw(28) << "turn" << std::right << std::setw(14)
      << "taken" << std::setw(10) << "share" << std::setw(16) << "blocked"
      << "\n";
  for (const TurnRow& turn : turns) {
    std::ostringstream name;
    name << "T(" << rowName(turn.row) << " -> "
         << routing::toString(static_cast<Dir>(turn.dir)) << ")"
         << (isReleased(turn.row, turn.dir) ? " *" : "");
    out << std::left << std::setw(28) << name.str() << std::right
        << std::setw(14) << turn.taken << std::fixed << std::setprecision(1)
        << std::setw(9) << 100.0 * static_cast<double>(turn.taken) / totalTurns
        << "%" << std::setw(16) << turn.blocked << "\n";
  }
  out << std::flush;
}

}  // namespace downup::stats
