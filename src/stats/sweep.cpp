#include "stats/sweep.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace downup::stats {

namespace {

/// The serial sweep's early-stop rule, applied to already-simulated points:
/// returns how many leading points the serial loop would have produced.
std::size_t saturationCut(std::span<const SweepPoint> sweep,
                          const SweepOptions& options) {
  double bestAccepted = 0.0;
  unsigned stagnant = 0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const double accepted = sweep[i].stats.acceptedFlitsPerNodePerCycle;
    if (accepted > bestAccepted * options.improvementFactor) {
      bestAccepted = accepted;
      stagnant = 0;
    } else if (++stagnant >= options.stagnantLimit) {
      return i + 1;
    }
    bestAccepted = std::max(bestAccepted, accepted);
  }
  return sweep.size();
}

}  // namespace

std::vector<double> loadGrid(double hi, unsigned points) {
  if (hi <= 0.0 || points == 0) {
    throw std::invalid_argument("loadGrid: bad arguments");
  }
  std::vector<double> loads(points);
  for (unsigned i = 0; i < points; ++i) {
    loads[i] = hi * static_cast<double>(i + 1) / static_cast<double>(points);
  }
  return loads;
}

std::vector<SweepPoint> runSweep(const routing::RoutingTable& table,
                                 const sim::TrafficPattern& pattern,
                                 std::span<const double> loads,
                                 const sim::SimConfig& config,
                                 const SweepOptions& options) {
  std::vector<SweepPoint> sweep;
  sweep.reserve(loads.size());
  double bestAccepted = 0.0;
  unsigned stagnant = 0;
  for (double load : loads) {
    SweepPoint point;
    point.offeredLoad = load;
    point.stats = sim::simulate(table, pattern, load, config);
    const double accepted = point.stats.acceptedFlitsPerNodePerCycle;
    sweep.push_back(std::move(point));
    if (options.stopAtSaturation) {
      if (accepted > bestAccepted * options.improvementFactor) {
        bestAccepted = accepted;
        stagnant = 0;
      } else if (++stagnant >= options.stagnantLimit) {
        break;
      }
      bestAccepted = std::max(bestAccepted, accepted);
    }
  }
  return sweep;
}

std::vector<SweepPoint> runSweep(const routing::RoutingTable& table,
                                 const sim::TrafficPattern& pattern,
                                 std::span<const double> loads,
                                 const sim::SimConfig& config,
                                 const SweepOptions& options,
                                 util::ThreadPool* pool) {
  if (pool == nullptr || pool->threadCount() <= 1 || loads.size() <= 1) {
    return runSweep(table, pattern, loads, config, options);
  }
  // Every load point is an independent fixed-seed simulation, so the points
  // can be computed in any order; only the early-stop decision is serial,
  // and replaying it afterwards truncates to the exact serial prefix.
  std::vector<SweepPoint> sweep(loads.size());
  util::parallelFor(*pool, loads.size(), [&](std::size_t i) {
    sweep[i].offeredLoad = loads[i];
    sweep[i].stats = sim::simulate(table, pattern, loads[i], config);
  });
  if (options.stopAtSaturation) {
    sweep.resize(saturationCut(sweep, options));
  }
  return sweep;
}

double probeSaturationLoad(const routing::RoutingTable& table,
                           const sim::TrafficPattern& pattern,
                           const sim::SimConfig& config, double start,
                           double factor) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("probeSaturationLoad: bad arguments");
  }
  sim::SimConfig probeConfig = config;
  probeConfig.warmupCycles = std::max(500u, config.warmupCycles / 2);
  probeConfig.measureCycles = std::max(1000u, config.measureCycles / 2);
  double best = 0.0;
  double bestLoad = start;
  for (double load = start; load <= 1.0; load *= factor) {
    const sim::RunStats stats =
        sim::simulate(table, pattern, load, probeConfig);
    if (stats.acceptedFlitsPerNodePerCycle > best * 1.05) {
      best = stats.acceptedFlitsPerNodePerCycle;
      bestLoad = load;
    } else {
      break;
    }
  }
  return bestLoad;
}

Saturation findSaturation(std::span<const SweepPoint> sweep) {
  Saturation result;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const double accepted = sweep[i].stats.acceptedFlitsPerNodePerCycle;
    if (accepted > result.maxAccepted) {
      result.maxAccepted = accepted;
      result.saturationLoad = sweep[i].offeredLoad;
      result.peakIndex = i;
    }
  }
  return result;
}

}  // namespace downup::stats
