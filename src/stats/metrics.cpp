#include "stats/metrics.hpp"

#include <stdexcept>

#include "util/summary.hpp"

namespace downup::stats {

PaperMetrics computePaperMetrics(const topo::Topology& topo,
                                 const tree::CoordinatedTree& ct,
                                 std::span<const double> channelUtilization) {
  if (channelUtilization.size() != topo.channelCount()) {
    throw std::invalid_argument(
        "computePaperMetrics: channel utilization size mismatch");
  }
  const topo::NodeId n = topo.nodeCount();
  PaperMetrics metrics;
  metrics.nodeUtilization.assign(n, 0.0);
  for (topo::NodeId v = 0; v < n; ++v) {
    double sum = 0.0;
    for (topo::ChannelId c : topo.outputChannels(v)) {
      sum += channelUtilization[c];
    }
    const unsigned ports = topo.degree(v);
    metrics.nodeUtilization[v] = ports == 0 ? 0.0 : sum / ports;
  }

  metrics.meanNodeUtilization = util::mean(metrics.nodeUtilization);
  metrics.trafficLoad = util::populationStddev(metrics.nodeUtilization);

  double total = 0.0;
  double nearRoot = 0.0;
  for (topo::NodeId v = 0; v < n; ++v) {
    total += metrics.nodeUtilization[v];
    if (ct.y(v) <= 1) nearRoot += metrics.nodeUtilization[v];
  }
  metrics.hotspotDegreePercent = total <= 0.0 ? 0.0 : 100.0 * nearRoot / total;

  double leafSum = 0.0;
  std::size_t leafCount = 0;
  for (topo::NodeId v = 0; v < n; ++v) {
    if (ct.isLeaf(v)) {
      leafSum += metrics.nodeUtilization[v];
      ++leafCount;
    }
  }
  metrics.leafUtilization =
      leafCount == 0 ? 0.0 : leafSum / static_cast<double>(leafCount);
  return metrics;
}

}  // namespace downup::stats
