// Shape checking and report generation over experiment results: the paper's
// claims are directional ("DOWN/UP outperforms L-turn for all test
// samples"), so the harness can verify them mechanically and emit a
// measured-vs-claim verdict table.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/experiment.hpp"
#include "stats/report.hpp"  // CellValue

namespace downup::stats {

/// One directional claim: `better` beats `baseline` on a metric, for every
/// (ports, policy) combination present in the results.
struct ShapeCheck {
  std::string metric;        // human-readable name
  bool higherIsBetter;       // direction of "beats"
  CellValue value;           // metric extractor
};

struct ShapeVerdict {
  std::string metric;
  unsigned wins = 0;      // cells where `better` beats `baseline`
  unsigned losses = 0;
  double meanRatio = 0.0;  // mean of better/baseline over cells
  bool holdsEverywhere() const noexcept { return losses == 0 && wins > 0; }
};

/// Evaluates `better` vs `baseline` on every check, across all
/// (ports, policy) cells where both algorithms have data.
std::vector<ShapeVerdict> compareAlgorithms(const ExperimentResults& results,
                                            core::Algorithm better,
                                            core::Algorithm baseline,
                                            const std::vector<ShapeCheck>& checks);

/// The paper's five headline checks (node util up, traffic load down,
/// hot spots down, leaf util up, throughput up).
std::vector<ShapeCheck> paperShapeChecks();

/// Prints one line per verdict: metric, wins/losses, mean ratio, HOLDS/FAILS.
void printShapeVerdicts(std::ostream& out,
                        const std::vector<ShapeVerdict>& verdicts);

/// Writes the whole results object as a self-contained Markdown report
/// (per-metric tables + shape verdicts), suitable for EXPERIMENTS.md
/// appendices.
void writeMarkdownReport(const ExperimentResults& results,
                         std::ostream& out);

}  // namespace downup::stats
