// Paper-style text tables and CSV emission for experiment results.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "stats/experiment.hpp"

namespace downup::obs {
class MetricsRegistry;
}

namespace downup::stats {

/// Extracts the reported scalar from a cell (e.g. mean node utilization).
using CellValue = std::function<double(const Cell&)>;

/// Prints a table shaped like the paper's Tables 1-4: one row per tree
/// policy, one column per (algorithm, port configuration).
///
///              lturn          downup
///              4-port 8-port  4-port 8-port
///   M1         ...
void printPaperTable(std::ostream& out, std::string_view title,
                     const ExperimentResults& results, const CellValue& value,
                     int precision = 6, std::string_view suffix = "");

/// Prints the Figure-8 series: per (ports, policy, algorithm), rows of
/// offered load, accepted traffic and average latency.
void printLatencyCurves(std::ostream& out, const ExperimentResults& results);

/// Writes the same curves as CSV (one row per point) to `path`.
void writeCurvesCsv(const ExperimentResults& results, const std::string& path);

/// Writes every aggregated table metric as CSV to `path`.
void writeMetricsCsv(const ExperimentResults& results, const std::string& path);

/// Per-node hotspot report from an observability run: the per-tree-level
/// congestion histogram (flits and header-blocked cycles, absolute and per
/// node), the `topN` most-blocked nodes with their dominant turn, and the
/// turn-usage table with the DOWN/UP released turns T(LU_CROSS -> RD_TREE)
/// and T(RU_CROSS -> RD_TREE) always listed.
void printHotspotReport(std::ostream& out, const obs::MetricsRegistry& metrics,
                        std::size_t topN = 10);

}  // namespace downup::stats
