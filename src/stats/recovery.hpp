// Fault recovery curves: per-event transient analysis of the windowed
// time series (obs/timeseries.hpp).
//
// For every fault -> hot-swap reconfiguration span recorded by the
// collector, the analyzer extracts the transient the aggregate RunStats
// averages away:
//
//   * time-to-reroute    — cycles from the fault to the routing hot-swap
//     (the reconfiguration window the engine actually served, which under
//     incremental reconfiguration shrinks with the dirty fraction);
//   * throughput dip     — depth (1 - min windowed ejection rate /
//     pre-fault baseline) and width (cycles spent below the recovery
//     threshold) of the accepted-traffic excursion;
//   * time-to-recover    — cycles from the fault until the first window at
//     or after the swap whose ejection rate is back above
//     recoveryFraction x baseline;
//   * delivered deficit  — flits the network failed to deliver relative to
//     the baseline over the sub-threshold span (the area of the dip);
//   * packet drops attributed to the event's span.
//
// The baseline is the mean ejection rate over the last `baselineWindows`
// complete windows preceding the fault, so back-to-back events each
// measure against the state they actually disturbed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/timeseries.hpp"

namespace downup::stats {

struct RecoveryOptions {
  /// A window counts as recovered when its ejection rate reaches this
  /// fraction of the pre-fault baseline.
  double recoveryFraction = 0.95;
  /// Complete windows before the fault averaged into the baseline.
  std::uint32_t baselineWindows = 8;
};

struct FaultRecovery {
  static constexpr std::uint64_t kNever =
      obs::TimeSeriesCollector::ReconfigEvent::kPending;

  std::uint64_t faultCycle = 0;
  std::uint64_t swapCycle = kNever;  // kNever: window still open at run end
  bool incremental = false;
  std::uint64_t destinationsRebuilt = 0;
  std::uint64_t unreachablePairs = 0;

  std::uint64_t timeToReroute = kNever;  // swapCycle - faultCycle
  double baselineRate = 0.0;             // ejected flits/cycle before fault
  double dipRate = 0.0;                  // minimum windowed rate in the span
  double dipDepth = 0.0;                 // 1 - dipRate/baselineRate
  std::uint64_t dipWidthCycles = 0;      // cycles below the threshold
  std::uint64_t timeToRecover = kNever;  // recovery end - faultCycle
  std::uint64_t droppedPackets = 0;      // drops over the event's span
  double deliveredDeficit = 0.0;         // baseline-relative flits lost
  bool recovered = false;
};

/// Extracts one FaultRecovery per reconfiguration event, in fault order.
/// Events whose fault predates the oldest retained window analyze against a
/// zero baseline (ring eviction; size maxWindows generously instead).
std::vector<FaultRecovery> analyzeRecovery(
    const obs::TimeSeriesCollector& series, const RecoveryOptions& options = {});

/// CSV of the per-event summaries (schema documented in results/README.md).
void writeRecoveryCsv(const std::vector<FaultRecovery>& events,
                      std::ostream& out);

}  // namespace downup::stats
