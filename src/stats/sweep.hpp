// Offered-load sweeps and saturation search over a fixed routing.
#pragma once

#include <span>
#include <vector>

#include "sim/engine.hpp"

namespace downup::util {
class ThreadPool;
}

namespace downup::stats {

struct SweepPoint {
  double offeredLoad = 0.0;
  sim::RunStats stats;
};

struct SweepOptions {
  /// Stop the ascending sweep once accepted traffic has failed to improve
  /// by `improvementFactor` for `stagnantLimit` consecutive points.
  bool stopAtSaturation = true;
  double improvementFactor = 1.02;
  unsigned stagnantLimit = 2;
};

/// Evenly spaced load grid in (0, hi]: hi/points, 2*hi/points, ..., hi.
std::vector<double> loadGrid(double hi, unsigned points);

/// Simulates each load in ascending order (loads must be sorted).
std::vector<SweepPoint> runSweep(const routing::RoutingTable& table,
                                 const sim::TrafficPattern& pattern,
                                 std::span<const double> loads,
                                 const sim::SimConfig& config,
                                 const SweepOptions& options = {});

/// Parallel variant: fans the load points out across `pool` (the calling
/// thread participates, so this nests safely inside an outer parallelFor),
/// then applies the serial early-stop scan post hoc, so the returned prefix
/// is identical to the serial overload at any thread count.  The tradeoff:
/// points past the saturation cut are simulated and discarded.  A null or
/// single-thread pool falls back to the serial path, which skips them.
std::vector<SweepPoint> runSweep(const routing::RoutingTable& table,
                                 const sim::TrafficPattern& pattern,
                                 std::span<const double> loads,
                                 const sim::SimConfig& config,
                                 const SweepOptions& options,
                                 util::ThreadPool* pool);

struct Saturation {
  double saturationLoad = 0.0;   // offered load of the peak point
  double maxAccepted = 0.0;      // flits/node/cycle (the paper's throughput)
  std::size_t peakIndex = 0;     // into the sweep vector
};

/// Picks the point with maximal accepted traffic.
Saturation findSaturation(std::span<const SweepPoint> sweep);

/// Coarse saturation-load probe: simulates geometrically increasing loads
/// (start, start*factor, ...) with halved measurement windows until accepted
/// traffic stops improving, and returns the best load seen.  Used to size
/// the linear sweep grid so that networks of any scale actually saturate.
double probeSaturationLoad(const routing::RoutingTable& table,
                           const sim::TrafficPattern& pattern,
                           const sim::SimConfig& config, double start = 0.01,
                           double factor = 1.6);

}  // namespace downup::stats
