#include "stats/recovery.hpp"

#include <algorithm>
#include <ostream>

namespace downup::stats {

namespace {

double windowRate(const obs::TimeSeriesCollector::Window& w) {
  const std::uint64_t len = w.endCycle - w.startCycle;
  return len == 0 ? 0.0
                  : static_cast<double>(w.ejectedFlits) /
                        static_cast<double>(len);
}

}  // namespace

std::vector<FaultRecovery> analyzeRecovery(
    const obs::TimeSeriesCollector& series, const RecoveryOptions& options) {
  std::vector<FaultRecovery> results;
  const auto events = series.reconfigEvents();
  results.reserve(events.size());
  const std::size_t windowCount = series.windowCount();

  for (const auto& event : events) {
    FaultRecovery r;
    r.faultCycle = event.faultCycle;
    r.swapCycle = event.swapCycle;
    r.incremental = event.incremental;
    r.destinationsRebuilt = event.destinationsRebuilt;
    r.unreachablePairs = event.unreachablePairs;
    if (!event.pending()) r.timeToReroute = event.swapCycle - event.faultCycle;

    // Baseline: the last `baselineWindows` windows fully before the fault.
    std::size_t firstAffected = 0;  // first window with endCycle > fault
    while (firstAffected < windowCount &&
           series.window(firstAffected).endCycle <= event.faultCycle) {
      ++firstAffected;
    }
    std::uint64_t baseFlits = 0;
    std::uint64_t baseCycles = 0;
    const std::size_t baseBegin =
        firstAffected >= options.baselineWindows
            ? firstAffected - options.baselineWindows
            : 0;
    for (std::size_t i = baseBegin; i < firstAffected; ++i) {
      const auto& w = series.window(i);
      baseFlits += w.ejectedFlits;
      baseCycles += w.endCycle - w.startCycle;
    }
    r.baselineRate = baseCycles == 0 ? 0.0
                                     : static_cast<double>(baseFlits) /
                                           static_cast<double>(baseCycles);
    const double threshold = options.recoveryFraction * r.baselineRate;

    // Walk the affected windows: track the dip until the first window at or
    // after the swap whose rate is back above the threshold.
    r.dipRate = r.baselineRate;
    for (std::size_t i = firstAffected; i < windowCount; ++i) {
      const auto& w = series.window(i);
      const std::uint64_t len = w.endCycle - w.startCycle;
      const double rate = windowRate(w);
      r.droppedPackets += w.droppedPackets;
      r.dipRate = std::min(r.dipRate, rate);
      if (rate < threshold) {
        r.dipWidthCycles += len;
        r.deliveredDeficit +=
            (r.baselineRate - rate) * static_cast<double>(len);
      } else if (!event.pending() && w.endCycle >= event.swapCycle) {
        r.recovered = true;
        r.timeToRecover = w.endCycle - event.faultCycle;
        break;
      }
    }
    if (r.baselineRate > 0.0) {
      r.dipDepth = 1.0 - r.dipRate / r.baselineRate;
    }
    results.push_back(r);
  }
  return results;
}

void writeRecoveryCsv(const std::vector<FaultRecovery>& events,
                      std::ostream& out) {
  out << "fault_cycle,swap_cycle,incremental,destinations_rebuilt,"
         "unreachable_pairs,time_to_reroute,baseline_rate,dip_rate,"
         "dip_depth,dip_width_cycles,time_to_recover,recovered,"
         "dropped_packets,delivered_deficit\n";
  for (const FaultRecovery& r : events) {
    out << r.faultCycle << ',';
    if (r.swapCycle == FaultRecovery::kNever) {
      out << "never";
    } else {
      out << r.swapCycle;
    }
    out << ',' << (r.incremental ? 1 : 0) << ',' << r.destinationsRebuilt
        << ',' << r.unreachablePairs << ',';
    if (r.timeToReroute == FaultRecovery::kNever) {
      out << "never";
    } else {
      out << r.timeToReroute;
    }
    out << ',' << r.baselineRate << ',' << r.dipRate << ',' << r.dipDepth
        << ',' << r.dipWidthCycles << ',';
    if (r.timeToRecover == FaultRecovery::kNever) {
      out << "never";
    } else {
      out << r.timeToRecover;
    }
    out << ',' << (r.recovered ? 1 : 0) << ',' << r.droppedPackets << ','
        << r.deliveredDeficit << '\n';
  }
}

}  // namespace downup::stats
