// The paper's evaluation metrics (Section 5), computed from the per-channel
// utilizations a simulation run reports:
//
//   node utilization   (Table 1) — per node: sum of its output-channel
//                      utilizations divided by the number of ports connected
//                      to other switches (its degree); reported averaged.
//   traffic load       (Table 2) — the standard deviation of node
//                      utilization over all nodes (lower = better balance).
//   degree of hot spots(Table 3) — the percentage of total node utilization
//                      contributed by nodes in coordinated-tree levels 0-1.
//   leaf utilization   (Table 4) — mean node utilization over the leaves of
//                      the coordinated tree.
#pragma once

#include <span>
#include <vector>

#include "topology/topology.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::stats {

struct PaperMetrics {
  std::vector<double> nodeUtilization;
  double meanNodeUtilization = 0.0;
  double trafficLoad = 0.0;
  double hotspotDegreePercent = 0.0;
  double leafUtilization = 0.0;
};

/// `channelUtilization` is indexed by ChannelId (RunStats::channelUtilization).
PaperMetrics computePaperMetrics(const topo::Topology& topo,
                                 const tree::CoordinatedTree& ct,
                                 std::span<const double> channelUtilization);

}  // namespace downup::stats
