#include "stats/compare.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>

namespace downup::stats {

std::vector<ShapeCheck> paperShapeChecks() {
  return {
      {"node utilization", true,
       [](const Cell& c) { return c.nodeUtilization.mean(); }},
      {"traffic load", false,
       [](const Cell& c) { return c.trafficLoad.mean(); }},
      {"degree of hot spots", false,
       [](const Cell& c) { return c.hotspotPercent.mean(); }},
      {"leaf utilization", true,
       [](const Cell& c) { return c.leafUtilization.mean(); }},
      {"saturation throughput", true,
       [](const Cell& c) { return c.maxAccepted.mean(); }},
  };
}

std::vector<ShapeVerdict> compareAlgorithms(
    const ExperimentResults& results, core::Algorithm better,
    core::Algorithm baseline, const std::vector<ShapeCheck>& checks) {
  std::vector<ShapeVerdict> verdicts;
  verdicts.reserve(checks.size());
  for (const ShapeCheck& check : checks) {
    ShapeVerdict verdict;
    verdict.metric = check.metric;
    double ratioSum = 0.0;
    unsigned cells = 0;
    for (unsigned ports : results.config.portConfigs) {
      for (tree::TreePolicy policy : results.config.policies) {
        const Cell* a = results.find(ports, policy, better);
        const Cell* b = results.find(ports, policy, baseline);
        if (a == nullptr || b == nullptr ||
            a->nodeUtilization.count() == 0 ||
            b->nodeUtilization.count() == 0) {
          continue;
        }
        const double va = check.value(*a);
        const double vb = check.value(*b);
        const bool win = check.higherIsBetter ? va > vb : va < vb;
        if (win) {
          ++verdict.wins;
        } else {
          ++verdict.losses;
        }
        if (vb != 0.0) {
          ratioSum += va / vb;
          ++cells;
        }
      }
    }
    verdict.meanRatio = cells == 0 ? 0.0 : ratioSum / cells;
    verdicts.push_back(std::move(verdict));
  }
  return verdicts;
}

void printShapeVerdicts(std::ostream& out,
                        const std::vector<ShapeVerdict>& verdicts) {
  out << std::left << std::setw(26) << "metric" << std::setw(8) << "wins"
      << std::setw(8) << "losses" << std::setw(12) << "meanRatio"
      << "verdict\n";
  for (const ShapeVerdict& verdict : verdicts) {
    out << std::left << std::setw(26) << verdict.metric << std::setw(8)
        << verdict.wins << std::setw(8) << verdict.losses << std::setw(12)
        << std::fixed << std::setprecision(4) << verdict.meanRatio
        << (verdict.holdsEverywhere() ? "HOLDS" : "mixed") << "\n";
  }
  out << std::flush;
}

void writeMarkdownReport(const ExperimentResults& results,
                         std::ostream& out) {
  const auto& config = results.config;
  out << "# Experiment report\n\n"
      << "- switches: " << config.switches << ", samples: " << config.samples
      << ", packet: " << config.sim.packetLengthFlits << " flits\n"
      << "- warm-up " << config.sim.warmupCycles << " + measured "
      << config.sim.measureCycles << " clocks, base seed "
      << config.baseSeed << "\n\n";

  const struct {
    const char* title;
    CellValue value;
    int precision;
  } sections[] = {
      {"Node utilization",
       [](const Cell& c) { return c.nodeUtilization.mean(); }, 6},
      {"Traffic load (stddev of node utilization)",
       [](const Cell& c) { return c.trafficLoad.mean(); }, 6},
      {"Degree of hot spots (%)",
       [](const Cell& c) { return c.hotspotPercent.mean(); }, 2},
      {"Leaf utilization",
       [](const Cell& c) { return c.leafUtilization.mean(); }, 6},
      {"Saturation throughput (flits/clock/node)",
       [](const Cell& c) { return c.maxAccepted.mean(); }, 5},
      {"Zero-load latency (clocks)",
       [](const Cell& c) { return c.zeroLoadLatency.mean(); }, 1},
      {"Average legal path length (hops)",
       [](const Cell& c) { return c.avgPathLength.mean(); }, 4},
  };

  for (const auto& section : sections) {
    out << "## " << section.title << "\n\n|  |";
    for (core::Algorithm algorithm : config.algorithms) {
      for (unsigned ports : config.portConfigs) {
        out << " " << core::toString(algorithm) << " " << ports << "p |";
      }
    }
    out << "\n|---|";
    for (std::size_t i = 0;
         i < config.algorithms.size() * config.portConfigs.size(); ++i) {
      out << "---|";
    }
    out << "\n";
    for (tree::TreePolicy policy : config.policies) {
      out << "| " << tree::toString(policy) << " |";
      for (core::Algorithm algorithm : config.algorithms) {
        for (unsigned ports : config.portConfigs) {
          const Cell* cell = results.find(ports, policy, algorithm);
          if (cell == nullptr || cell->nodeUtilization.count() == 0) {
            out << " - |";
          } else {
            out << " " << std::fixed << std::setprecision(section.precision)
                << section.value(*cell) << " |";
          }
        }
      }
      out << "\n";
    }
    out << "\n";
  }
  out << std::flush;
}

}  // namespace downup::stats
