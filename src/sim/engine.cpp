#include "sim/engine.hpp"

namespace downup::sim {

RunStats simulate(const routing::RoutingTable& table,
                  const TrafficPattern& pattern, double injectionRate,
                  const SimConfig& config) {
  WormholeNetwork network(table, pattern, injectionRate, config);
  return network.run();
}

}  // namespace downup::sim
