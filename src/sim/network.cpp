// Engine core: construction, the cycle loop, traffic generation, the
// deadlock watchdog and stats assembly.  The per-phase machinery lives in
// allocation.cpp / arbitration.cpp / flow_control.cpp.
#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "obs/observer.hpp"

namespace downup::sim {

WormholeNetwork::WormholeNetwork(const RoutingTable& table,
                                 const TrafficPattern& pattern,
                                 double injectionRate, const SimConfig& config)
    : table_(&table),
      topo_(&table.topology()),
      pattern_(&pattern),
      config_(config),
      injectionRate_(injectionRate),
      rng_(config.seed),
      telemetry_(table.topology().channelCount(),
                 config.timelineBucketCycles) {
  config_.validate();
  if (injectionRate < 0.0 || injectionRate > 1.0) {
    throw std::invalid_argument(
        "WormholeNetwork: injection rate must be in [0, 1] flits/node/cycle");
  }
  genProbability_ =
      injectionRate / static_cast<double>(config_.packetLengthFlits);
  modulatedPattern_ = pattern.modulatesRate();

  vcCount_ = config_.vcCount;
  totalVcs_ = topo_->channelCount() * vcCount_;
  ejectBase_ = totalVcs_;
  const std::uint32_t ejectPorts =
      topo_->nodeCount() * config_.ejectionPortsPerNode;
  outputResources_ = topo_->channelCount() + ejectPorts;

  vcs_.assign(totalVcs_, Vc{});
  credit_.assign(totalVcs_, config_.bufferDepthFlits);
  sources_.assign(topo_->nodeCount(), Source{});
  ejectOwner_.assign(ejectPorts, kNoPacket);
  inputRoundRobin_.assign(topo_->channelCount(), 0);
  outputRoundRobin_.assign(outputResources_, 0);
  resourceRequests_.assign(outputResources_, {});
  movableVcs_.assign(topo_->channelCount(), 0);
  pendingHeaders_.resize(totalVcs_);
  routableSources_.resize(topo_->nodeCount());
  activeChannels_.resize(topo_->channelCount());
  busySources_.resize(topo_->nodeCount());
  // Misrouting draws RNG on every claim attempt, so blocked claimants must
  // keep re-attempting each cycle to preserve the draw sequence.
  parkingEnabled_ = config_.misrouteProbability <= 0.0;
  dirtyNodes_.resize(topo_->nodeCount());
  parkedHeaders_.assign(topo_->nodeCount(), {});
  parkedSource_.assign(topo_->nodeCount(), 0);
  if (config_.burstFactor > 1.0) {
    burstOn_.assign(topo_->nodeCount(), false);
  }
  if (config_.observer != nullptr) {
    config_.observer->attach(topo_->nodeCount(), topo_->channelCount());
    metrics_ = config_.observer->metrics();
    tracer_ = config_.observer->tracer();
    profiler_ = config_.observer->profiler();
    timeseries_ = config_.observer->timeseries();
    waitfor_ = config_.observer->waitFor();
    obsClaims_ =
        metrics_ != nullptr || tracer_ != nullptr || timeseries_ != nullptr;
    if (waitfor_ != nullptr && waitfor_->vcCount() != vcCount_) {
      throw std::invalid_argument(
          "WormholeNetwork: wait-for sampler sized for a different vcCount");
    }
  }
  if (config_.faultSchedule != nullptr) {
    faults_ = std::make_unique<fault::FaultController>(*topo_,
                                                       *config_.faultSchedule);
    // Driven mode: this thread is the fabric's single writer; the engine
    // decides when each epoch swaps (window end), so no service thread.
    fabric::FabricManager::Options fabricOptions;
    if (config_.observer != nullptr) {
      fabricOptions.spans = config_.observer->controlPlaneSpans();
    }
    fabricOptions.oracle = config_.oracleGate;
    fabric_ = std::make_unique<fabric::FabricManager>(*topo_, table,
                                                      fabricOptions);
    fabricReader_ = fabric_->makeReader();
    faults_->attachSink(fabric_.get());
  }
}

void WormholeNetwork::enqueuePacket(topo::NodeId src, topo::NodeId dst) {
  const auto pid = static_cast<PacketId>(packets_.size());
  packets_.push_back(Packet{src, dst, now_});
  if (tracer_ != nullptr && tracer_->sampled(pid)) {
    tracer_->onGenerated(pid, src, dst, now_);
  }
  if (timeseries_ != nullptr) timeseries_->recordGenerated();
  Source& source = sources_[src];
  // An empty queue means no output VC is claimed either, so the source
  // becomes allocatable exactly now.
  if (source.queue.empty()) routableSources_.insert(src);
  source.queue.push_back(pid);
  ++packetsGenerated_;
}

PacketId WormholeNetwork::injectPacket(topo::NodeId src, topo::NodeId dst) {
  if (src >= topo_->nodeCount() || dst >= topo_->nodeCount() || src == dst) {
    throw std::invalid_argument("injectPacket: bad endpoints");
  }
  enqueuePacket(src, dst);
  return static_cast<PacketId>(packets_.size() - 1);
}

std::uint64_t WormholeNetwork::flitsInFlight() const noexcept {
  std::uint64_t total = 0;
  for (const Vc& vc : vcs_) total += vc.buffered;
  for (const auto& slot : arrivals_) total += slot.size();
  return total;
}

void WormholeNetwork::step() {
  movedThisCycle_ = false;
  if (faults_ != nullptr) [[unlikely]] faultPhase();
  if (profiler_ == nullptr) [[likely]] {
    deliverArrivals();
    generateTraffic();
    allocateOutputs();
    transferFlits();
  } else {
    runPhasesProfiled();
  }

  // Deadlock watchdog: traffic is in flight but nothing has moved for a
  // long time.  With a correct (acyclic) turn rule this can never fire;
  // the failure-injection tests rely on it firing when rules are broken.
  // ownedVcs_ is maintained by the claim/release paths, replacing the
  // historical every-cycle scan over all VCs.
  if (movedThisCycle_ || ownedVcs_ == 0) {
    idleCycles_ = 0;
  } else if (faultsActive_ && faults_->windowOpen()) {
    // Worms legitimately stall while routing is being rebuilt; the swap at
    // the end of the window resolves them (drains or drops), so the
    // watchdog must not call a reconfiguration pause a deadlock.
    idleCycles_ = 0;
  } else if (++idleCycles_ >= config_.deadlockThresholdCycles) {
    deadlocked_ = true;
  }

  // Time-resolved observability, after the cycle's state has settled: the
  // wait-for snapshot sees post-transfer ownership, and the time-series
  // window closes on its last cycle.  Both are read-only on engine state.
  if (waitfor_ != nullptr && waitfor_->due(now_)) [[unlikely]] {
    sampleWaitFor();
  }
  if (timeseries_ != nullptr) [[unlikely]] timeseries_->tick(now_);

  if (now_ >= config_.warmupCycles) ++measuredCycles_;
  ++now_;
  ++allocOffset_;
}

void WormholeNetwork::sampleWaitFor() {
  waitfor_->beginSample(now_);
  const auto& perms = table_->permissions();
  const auto channelFullyOwned = [this](ChannelId c) {
    for (std::uint32_t v = 0; v < vcCount_; ++v) {
      if (vcs_[c * vcCount_ + v].owner == kNoPacket) return false;
    }
    return true;
  };
  for (std::uint32_t vcId = 0; vcId < totalVcs_; ++vcId) {
    const Vc& vc = vcs_[vcId];
    if (vc.owner == kNoPacket) continue;
    const ChannelId held = vcChannel(vcId);
    if (vc.out != kNoOut) {
      // Committed worm hop: flits in `held` drain only as the downstream
      // channel drains.  Ejection ends the chain (ports never block a
      // cycle: they free unconditionally as flits arrive).
      if (!isEject(vc.out)) waitfor_->addHoldEdge(held, vcChannel(vc.out));
      continue;
    }
    // Unrouted header: blocked (or within the 1-cycle routing delay) and
    // requesting its minimal candidates.  Under escape-adaptive routing a
    // non-escape packet additionally requests the any-turn adaptive class.
    const bool standing = waitfor_->noteBlockedHeader(vcId, vc.owner);
    const topo::NodeId node = topo_->channelDst(held);
    const topo::NodeId dst = packets_[vc.owner].dst;
    const auto fromDir =
        static_cast<std::uint32_t>(routing::index(perms.dir(held)));
    const auto request = [&](std::span<const ChannelId> candidates) {
      for (ChannelId c : candidates) {
        waitfor_->addRequestEdge(
            held, c, channelFullyOwned(c), standing, node, fromDir,
            static_cast<std::uint32_t>(routing::index(perms.dir(c))));
      }
    };
    request(table_->nextChannels(held, dst));
    if (config_.escapeAdaptiveRouting && !packets_[vc.owner].onEscape) {
      request(table_->nextChannelsAnyTurn(held, dst));
    }
  }
  waitfor_->endSample();
  // A hard deadlock witness (vcCount == 1: no virtual channel can break the
  // knot) is a control-plane anomaly — note it in the fabric's flight
  // recorder so a dump shows what the rebuild pipeline did around it.
  if (fabric_ != nullptr && waitfor_->cyclesAreHard() &&
      waitfor_->lastCycleSampleCycle() == now_ && waitfor_->everCycle())
      [[unlikely]] {
    fabric_->flightRecorder().record(
        obs::FabricEventKind::kAnomaly, now_,
        static_cast<std::uint64_t>(obs::AnomalyCode::kWaitForHardCycle),
        waitfor_->witnessCycle().size());
  }
}

void WormholeNetwork::runPhasesProfiled() {
  using Clock = std::chrono::steady_clock;
  if (profiler_->counters() != nullptr && profiler_->counters()->available())
      [[unlikely]] {
    runPhasesProfiledCounted();
    return;
  }
  const auto nanos = [](Clock::time_point a, Clock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };
  const auto t0 = Clock::now();
  deliverArrivals();
  const auto t1 = Clock::now();
  generateTraffic();
  const auto t2 = Clock::now();
  allocateOutputs();
  const auto t3 = Clock::now();
  transferFlits();
  const auto t4 = Clock::now();
  profiler_->add(obs::PhaseProfiler::kFlowControl, nanos(t0, t1));
  profiler_->add(obs::PhaseProfiler::kTraffic, nanos(t1, t2));
  profiler_->add(obs::PhaseProfiler::kAllocation, nanos(t2, t3));
  profiler_->add(obs::PhaseProfiler::kArbitration, nanos(t3, t4));
  profiler_->endCycle();
}

void WormholeNetwork::runPhasesProfiledCounted() {
  using Clock = std::chrono::steady_clock;
  const auto nanos = [](Clock::time_point a, Clock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };
  // One group read per phase boundary: each read is a single syscall for
  // the whole group, so a phase's delta is an internally consistent
  // snapshot.  The syscall cost lands in the NEXT phase's delta, which is
  // acceptable for the per-phase IPC / miss-rate ratios this path feeds
  // (bench_micro's counted scenarios) — absolute per-phase counts carry
  // the boundary overhead either way.
  const util::PerfCounterGroup& group = *profiler_->counters();
  const auto t0 = Clock::now();
  const util::PerfCounts c0 = group.read();
  deliverArrivals();
  const auto t1 = Clock::now();
  const util::PerfCounts c1 = group.read();
  generateTraffic();
  const auto t2 = Clock::now();
  const util::PerfCounts c2 = group.read();
  allocateOutputs();
  const auto t3 = Clock::now();
  const util::PerfCounts c3 = group.read();
  transferFlits();
  const auto t4 = Clock::now();
  const util::PerfCounts c4 = group.read();
  profiler_->add(obs::PhaseProfiler::kFlowControl, nanos(t0, t1));
  profiler_->add(obs::PhaseProfiler::kTraffic, nanos(t1, t2));
  profiler_->add(obs::PhaseProfiler::kAllocation, nanos(t2, t3));
  profiler_->add(obs::PhaseProfiler::kArbitration, nanos(t3, t4));
  profiler_->addCounts(obs::PhaseProfiler::kFlowControl, c1.deltaSince(c0));
  profiler_->addCounts(obs::PhaseProfiler::kTraffic, c2.deltaSince(c1));
  profiler_->addCounts(obs::PhaseProfiler::kAllocation, c3.deltaSince(c2));
  profiler_->addCounts(obs::PhaseProfiler::kArbitration, c4.deltaSince(c3));
  profiler_->endCycle();
}

void WormholeNetwork::generateTraffic() {
  if (genProbability_ <= 0.0 || generationStopped_) return;
  if (modulatedPattern_) [[unlikely]] {
    generateTrafficModulated();
    return;
  }
  const topo::NodeId nodeCount = topo_->nodeCount();
  if (config_.burstFactor <= 1.0) {
    // Smooth-traffic fast path: one Bernoulli draw per node per cycle is the
    // engine's largest fixed cost, so keep the loop body to the draw and a
    // rare tail.  The draw sequence itself is pinned — it interleaves with
    // routing's draws on the shared RNG stream.
    const double probability = genProbability_;
    const std::size_t queueCap = config_.sourceQueueCapPackets;
    for (topo::NodeId node = 0; node < nodeCount; ++node) {
      if (!rng_.chance(probability)) continue;
      if (sources_[node].queue.size() >= queueCap) continue;
      const topo::NodeId dst = pattern_->destination(node, rng_);
      assert(dst != node && "traffic pattern produced src == dst");
      // The fault guard sits after the draws so the healthy per-node RNG
      // sequence is undisturbed; it is never taken until a fault fires.
      if (faultsActive_ && !admitGeneratedPacket(node, dst)) continue;
      enqueuePacket(node, dst);
    }
    return;
  }
  for (topo::NodeId node = 0; node < nodeCount; ++node) {
    double probability = genProbability_;
    {
      // Two-state ON/OFF modulation with duty cycle 1/burstFactor keeps the
      // mean rate equal to the configured load.
      const double onMean = config_.burstOnMeanCycles;
      const double offMean = onMean * (config_.burstFactor - 1.0);
      if (burstOn_[node]) {
        if (rng_.chance(1.0 / onMean)) burstOn_[node] = false;
      } else {
        if (rng_.chance(1.0 / offMean)) burstOn_[node] = true;
      }
      if (!burstOn_[node]) continue;
      probability = std::min(1.0, genProbability_ * config_.burstFactor);
    }
    if (!rng_.chance(probability)) continue;
    if (sources_[node].queue.size() >= config_.sourceQueueCapPackets) continue;
    const topo::NodeId dst = pattern_->destination(node, rng_);
    assert(dst != node && "traffic pattern produced src == dst");
    if (faultsActive_ && !admitGeneratedPacket(node, dst)) continue;
    enqueuePacket(node, dst);
  }
}

void WormholeNetwork::generateTrafficModulated() {
  // The pattern's modulation state evolves on its OWN RNG; only the
  // Bernoulli draws and destination picks below touch the engine stream,
  // so the sequence is still fully determined by (seed, pattern seed).
  pattern_->advanceCycle(now_);
  const topo::NodeId nodeCount = topo_->nodeCount();
  const std::size_t queueCap = config_.sourceQueueCapPackets;
  for (topo::NodeId node = 0; node < nodeCount; ++node) {
    const double probability =
        std::min(1.0, genProbability_ * pattern_->rateMultiplier(node));
    if (!rng_.chance(probability)) continue;
    if (sources_[node].queue.size() >= queueCap) continue;
    const topo::NodeId dst = pattern_->destination(node, rng_);
    assert(dst != node && "traffic pattern produced src == dst");
    if (faultsActive_ && !admitGeneratedPacket(node, dst)) continue;
    enqueuePacket(node, dst);
  }
}

RunStats WormholeNetwork::run() {
  const std::uint64_t total =
      static_cast<std::uint64_t>(config_.warmupCycles) + config_.measureCycles;
  while (now_ < total && !deadlocked_) step();
  return collectStats();
}

bool WormholeNetwork::drainRemaining(std::uint64_t maxCycles) {
  // Injection-policy drops never entered packetsGenerated_, so the balance
  // below counts only the drop classes that discard *generated* packets.
  const auto accounted = [this] {
    return packetsEjectedTotal_ + droppedInFlight_ + droppedUnreachable_ ==
           packetsGenerated_;
  };
  generationStopped_ = true;
  const std::uint64_t deadline = now_ + maxCycles;
  while (now_ < deadline && !deadlocked_) {
    const bool windowOpen = faults_ != nullptr && faults_->windowOpen();
    if (!windowOpen && accounted()) return true;
    step();
  }
  return !deadlocked_ && accounted();
}

RunStats WormholeNetwork::collectStats() const {
  RunStats stats;
  stats.cycles = now_;
  stats.deadlocked = deadlocked_;
  stats.packetsGenerated = packetsGenerated_;
  stats.offeredLoad = injectionRate_;
  telemetry_.fill(stats, measuredCycles_, topo_->nodeCount());
  stats.packetsDroppedInFlight = droppedInFlight_;
  stats.packetsDroppedInjection = droppedInjection_;
  stats.packetsDroppedUnreachable = droppedUnreachable_;
  stats.reconfigurations = reconfigurations_;
  stats.reconfigCyclesTotal = reconfigCyclesTotal_;
  stats.reconfigIncrementalSwaps = reconfigIncrementalSwaps_;
  stats.reconfigDestinationsRebuilt = reconfigDestinationsRebuilt_;
  stats.unreachablePairsAfterReconfig = lastUnreachablePairs_;
  stats.reconfigRoutingVerified = reconfigVerified_;
  return stats;
}

}  // namespace downup::sim
