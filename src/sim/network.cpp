#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/summary.hpp"

namespace downup::sim {

WormholeNetwork::WormholeNetwork(const RoutingTable& table,
                                 const TrafficPattern& pattern,
                                 double injectionRate, const SimConfig& config)
    : table_(&table),
      topo_(&table.topology()),
      pattern_(&pattern),
      config_(config),
      injectionRate_(injectionRate),
      rng_(config.seed) {
  config_.validate();
  if (injectionRate < 0.0 || injectionRate > 1.0) {
    throw std::invalid_argument(
        "WormholeNetwork: injection rate must be in [0, 1] flits/node/cycle");
  }
  genProbability_ =
      injectionRate / static_cast<double>(config_.packetLengthFlits);

  vcCount_ = config_.vcCount;
  totalVcs_ = topo_->channelCount() * vcCount_;
  ejectBase_ = totalVcs_;
  const std::uint32_t ejectPorts =
      topo_->nodeCount() * config_.ejectionPortsPerNode;
  outputResources_ = topo_->channelCount() + ejectPorts;

  vcs_.assign(totalVcs_, Vc{});
  credit_.assign(totalVcs_, config_.bufferDepthFlits);
  sources_.assign(topo_->nodeCount(), Source{});
  ejectOwner_.assign(ejectPorts, kNoPacket);
  inputRoundRobin_.assign(topo_->channelCount(), 0);
  outputRoundRobin_.assign(outputResources_, 0);
  resourceRequests_.assign(outputResources_, {});
  channelFlits_.assign(topo_->channelCount(), 0);
  if (config_.burstFactor > 1.0) {
    burstOn_.assign(topo_->nodeCount(), false);
  }
}

PacketId WormholeNetwork::injectPacket(topo::NodeId src, topo::NodeId dst) {
  if (src >= topo_->nodeCount() || dst >= topo_->nodeCount() || src == dst) {
    throw std::invalid_argument("injectPacket: bad endpoints");
  }
  const auto pid = static_cast<PacketId>(packets_.size());
  packets_.push_back(Packet{src, dst, now_, kNeverEjected});
  sources_[src].queue.push_back(pid);
  ++packetsGenerated_;
  return pid;
}

std::uint64_t WormholeNetwork::flitsInFlight() const noexcept {
  std::uint64_t total = 0;
  for (const Vc& vc : vcs_) total += vc.buffered;
  for (const auto& slot : arrivals_) total += slot.size();
  return total;
}

void WormholeNetwork::step() {
  movedThisCycle_ = false;
  deliverArrivals();
  generateTraffic();
  allocateOutputs();
  transferFlits();

  // Deadlock watchdog: traffic is in flight but nothing has moved for a
  // long time.  With a correct (acyclic) turn rule this can never fire;
  // the failure-injection tests rely on it firing when rules are broken.
  bool inFlight = false;
  for (const Vc& vc : vcs_) {
    if (vc.owner != kNoPacket) {
      inFlight = true;
      break;
    }
  }
  if (movedThisCycle_ || !inFlight) {
    idleCycles_ = 0;
  } else if (++idleCycles_ >= config_.deadlockThresholdCycles) {
    deadlocked_ = true;
  }

  if (now_ >= config_.warmupCycles) ++measuredCycles_;
  ++now_;
  ++allocOffset_;
}

void WormholeNetwork::deliverArrivals() {
  auto& slot = arrivals_[now_ % (kPipelineCycles + 1)];
  for (std::uint32_t vcId : slot) {
    Vc& vc = vcs_[vcId];
    assert(vc.owner != kNoPacket && "arrival into unowned VC");
    assert(vc.buffered < config_.bufferDepthFlits && "buffer overflow");
    ++vc.buffered;
    if (vc.entered++ == 0) vc.headReadyAt = now_;
  }
  slot.clear();
}

void WormholeNetwork::generateTraffic() {
  if (genProbability_ <= 0.0) return;
  const bool bursty = config_.burstFactor > 1.0;
  for (topo::NodeId node = 0; node < topo_->nodeCount(); ++node) {
    double probability = genProbability_;
    if (bursty) {
      // Two-state ON/OFF modulation with duty cycle 1/burstFactor keeps the
      // mean rate equal to the configured load.
      const double onMean = config_.burstOnMeanCycles;
      const double offMean = onMean * (config_.burstFactor - 1.0);
      if (burstOn_[node]) {
        if (rng_.chance(1.0 / onMean)) burstOn_[node] = false;
      } else {
        if (rng_.chance(1.0 / offMean)) burstOn_[node] = true;
      }
      if (!burstOn_[node]) continue;
      probability = std::min(1.0, genProbability_ * config_.burstFactor);
    }
    if (!rng_.chance(probability)) continue;
    Source& source = sources_[node];
    if (source.queue.size() >= config_.sourceQueueCapPackets) continue;
    const topo::NodeId dst = pattern_->destination(node, rng_);
    assert(dst != node && "traffic pattern produced src == dst");
    const auto pid = static_cast<PacketId>(packets_.size());
    packets_.push_back(Packet{node, dst, now_});
    source.queue.push_back(pid);
    ++packetsGenerated_;
  }
}

void WormholeNetwork::allocateOutputs() {
  // Network headers first (through-traffic priority), rotating start for
  // fairness; then injection headers.
  for (std::uint32_t i = 0; i < totalVcs_; ++i) {
    const std::uint32_t vcId = (i + allocOffset_) % totalVcs_;
    const Vc& vc = vcs_[vcId];
    if (vc.owner != kNoPacket && vc.out == kNoOut && vc.buffered > 0 &&
        vc.headReadyAt < now_) {
      routeHeader(vcId);
    }
  }
  const topo::NodeId n = topo_->nodeCount();
  for (topo::NodeId i = 0; i < n; ++i) {
    const topo::NodeId node = (i + allocOffset_) % n;
    const Source& source = sources_[node];
    if (source.out == kNoOut && !source.queue.empty() &&
        packets_[source.queue.front()].genTime < now_) {
      routeSource(node);
    }
  }
}

void WormholeNetwork::routeHeader(std::uint32_t vcId) {
  Vc& vc = vcs_[vcId];
  const ChannelId in = vcChannel(vcId);
  const topo::NodeId node = topo_->channelDst(in);
  const topo::NodeId dst = packets_[vc.owner].dst;
  vc.out = (dst == node) ? claimEjectPort(vc.owner, node)
                         : claimOutputVc(vc.owner, node, in, dst);
}

void WormholeNetwork::routeSource(topo::NodeId node) {
  Source& source = sources_[node];
  const PacketId pid = source.queue.front();
  source.out = claimOutputVc(pid, node, topo::kInvalidChannel,
                             packets_[pid].dst);
}

std::uint32_t WormholeNetwork::commitClaim(PacketId pid, std::uint32_t vcId) {
  vcs_[vcId].owner = pid;
  if (config_.tracePackets) {
    if (tracedPaths_.size() <= pid) tracedPaths_.resize(pid + 1);
    tracedPaths_[pid].push_back(vcChannel(vcId));
  }
  return vcId;
}

std::uint32_t WormholeNetwork::claimEscapeAdaptive(PacketId pid,
                                                   topo::NodeId node,
                                                   ChannelId in,
                                                   topo::NodeId dst) {
  Packet& packet = packets_[pid];
  if (!packet.onEscape) {
    // Adaptive class first: VCs >= 1 of every output one potential step
    // closer, turn rule ignored.
    candidateChannels_.clear();
    if (in == topo::kInvalidChannel) {
      table_->firstChannels(node, dst, candidateChannels_);
    } else {
      table_->nextChannelsAnyTurn(in, dst, candidateChannels_);
    }
    candidateVcs_.clear();
    for (ChannelId ch : candidateChannels_) {
      for (std::uint32_t v = 1; v < vcCount_; ++v) {
        const std::uint32_t vcId = ch * vcCount_ + v;
        if (vcs_[vcId].owner == kNoPacket) candidateVcs_.push_back(vcId);
      }
    }
    if (!candidateVcs_.empty()) {
      return commitClaim(pid, candidateVcs_[rng_.below(candidateVcs_.size())]);
    }
  }
  // Escape class: VC 0 of turn-legal minimal outputs; sticky once taken.
  candidateChannels_.clear();
  if (in == topo::kInvalidChannel) {
    table_->firstChannels(node, dst, candidateChannels_);
  } else {
    table_->nextChannels(in, dst, candidateChannels_);
  }
  candidateVcs_.clear();
  for (ChannelId ch : candidateChannels_) {
    const std::uint32_t vcId = ch * vcCount_;
    if (vcs_[vcId].owner == kNoPacket) candidateVcs_.push_back(vcId);
  }
  if (candidateVcs_.empty()) return kNoOut;
  packet.onEscape = true;
  return commitClaim(pid, candidateVcs_[rng_.below(candidateVcs_.size())]);
}

std::uint32_t WormholeNetwork::claimOutputVc(PacketId pid, topo::NodeId node,
                                             ChannelId in, topo::NodeId dst) {
  if (config_.escapeAdaptiveRouting) {
    return claimEscapeAdaptive(pid, node, in, dst);
  }
  candidateChannels_.clear();
  const bool misroute = config_.misrouteProbability > 0.0 &&
                        rng_.chance(config_.misrouteProbability);
  if (misroute) {
    // Non-minimal adaptive mode: every output that respects the turn rule
    // and from which the destination remains reachable is a candidate.
    const auto& perms = table_->permissions();
    for (ChannelId c : topo_->outputChannels(node)) {
      if (table_->channelSteps(dst, c) == routing::kNoPath) continue;
      if (in != topo::kInvalidChannel && !perms.allowed(node, in, c)) {
        continue;  // allowed() also excludes the U-turn back over `in`
      }
      candidateChannels_.push_back(c);
    }
  } else if (in == topo::kInvalidChannel) {
    table_->firstChannels(node, dst, candidateChannels_);
  } else {
    table_->nextChannels(in, dst, candidateChannels_);
  }
  if (!config_.adaptiveSelection) {
    // Deterministic mode: the route is fixed a priori — wait for VC 0 of
    // the first legal output channel, never divert to a free alternative.
    if (candidateChannels_.empty()) return kNoOut;
    const std::uint32_t vcId = candidateChannels_.front() * vcCount_;
    if (vcs_[vcId].owner != kNoPacket) return kNoOut;
    return commitClaim(pid, vcId);
  }

  candidateVcs_.clear();
  for (ChannelId ch : candidateChannels_) {
    for (std::uint32_t v = 0; v < vcCount_; ++v) {
      const std::uint32_t vcId = ch * vcCount_ + v;
      if (vcs_[vcId].owner == kNoPacket) candidateVcs_.push_back(vcId);
    }
  }
  if (candidateVcs_.empty()) return kNoOut;
  // Random pick among free minimal candidates = the paper's random choice
  // among shortest legal paths.
  return commitClaim(pid, candidateVcs_[rng_.below(candidateVcs_.size())]);
}

std::uint32_t WormholeNetwork::claimEjectPort(PacketId pid,
                                              topo::NodeId node) {
  const std::uint32_t base = node * config_.ejectionPortsPerNode;
  for (std::uint32_t p = 0; p < config_.ejectionPortsPerNode; ++p) {
    if (ejectOwner_[base + p] == kNoPacket) {
      ejectOwner_[base + p] = pid;
      return ejectBase_ + base + p;
    }
  }
  return kNoOut;
}

void WormholeNetwork::transferFlits() {
  // Level 1: one flit per input physical channel per cycle (round-robin
  // among that channel's VCs); each source queue is its own input port.
  proposedMoves_.clear();
  const std::uint32_t channels = topo_->channelCount();
  for (ChannelId c = 0; c < channels; ++c) {
    const std::uint32_t rr = inputRoundRobin_[c];
    for (std::uint32_t k = 0; k < vcCount_; ++k) {
      const std::uint32_t v = (rr + k) % vcCount_;
      const std::uint32_t vcId = c * vcCount_ + v;
      const Vc& vc = vcs_[vcId];
      if (vc.owner == kNoPacket || vc.out == kNoOut || vc.buffered == 0) continue;
      if (!isEject(vc.out) && credit_[vc.out] == 0) continue;
      proposedMoves_.push_back(Move{false, vcId, vc.out});
      inputRoundRobin_[c] = v + 1;
      break;
    }
  }
  for (topo::NodeId node = 0; node < topo_->nodeCount(); ++node) {
    const Source& source = sources_[node];
    if (source.out == kNoOut || source.queue.empty()) continue;
    if (credit_[source.out] == 0) continue;  // sources never eject
    proposedMoves_.push_back(Move{true, node, source.out});
  }

  // Level 2: one flit per output resource (physical channel or ejection
  // port) per cycle, round-robin among requesters.
  touchedResources_.clear();
  for (const Move& move : proposedMoves_) {
    const std::uint32_t resource = isEject(move.out)
                                       ? channels + (move.out - ejectBase_)
                                       : vcChannel(move.out);
    if (resourceRequests_[resource].empty()) {
      touchedResources_.push_back(resource);
    }
    resourceRequests_[resource].push_back(move);
  }
  for (std::uint32_t resource : touchedResources_) {
    auto& requests = resourceRequests_[resource];
    const std::uint32_t pick =
        outputRoundRobin_[resource]++ % static_cast<std::uint32_t>(requests.size());
    const Move& winner = requests[pick];
    executeMove(winner.fromSource, winner.index);
    requests.clear();
  }
}

void WormholeNetwork::executeMove(bool fromSource, std::uint32_t index) {
  movedThisCycle_ = true;
  const std::uint32_t len = config_.packetLengthFlits;

  PacketId pid;
  std::uint32_t out;
  std::uint32_t flitIdx;
  if (fromSource) {
    Source& source = sources_[index];
    pid = source.queue.front();
    out = source.out;
    flitIdx = source.sent++;
    if (flitIdx == 0) packets_[pid].injectTime = now_;
  } else {
    Vc& vc = vcs_[index];
    pid = vc.owner;
    out = vc.out;
    flitIdx = vc.sent++;
    --vc.buffered;
    ++credit_[index];  // the slot frees for whoever feeds this VC
  }
  const bool isTail = flitIdx + 1 == len;
  const bool measuring = now_ >= config_.warmupCycles;

  if (isEject(out)) {
    if (measuring) ++flitsEjectedMeasured_;
    if (config_.timelineBucketCycles > 0) {
      const auto bucket =
          static_cast<std::size_t>(now_ / config_.timelineBucketCycles);
      if (acceptedTimeline_.size() <= bucket) {
        acceptedTimeline_.resize(bucket + 1, 0);
      }
      ++acceptedTimeline_[bucket];
    }
    if (isTail) {
      ejectOwner_[out - ejectBase_] = kNoPacket;
      ++packetsEjectedTotal_;
      Packet& packet = packets_[pid];
      packet.ejectTime = now_;
      if (packet.genTime >= config_.warmupCycles) {
        latencies_.push_back(static_cast<double>(now_ - packet.genTime + 1));
        queueingDelays_.push_back(
            static_cast<double>(packet.injectTime - packet.genTime));
        if (measuring) ++packetsEjectedMeasured_;
      }
    }
  } else {
    --credit_[out];
    arrivals_[(now_ + kPipelineCycles) % (kPipelineCycles + 1)].push_back(out);
    if (measuring) ++channelFlits_[vcChannel(out)];
  }

  if (isTail) {
    if (fromSource) {
      Source& source = sources_[index];
      source.queue.pop_front();
      source.sent = 0;
      source.out = kNoOut;
    } else {
      Vc& vc = vcs_[index];
      assert(vc.buffered == 0 && "flits behind the tail");
      vc.owner = kNoPacket;
      vc.out = kNoOut;
      vc.entered = 0;
      vc.sent = 0;
    }
  }
}

RunStats WormholeNetwork::run() {
  const std::uint64_t total =
      static_cast<std::uint64_t>(config_.warmupCycles) + config_.measureCycles;
  while (now_ < total && !deadlocked_) step();
  return collectStats();
}

RunStats WormholeNetwork::collectStats() const {
  RunStats stats;
  stats.cycles = now_;
  stats.deadlocked = deadlocked_;
  stats.packetsGenerated = packetsGenerated_;
  stats.packetsEjectedMeasured = packetsEjectedMeasured_;
  stats.flitsEjectedMeasured = flitsEjectedMeasured_;
  stats.offeredLoad = injectionRate_;

  if (!latencies_.empty()) {
    stats.avgLatency = util::mean(latencies_);
    stats.p50Latency = util::quantile(latencies_, 0.5);
    stats.p99Latency = util::quantile(latencies_, 0.99);
    stats.avgQueueingDelay = util::mean(queueingDelays_);
    stats.avgNetworkLatency = stats.avgLatency - stats.avgQueueingDelay;
  }
  const double cycles = static_cast<double>(std::max<std::uint64_t>(1, measuredCycles_));
  stats.acceptedFlitsPerNodePerCycle =
      static_cast<double>(flitsEjectedMeasured_) /
      (cycles * static_cast<double>(topo_->nodeCount()));
  stats.channelUtilization.resize(channelFlits_.size());
  for (std::size_t c = 0; c < channelFlits_.size(); ++c) {
    stats.channelUtilization[c] =
        static_cast<double>(channelFlits_[c]) / cycles;
  }
  stats.acceptedTimeline = acceptedTimeline_;
  return stats;
}

}  // namespace downup::sim
