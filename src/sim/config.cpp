#include "sim/config.hpp"

#include <stdexcept>

namespace downup::sim {

void SimConfig::validate() const {
  if (packetLengthFlits == 0) {
    throw std::invalid_argument("SimConfig: packet length must be positive");
  }
  if (bufferDepthFlits == 0) {
    throw std::invalid_argument("SimConfig: buffer depth must be positive");
  }
  if (vcCount == 0 || vcCount > 16) {
    throw std::invalid_argument("SimConfig: vcCount must be in [1, 16]");
  }
  if (ejectionPortsPerNode == 0) {
    throw std::invalid_argument("SimConfig: need at least one ejection port");
  }
  if (sourceQueueCapPackets == 0) {
    throw std::invalid_argument("SimConfig: source queue capacity must be > 0");
  }
  if (measureCycles == 0) {
    throw std::invalid_argument("SimConfig: measurement window must be > 0");
  }
  if (deadlockThresholdCycles == 0) {
    throw std::invalid_argument("SimConfig: deadlock threshold must be > 0");
  }
  if (misrouteProbability < 0.0 || misrouteProbability > 1.0) {
    throw std::invalid_argument(
        "SimConfig: misroute probability must be in [0, 1]");
  }
  if (burstFactor < 1.0) {
    throw std::invalid_argument("SimConfig: burst factor must be >= 1");
  }
  if (escapeAdaptiveRouting) {
    if (vcCount < 2) {
      throw std::invalid_argument(
          "SimConfig: escape-adaptive routing needs >= 2 virtual channels");
    }
    if (misrouteProbability > 0.0) {
      throw std::invalid_argument(
          "SimConfig: escape-adaptive routing is incompatible with "
          "misrouting");
    }
    if (!adaptiveSelection) {
      throw std::invalid_argument(
          "SimConfig: escape-adaptive routing requires adaptive selection");
    }
  }
  if (burstOnMeanCycles == 0) {
    throw std::invalid_argument("SimConfig: burst ON mean must be > 0");
  }
}

}  // namespace downup::sim
