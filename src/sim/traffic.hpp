// Traffic patterns: given a source switch, choose a destination.  The paper
// evaluates uniform traffic; hotspot, permutation and local patterns are
// provided for the extension experiments and for stress tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace downup::sim {

using topo::NodeId;

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  /// Must return a node != src.
  virtual NodeId destination(NodeId src, util::Rng& rng) const = 0;
  virtual std::string_view name() const = 0;
};

/// Every other node equally likely (the paper's pattern).
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(NodeId nodeCount);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "uniform"; }

 private:
  NodeId nodeCount_;
};

/// With probability `fraction` the destination is the hotspot node,
/// otherwise uniform.  Sources equal to the hotspot always draw uniform.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(NodeId nodeCount, NodeId hotspot, double fraction);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "hotspot"; }

 private:
  NodeId nodeCount_;
  NodeId hotspot_;
  double fraction_;
};

/// Fixed random derangement: each source always sends to one partner.
class PermutationTraffic final : public TrafficPattern {
 public:
  /// Builds a random fixed-point-free permutation.
  static PermutationTraffic random(NodeId nodeCount, util::Rng& rng);

  explicit PermutationTraffic(std::vector<NodeId> partner);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "permutation"; }

 private:
  std::vector<NodeId> partner_;
};

/// Destinations drawn uniformly from nodes within `radius` hops of the
/// source (excluding the source itself); models spatial locality.
class LocalTraffic final : public TrafficPattern {
 public:
  LocalTraffic(const topo::Topology& topo, std::uint32_t radius);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "local"; }

 private:
  std::vector<std::vector<NodeId>> candidates_;
};

}  // namespace downup::sim
