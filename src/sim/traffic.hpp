// Traffic patterns: given a source switch, choose a destination.  The paper
// evaluates uniform traffic; hotspot, permutation and local patterns are
// provided for the extension experiments, and the adversarial patterns
// (tornado, hotspot storm, MMPP, trace replay) drive the oracle-gated
// robustness runs in bench/exp_adversarial.cpp.
//
// Rate modulation: a pattern may additionally shape WHEN nodes inject by
// overriding the modulation hooks.  The engine advances the pattern once
// per cycle and scales each node's Bernoulli injection probability by
// rateMultiplier(src).  Modulating patterns keep their evolution state in
// mutable members driven by a pattern-OWNED RNG (never the engine's shared
// stream), so attaching one changes only its own runs — every existing
// pattern reports modulatesRate() == false and the engine's historical
// generation path (and its golden-pinned draw sequence) is untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace downup::sim {

using topo::NodeId;

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  /// Must return a node != src.
  virtual NodeId destination(NodeId src, util::Rng& rng) const = 0;
  virtual std::string_view name() const = 0;

  // --- rate modulation (optional; see the header comment) ---

  /// True when the pattern shapes injection rate over time; the engine then
  /// routes generation through its modulated path.  Must be constant for
  /// the pattern's lifetime.
  virtual bool modulatesRate() const { return false; }
  /// Advances the pattern's modulation state to `cycle`.  Called once per
  /// simulated cycle (before any rateMultiplier query for that cycle);
  /// implementations must be idempotent per cycle.  Const because the
  /// engine holds the pattern const; modulation state is mutable by design.
  virtual void advanceCycle(std::uint64_t cycle) const { (void)cycle; }
  /// Multiplier applied to `src`'s base injection probability this cycle
  /// (clamped to probability 1 by the engine).  0 silences the node.
  virtual double rateMultiplier(NodeId src) const {
    (void)src;
    return 1.0;
  }
};

/// Every other node equally likely (the paper's pattern).
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(NodeId nodeCount);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "uniform"; }

 private:
  NodeId nodeCount_;
};

/// With probability `fraction` the destination is the hotspot node,
/// otherwise uniform.  Sources equal to the hotspot always draw uniform.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(NodeId nodeCount, NodeId hotspot, double fraction);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "hotspot"; }

 private:
  NodeId nodeCount_;
  NodeId hotspot_;
  double fraction_;
};

/// Fixed random derangement: each source always sends to one partner.
class PermutationTraffic final : public TrafficPattern {
 public:
  /// Builds a random fixed-point-free permutation.
  static PermutationTraffic random(NodeId nodeCount, util::Rng& rng);

  explicit PermutationTraffic(std::vector<NodeId> partner);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "permutation"; }

 private:
  std::vector<NodeId> partner_;
};

/// Destinations drawn uniformly from nodes within `radius` hops of the
/// source (excluding the source itself); models spatial locality.
class LocalTraffic final : public TrafficPattern {
 public:
  LocalTraffic(const topo::Topology& topo, std::uint32_t radius);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "local"; }

 private:
  std::vector<std::vector<NodeId>> candidates_;
};

/// Tornado: every source always sends to the node half the id space away
/// ((src + n/2) mod n).  On tree-routed irregular networks this is the
/// classic worst case for root congestion: no locality, every flow crosses
/// the id midpoint, and the load is a fixed permutation-like pattern the
/// adaptive selection cannot spread.
class TornadoTraffic final : public TrafficPattern {
 public:
  explicit TornadoTraffic(NodeId nodeCount);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "tornado"; }

 private:
  NodeId nodeCount_;
};

/// Hotspot storm: a global two-state ON/OFF process (pattern-owned RNG).
/// During a storm every node injects at `surge` times the base rate and
/// directs `stormFraction` of its packets at a small target set (typically
/// the switches adjacent to the coordinated tree's root — the channels the
/// DOWN/UP rule already concentrates); between storms traffic is plain
/// uniform at the base rate.
class HotspotStormTraffic final : public TrafficPattern {
 public:
  /// `targets` must be non-empty, in range and duplicate-free.
  HotspotStormTraffic(NodeId nodeCount, std::vector<NodeId> targets,
                      double stormFraction, double surge,
                      std::uint32_t onMeanCycles, std::uint32_t offMeanCycles,
                      std::uint64_t seed);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "hotspot-storm"; }

  bool modulatesRate() const override { return true; }
  void advanceCycle(std::uint64_t cycle) const override;
  double rateMultiplier(NodeId src) const override;
  bool stormActive() const noexcept { return on_; }

 private:
  NodeId nodeCount_;
  std::vector<NodeId> targets_;
  double stormFraction_;
  double surge_;
  double onExit_;   // per-cycle probability of leaving ON
  double offExit_;  // per-cycle probability of leaving OFF
  mutable util::Rng modRng_;
  mutable bool on_ = false;
  mutable std::uint64_t lastCycle_ = ~std::uint64_t{0};
};

/// Markov-modulated injection (MMPP): a global continuous-state chain over
/// `states`, each scaling the base rate by its multiplier; destinations are
/// uniform.  Per cycle the chain leaves state i with probability
/// 1/meanCycles[i], moving to a uniformly drawn other state (pattern-owned
/// RNG).  The canonical bursty instance is onOff().
class MmppTraffic final : public TrafficPattern {
 public:
  struct State {
    double rateMultiplier = 1.0;
    std::uint32_t meanCycles = 100;  // mean dwell time in this state
  };

  /// Classic 2-state ON/OFF burst process with duty cycle onMean/(onMean +
  /// offMean); `burst` is the ON-state multiplier (OFF is silent).
  static MmppTraffic onOff(NodeId nodeCount, double burst,
                           std::uint32_t onMeanCycles,
                           std::uint32_t offMeanCycles, std::uint64_t seed);

  MmppTraffic(NodeId nodeCount, std::vector<State> states, std::uint64_t seed);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "mmpp"; }

  bool modulatesRate() const override { return true; }
  void advanceCycle(std::uint64_t cycle) const override;
  double rateMultiplier(NodeId src) const override;
  std::size_t currentState() const noexcept { return state_; }

 private:
  NodeId nodeCount_;
  std::vector<State> states_;
  mutable util::Rng modRng_;
  mutable std::size_t state_ = 0;
  mutable std::uint64_t lastCycle_ = ~std::uint64_t{0};
};

/// Replays recorded src->dst demands (sim/trace_replay.hpp loads the
/// traffic_trace/1 JSONL form).  Each source cycles through its recorded
/// destination sequence in order, wrapping at the end; sources with no
/// recorded demand fall back to a uniform draw.  Injection timing stays the
/// engine's Bernoulli process — the trace pins the demand matrix, not the
/// clock — which keeps replay composable with fault schedules.
class TraceReplayTraffic final : public TrafficPattern {
 public:
  /// `flows[src]` lists the recorded destinations of `src` in order; every
  /// entry must be an in-range node != src.
  TraceReplayTraffic(NodeId nodeCount, std::vector<std::vector<NodeId>> flows);
  NodeId destination(NodeId src, util::Rng& rng) const override;
  std::string_view name() const override { return "trace-replay"; }

 private:
  NodeId nodeCount_;
  std::vector<std::vector<NodeId>> flows_;
  mutable std::vector<std::uint32_t> cursor_;
};

}  // namespace downup::sim
