// Measurement-side bookkeeping of the wormhole engine, separated from the
// cycle machinery: the engine reports events (flit ejected, packet
// delivered, flit crossed a channel) through this narrow interface and
// never touches the storage behind it.
//
// Latency and queueing-delay distributions are held as bounded-memory
// QuantileSketches instead of unbounded per-packet vectors: mean is exact
// for any run length, and quantiles are exact until 2^16 delivered packets
// (far beyond every test and golden run), then degrade gracefully to
// histogram interpolation — so arbitrarily long measurement windows run in
// O(1) memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/config.hpp"
#include "util/summary.hpp"

namespace downup::sim {

class Telemetry {
 public:
  Telemetry(std::uint32_t channelCount, std::uint32_t timelineBucketCycles);

  /// A flit left the network through an ejection port at cycle `now`.
  void recordEjectedFlit(std::uint64_t now, bool measuring);

  /// A tail flit completed a packet whose generation fell inside the
  /// measurement window.
  void recordDelivered(double latency, double queueingDelay, bool measuring);

  /// A flit entered switch-to-switch channel `channel`.  Gated on the
  /// measurement window internally, like the other recorders, so callers
  /// cannot accidentally count warm-up flits into channel utilization
  /// (whose divisor is the measured-cycle count).
  void recordChannelFlit(std::uint32_t channel, bool measuring) {
    if (measuring) ++channelFlits_[channel];
  }

  std::uint64_t packetsEjectedMeasured() const noexcept {
    return packetsEjectedMeasured_;
  }
  std::uint64_t flitsEjectedMeasured() const noexcept {
    return flitsEjectedMeasured_;
  }
  /// Raw measured latencies while the sketch is still exact (tests).
  std::span<const double> exactLatencies() const noexcept {
    return latency_.exactValues();
  }

  /// Writes every telemetry-owned field of `stats` (latency block, accepted
  /// traffic, channel utilization, timeline).
  void fill(RunStats& stats, std::uint64_t measuredCycles,
            std::uint32_t nodeCount) const;

 private:
  std::uint32_t timelineBucketCycles_;
  std::uint64_t flitsEjectedMeasured_ = 0;
  std::uint64_t packetsEjectedMeasured_ = 0;
  util::QuantileSketch latency_;
  util::QuantileSketch queueingDelay_;
  std::vector<std::uint64_t> channelFlits_;      // per physical channel
  std::vector<std::uint64_t> acceptedTimeline_;  // iff timelineBucketCycles
};

}  // namespace downup::sim
