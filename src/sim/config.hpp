// Simulation parameters and per-run results for the wormhole simulator.
//
// Timing model (matches the paper's IRFlexSim setup): a header flit takes
// 1 clock to be routed/arbitrated, 1 clock to cross the switch, and 1 clock
// on the link (3 clocks per hop); body flits pipeline behind it at one flit
// per clock.  Flow control is credit-based with `bufferDepthFlits` slots per
// virtual channel; a depth of >= 3 sustains full link bandwidth under the
// 3-cycle credit round trip, so the default is 4.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/schedule.hpp"

namespace downup::obs {
class Observer;
}

namespace downup::verify {
class OracleGate;
}

namespace downup::sim {

struct SimConfig {
  std::uint32_t packetLengthFlits = 128;  // paper: 128
  std::uint32_t bufferDepthFlits = 4;     // per input VC
  std::uint32_t vcCount = 1;              // virtual channels per physical channel
  std::uint32_t ejectionPortsPerNode = 1;
  std::uint32_t sourceQueueCapPackets = 16;  // injection back-pressure bound
  std::uint32_t warmupCycles = 5000;
  std::uint32_t measureCycles = 20000;
  /// Declare deadlock after this many cycles without any flit movement
  /// while traffic is in flight (only reachable when turn rules are broken).
  std::uint32_t deadlockThresholdCycles = 10000;
  /// Probability that a header considers *every* legal output (any allowed
  /// turn from which the destination stays reachable) instead of only the
  /// minimal ones.  0 = shortest-path routing (the paper's evaluation
  /// setting); > 0 exercises the full non-minimal adaptive relation.
  double misrouteProbability = 0.0;
  /// Bursty arrivals: a two-state ON/OFF Markov process per node.  In ON the
  /// node generates at burstFactor x the Bernoulli rate, in OFF not at all;
  /// duty cycle 1/burstFactor keeps the mean offered load unchanged.
  /// burstFactor == 1 (default) is the plain Bernoulli process.
  double burstFactor = 1.0;
  std::uint32_t burstOnMeanCycles = 200;
  /// Record every packet's channel path (memory ~ path length per packet;
  /// for tests and the trace example).
  bool tracePackets = false;
  /// When false, every header waits for the *fixed* lowest-numbered minimal
  /// candidate (VC 0 of the first legal output channel) instead of choosing
  /// randomly among free candidates — deterministic single-path routing,
  /// the ablation counterpart to the paper's adaptive mode.
  bool adaptiveSelection = true;
  /// When > 0, RunStats::acceptedTimeline records ejected flits per bucket
  /// of this many cycles over the *whole* run (including warm-up), so
  /// warm-up adequacy and stationarity can be checked.
  std::uint32_t timelineBucketCycles = 0;
  /// Escape-channel minimal-adaptive routing in the style of Silla & Duato
  /// (the paper's reference [8]); requires vcCount >= 2.  VC 0 of every
  /// physical channel is the *escape* class and obeys the turn rule; VCs
  /// >= 1 are fully adaptive: any output one step closer to the destination
  /// under the legal-steps potential may be taken regardless of turns.  A
  /// packet that ever takes an escape VC stays in the escape class
  /// ("sticky"), which gives the classic deadlock-freedom argument: escape
  /// dependencies are exactly the (acyclic) turn-legal channel
  /// dependencies, and a turn-legal escape successor exists from *every*
  /// reachable channel because the potential counts legal continuations.
  /// Every hop decreases the potential by one, so paths are exactly the
  /// legal shortest length and livelock is impossible.  Incompatible with
  /// misrouteProbability > 0 and with adaptiveSelection == false.
  bool escapeAdaptiveRouting = false;
  /// Optional observability bundle (obs/observer.hpp): metrics registry,
  /// sampled packet tracer, phase profiler.  Non-owning — the observer must
  /// outlive the run and must not be shared between concurrently executing
  /// simulations.  Null (the default) disables observability completely:
  /// the engine's hot paths see only never-taken null checks, and results
  /// are bit-for-bit identical either way (hooks never draw RNG or alter
  /// scheduling).
  obs::Observer* observer = nullptr;
  /// Optional fault schedule (fault/schedule.hpp).  Non-owning — the
  /// schedule must outlive the run.  Null disables the fault machinery
  /// entirely; attaching an EMPTY schedule is bit-for-bit inert (the hooks
  /// never draw RNG or alter scheduling until an event actually fires), so
  /// results match the null case exactly.  When events fire, the engine
  /// quarantines the failed resources (dropping the worms occupying them),
  /// freezes injection for reconfigLatencyCycles, then rebuilds the
  /// coordinated tree + DOWN/UP turn rule on the degraded topology and
  /// hot-swaps the routing table (fault/reconfigure.hpp).
  const fault::FaultSchedule* faultSchedule = nullptr;
  /// Cycles between a topology change and the hot swap of rebuilt routing
  /// (the modelled cost of tree recomputation + table distribution).  A
  /// later fault during an open window restarts the timer.
  std::uint32_t reconfigLatencyCycles = 200;
  /// Reconfigure incrementally when possible: keep the previous epoch's
  /// turn rule (restricting an acyclic dependency graph to the surviving
  /// channels cannot create a cycle) and rebuild only the destinations a
  /// failed link can affect, scaling the reconfiguration window by the
  /// fraction of routing work actually redone.  Falls back to a full
  /// rebuild — and the full window — when a resource revived or the
  /// inherited rule leaves an alive component partially unreachable.
  /// Default off: the fixed-window protocol stays bit-for-bit identical to
  /// previous releases.
  bool reconfigIncremental = false;
  /// What happens to packets generated while a reconfiguration window is
  /// open: parked in the source queue (default) or dropped at generation.
  fault::InjectionPolicy faultInjectionPolicy = fault::InjectionPolicy::kPark;
  /// Optional independent deadlock oracle (verify/gate.hpp).  Non-owning —
  /// must outlive the run.  When set alongside a fault schedule, the gate
  /// is handed to the fabric manager (auditing every reconfiguration
  /// outcome and epoch publish) and the engine additionally audits its own
  /// occupancy state against the stale rule at the two mid-reconfiguration
  /// points: "mid_reconfig_quarantine" when a window opens (quarantined
  /// worms + frozen injection + old table) and "mid_reconfig_preswap" just
  /// before the new epoch is swapped in.  Audits are read-only, draw no
  /// RNG and never block the run, so results are bit-for-bit identical
  /// with or without the gate.
  verify::OracleGate* oracleGate = nullptr;
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

struct RunStats {
  std::uint64_t cycles = 0;
  bool deadlocked = false;

  std::uint64_t packetsGenerated = 0;
  std::uint64_t packetsEjectedMeasured = 0;
  std::uint64_t flitsEjectedMeasured = 0;

  /// Latency = generation -> tail ejection, over packets generated after
  /// warm-up (cycles).
  double avgLatency = 0.0;
  double p50Latency = 0.0;
  double p99Latency = 0.0;
  /// avgLatency = avgQueueingDelay + avgNetworkLatency: time waiting in the
  /// source queue before the first flit leaves vs time from first injection
  /// to tail ejection.
  double avgQueueingDelay = 0.0;
  double avgNetworkLatency = 0.0;

  /// Throughput actually delivered, flits/clock/node over the measurement
  /// window (the paper's "accepted traffic").
  double acceptedFlitsPerNodePerCycle = 0.0;
  /// The offered injection rate the run was configured with.
  double offeredLoad = 0.0;

  /// Measured flits per clock on each switch-to-switch channel, indexed by
  /// ChannelId (in [0, 1]; the basis of every Table 1-4 metric).
  std::vector<double> channelUtilization;

  /// Ejected flits per timelineBucketCycles bucket over the whole run
  /// (empty unless SimConfig::timelineBucketCycles > 0).
  std::vector<std::uint64_t> acceptedTimeline;

  // --- fault injection / reconfiguration (zero unless faults fired) ---

  /// Worms discarded because they occupied a failed link/switch or were
  /// still unrouted when a reconfiguration swap flushed the network, plus
  /// packets queued at a switch that failed.
  std::uint64_t packetsDroppedInFlight = 0;
  /// Packets suppressed at generation by InjectionPolicy::kDrop while a
  /// reconfiguration window was open (not counted in packetsGenerated).
  std::uint64_t packetsDroppedInjection = 0;
  /// Generated packets discarded because their destination was dead or
  /// unreachable under the degraded routing.
  std::uint64_t packetsDroppedUnreachable = 0;
  /// Completed reconfigurations (routing rebuilds hot-swapped in).
  std::uint64_t reconfigurations = 0;
  /// Cycles spent with a reconfiguration window open (injection frozen).
  std::uint64_t reconfigCyclesTotal = 0;
  /// Ordered alive-node pairs left unreachable by the latest swap
  /// (post-fault connectivity; 0 while the degraded network is connected).
  std::uint64_t unreachablePairsAfterReconfig = 0;
  /// Every swapped-in routing passed verification (deadlock-free channel
  /// dependencies + full connectivity within each alive component).
  bool reconfigRoutingVerified = true;
  /// Swaps served by the incremental path (SimConfig::reconfigIncremental;
  /// the remainder fell back to full rebuilds).
  std::uint64_t reconfigIncrementalSwaps = 0;
  /// Destinations whose routing rows were recomputed across all swaps
  /// (aliveNodes per full rebuild; the dirty-set size per incremental one).
  std::uint64_t reconfigDestinationsRebuilt = 0;

  std::uint64_t packetsDroppedTotal() const noexcept {
    return packetsDroppedInFlight + packetsDroppedInjection +
           packetsDroppedUnreachable;
  }
};

}  // namespace downup::sim
