// Dense bitset id set for the simulator's active-set scheduler.
//
// The engine's per-cycle phases must visit elements in the same order the
// original full scans did — ascending id for arbitration, and ascending id
// rotated by the cycle's round-robin offset for allocation — or arbitration
// winners and RNG draw order (and therefore every statistic) would change.
// A bitmap gives exactly that order from a plain word scan while keeping
// insert/erase O(1), so membership churn (a handful of transitions per flit
// movement) costs nothing even when the in-flight set is large.  Iteration
// touches range/64 words per cycle — a few cache lines for every network
// in the evaluation — plus one bit-extraction per member.
//
// Visitors may erase ids at or before the one being visited (each word's
// bits are snapshotted as the scan reaches it) but must not insert.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace downup::sim {

class ActiveIdSet {
 public:
  /// Sets the id range [0, range); clears the set.
  void resize(std::uint32_t range) {
    words_.assign((range + 63) / 64, 0);
    count_ = 0;
  }

  /// Removes every id without changing the range.
  void clear() noexcept {
    if (count_ == 0) return;
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  bool empty() const noexcept { return count_ == 0; }
  std::uint32_t size() const noexcept { return count_; }

  bool contains(std::uint32_t id) const noexcept {
    return (words_[id >> 6] >> (id & 63)) & 1;
  }

  /// Idempotent insert.
  void insert(std::uint32_t id) noexcept {
    std::uint64_t& word = words_[id >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    count_ += !(word & bit);
    word |= bit;
  }

  /// Idempotent erase.
  void erase(std::uint32_t id) noexcept {
    std::uint64_t& word = words_[id >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    count_ -= !!(word & bit);
    word &= ~bit;
  }

  /// Visits every id in ascending order.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    if (count_ == 0) return;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      visitBits(words_[w], static_cast<std::uint32_t>(w << 6), fn);
    }
  }

  /// Visits every id in ascending order starting from the first id >= start
  /// and wrapping around — the order a full scan `(i + start) % range`
  /// would visit the members in.
  template <typename Fn>
  void forEachRotated(std::uint32_t start, Fn&& fn) const {
    if (count_ == 0) return;
    const std::size_t startWord = start >> 6;
    const std::uint64_t upper = ~std::uint64_t{0} << (start & 63);
    visitBits(words_[startWord] & upper,
              static_cast<std::uint32_t>(startWord << 6), fn);
    for (std::size_t w = startWord + 1; w < words_.size(); ++w) {
      visitBits(words_[w], static_cast<std::uint32_t>(w << 6), fn);
    }
    for (std::size_t w = 0; w < startWord; ++w) {
      visitBits(words_[w], static_cast<std::uint32_t>(w << 6), fn);
    }
    visitBits(words_[startWord] & ~upper,
              static_cast<std::uint32_t>(startWord << 6), fn);
  }

 private:
  template <typename Fn>
  static void visitBits(std::uint64_t bits, std::uint32_t base, Fn&& fn) {
    while (bits != 0) {
      fn(base + static_cast<std::uint32_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }

  std::vector<std::uint64_t> words_;
  std::uint32_t count_ = 0;
};

}  // namespace downup::sim
