// Cycle-accurate wormhole network simulator (the IRFlexSim0.5 substitute).
//
// Model per cycle (in phase order):
//   1. arrivals  — flits that finished the 2-cycle switch+link pipeline
//                  enter their target VC buffer;
//   2. traffic   — each node Bernoulli-generates packets into its source
//                  queue (blocked while the queue is at capacity);
//   3. allocation— header flits that have sat in a buffer for >= 1 cycle
//                  (the 1-clock routing/arbitration delay) claim a free
//                  output VC among the minimal legal candidates given by the
//                  RoutingTable (random choice = the paper's random pick
//                  among shortest paths), or a free ejection port;
//   4. transfer  — two-level arbitration (one flit per input channel, one
//                  flit per output channel / ejection port per cycle) moves
//                  flits; a flit sent at cycle t enters the downstream
//                  buffer at t+2.  Credit-based flow control with
//                  bufferDepthFlits credits per VC.
//
// Wormhole semantics: an output VC is owned by one packet from header
// allocation until its tail flit leaves that VC's buffer; a blocked header
// therefore stalls its whole chain of channels upstream, which is exactly
// what makes channel-dependency cycles deadlock.
//
// The engine is layered into one translation unit per concern, all operating
// on this class's state through narrow seams:
//   network.cpp      — construction, the cycle loop, traffic generation, the
//                      deadlock watchdog, stats assembly;
//   allocation.cpp   — header routing and output-VC / ejection-port claims
//                      (the RoutingTable span fast path, no scratch allocs);
//   arbitration.cpp  — the two-level switch allocation of transferFlits;
//   flow_control.cpp — pipeline arrivals, credits, flit movement;
//   telemetry.*      — measurement bookkeeping behind the Telemetry class.
//
// Per-cycle cost scales with in-flight traffic, not network size: the
// allocation and arbitration phases walk ActiveIdSets (pending headers,
// routable sources, channels with movable flits, busy injection queues)
// instead of scanning every VC, and the watchdog reads an owned-VC counter
// maintained by the claim/release paths.  Active sets iterate in the exact
// order the historical full scans visited their members (ascending ids,
// rotated by the allocation round-robin offset), so arbitration winners,
// RNG draw order and every statistic are bit-for-bit unchanged — see
// tests/sim/golden_run_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "fabric/manager.hpp"
#include "fault/controller.hpp"
#include "routing/routing_table.hpp"
#include "sim/active_set.hpp"
#include "sim/config.hpp"
#include "sim/telemetry.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace downup::obs {
class MetricsRegistry;
class PacketTracer;
class PhaseProfiler;
class TimeSeriesCollector;
class WaitForSampler;
}

namespace downup::sim {

using routing::ChannelId;
using routing::RoutingTable;

using PacketId = std::uint32_t;
inline constexpr PacketId kNoPacket = static_cast<PacketId>(-1);
inline constexpr std::uint32_t kNoOut = static_cast<std::uint32_t>(-1);

class WormholeNetwork {
 public:
  /// `table`, `pattern` and the topology behind them must outlive the
  /// network.  `injectionRate` is in flits/node/cycle.
  WormholeNetwork(const RoutingTable& table, const TrafficPattern& pattern,
                  double injectionRate, const SimConfig& config);

  /// Advances one cycle.
  void step();

  /// Runs warmup + measurement (stopping early on deadlock) and returns the
  /// collected statistics.
  RunStats run();

  /// Stops traffic generation and keeps stepping until every generated
  /// packet has been ejected or dropped (fault runs: any open
  /// reconfiguration window is played out first).  Returns true when the
  /// network fully drained within `maxCycles` additional cycles — with a
  /// correct routing this can only fail on a genuine deadlock.
  bool drainRemaining(std::uint64_t maxCycles);

  // --- observation hooks (tests, examples) ---
  static constexpr std::uint64_t kNeverEjected = ~std::uint64_t{0};

  /// Enqueues one packet directly, bypassing the Bernoulli process and the
  /// source-queue cap; returns its id.  Useful for deterministic tests.
  PacketId injectPacket(topo::NodeId src, topo::NodeId dst);

  /// Cycle the packet's tail flit was ejected, or kNeverEjected.
  std::uint64_t packetEjectTime(PacketId pid) const {
    return packets_[pid].ejectTime;
  }
  std::uint64_t packetGenTime(PacketId pid) const {
    return packets_[pid].genTime;
  }
  /// Cycle the packet's first flit left the source queue, or kNeverEjected.
  std::uint64_t packetInjectTime(PacketId pid) const {
    return packets_[pid].injectTime;
  }
  /// The channel sequence the packet was routed over (requires
  /// config.tracePackets; empty otherwise or while still queued).
  const std::vector<ChannelId>& packetPath(PacketId pid) const {
    static const std::vector<ChannelId> kEmpty;
    return pid < tracedPaths_.size() ? tracedPaths_[pid] : kEmpty;
  }

  std::uint64_t now() const noexcept { return now_; }
  bool deadlocked() const noexcept { return deadlocked_; }
  /// True once the packet was discarded by the fault machinery.
  bool packetDropped(PacketId pid) const { return packets_[pid].dropped; }
  std::uint64_t packetsDropped() const noexcept {
    return droppedInFlight_ + droppedInjection_ + droppedUnreachable_;
  }
  /// Completed routing rebuilds (0 for fault-free runs).
  std::uint64_t reconfigurations() const noexcept { return reconfigurations_; }
  /// The routing table currently in effect (the constructor argument until
  /// the first reconfiguration swap).
  const RoutingTable& currentTable() const noexcept { return *table_; }
  std::uint64_t packetsGenerated() const noexcept { return packetsGenerated_; }
  std::uint64_t packetsEjected() const noexcept { return packetsEjectedTotal_; }
  std::uint64_t flitsInFlight() const noexcept;
  std::size_t sourceQueueLength(topo::NodeId node) const {
    return sources_[node].queue.size();
  }
  /// Measured packet latencies in delivery order, while the streaming
  /// summary still holds them exactly (test introspection).
  std::span<const double> measuredLatencies() const noexcept {
    return telemetry_.exactLatencies();
  }

  RunStats collectStats() const;

 private:
  struct Vc {
    PacketId owner = kNoPacket;
    std::uint32_t out = kNoOut;     // target VC id or ejection ref
    std::uint32_t buffered = 0;     // flits currently in this buffer
    std::uint32_t entered = 0;      // flits of `owner` ever entered
    std::uint32_t sent = 0;         // flits of `owner` forwarded onward
    std::uint64_t headReadyAt = 0;  // cycle the header entered the buffer
  };

  struct Source {
    std::deque<PacketId> queue;
    std::uint32_t sent = 0;      // flits of the front packet injected
    std::uint32_t out = kNoOut;  // output VC of the front packet
  };

  struct Packet {
    topo::NodeId src;
    topo::NodeId dst;
    std::uint64_t genTime;
    std::uint64_t injectTime = kNeverEjected;
    std::uint64_t ejectTime = kNeverEjected;
    bool onEscape = false;  // escape-adaptive routing: committed to VC 0
    bool dropped = false;   // discarded by the fault machinery
  };

  // VC ids are channel * vcCount + v; ejection refs are
  // ejectBase_ + node * ejectionPorts + port.
  std::uint32_t vcChannel(std::uint32_t vc) const noexcept { return vc / vcCount_; }
  bool isEject(std::uint32_t out) const noexcept { return out >= ejectBase_; }

  // --- flow_control.cpp ---
  void deliverArrivals();
  void executeMove(bool fromSource, std::uint32_t index);

  // --- network.cpp ---
  void generateTraffic();
  /// Generation under a rate-modulating pattern (TrafficPattern modulation
  /// hooks): advances the pattern once per cycle and scales each node's
  /// Bernoulli probability by its multiplier.  Separate from the smooth
  /// fast path so non-modulating runs keep their pinned draw sequence.
  void generateTrafficModulated();
  void enqueuePacket(topo::NodeId src, topo::NodeId dst);
  /// The four engine phases wrapped in steady_clock timers (profiler
  /// attached); the detached path calls them directly from step().
  void runPhasesProfiled();
  /// Same, additionally reading the profiler's perf-counter group at every
  /// phase boundary so each phase accumulates counter deltas (IPC, cache
  /// misses) alongside its wall-clock total.  Taken when the attached
  /// profiler carries an available counter group.
  void runPhasesProfiledCounted();

  // --- allocation.cpp ---
  void allocateOutputs();
  void routeHeader(std::uint32_t vcId);
  void routeSource(topo::NodeId node);
  /// Claims a free VC among the minimal legal output channels; returns the
  /// VC id or kNoOut.  `in` is kNoOut for injection from `node`.
  std::uint32_t claimOutputVc(PacketId pid, topo::NodeId node, ChannelId in,
                              topo::NodeId dst);
  /// Escape-adaptive variant: adaptive VCs (>= 1) over any
  /// potential-decrementing output first, escape VC 0 over turn-legal
  /// outputs as fallback (sticky once taken).
  std::uint32_t claimEscapeAdaptive(PacketId pid, topo::NodeId node,
                                    ChannelId in, topo::NodeId dst);
  /// Claims `vcId` for `pid`, recording the trace hop; returns vcId.
  std::uint32_t commitClaim(PacketId pid, std::uint32_t vcId);
  std::uint32_t claimEjectPort(PacketId pid, topo::NodeId node);
  /// Observability hook for a successful claim: blocked-cycle and
  /// turn-usage attribution plus tracer lifecycle events.  Only called when
  /// an observer component is attached (obsClaims_).
  void observeClaim(PacketId pid, topo::NodeId node, ChannelId in,
                    std::uint32_t out, std::uint64_t waited);
  /// Wait-for-graph snapshot (obs/waitfor.hpp): walks every owned VC and
  /// reports hold edges (committed worm hops) and request edges (blocked
  /// headers against fully-owned candidates).  Only called when waitfor_ is
  /// attached and the sample period elapses; read-only on engine state.
  void sampleWaitFor();

  // --- arbitration.cpp ---
  void transferFlits();

  // --- fault_hooks.cpp (only reached when config_.faultSchedule != null) ---
  /// Start-of-cycle fault work: apply due events (quarantining the worms on
  /// newly dead resources), tick the reconfiguration window, swap routing
  /// when it elapses.
  void faultPhase();
  /// Discards `pid` wherever it lives — owned VCs (buffers + pipeline),
  /// ejection port, source front — restoring credits and active sets, and
  /// counts it into droppedInFlight_.  Idempotent per packet.
  void dropPacket(PacketId pid, topo::NodeId atNode);
  void quarantineNode(topo::NodeId node);
  /// Rebuilds routing on the degraded topology and hot-swaps the table.
  /// Packets still owning an unrouted VC are dropped first, so the post-swap
  /// network holds only fully-routed draining worms — mixing them with
  /// claims under the new (acyclic) rule cannot form a dependency cycle.
  void completeReconfiguration();
  /// Length of the window opened for the faults currently applied: the
  /// fixed reconfigLatencyCycles, or — under reconfigIncremental — that
  /// latency scaled by the fraction of per-destination routing work the
  /// incremental path will actually redo.
  std::uint64_t reconfigWindowLength() const;
  /// Window-open variant of claimOutputVc: same selection logic over the
  /// stale table's candidates with dead channels filtered out (misroute
  /// excursions are suspended during a window).
  std::uint32_t claimOutputVcDegraded(PacketId pid, topo::NodeId node,
                                      ChannelId in, topo::NodeId dst);
  /// Drops queued packets whose destination is dead or unreachable under
  /// the current (post-swap) table until the front packet is routable.
  /// Returns false when the queue drained empty.
  bool dropUnroutableSourceFront(topo::NodeId node);
  /// Generation-time admission under faults; may count a drop.  `node` has
  /// already passed the queue-cap check and drawn `dst`.
  bool admitGeneratedPacket(topo::NodeId node, topo::NodeId dst);
  /// Audits the engine's live occupancy (worm hold edges + blocked-header
  /// request edges) together with the CURRENT (possibly stale) rule against
  /// the independent deadlock oracle (config_.oracleGate; no-op when
  /// detached).  Called at the mid-reconfiguration points — window open and
  /// just before the epoch swap — so the oracle sees exactly the states the
  /// drain-then-swap argument claims are safe.  Read-only; no RNG.
  void auditRoutingState(const char* point);

  // --- active-set bookkeeping (inline: called on every state transition) ---
  /// VC `vcId` gained a forwardable flit (out claimed with flits buffered,
  /// or a flit arrived into a routed VC with an empty buffer).
  void markMovable(std::uint32_t vcId) {
    if (movableVcs_[vcChannel(vcId)]++ == 0) {
      activeChannels_.insert(vcChannel(vcId));
    }
  }
  /// VC `vcId` drained its buffer (nothing forwardable on it any more).
  void unmarkMovable(std::uint32_t vcId) {
    if (--movableVcs_[vcChannel(vcId)] == 0) {
      activeChannels_.erase(vcChannel(vcId));
    }
  }

  const RoutingTable* table_;
  const topo::Topology* topo_;
  const TrafficPattern* pattern_;
  bool modulatedPattern_ = false;  // cached pattern_->modulatesRate()
  SimConfig config_;
  double injectionRate_;
  double genProbability_;  // per node per cycle
  util::Rng rng_;

  std::uint32_t vcCount_;
  std::uint32_t totalVcs_;
  std::uint32_t ejectBase_;
  std::uint32_t outputResources_;  // channels + ejection ports

  std::vector<Vc> vcs_;
  std::vector<std::uint32_t> credit_;  // free slots per VC, upstream's view
  std::vector<Source> sources_;
  std::vector<PacketId> ejectOwner_;
  std::vector<Packet> packets_;
  std::vector<std::vector<ChannelId>> tracedPaths_;  // iff tracePackets
  std::vector<bool> burstOn_;                        // iff burstFactor > 1

  static constexpr std::uint32_t kPipelineCycles = 2;  // switch + link
  std::array<std::vector<std::uint32_t>, kPipelineCycles + 1> arrivals_;

  // Arbitration state.
  std::uint32_t allocOffset_ = 0;                 // rotating header priority
  std::vector<std::uint32_t> inputRoundRobin_;    // per physical channel
  std::vector<std::uint32_t> outputRoundRobin_;   // per output resource

  // Active sets: per-cycle work scales with these, not with network size.
  ActiveIdSet pendingHeaders_;   // VCs: owner set, out unset, flits buffered
  ActiveIdSet routableSources_;  // nodes: queue non-empty, no output claimed
  ActiveIdSet activeChannels_;   // channels with movableVcs_[c] > 0
  ActiveIdSet busySources_;      // nodes with an output VC claimed
  std::vector<std::uint32_t> movableVcs_;  // per channel: VCs with sendable flits
  std::uint32_t ownedVcs_ = 0;             // VCs owned by a packet (watchdog)

  // Blocked-claimant parking.  A failed claim is side-effect-free (no RNG
  // draw, no state change) unless misrouting is enabled, and its candidate
  // resources are exactly the output VCs and ejection ports of one node —
  // so instead of re-attempting every cycle, blocked headers/sources leave
  // their active set and wait per node until a resource of that node frees.
  // Wakes are conservative (any free at the node re-attempts everything
  // parked there), which is safe because failed re-attempts are no-ops.
  bool parkingEnabled_ = false;  // off when misrouting draws RNG per attempt
  ActiveIdSet dirtyNodes_;       // nodes with a resource freed this transfer
  std::vector<std::vector<std::uint32_t>> parkedHeaders_;  // per node: vc ids
  std::vector<std::uint8_t> parkedSource_;                 // per node flag

  // Scratch buffers reused every cycle.
  std::vector<ChannelId> misrouteChannels_;
  std::vector<std::uint32_t> candidateVcs_;
  struct Move {
    bool fromSource;
    std::uint32_t index;  // vc id or node id
    std::uint32_t out;
  };
  std::vector<Move> proposedMoves_;
  std::vector<std::uint32_t> touchedResources_;
  std::vector<std::vector<Move>> resourceRequests_;

  // Clock and bookkeeping.
  std::uint64_t now_ = 0;
  std::uint64_t idleCycles_ = 0;
  bool deadlocked_ = false;
  bool movedThisCycle_ = false;

  // Statistics.
  std::uint64_t packetsGenerated_ = 0;
  std::uint64_t packetsEjectedTotal_ = 0;
  std::uint64_t measuredCycles_ = 0;
  Telemetry telemetry_;

  // Observability (null = disabled; cached from config_.observer).  Hooks
  // never draw RNG or change engine state, so runs are bit-for-bit
  // identical whether or not an observer is attached.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::PacketTracer* tracer_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::TimeSeriesCollector* timeseries_ = nullptr;
  obs::WaitForSampler* waitfor_ = nullptr;
  bool obsClaims_ = false;  // metrics_, tracer_ or timeseries_ attached

  // Fault injection + online reconfiguration (fault_hooks.cpp; null unless
  // config_.faultSchedule is set).  faultsActive_ flips true at the first
  // fault event and back to false when a reconfiguration completes with
  // everything healed; while false, the hot paths see only never-taken
  // branch checks and draw no extra RNG — an attached empty schedule is
  // therefore bit-for-bit inert.
  std::unique_ptr<fault::FaultController> faults_;
  // Routing epochs live in the fabric manager (driven mode: this thread is
  // the single writer).  table_ aliases the pinned snapshot's table after
  // the first swap; the pin keeps the epoch alive until the next swap
  // supersedes it.
  std::unique_ptr<fabric::FabricManager> fabric_;
  fabric::Reader fabricReader_;
  fabric::PinnedSnapshot fabricPin_;
  bool faultsActive_ = false;
  bool generationStopped_ = false;  // drainRemaining()
  std::uint64_t reconfigurations_ = 0;
  std::uint64_t reconfigCyclesTotal_ = 0;
  std::uint64_t reconfigIncrementalSwaps_ = 0;
  std::uint64_t reconfigDestinationsRebuilt_ = 0;
  std::uint64_t droppedInFlight_ = 0;
  std::uint64_t droppedInjection_ = 0;
  std::uint64_t droppedUnreachable_ = 0;
  std::uint64_t lastUnreachablePairs_ = 0;
  bool reconfigVerified_ = true;
  std::vector<ChannelId> aliveChannels_;  // degraded-claim scratch
};

}  // namespace downup::sim
