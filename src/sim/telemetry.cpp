#include "sim/telemetry.hpp"

#include <algorithm>

namespace downup::sim {

Telemetry::Telemetry(std::uint32_t channelCount,
                     std::uint32_t timelineBucketCycles)
    : timelineBucketCycles_(timelineBucketCycles),
      channelFlits_(channelCount, 0) {}

void Telemetry::recordEjectedFlit(std::uint64_t now, bool measuring) {
  if (measuring) ++flitsEjectedMeasured_;
  if (timelineBucketCycles_ > 0) {
    const auto bucket = static_cast<std::size_t>(now / timelineBucketCycles_);
    if (acceptedTimeline_.size() <= bucket) {
      acceptedTimeline_.resize(bucket + 1, 0);
    }
    ++acceptedTimeline_[bucket];
  }
}

void Telemetry::recordDelivered(double latency, double queueingDelay,
                                bool measuring) {
  latency_.add(latency);
  queueingDelay_.add(queueingDelay);
  if (measuring) ++packetsEjectedMeasured_;
}

void Telemetry::fill(RunStats& stats, std::uint64_t measuredCycles,
                     std::uint32_t nodeCount) const {
  stats.packetsEjectedMeasured = packetsEjectedMeasured_;
  stats.flitsEjectedMeasured = flitsEjectedMeasured_;
  if (latency_.count() > 0) {
    stats.avgLatency = latency_.mean();
    stats.p50Latency = latency_.quantile(0.5);
    stats.p99Latency = latency_.quantile(0.99);
    stats.avgQueueingDelay = queueingDelay_.mean();
    stats.avgNetworkLatency = stats.avgLatency - stats.avgQueueingDelay;
  }
  const double cycles =
      static_cast<double>(std::max<std::uint64_t>(1, measuredCycles));
  stats.acceptedFlitsPerNodePerCycle =
      static_cast<double>(flitsEjectedMeasured_) /
      (cycles * static_cast<double>(nodeCount));
  stats.channelUtilization.resize(channelFlits_.size());
  for (std::size_t c = 0; c < channelFlits_.size(); ++c) {
    stats.channelUtilization[c] =
        static_cast<double>(channelFlits_[c]) / cycles;
  }
  stats.acceptedTimeline = acceptedTimeline_;
}

}  // namespace downup::sim
