// Traffic-trace ingestion (schema `traffic_trace/1`): recorded src->dst
// demands as strict JSONL, replayed through TraceReplayTraffic.
//
// File layout (one flat JSON object per line, util/jsonl.hpp strictness —
// a malformed byte is an error at its `source:line`, never a skipped
// record):
//
//   {"schema":"traffic_trace/1","nodes":16}
//   {"src":0,"dst":9}
//   {"src":3,"dst":12,"cycle":41}
//
// The meta line is mandatory and first; `cycle` is an optional recording
// timestamp (kept for provenance, not used by replay — injection timing
// stays the engine's Bernoulli process).  Out-of-range ids, src == dst,
// unknown keys, duplicate meta lines and empty files are all rejected, the
// same contract topo::load established for topology files (DESIGN.md §7);
// the negative corpus lives in tests/sim/corpus/.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/traffic.hpp"

namespace downup::sim {

/// A parsed trace: per-source destination sequences in record order.
struct TrafficTrace {
  NodeId nodeCount = 0;
  std::vector<std::vector<NodeId>> flows;  // flows[src] = recorded dsts
  std::uint64_t records = 0;

  /// The replay pattern over this trace (copies the flows).
  TraceReplayTraffic makePattern() const {
    return TraceReplayTraffic(nodeCount, flows);
  }
};

/// Parses a traffic_trace/1 stream.  Throws std::runtime_error with a
/// `source:line` diagnostic on any malformed, truncated or out-of-range
/// record; `source` names the stream in those diagnostics.
TrafficTrace loadTrafficTrace(std::istream& in, std::string_view source);

/// Opens and parses `path` (diagnostics use the path as the source name).
TrafficTrace loadTrafficTraceFile(const std::string& path);

}  // namespace downup::sim
