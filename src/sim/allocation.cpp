// Allocation phase: header routing and output-VC / ejection-port claims.
//
// Only VCs holding an unrouted header (pendingHeaders_) and sources with a
// queued but unplaced packet (routableSources_) are visited, in the exact
// rotated order the historical full scan used — the rotating allocOffset_
// gives through-traffic fairness AND doubles as the active-set iteration
// order, so RNG draws happen in the same sequence as before the active-set
// refactor.
//
// Candidate channels come straight from the RoutingTable's CSR successor
// index as spans: the fast path performs no vector copies and no heap
// allocation per header.
#include "sim/network.hpp"

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace downup::sim {

void WormholeNetwork::allocateOutputs() {
  // Wake claimants parked at nodes where a VC or ejection port freed during
  // the previous transfer phase.  Re-inserting restores the exact rotated
  // visit order below, and every claimant the historical full scan could
  // have routed this cycle is back in its set (attempts it skipped while
  // parked were guaranteed failures with no side effects).
  if (!dirtyNodes_.empty()) {
    dirtyNodes_.forEach([this](std::uint32_t node) {
      for (std::uint32_t vcId : parkedHeaders_[node]) {
        pendingHeaders_.insert(vcId);
      }
      parkedHeaders_[node].clear();
      if (parkedSource_[node]) {
        parkedSource_[node] = 0;
        routableSources_.insert(node);
      }
    });
    dirtyNodes_.clear();
  }

  // Network headers first (through-traffic priority), rotating start for
  // fairness; then injection headers.
  if (!pendingHeaders_.empty()) {
    pendingHeaders_.forEachRotated(
        allocOffset_ % totalVcs_, [this](std::uint32_t vcId) {
          // Set invariant: owner set, out == kNoOut, buffered > 0.  The
          // only per-visit condition is the 1-cycle routing delay.
          if (vcs_[vcId].headReadyAt >= now_) return;
          routeHeader(vcId);
          if (vcs_[vcId].out != kNoOut) {
            pendingHeaders_.erase(vcId);
          } else if (parkingEnabled_) {
            pendingHeaders_.erase(vcId);
            parkedHeaders_[topo_->channelDst(vcChannel(vcId))].push_back(vcId);
          }
        });
  }
  // Injection is frozen while a reconfiguration window is open: sources
  // stay in their set (skipping them has no side effects and draws no RNG)
  // and compete again the cycle the rebuilt table is swapped in.
  if (faultsActive_ && faults_->windowOpen()) return;
  if (!routableSources_.empty()) {
    routableSources_.forEachRotated(
        allocOffset_ % topo_->nodeCount(), [this](std::uint32_t node) {
          // Set invariant: queue non-empty, out == kNoOut.
          Source& source = sources_[node];
          if (faultsActive_ && !dropUnroutableSourceFront(node)) {
            routableSources_.erase(node);  // queue drained by the drops
            return;
          }
          if (packets_[source.queue.front()].genTime >= now_) return;
          routeSource(node);
          if (source.out != kNoOut) {
            routableSources_.erase(node);
          } else if (parkingEnabled_) {
            routableSources_.erase(node);
            parkedSource_[node] = 1;
          }
        });
  }
}

void WormholeNetwork::routeHeader(std::uint32_t vcId) {
  Vc& vc = vcs_[vcId];
  const ChannelId in = vcChannel(vcId);
  const topo::NodeId node = topo_->channelDst(in);
  const topo::NodeId dst = packets_[vc.owner].dst;
  vc.out = (dst == node) ? claimEjectPort(vc.owner, node)
                         : claimOutputVc(vc.owner, node, in, dst);
  // A routed VC has buffered > 0 by the pendingHeaders_ invariant, so its
  // flits become forwardable the moment the claim lands.
  if (vc.out != kNoOut) {
    markMovable(vcId);
    if (obsClaims_) {
      // The earliest possible claim is headReadyAt + 1 (the 1-clock routing
      // delay); anything later is time spent blocked, counted here so the
      // attribution is exact under blocked-claimant parking too.
      observeClaim(vc.owner, node, in, vc.out, now_ - vc.headReadyAt - 1);
    }
  }
}

void WormholeNetwork::routeSource(topo::NodeId node) {
  Source& source = sources_[node];
  const PacketId pid = source.queue.front();
  source.out = claimOutputVc(pid, node, topo::kInvalidChannel,
                             packets_[pid].dst);
  if (source.out != kNoOut) {
    busySources_.insert(node);
    // Injection claims carry no blocked attribution: time spent waiting in
    // the source queue is already measured as queueing delay.
    if (obsClaims_) observeClaim(pid, node, topo::kInvalidChannel, source.out, 0);
  }
}

void WormholeNetwork::observeClaim(PacketId pid, topo::NodeId node,
                                   ChannelId in, std::uint32_t out,
                                   std::uint64_t waited) {
  const bool eject = isEject(out);
  const auto& perms = table_->permissions();
  const std::uint32_t fromRow =
      (in == topo::kInvalidChannel)
          ? obs::MetricsRegistry::kInjectRow
          : static_cast<std::uint32_t>(routing::index(perms.dir(in)));
  const std::uint32_t toDir =
      eject ? 0
            : static_cast<std::uint32_t>(
                  routing::index(perms.dir(vcChannel(out))));
  if (metrics_ != nullptr && !eject && now_ >= config_.warmupCycles) {
    metrics_->recordTurnClaim(node, fromRow, toDir, waited);
  }
  if (timeseries_ != nullptr && waited > 0) {
    timeseries_->recordBlocked(node, waited);
  }
  if (tracer_ != nullptr && tracer_->sampled(pid)) {
    const std::uint32_t channel =
        eject ? obs::PacketTracer::kNoChannel : vcChannel(out);
    const auto from = static_cast<std::uint8_t>(fromRow);
    const std::uint8_t to = eject ? obs::PacketTracer::kNoDir
                                  : static_cast<std::uint8_t>(toDir);
    if (waited > 0) {
      tracer_->record(obs::TraceEventKind::kBlocked, pid, now_, node, channel,
                      from, to, waited);
    }
    tracer_->record(obs::TraceEventKind::kVcAllocated, pid, now_, node,
                    channel, from, to);
  }
}

std::uint32_t WormholeNetwork::commitClaim(PacketId pid, std::uint32_t vcId) {
  vcs_[vcId].owner = pid;
  ++ownedVcs_;
  if (config_.tracePackets) {
    if (tracedPaths_.size() <= pid) tracedPaths_.resize(pid + 1);
    tracedPaths_[pid].push_back(vcChannel(vcId));
  }
  return vcId;
}

std::uint32_t WormholeNetwork::claimEscapeAdaptive(PacketId pid,
                                                   topo::NodeId node,
                                                   ChannelId in,
                                                   topo::NodeId dst) {
  Packet& packet = packets_[pid];
  if (!packet.onEscape) {
    // Adaptive class first: VCs >= 1 of every output one potential step
    // closer, turn rule ignored.
    const std::span<const ChannelId> adaptive =
        (in == topo::kInvalidChannel) ? table_->firstChannels(node, dst)
                                      : table_->nextChannelsAnyTurn(in, dst);
    candidateVcs_.clear();
    for (ChannelId ch : adaptive) {
      for (std::uint32_t v = 1; v < vcCount_; ++v) {
        const std::uint32_t vcId = ch * vcCount_ + v;
        if (vcs_[vcId].owner == kNoPacket) candidateVcs_.push_back(vcId);
      }
    }
    if (!candidateVcs_.empty()) {
      return commitClaim(pid, candidateVcs_[rng_.below(candidateVcs_.size())]);
    }
  }
  // Escape class: VC 0 of turn-legal minimal outputs; sticky once taken.
  const std::span<const ChannelId> escape =
      (in == topo::kInvalidChannel) ? table_->firstChannels(node, dst)
                                    : table_->nextChannels(in, dst);
  candidateVcs_.clear();
  for (ChannelId ch : escape) {
    const std::uint32_t vcId = ch * vcCount_;
    if (vcs_[vcId].owner == kNoPacket) candidateVcs_.push_back(vcId);
  }
  if (candidateVcs_.empty()) return kNoOut;
  packet.onEscape = true;
  return commitClaim(pid, candidateVcs_[rng_.below(candidateVcs_.size())]);
}

std::uint32_t WormholeNetwork::claimOutputVc(PacketId pid, topo::NodeId node,
                                             ChannelId in, topo::NodeId dst) {
  if (faultsActive_ && faults_->windowOpen()) {
    // The table is stale against the degraded topology until the swap;
    // route on it with the dead channels filtered out.
    return claimOutputVcDegraded(pid, node, in, dst);
  }
  if (config_.escapeAdaptiveRouting) {
    return claimEscapeAdaptive(pid, node, in, dst);
  }
  std::span<const ChannelId> candidates;
  const bool misroute = config_.misrouteProbability > 0.0 &&
                        rng_.chance(config_.misrouteProbability);
  if (misroute) {
    // Non-minimal adaptive mode: every output that respects the turn rule
    // and from which the destination remains reachable is a candidate.
    misrouteChannels_.clear();
    const auto& perms = table_->permissions();
    for (ChannelId c : topo_->outputChannels(node)) {
      if (table_->channelSteps(dst, c) == routing::kNoPath) continue;
      if (in != topo::kInvalidChannel && !perms.allowed(node, in, c)) {
        continue;  // allowed() also excludes the U-turn back over `in`
      }
      misrouteChannels_.push_back(c);
    }
    candidates = misrouteChannels_;
  } else if (in == topo::kInvalidChannel) {
    candidates = table_->firstChannels(node, dst);
  } else {
    candidates = table_->nextChannels(in, dst);
  }
  if (!config_.adaptiveSelection) {
    // Deterministic mode: the route is fixed a priori — wait for VC 0 of
    // the first legal output channel, never divert to a free alternative.
    if (candidates.empty()) return kNoOut;
    const std::uint32_t vcId = candidates.front() * vcCount_;
    if (vcs_[vcId].owner != kNoPacket) return kNoOut;
    return commitClaim(pid, vcId);
  }

  candidateVcs_.clear();
  for (ChannelId ch : candidates) {
    for (std::uint32_t v = 0; v < vcCount_; ++v) {
      const std::uint32_t vcId = ch * vcCount_ + v;
      if (vcs_[vcId].owner == kNoPacket) candidateVcs_.push_back(vcId);
    }
  }
  if (candidateVcs_.empty()) return kNoOut;
  // Random pick among free minimal candidates = the paper's random choice
  // among shortest legal paths.
  return commitClaim(pid, candidateVcs_[rng_.below(candidateVcs_.size())]);
}

std::uint32_t WormholeNetwork::claimEjectPort(PacketId pid,
                                              topo::NodeId node) {
  const std::uint32_t base = node * config_.ejectionPortsPerNode;
  for (std::uint32_t p = 0; p < config_.ejectionPortsPerNode; ++p) {
    if (ejectOwner_[base + p] == kNoPacket) {
      ejectOwner_[base + p] = pid;
      return ejectBase_ + base + p;
    }
  }
  return kNoOut;
}

}  // namespace downup::sim
