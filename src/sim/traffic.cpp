#include "sim/traffic.hpp"

#include <algorithm>
#include <stdexcept>

#include "topology/properties.hpp"

namespace downup::sim {

UniformTraffic::UniformTraffic(NodeId nodeCount) : nodeCount_(nodeCount) {
  if (nodeCount < 2) throw std::invalid_argument("UniformTraffic: need >= 2 nodes");
}

NodeId UniformTraffic::destination(NodeId src, util::Rng& rng) const {
  // Uniform over the other n-1 nodes: draw from [0, n-1) and skip src.
  const auto draw = static_cast<NodeId>(rng.below(nodeCount_ - 1));
  return draw >= src ? draw + 1 : draw;
}

HotspotTraffic::HotspotTraffic(NodeId nodeCount, NodeId hotspot, double fraction)
    : nodeCount_(nodeCount), hotspot_(hotspot), fraction_(fraction) {
  if (nodeCount < 2 || hotspot >= nodeCount) {
    throw std::invalid_argument("HotspotTraffic: bad arguments");
  }
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("HotspotTraffic: fraction must be in [0,1]");
  }
}

NodeId HotspotTraffic::destination(NodeId src, util::Rng& rng) const {
  if (src != hotspot_ && rng.chance(fraction_)) return hotspot_;
  const auto draw = static_cast<NodeId>(rng.below(nodeCount_ - 1));
  return draw >= src ? draw + 1 : draw;
}

PermutationTraffic PermutationTraffic::random(NodeId nodeCount,
                                              util::Rng& rng) {
  if (nodeCount < 2) {
    throw std::invalid_argument("PermutationTraffic: need >= 2 nodes");
  }
  // Sattolo's algorithm yields a uniformly random cyclic permutation, which
  // is in particular fixed-point free.
  std::vector<NodeId> partner(nodeCount);
  for (NodeId i = 0; i < nodeCount; ++i) partner[i] = i;
  for (NodeId i = nodeCount - 1; i > 0; --i) {
    const auto j = static_cast<NodeId>(rng.below(i));
    std::swap(partner[i], partner[j]);
  }
  return PermutationTraffic(std::move(partner));
}

PermutationTraffic::PermutationTraffic(std::vector<NodeId> partner)
    : partner_(std::move(partner)) {
  for (NodeId i = 0; i < partner_.size(); ++i) {
    if (partner_[i] >= partner_.size() || partner_[i] == i) {
      throw std::invalid_argument(
          "PermutationTraffic: not a fixed-point-free permutation");
    }
  }
}

NodeId PermutationTraffic::destination(NodeId src, util::Rng&) const {
  return partner_[src];
}

LocalTraffic::LocalTraffic(const topo::Topology& topo, std::uint32_t radius)
    : candidates_(topo.nodeCount()) {
  if (radius == 0) throw std::invalid_argument("LocalTraffic: radius must be > 0");
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    const auto dist = topo::bfsDistances(topo, v);
    for (NodeId u = 0; u < topo.nodeCount(); ++u) {
      if (u != v && dist[u] != topo::kUnreachable && dist[u] <= radius) {
        candidates_[v].push_back(u);
      }
    }
    if (candidates_[v].empty()) {
      throw std::invalid_argument(
          "LocalTraffic: a node has no neighbor within the radius");
    }
  }
}

NodeId LocalTraffic::destination(NodeId src, util::Rng& rng) const {
  const auto& options = candidates_[src];
  return options[rng.below(options.size())];
}

TornadoTraffic::TornadoTraffic(NodeId nodeCount) : nodeCount_(nodeCount) {
  if (nodeCount < 2) {
    throw std::invalid_argument("TornadoTraffic: need >= 2 nodes");
  }
}

NodeId TornadoTraffic::destination(NodeId src, util::Rng&) const {
  // src + floor(n/2) mod n is never src for n >= 2.
  return static_cast<NodeId>((src + nodeCount_ / 2) % nodeCount_);
}

HotspotStormTraffic::HotspotStormTraffic(NodeId nodeCount,
                                         std::vector<NodeId> targets,
                                         double stormFraction, double surge,
                                         std::uint32_t onMeanCycles,
                                         std::uint32_t offMeanCycles,
                                         std::uint64_t seed)
    : nodeCount_(nodeCount),
      targets_(std::move(targets)),
      stormFraction_(stormFraction),
      surge_(surge),
      onExit_(1.0 / std::max<std::uint32_t>(1, onMeanCycles)),
      offExit_(1.0 / std::max<std::uint32_t>(1, offMeanCycles)),
      modRng_(seed) {
  if (nodeCount < 2) {
    throw std::invalid_argument("HotspotStormTraffic: need >= 2 nodes");
  }
  if (targets_.empty()) {
    throw std::invalid_argument("HotspotStormTraffic: empty target set");
  }
  std::vector<std::uint8_t> seen(nodeCount, 0);
  for (NodeId t : targets_) {
    if (t >= nodeCount || seen[t]) {
      throw std::invalid_argument(
          "HotspotStormTraffic: targets must be in-range and duplicate-free");
    }
    seen[t] = 1;
  }
  if (stormFraction < 0.0 || stormFraction > 1.0) {
    throw std::invalid_argument(
        "HotspotStormTraffic: stormFraction must be in [0,1]");
  }
  if (surge < 1.0) {
    throw std::invalid_argument("HotspotStormTraffic: surge must be >= 1");
  }
}

void HotspotStormTraffic::advanceCycle(std::uint64_t cycle) const {
  if (cycle == lastCycle_) return;
  lastCycle_ = cycle;
  if (on_) {
    if (modRng_.chance(onExit_)) on_ = false;
  } else {
    if (modRng_.chance(offExit_)) on_ = true;
  }
}

double HotspotStormTraffic::rateMultiplier(NodeId) const {
  return on_ ? surge_ : 1.0;
}

NodeId HotspotStormTraffic::destination(NodeId src, util::Rng& rng) const {
  if (on_ && rng.chance(stormFraction_)) {
    // A storm packet aims at a uniformly drawn target; a target node never
    // storms itself (falls through to the uniform draw below).
    const NodeId t = targets_[rng.below(targets_.size())];
    if (t != src) return t;
  }
  const auto draw = static_cast<NodeId>(rng.below(nodeCount_ - 1));
  return draw >= src ? draw + 1 : draw;
}

MmppTraffic MmppTraffic::onOff(NodeId nodeCount, double burst,
                               std::uint32_t onMeanCycles,
                               std::uint32_t offMeanCycles,
                               std::uint64_t seed) {
  return MmppTraffic(nodeCount,
                     {State{burst, onMeanCycles}, State{0.0, offMeanCycles}},
                     seed);
}

MmppTraffic::MmppTraffic(NodeId nodeCount, std::vector<State> states,
                         std::uint64_t seed)
    : nodeCount_(nodeCount), states_(std::move(states)), modRng_(seed) {
  if (nodeCount < 2) {
    throw std::invalid_argument("MmppTraffic: need >= 2 nodes");
  }
  if (states_.size() < 2) {
    throw std::invalid_argument("MmppTraffic: need >= 2 states");
  }
  for (const State& s : states_) {
    if (s.rateMultiplier < 0.0 || s.meanCycles == 0) {
      throw std::invalid_argument("MmppTraffic: bad state parameters");
    }
  }
}

void MmppTraffic::advanceCycle(std::uint64_t cycle) const {
  if (cycle == lastCycle_) return;
  lastCycle_ = cycle;
  if (!modRng_.chance(1.0 / states_[state_].meanCycles)) return;
  // Leave for a uniformly drawn OTHER state.
  const auto draw = modRng_.below(states_.size() - 1);
  state_ = draw >= state_ ? draw + 1 : draw;
}

double MmppTraffic::rateMultiplier(NodeId) const {
  return states_[state_].rateMultiplier;
}

NodeId MmppTraffic::destination(NodeId src, util::Rng& rng) const {
  const auto draw = static_cast<NodeId>(rng.below(nodeCount_ - 1));
  return draw >= src ? draw + 1 : draw;
}

TraceReplayTraffic::TraceReplayTraffic(NodeId nodeCount,
                                       std::vector<std::vector<NodeId>> flows)
    : nodeCount_(nodeCount), flows_(std::move(flows)) {
  if (nodeCount < 2) {
    throw std::invalid_argument("TraceReplayTraffic: need >= 2 nodes");
  }
  if (flows_.size() != nodeCount) {
    throw std::invalid_argument(
        "TraceReplayTraffic: flows must have one entry per node");
  }
  for (NodeId src = 0; src < nodeCount_; ++src) {
    for (NodeId dst : flows_[src]) {
      if (dst >= nodeCount_ || dst == src) {
        throw std::invalid_argument(
            "TraceReplayTraffic: recorded destination out of range or == src");
      }
    }
  }
  cursor_.assign(nodeCount_, 0);
}

NodeId TraceReplayTraffic::destination(NodeId src, util::Rng& rng) const {
  const auto& seq = flows_[src];
  if (seq.empty()) {
    const auto draw = static_cast<NodeId>(rng.below(nodeCount_ - 1));
    return draw >= src ? draw + 1 : draw;
  }
  const NodeId dst = seq[cursor_[src]];
  cursor_[src] = (cursor_[src] + 1) % static_cast<std::uint32_t>(seq.size());
  return dst;
}

}  // namespace downup::sim
