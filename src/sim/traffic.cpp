#include "sim/traffic.hpp"

#include <stdexcept>

#include "topology/properties.hpp"

namespace downup::sim {

UniformTraffic::UniformTraffic(NodeId nodeCount) : nodeCount_(nodeCount) {
  if (nodeCount < 2) throw std::invalid_argument("UniformTraffic: need >= 2 nodes");
}

NodeId UniformTraffic::destination(NodeId src, util::Rng& rng) const {
  // Uniform over the other n-1 nodes: draw from [0, n-1) and skip src.
  const auto draw = static_cast<NodeId>(rng.below(nodeCount_ - 1));
  return draw >= src ? draw + 1 : draw;
}

HotspotTraffic::HotspotTraffic(NodeId nodeCount, NodeId hotspot, double fraction)
    : nodeCount_(nodeCount), hotspot_(hotspot), fraction_(fraction) {
  if (nodeCount < 2 || hotspot >= nodeCount) {
    throw std::invalid_argument("HotspotTraffic: bad arguments");
  }
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("HotspotTraffic: fraction must be in [0,1]");
  }
}

NodeId HotspotTraffic::destination(NodeId src, util::Rng& rng) const {
  if (src != hotspot_ && rng.chance(fraction_)) return hotspot_;
  const auto draw = static_cast<NodeId>(rng.below(nodeCount_ - 1));
  return draw >= src ? draw + 1 : draw;
}

PermutationTraffic PermutationTraffic::random(NodeId nodeCount,
                                              util::Rng& rng) {
  if (nodeCount < 2) {
    throw std::invalid_argument("PermutationTraffic: need >= 2 nodes");
  }
  // Sattolo's algorithm yields a uniformly random cyclic permutation, which
  // is in particular fixed-point free.
  std::vector<NodeId> partner(nodeCount);
  for (NodeId i = 0; i < nodeCount; ++i) partner[i] = i;
  for (NodeId i = nodeCount - 1; i > 0; --i) {
    const auto j = static_cast<NodeId>(rng.below(i));
    std::swap(partner[i], partner[j]);
  }
  return PermutationTraffic(std::move(partner));
}

PermutationTraffic::PermutationTraffic(std::vector<NodeId> partner)
    : partner_(std::move(partner)) {
  for (NodeId i = 0; i < partner_.size(); ++i) {
    if (partner_[i] >= partner_.size() || partner_[i] == i) {
      throw std::invalid_argument(
          "PermutationTraffic: not a fixed-point-free permutation");
    }
  }
}

NodeId PermutationTraffic::destination(NodeId src, util::Rng&) const {
  return partner_[src];
}

LocalTraffic::LocalTraffic(const topo::Topology& topo, std::uint32_t radius)
    : candidates_(topo.nodeCount()) {
  if (radius == 0) throw std::invalid_argument("LocalTraffic: radius must be > 0");
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    const auto dist = topo::bfsDistances(topo, v);
    for (NodeId u = 0; u < topo.nodeCount(); ++u) {
      if (u != v && dist[u] != topo::kUnreachable && dist[u] <= radius) {
        candidates_[v].push_back(u);
      }
    }
    if (candidates_[v].empty()) {
      throw std::invalid_argument(
          "LocalTraffic: a node has no neighbor within the radius");
    }
  }
}

NodeId LocalTraffic::destination(NodeId src, util::Rng& rng) const {
  const auto& options = candidates_[src];
  return options[rng.below(options.size())];
}

}  // namespace downup::sim
