// Fault injection and online reconfiguration hooks for the wormhole engine.
//
// Protocol (drain-then-swap): when a fault event fires, the worms occupying
// the failed resources are dropped immediately and a reconfiguration window
// of config_.reconfigLatencyCycles opens.  While the window is open,
// injection is frozen (parked or dropped per InjectionPolicy), in-flight
// headers keep claiming under the stale table with dead channels filtered
// out, and the deadlock watchdog is suppressed.  When the window elapses,
// every worm still holding an unrouted frontier is flushed, routing is
// rebuilt on the degraded topology (fault/reconfigure.hpp — per-component
// coordinated trees, DOWN/UP turn rule, repair + release passes, verified
// deadlock-free) and the table is hot-swapped through the fabric manager's
// epoch publish (fabric/manager.hpp, driven mode): the engine pins the new
// epoch and the superseded table is reclaimed once unpinned.
//
// Why this cannot deadlock or hang: after the swap the network holds only
// (a) fully-routed worms, whose dependency chains end at ejection ports and
// drain without further allocation, and (b) packets routed entirely under
// the new, verified-acyclic rule.  No unrouted old-epoch claimant survives,
// so no dependency can mix epochs and close a cycle.  Packets whose
// destination died or became unreachable are discarded lazily at the source
// with attribution instead of waiting forever.
//
// None of these paths is reachable until a fault event actually fires
// (faultsActive_), so a run with an attached but empty schedule is
// bit-for-bit identical to a run without one.
#include "sim/network.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/waitfor.hpp"
#include "verify/gate.hpp"

namespace downup::sim {

void WormholeNetwork::faultPhase() {
  if (now_ == faults_->nextEventCycle()) {
    const fault::FaultController::Applied applied =
        faults_->applyEventsAt(now_);
    for (topo::NodeId node : applied.newlyDeadNodes) quarantineNode(node);
    // Worms occupying a newly dead link (either direction, any VC) are
    // truncated mid-body; wormhole switches cannot splice a worm, so the
    // whole packet is dropped.  Incident links of dead switches are
    // included in newlyDeadLinks by the controller.
    for (topo::LinkId link : applied.newlyDeadLinks) {
      for (const ChannelId c : {2 * link, 2 * link + 1}) {
        for (std::uint32_t v = 0; v < vcCount_; ++v) {
          const PacketId pid = vcs_[c * vcCount_ + v].owner;
          if (pid != kNoPacket) dropPacket(pid, topo_->channelSrc(c));
        }
      }
    }
    if (applied.topologyChanged) {
      faultsActive_ = true;
      faults_->openWindowUntil(now_ + reconfigWindowLength());
      if (timeseries_ != nullptr) timeseries_->onFaultApplied(now_);
      // First oracle look at the quarantine state: survivors' occupancy
      // plus the stale rule restricted to what is still alive.
      if (config_.oracleGate != nullptr) [[unlikely]] {
        auditRoutingState("mid_reconfig_quarantine");
      }
    }
  }
  if (faults_->windowOpen()) {
    ++reconfigCyclesTotal_;
    if (timeseries_ != nullptr) timeseries_->recordDegradedCycle();
    if (now_ >= faults_->windowEnd()) completeReconfiguration();
  }
}

std::uint64_t WormholeNetwork::reconfigWindowLength() const {
  if (!config_.reconfigIncremental) return config_.reconfigLatencyCycles;
  // The window models route recomputation + distribution time, so an
  // incremental epoch that redoes a fraction of the per-destination work
  // finishes proportionally sooner (never below one cycle).  The fraction
  // is computed against the CURRENT epoch — exactly the one the swap at
  // window end will be built from.
  const double fraction = fabric_->incrementalDirtyFraction(
      faults_->linkAliveMask(), faults_->nodeAliveMask());
  const double cycles = static_cast<double>(config_.reconfigLatencyCycles);
  const auto scaled = static_cast<std::uint64_t>(cycles * fraction + 0.5);
  return std::max<std::uint64_t>(1, scaled);
}

void WormholeNetwork::dropPacket(PacketId pid, topo::NodeId atNode) {
  Packet& packet = packets_[pid];
  if (packet.dropped) return;
  packet.dropped = true;
  ++droppedInFlight_;

  // Purge pipeline flits heading into the worm's VCs before ownership is
  // cleared (deliverArrivals asserts its targets are owned).
  for (auto& slot : arrivals_) {
    std::erase_if(slot, [&](std::uint32_t vcId) {
      return vcs_[vcId].owner == pid;
    });
  }
  for (std::uint32_t vcId = 0; vcId < totalVcs_; ++vcId) {
    Vc& vc = vcs_[vcId];
    if (vc.owner != pid) continue;
    if (vc.out == kNoOut) {
      // Unrouted frontier: the header is pending, parked at this VC's sink
      // node, or still in flight towards the VC (then it is in neither).
      if (pendingHeaders_.contains(vcId)) {
        pendingHeaders_.erase(vcId);
      } else {
        std::erase(parkedHeaders_[topo_->channelDst(vcChannel(vcId))], vcId);
      }
    } else if (vc.buffered > 0) {
      unmarkMovable(vcId);
    }
    // The worm's flits vanish; the upstream view of this buffer is full
    // credit again (in-pipeline flits were purged above).
    credit_[vcId] = config_.bufferDepthFlits;
    vc.owner = kNoPacket;
    vc.out = kNoOut;
    vc.buffered = 0;
    vc.entered = 0;
    vc.sent = 0;
    --ownedVcs_;
    if (parkingEnabled_) {
      dirtyNodes_.insert(topo_->channelSrc(vcChannel(vcId)));
    }
  }
  for (std::uint32_t e = 0; e < ejectOwner_.size(); ++e) {
    if (ejectOwner_[e] != pid) continue;
    ejectOwner_[e] = kNoPacket;
    if (parkingEnabled_) {
      dirtyNodes_.insert(e / config_.ejectionPortsPerNode);
    }
  }
  Source& source = sources_[packet.src];
  if (!source.queue.empty() && source.queue.front() == pid) {
    if (source.out != kNoOut) {
      source.out = kNoOut;
      busySources_.erase(packet.src);
    }
    source.sent = 0;
    source.queue.pop_front();
    parkedSource_[packet.src] = 0;
    routableSources_.erase(packet.src);
    if (!source.queue.empty() && faults_->nodeAlive(packet.src)) {
      routableSources_.insert(packet.src);
    }
  }
  if (metrics_ != nullptr) metrics_->recordDrop(atNode);
  if (timeseries_ != nullptr) timeseries_->recordDrop();
  if (tracer_ != nullptr && tracer_->sampled(pid)) {
    tracer_->record(obs::TraceEventKind::kDropped, pid, now_, atNode,
                    obs::PacketTracer::kNoChannel);
  }
}

void WormholeNetwork::quarantineNode(topo::NodeId node) {
  // Packets mid-ejection at the dead switch.
  const std::uint32_t base = node * config_.ejectionPortsPerNode;
  for (std::uint32_t p = 0; p < config_.ejectionPortsPerNode; ++p) {
    const PacketId pid = ejectOwner_[base + p];
    if (pid != kNoPacket) dropPacket(pid, node);
  }
  // The switch's injection queue dies with it.  The front packet may
  // already own VCs downstream (dropPacket pops it); the rest own nothing.
  Source& source = sources_[node];
  while (!source.queue.empty()) {
    const PacketId pid = source.queue.front();
    if (source.out != kNoOut) {
      dropPacket(pid, node);
      continue;
    }
    packets_[pid].dropped = true;
    ++droppedInFlight_;
    if (metrics_ != nullptr) metrics_->recordDrop(node);
    if (timeseries_ != nullptr) timeseries_->recordDrop();
    if (tracer_ != nullptr && tracer_->sampled(pid)) {
      tracer_->record(obs::TraceEventKind::kDropped, pid, now_, node,
                      obs::PacketTracer::kNoChannel);
    }
    source.queue.pop_front();
  }
  routableSources_.erase(node);
  parkedSource_[node] = 0;
  // Worms occupying the switch's channels are handled by the link
  // quarantine: the controller reports every incident link as newly dead.
}

void WormholeNetwork::completeReconfiguration() {
  // Flush every worm still holding an unrouted frontier.  What survives is
  // fully routed end-to-end under the old epoch and drains without further
  // allocation, so old-epoch holdings cannot close a dependency cycle
  // against claims made under the new rule.
  for (std::uint32_t vcId = 0; vcId < totalVcs_; ++vcId) {
    const Vc& vc = vcs_[vcId];
    if (vc.owner != kNoPacket && vc.out == kNoOut) {
      dropPacket(vc.owner, topo_->channelDst(vcChannel(vcId)));
    }
  }

  // Second oracle look, after the flush: only fully-routed worms survive,
  // so their hold chains must peel (end at ejection) under the stale rule.
  if (config_.oracleGate != nullptr) [[unlikely]] {
    auditRoutingState("mid_reconfig_preswap");
  }

  // The fabric rebuilds from the controller's authoritative masks (driven
  // mode always publishes) and this thread re-pins the new epoch; the old
  // pin is superseded, so the fabric reclaims the retired table once no
  // reader announces it.  Incremental rebuilds run against the epoch being
  // replaced — identical Reconfigurator inputs to the historical in-place
  // swap, so the published table is bit-for-bit the same.
  const fabric::PublishResult outcome = fabric_->publishFromMasks(
      faults_->linkAliveMask(), faults_->nodeAliveMask(),
      config_.reconfigIncremental);
  reconfigIncrementalSwaps_ += outcome.incremental;
  reconfigDestinationsRebuilt_ += outcome.rebuiltDestinations;
  reconfigVerified_ = reconfigVerified_ && outcome.ok;
  lastUnreachablePairs_ = outcome.unreachablePairs;
  if (timeseries_ != nullptr) {
    timeseries_->onReconfigComplete(now_, outcome.incremental,
                                    outcome.rebuiltDestinations,
                                    outcome.unreachablePairs);
  }
  fabricPin_ = fabric_->acquire(fabricReader_);
  table_ = &fabricPin_.table();
  fabric_->tryReclaim();
  ++reconfigurations_;
  faults_->closeWindow();
  if (!faults_->anyFault()) faultsActive_ = false;

  // Wake every parked claimant: what its old candidates were waiting for is
  // irrelevant under the new table.  (Parked headers were all unrouted
  // frontiers, so the flush above already emptied those lists; this also
  // re-arms sources that parked before the window opened.)
  for (topo::NodeId node = 0; node < topo_->nodeCount(); ++node) {
    for (std::uint32_t vcId : parkedHeaders_[node]) {
      pendingHeaders_.insert(vcId);
    }
    parkedHeaders_[node].clear();
    if (parkedSource_[node]) {
      parkedSource_[node] = 0;
      if (!sources_[node].queue.empty()) routableSources_.insert(node);
    }
  }
  idleCycles_ = 0;
}

bool WormholeNetwork::admitGeneratedPacket(topo::NodeId node,
                                           topo::NodeId dst) {
  if (!faults_->nodeAlive(node)) return false;  // dead hosts are silent
  if (!faults_->nodeAlive(dst)) {
    // Generated, then discarded on the spot.  Materialising the packet
    // record keeps the conservation law exact: packetsGenerated ==
    // ejected + droppedInFlight + droppedUnreachable.
    const auto pid = static_cast<PacketId>(packets_.size());
    packets_.push_back(Packet{node, dst, now_});
    packets_.back().dropped = true;
    ++packetsGenerated_;
    ++droppedUnreachable_;
    if (metrics_ != nullptr) metrics_->recordDrop(node);
    if (timeseries_ != nullptr) {
      timeseries_->recordGenerated();
      timeseries_->recordDrop();
    }
    if (tracer_ != nullptr && tracer_->sampled(pid)) {
      tracer_->onGenerated(pid, node, dst, now_);
      tracer_->record(obs::TraceEventKind::kDropped, pid, now_, node,
                      obs::PacketTracer::kNoChannel);
    }
    return false;
  }
  if (faults_->windowOpen() &&
      config_.faultInjectionPolicy == fault::InjectionPolicy::kDrop) {
    ++droppedInjection_;
    if (metrics_ != nullptr) metrics_->recordDrop(node);
    if (timeseries_ != nullptr) timeseries_->recordDrop();
    return false;
  }
  return true;
}

bool WormholeNetwork::dropUnroutableSourceFront(topo::NodeId node) {
  Source& source = sources_[node];
  while (!source.queue.empty()) {
    const PacketId pid = source.queue.front();
    const Packet& packet = packets_[pid];
    if (faults_->nodeAlive(packet.dst) &&
        table_->distance(node, packet.dst) != routing::kNoPath) {
      return true;
    }
    // Still queued, owns nothing: discard directly with attribution.
    packets_[pid].dropped = true;
    ++droppedUnreachable_;
    if (metrics_ != nullptr) metrics_->recordDrop(node);
    if (timeseries_ != nullptr) timeseries_->recordDrop();
    if (tracer_ != nullptr && tracer_->sampled(pid)) {
      tracer_->record(obs::TraceEventKind::kDropped, pid, now_, node,
                      obs::PacketTracer::kNoChannel);
    }
    source.queue.pop_front();
  }
  return false;
}

void WormholeNetwork::auditRoutingState(const char* point) {
  verify::OracleGate* const gate = config_.oracleGate;
  // Occupancy overlay in oracle form, mirroring sampleWaitFor(): a VC with
  // a committed next hop holds its channel against the downstream one
  // (ejection ends the chain); an unrouted header requests its minimal
  // candidates, but only fully-owned targets can actually block it.
  std::vector<verify::OccupancyEdge> holds;
  std::vector<verify::OccupancyEdge> requests;
  const auto channelFullyOwned = [this](ChannelId c) {
    for (std::uint32_t v = 0; v < vcCount_; ++v) {
      if (vcs_[c * vcCount_ + v].owner == kNoPacket) return false;
    }
    return true;
  };
  for (std::uint32_t vcId = 0; vcId < totalVcs_; ++vcId) {
    const Vc& vc = vcs_[vcId];
    if (vc.owner == kNoPacket) continue;
    const ChannelId held = vcChannel(vcId);
    if (vc.out != kNoOut) {
      if (!isEject(vc.out)) holds.push_back({held, vcChannel(vc.out)});
      continue;
    }
    const topo::NodeId dst = packets_[vc.owner].dst;
    for (ChannelId c : table_->nextChannels(held, dst)) {
      if (channelFullyOwned(c)) requests.push_back({held, c});
    }
  }
  std::vector<std::uint8_t> alive(topo_->channelCount(), 0);
  for (ChannelId c = 0; c < topo_->channelCount(); ++c) {
    alive[c] = faults_->channelAlive(c) ? 1 : 0;
  }
  verify::OracleInput input;
  // The CURRENT rule — during an open window this is the stale epoch the
  // survivors were routed under, which is exactly what must still drain.
  // No table layer: its rows reference dead channels by design here.
  input.perms = &table_->permissions();
  input.channelAlive = alive;
  input.holdEdges = holds;
  input.requestEdges = requests;
  verify::CaseContext context;
  context.point = point;
  context.cycle = now_;
  context.epoch = fabric_->currentEpoch();
  if (waitfor_ != nullptr && waitfor_->everCycle()) {
    const auto witness = waitfor_->witnessCycle();
    context.waitForWitness.assign(witness.begin(), witness.end());
  }
  if (!gate->audit(input, context)) {
    fabric_->flightRecorder().record(
        obs::FabricEventKind::kAnomaly, now_,
        static_cast<std::uint64_t>(obs::AnomalyCode::kOracleViolation), 0);
  }
}

std::uint32_t WormholeNetwork::claimOutputVcDegraded(PacketId pid,
                                                     topo::NodeId node,
                                                     ChannelId in,
                                                     topo::NodeId dst) {
  const auto filterAlive = [this](std::span<const ChannelId> channels) {
    aliveChannels_.clear();
    for (ChannelId c : channels) {
      if (faults_->channelAlive(c)) aliveChannels_.push_back(c);
    }
  };
  if (config_.escapeAdaptiveRouting) {
    Packet& packet = packets_[pid];
    if (!packet.onEscape) {
      filterAlive((in == topo::kInvalidChannel)
                      ? table_->firstChannels(node, dst)
                      : table_->nextChannelsAnyTurn(in, dst));
      candidateVcs_.clear();
      for (ChannelId ch : aliveChannels_) {
        for (std::uint32_t v = 1; v < vcCount_; ++v) {
          const std::uint32_t vcId = ch * vcCount_ + v;
          if (vcs_[vcId].owner == kNoPacket) candidateVcs_.push_back(vcId);
        }
      }
      if (!candidateVcs_.empty()) {
        return commitClaim(pid,
                           candidateVcs_[rng_.below(candidateVcs_.size())]);
      }
    }
    filterAlive((in == topo::kInvalidChannel) ? table_->firstChannels(node, dst)
                                              : table_->nextChannels(in, dst));
    candidateVcs_.clear();
    for (ChannelId ch : aliveChannels_) {
      const std::uint32_t vcId = ch * vcCount_;
      if (vcs_[vcId].owner == kNoPacket) candidateVcs_.push_back(vcId);
    }
    if (candidateVcs_.empty()) return kNoOut;
    packet.onEscape = true;
    return commitClaim(pid, candidateVcs_[rng_.below(candidateVcs_.size())]);
  }

  // Minimal candidates only — misroute excursions are suspended while the
  // table is stale (a non-minimal detour computed against the healthy
  // topology has no reachability guarantee on the degraded one).
  filterAlive((in == topo::kInvalidChannel) ? table_->firstChannels(node, dst)
                                            : table_->nextChannels(in, dst));
  if (!config_.adaptiveSelection) {
    if (aliveChannels_.empty()) return kNoOut;
    const std::uint32_t vcId = aliveChannels_.front() * vcCount_;
    if (vcs_[vcId].owner != kNoPacket) return kNoOut;
    return commitClaim(pid, vcId);
  }
  candidateVcs_.clear();
  for (ChannelId ch : aliveChannels_) {
    for (std::uint32_t v = 0; v < vcCount_; ++v) {
      const std::uint32_t vcId = ch * vcCount_ + v;
      if (vcs_[vcId].owner == kNoPacket) candidateVcs_.push_back(vcId);
    }
  }
  if (candidateVcs_.empty()) return kNoOut;
  return commitClaim(pid, candidateVcs_[rng_.below(candidateVcs_.size())]);
}

}  // namespace downup::sim
