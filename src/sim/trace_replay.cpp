#include "sim/trace_replay.hpp"

#include <fstream>
#include <istream>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>

#include "util/jsonl.hpp"

namespace downup::sim {

using util::JsonlField;

namespace {

[[noreturn]] void fail(std::string_view source, std::size_t lineNo,
                       const std::string& message) {
  throw std::runtime_error("traffic trace: " + std::string(source) + ":" +
                           std::to_string(lineNo) + ": " + message);
}

std::uint64_t asUnsigned(const JsonlField& f, std::uint64_t max,
                         std::string_view source, std::size_t lineNo) {
  if (f.intValue < 0 || static_cast<std::uint64_t>(f.intValue) > max) {
    fail(source, lineNo, "field \"" + f.key + "\" out of range");
  }
  return static_cast<std::uint64_t>(f.intValue);
}

/// Rejects any key outside `allowed` — a typo'd or foreign field is an
/// error at its line, not silently ignored data.
void rejectUnknownKeys(const std::vector<JsonlField>& fields,
                       std::span<const std::string_view> allowed,
                       std::string_view source, std::size_t lineNo) {
  for (const JsonlField& f : fields) {
    bool known = false;
    for (const std::string_view a : allowed) known = known || f.key == a;
    if (!known) fail(source, lineNo, "unknown key \"" + f.key + "\"");
  }
}

}  // namespace

TrafficTrace loadTrafficTrace(std::istream& in, std::string_view source) {
  TrafficTrace trace;
  std::string line;
  std::size_t lineNo = 0;

  if (!std::getline(in, line)) fail(source, 1, "empty file");
  ++lineNo;
  const auto meta = util::parseJsonlLine(line, source, lineNo);
  static constexpr std::string_view kMetaKeys[] = {"schema", "nodes"};
  rejectUnknownKeys(meta, kMetaKeys, source, lineNo);
  const auto& schema = util::requireField(meta, "schema",
                                          JsonlField::Kind::kString, source,
                                          lineNo);
  if (schema.stringValue != "traffic_trace/1") {
    fail(source, lineNo, "unsupported schema \"" + schema.stringValue + "\"");
  }
  const std::uint64_t nodes =
      asUnsigned(util::requireField(meta, "nodes", JsonlField::Kind::kInt,
                                    source, lineNo),
                 1u << 24, source, lineNo);
  if (nodes < 2) fail(source, lineNo, "need >= 2 nodes");
  trace.nodeCount = static_cast<NodeId>(nodes);
  trace.flows.assign(trace.nodeCount, {});

  static constexpr std::string_view kRecordKeys[] = {"src", "dst", "cycle"};
  while (std::getline(in, line)) {
    ++lineNo;
    const auto fields = util::parseJsonlLine(line, source, lineNo);
    rejectUnknownKeys(fields, kRecordKeys, source, lineNo);
    const auto src = static_cast<NodeId>(asUnsigned(
        util::requireField(fields, "src", JsonlField::Kind::kInt, source,
                           lineNo),
        nodes - 1, source, lineNo));
    const auto dst = static_cast<NodeId>(asUnsigned(
        util::requireField(fields, "dst", JsonlField::Kind::kInt, source,
                           lineNo),
        nodes - 1, source, lineNo));
    if (src == dst) fail(source, lineNo, "src == dst");
    if (const JsonlField* cycle = util::findField(
            fields, "cycle", JsonlField::Kind::kInt, source, lineNo)) {
      // Provenance only; still range-checked so a corrupted timestamp is
      // caught at its line.
      asUnsigned(*cycle, std::numeric_limits<std::int64_t>::max(), source,
                 lineNo);
    }
    trace.flows[src].push_back(dst);
    ++trace.records;
  }
  if (trace.records == 0) fail(source, lineNo, "trace has no records");
  return trace;
}

TrafficTrace loadTrafficTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("traffic trace: cannot open " + path);
  }
  return loadTrafficTrace(in, path);
}

}  // namespace downup::sim
