// Transfer phase: the two-level switch arbitration.
//
// Level 1 nominates one flit per input port (physical channel or source
// queue); level 2 grants one flit per output resource (physical channel or
// ejection port) among the nominations, round-robin in both levels.  Only
// channels with at least one forwardable flit (activeChannels_, maintained
// by allocation and flow control) and sources with a claimed output VC
// (busySources_) are visited; both sets iterate in ascending id order,
// which is exactly the order the historical 0..N-1 scans nominated in, so
// per-resource request lists — and therefore round-robin winners — are
// unchanged.
#include "sim/network.hpp"

namespace downup::sim {

void WormholeNetwork::transferFlits() {
  // Level 1: one flit per input physical channel per cycle (round-robin
  // among that channel's VCs); each source queue is its own input port.
  proposedMoves_.clear();
  const std::uint32_t channels = topo_->channelCount();
  if (vcCount_ == 1) {
    // One VC per channel: activeChannels_ membership already means that VC
    // is owned, routed and non-empty, and the per-channel VC round-robin
    // has nothing to choose — only downstream credit can gate the flit.
    activeChannels_.forEach([this](ChannelId c) {
      const std::uint32_t out = vcs_[c].out;
      if (!isEject(out) && credit_[out] == 0) return;
      proposedMoves_.push_back(Move{false, c, out});
    });
  } else {
    activeChannels_.forEach([this](ChannelId c) {
      const std::uint32_t rr = inputRoundRobin_[c];
      for (std::uint32_t k = 0; k < vcCount_; ++k) {
        const std::uint32_t v = (rr + k) % vcCount_;
        const std::uint32_t vcId = c * vcCount_ + v;
        const Vc& vc = vcs_[vcId];
        if (vc.owner == kNoPacket || vc.out == kNoOut || vc.buffered == 0) continue;
        if (!isEject(vc.out) && credit_[vc.out] == 0) continue;
        proposedMoves_.push_back(Move{false, vcId, vc.out});
        inputRoundRobin_[c] = v + 1;
        break;
      }
    });
  }
  busySources_.forEach([this](topo::NodeId node) {
    const Source& source = sources_[node];
    if (credit_[source.out] == 0) return;  // sources never eject
    proposedMoves_.push_back(Move{true, node, source.out});
  });

  // Level 2: one flit per output resource (physical channel or ejection
  // port) per cycle, round-robin among requesters.
  touchedResources_.clear();
  for (const Move& move : proposedMoves_) {
    const std::uint32_t resource = isEject(move.out)
                                       ? channels + (move.out - ejectBase_)
                                       : vcChannel(move.out);
    if (resourceRequests_[resource].empty()) {
      touchedResources_.push_back(resource);
    }
    resourceRequests_[resource].push_back(move);
  }
  for (std::uint32_t resource : touchedResources_) {
    auto& requests = resourceRequests_[resource];
    const std::uint32_t pick =
        outputRoundRobin_[resource]++ % static_cast<std::uint32_t>(requests.size());
    const Move& winner = requests[pick];
    executeMove(winner.fromSource, winner.index);
    requests.clear();
  }
}

}  // namespace downup::sim
