// Flow control: pipeline arrivals into VC buffers, credit accounting, and
// the execution of granted flit movements — every place a flit or credit
// changes hands, and therefore every place the active sets and the
// owned-VC watchdog counter transition.
#include "sim/network.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace downup::sim {

void WormholeNetwork::deliverArrivals() {
  auto& slot = arrivals_[now_ % (kPipelineCycles + 1)];
  for (std::uint32_t vcId : slot) {
    Vc& vc = vcs_[vcId];
    assert(vc.owner != kNoPacket && "arrival into unowned VC");
    assert(vc.buffered < config_.bufferDepthFlits && "buffer overflow");
    ++vc.buffered;
    if (vc.entered++ == 0) {
      // Header arrival: the VC is not routed yet (out == kNoOut), so it
      // joins the allocation set; the 1-cycle routing delay is enforced by
      // headReadyAt at visit time.
      vc.headReadyAt = now_;
      pendingHeaders_.insert(vcId);
    } else if (vc.out != kNoOut && vc.buffered == 1) {
      // A routed VC whose buffer had drained has forwardable work again.
      markMovable(vcId);
    }
  }
  slot.clear();
}

void WormholeNetwork::executeMove(bool fromSource, std::uint32_t index) {
  movedThisCycle_ = true;
  const std::uint32_t len = config_.packetLengthFlits;

  PacketId pid;
  std::uint32_t out;
  std::uint32_t flitIdx;
  if (fromSource) {
    Source& source = sources_[index];
    pid = source.queue.front();
    out = source.out;
    flitIdx = source.sent++;
    if (timeseries_ != nullptr) timeseries_->recordInjectedFlit();
    if (flitIdx == 0) {
      packets_[pid].injectTime = now_;
      if (tracer_ != nullptr && tracer_->sampled(pid)) {
        tracer_->record(obs::TraceEventKind::kInjected, pid, now_, index,
                        obs::PacketTracer::kNoChannel);
      }
    }
  } else {
    Vc& vc = vcs_[index];
    pid = vc.owner;
    out = vc.out;
    flitIdx = vc.sent++;
    --vc.buffered;
    ++credit_[index];  // the slot frees for whoever feeds this VC
    if (vc.buffered == 0) unmarkMovable(index);
  }
  const bool isTail = flitIdx + 1 == len;
  const bool measuring = now_ >= config_.warmupCycles;

  if (isEject(out)) {
    telemetry_.recordEjectedFlit(now_, measuring);
    if (timeseries_ != nullptr) timeseries_->recordEjectedFlit();
    if (isTail) {
      const topo::NodeId ejectNode =
          (out - ejectBase_) / config_.ejectionPortsPerNode;
      ejectOwner_[out - ejectBase_] = kNoPacket;
      if (parkingEnabled_) {
        // A free ejection port wakes claimants parked at its node.
        dirtyNodes_.insert(ejectNode);
      }
      ++packetsEjectedTotal_;
      Packet& packet = packets_[pid];
      packet.ejectTime = now_;
      if (packet.genTime >= config_.warmupCycles) {
        telemetry_.recordDelivered(
            static_cast<double>(now_ - packet.genTime + 1),
            static_cast<double>(packet.injectTime - packet.genTime),
            measuring);
      }
      // The flight recorder is not warmup-gated: warm-up windows are how
      // warm-up adequacy is checked in the first place.
      if (timeseries_ != nullptr) {
        timeseries_->recordDelivered(
            static_cast<double>(now_ - packet.genTime + 1));
      }
      if (tracer_ != nullptr && tracer_->sampled(pid)) {
        tracer_->record(obs::TraceEventKind::kEjected, pid, now_, ejectNode,
                        obs::PacketTracer::kNoChannel);
      }
    }
  } else {
    --credit_[out];
    arrivals_[(now_ + kPipelineCycles) % (kPipelineCycles + 1)].push_back(out);
    telemetry_.recordChannelFlit(vcChannel(out), measuring);
    if (metrics_ != nullptr && measuring) {
      metrics_->recordChannelFlit(vcChannel(out));
    }
    if (timeseries_ != nullptr) timeseries_->recordChannelFlit(vcChannel(out));
    if (tracer_ != nullptr && flitIdx == 0 && tracer_->sampled(pid)) {
      tracer_->record(obs::TraceEventKind::kChannelCrossed, pid, now_,
                      topo_->channelSrc(vcChannel(out)), vcChannel(out));
    }
  }

  if (isTail) {
    if (fromSource) {
      Source& source = sources_[index];
      source.queue.pop_front();
      source.sent = 0;
      source.out = kNoOut;
      busySources_.erase(index);
      // The next queued packet (if any) competes for allocation again.
      if (!source.queue.empty()) routableSources_.insert(index);
    } else {
      Vc& vc = vcs_[index];
      assert(vc.buffered == 0 && "flits behind the tail");
      vc.owner = kNoPacket;
      vc.out = kNoOut;
      vc.entered = 0;
      vc.sent = 0;
      --ownedVcs_;
      if (parkingEnabled_) {
        // The freed VC is an output of the channel's source node; wake the
        // claimants parked there.
        dirtyNodes_.insert(topo_->channelSrc(vcChannel(index)));
      }
    }
  }
}

}  // namespace downup::sim
