// One-call simulation entry point.
#pragma once

#include "routing/routing_table.hpp"
#include "sim/config.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"

namespace downup::sim {

/// Simulates `table` under `pattern` at `injectionRate` flits/node/cycle
/// with the given configuration and returns the run statistics.
RunStats simulate(const routing::RoutingTable& table,
                  const TrafficPattern& pattern, double injectionRate,
                  const SimConfig& config);

}  // namespace downup::sim
