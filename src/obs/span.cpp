#include "obs/span.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "obs/export.hpp"

namespace downup::obs {

namespace {

/// Microseconds with fractional precision — spans are wall-clock ns; the
/// trace_event format expects microsecond doubles.
double toUs(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void writeArgsJson(const SpanRecorder::Span& span, std::ostream& out) {
  out << "{";
  for (std::uint8_t a = 0; a < span.argCount; ++a) {
    if (a > 0) out << ",";
    char value[32];
    std::snprintf(value, sizeof value, "%.6g", span.args[a].value);
    out << "\"" << span.args[a].key << "\":" << value;
  }
  out << "}";
}

}  // namespace

void writeSpansJsonl(const SpanRecorder& spans, std::ostream& out) {
  const std::vector<SpanRecorder::Span> all = spans.snapshot();
  out << "{\"record\":\"meta\",\"schema\":\"obs_spans/1\",\"gitRev\":\""
      << gitRevision() << "\",\"timestampUtc\":\"" << utcTimestamp()
      << "\",\"spans\":" << all.size() << "}\n";
  char buffer[96];
  for (std::size_t i = 0; i < all.size(); ++i) {
    const SpanRecorder::Span& span = all[i];
    out << "{\"record\":\"span\",\"id\":" << i << ",\"parent\":";
    if (span.parent == SpanRecorder::kNoParent) {
      out << "null";
    } else {
      out << span.parent;
    }
    std::snprintf(buffer, sizeof buffer,
                  ",\"tid\":%u,\"depth\":%u,\"startUs\":%.3f,\"durUs\":%.3f",
                  span.tid, span.depth, toUs(span.startNs),
                  toUs(span.durationNs()));
    out << ",\"name\":\"" << span.name << "\"" << buffer;
    if (span.endNs == 0) out << ",\"open\":true";
    if (span.argCount > 0) {
      out << ",\"args\":";
      writeArgsJson(span, out);
    }
    out << "}\n";
  }
}

void writeSpansChromeTrace(const SpanRecorder& spans, std::ostream& out) {
  const std::vector<SpanRecorder::Span> all = spans.snapshot();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buffer[96];
  for (const SpanRecorder::Span& span : all) {
    if (span.endNs == 0) continue;  // still open: no complete event
    if (!first) out << ",";
    first = false;
    std::snprintf(buffer, sizeof buffer,
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u",
                  toUs(span.startNs), toUs(span.durationNs()), span.tid);
    out << "\n{\"name\":\"" << span.name << "\",\"ph\":\"X\"," << buffer
        << ",\"args\":";
    writeArgsJson(span, out);
    out << "}";
  }
  // Name the process so Perfetto labels the track meaningfully.
  if (!first) out << ",";
  out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"control-plane\"}}";
  out << "\n]}\n";
}

}  // namespace downup::obs
