#include "obs/span.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "obs/export.hpp"

namespace downup::obs {

namespace {

using util::PerfCounterGroup;
using util::PerfCounts;
using util::PerfEvent;
using util::kPerfEventCount;

/// Microseconds with fractional precision — spans are wall-clock ns; the
/// trace_event format expects microsecond doubles.
double toUs(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void writeArgsJson(const SpanRecorder::Span& span, std::ostream& out) {
  out << "{";
  for (std::uint8_t a = 0; a < span.argCount; ++a) {
    if (a > 0) out << ",";
    char value[32];
    std::snprintf(value, sizeof value, "%.6g", span.args[a].value);
    out << "\"" << span.args[a].key << "\":" << value;
  }
  out << "}";
}

/// Counter payload: only events that were actually counted, plus the
/// derived ratios when their inputs are present.  Absent events simply
/// don't appear — a consumer never sees a silent zero.
void writeCountersJson(const PerfCounts& counts, std::ostream& out) {
  out << "{";
  bool first = true;
  for (std::size_t e = 0; e < kPerfEventCount; ++e) {
    const auto event = static_cast<PerfEvent>(e);
    if (!counts.has(event)) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << util::toString(event) << "\":" << counts.get(event);
  }
  char buffer[40];
  if (counts.ipc() >= 0) {
    std::snprintf(buffer, sizeof buffer, ",\"ipc\":%.4f", counts.ipc());
    out << buffer;
  }
  if (counts.cacheMissRate() >= 0) {
    std::snprintf(buffer, sizeof buffer, ",\"cacheMissRate\":%.4f",
                  counts.cacheMissRate());
    out << buffer;
  }
  out << "}";
}

/// Counter availability for the meta record: a status string and, for
/// anything short of full availability, the reason — the schema's "never
/// silent zeros" contract.
void writeCounterMetaJson(const SpanRecorder& spans, std::ostream& out) {
  const PerfCounterGroup* group = spans.counters();
  if (group == nullptr) {
    out << "\"counters\":\"detached\"";
    return;
  }
  if (!group->available()) {
    out << "\"counters\":\"unavailable\",\"countersReason\":\""
        << group->unavailableReason() << "\"";
    return;
  }
  const bool full =
      group->eventMask() == ((1u << kPerfEventCount) - 1u);
  out << "\"counters\":\"" << (full ? "available" : "partial") << "\"";
  if (!full) {
    out << ",\"countersReason\":\"" << group->degradedReason() << "\"";
  }
  out << ",\"counterEvents\":[";
  bool first = true;
  for (std::size_t e = 0; e < kPerfEventCount; ++e) {
    if (!group->has(static_cast<PerfEvent>(e))) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << util::toString(static_cast<PerfEvent>(e)) << "\"";
  }
  out << "]";
}

}  // namespace

void writeSpansJsonl(const SpanRecorder& spans, std::ostream& out) {
  const std::vector<SpanRecorder::Span> all = spans.snapshot();
  const std::vector<SpanRecorder::Aggregate> aggregates = spans.aggregates();
  out << "{\"record\":\"meta\",\"schema\":\"obs_spans/2\",\"gitRev\":\""
      << gitRevision() << "\",\"timestampUtc\":\"" << utcTimestamp()
      << "\",\"spans\":" << all.size()
      << ",\"aggregates\":" << aggregates.size() << ",";
  writeCounterMetaJson(spans, out);
  out << "}\n";
  char buffer[96];
  for (std::size_t i = 0; i < all.size(); ++i) {
    const SpanRecorder::Span& span = all[i];
    out << "{\"record\":\"span\",\"id\":" << i << ",\"parent\":";
    if (span.parent == SpanRecorder::kNoParent) {
      out << "null";
    } else {
      out << span.parent;
    }
    std::snprintf(buffer, sizeof buffer,
                  ",\"tid\":%u,\"depth\":%u,\"startUs\":%.3f,\"durUs\":%.3f",
                  span.tid, span.depth, toUs(span.startNs),
                  toUs(span.durationNs()));
    out << ",\"name\":\"" << span.name << "\"" << buffer;
    if (span.endNs == 0) out << ",\"open\":true";
    if (span.argCount > 0) {
      out << ",\"args\":";
      writeArgsJson(span, out);
    }
    if (!span.counters.empty()) {
      out << ",\"counters\":";
      writeCountersJson(span.counters, out);
    }
    if (span.allocTracked) {
      out << ",\"alloc\":{\"count\":" << span.allocCount
          << ",\"bytes\":" << span.allocBytes << "}";
    }
    out << "}\n";
  }
  for (const SpanRecorder::Aggregate& agg : aggregates) {
    out << "{\"record\":\"aggregate\",\"name\":\"" << agg.name
        << "\",\"count\":" << agg.count << ",\"totalNs\":" << agg.totalNs;
    if (!agg.counters.empty()) {
      out << ",\"counters\":";
      writeCountersJson(agg.counters, out);
    }
    out << "}\n";
  }
}

void writeSpansChromeTrace(const SpanRecorder& spans, std::ostream& out) {
  const std::vector<SpanRecorder::Span> all = spans.snapshot();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buffer[96];
  for (const SpanRecorder::Span& span : all) {
    if (span.endNs == 0) continue;  // still open: no complete event
    if (!first) out << ",";
    first = false;
    std::snprintf(buffer, sizeof buffer,
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u",
                  toUs(span.startNs), toUs(span.durationNs()), span.tid);
    out << "\n{\"name\":\"" << span.name << "\",\"ph\":\"X\"," << buffer
        << ",\"args\":";
    // Perfetto shows args on click — fold the derived counter ratios and
    // alloc charge into the arg object so they surface there too.
    out << "{";
    bool firstArg = true;
    for (std::uint8_t a = 0; a < span.argCount; ++a) {
      if (!firstArg) out << ",";
      firstArg = false;
      char value[32];
      std::snprintf(value, sizeof value, "%.6g", span.args[a].value);
      out << "\"" << span.args[a].key << "\":" << value;
    }
    if (span.counters.ipc() >= 0) {
      std::snprintf(buffer, sizeof buffer, "\"ipc\":%.4f",
                    span.counters.ipc());
      out << (firstArg ? "" : ",") << buffer;
      firstArg = false;
    }
    if (span.counters.cacheMissRate() >= 0) {
      std::snprintf(buffer, sizeof buffer, "\"cacheMissRate\":%.4f",
                    span.counters.cacheMissRate());
      out << (firstArg ? "" : ",") << buffer;
      firstArg = false;
    }
    if (span.allocTracked) {
      out << (firstArg ? "" : ",") << "\"allocCount\":" << span.allocCount
          << ",\"allocBytes\":" << span.allocBytes;
    }
    out << "}}";
  }
  // Name the process so Perfetto labels the track meaningfully.
  if (!first) out << ",";
  out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"control-plane\"}}";
  out << "\n]}\n";
}

}  // namespace downup::obs
