// Wall-clock (and optionally counter-level) attribution of the engine's
// per-cycle phases, so a perf regression can be pinned to allocation vs
// arbitration vs flow control instead of showing up only as a lower
// aggregate cycles/sec.  The engine times each phase with steady_clock only
// when a profiler is attached; the detached path keeps the plain phase
// calls (see WormholeNetwork::step).
//
// The profiler is a facade over util::SpanRecorder's aggregate slots — the
// same substrate the control-plane rebuild spans use — so engine phases and
// fabric stages share one timing store and one export path (obs_spans/2
// "aggregate" records).  Per-cycle spans would be unaffordable (millions of
// mutex-protected records); aggregates are lock-free accumulation into four
// fixed slots.  By default the profiler owns a private recorder; hand it a
// shared one (Observer does this when control-plane spans are also enabled)
// and the phase totals export alongside the rebuild trace.
//
// With a PerfCounterGroup attached (attachCounters), the engine's counted
// path additionally folds per-phase counter deltas into the same slots, so
// report() can print per-phase IPC and cache-miss rates — or say why it
// can't (unavailable counters report their reason, never silent zeros).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>

#include "util/perf_counters.hpp"
#include "util/span_recorder.hpp"

namespace downup::obs {

class PhaseProfiler {
 public:
  enum Phase : std::uint8_t {
    kFlowControl,  // pipeline arrivals into VC buffers
    kTraffic,      // Bernoulli / burst packet generation
    kAllocation,   // header routing and output-VC claims
    kArbitration,  // two-level switch allocation + flit movement
    kPhaseCount,
  };

  static const char* toString(Phase phase) noexcept;

  /// Accumulates into `recorder`'s aggregate slots when given; owns a
  /// private recorder otherwise.
  explicit PhaseProfiler(util::SpanRecorder* recorder = nullptr);

  void add(Phase phase, std::uint64_t nanos) noexcept {
    recorder_->accumulate(ids_[phase], nanos);
  }
  /// Folds a counter delta into a phase's slot (engine counted path).
  void addCounts(Phase phase, const util::PerfCounts& delta) noexcept {
    recorder_->accumulateCounts(ids_[phase], delta);
  }
  void endCycle() noexcept { ++cycles_; }

  /// Attaches a counter group: the engine switches to its counted phase
  /// path (reads the group at phase boundaries) when this is non-null and
  /// available.  The group must belong to the simulating thread.
  void attachCounters(util::PerfCounterGroup* counters) noexcept {
    counters_ = counters;
  }
  util::PerfCounterGroup* counters() const noexcept { return counters_; }

  std::uint64_t cycles() const noexcept { return cycles_; }
  std::uint64_t phaseNanos(Phase phase) const noexcept {
    return recorder_->aggregateNs(ids_[phase]);
  }
  /// Summed counter deltas attributed to one phase (mask 0 when the
  /// counted path never ran).
  util::PerfCounts phaseCounts(Phase phase) const;
  std::uint64_t totalNanos() const noexcept;

  void reset() noexcept;

  /// The recorder the phase slots live in (shared or owned) — exporters
  /// dump the aggregates from here.
  util::SpanRecorder* recorder() noexcept { return recorder_; }
  const util::SpanRecorder* recorder() const noexcept { return recorder_; }

  /// One line per phase: total ms, share of the phase sum, ns/cycle.
  /// When per-phase counter data exists, each line gains IPC and
  /// cache-miss-rate columns (absent events print "-", never zero).
  void report(std::ostream& out) const;

 private:
  std::unique_ptr<util::SpanRecorder> owned_;
  util::SpanRecorder* recorder_;
  std::array<std::uint32_t, kPhaseCount> ids_{};
  util::PerfCounterGroup* counters_ = nullptr;
  std::uint64_t cycles_ = 0;
};

}  // namespace downup::obs
