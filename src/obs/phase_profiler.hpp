// Wall-clock attribution of the engine's per-cycle phases, so a perf
// regression can be pinned to allocation vs arbitration vs flow control
// instead of showing up only as a lower aggregate cycles/sec.  The engine
// times each phase with steady_clock only when a profiler is attached; the
// detached path keeps the plain phase calls (see WormholeNetwork::step).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

namespace downup::obs {

class PhaseProfiler {
 public:
  enum Phase : std::uint8_t {
    kFlowControl,  // pipeline arrivals into VC buffers
    kTraffic,      // Bernoulli / burst packet generation
    kAllocation,   // header routing and output-VC claims
    kArbitration,  // two-level switch allocation + flit movement
    kPhaseCount,
  };

  static const char* toString(Phase phase) noexcept;

  void add(Phase phase, std::uint64_t nanos) noexcept {
    nanos_[phase] += nanos;
  }
  void endCycle() noexcept { ++cycles_; }

  std::uint64_t cycles() const noexcept { return cycles_; }
  std::uint64_t phaseNanos(Phase phase) const noexcept {
    return nanos_[phase];
  }
  std::uint64_t totalNanos() const noexcept;

  void reset() noexcept {
    nanos_.fill(0);
    cycles_ = 0;
  }

  /// One line per phase: total ms, share of the phase sum, ns/cycle.
  void report(std::ostream& out) const;

 private:
  std::array<std::uint64_t, kPhaseCount> nanos_{};
  std::uint64_t cycles_ = 0;
};

}  // namespace downup::obs
