// Sampled packet tracer: per-hop lifecycle events for a deterministic
// 1-in-N sample of packets, recorded by the engine and exported either as
// JSONL (one event per line) or as Chrome trace_event JSON loadable in
// chrome://tracing and Perfetto (see obs/export.hpp).
//
// Sampling is by packet id (pid % sampleEvery == 0), so the sample is
// deterministic across reruns and independent of what the observer does —
// tracing never draws RNG or perturbs the engine, only appends to buffers.
// The event vocabulary mirrors a wormhole packet's life:
//
//   generated     entered the source queue
//   injected      first flit left the source queue
//   blocked       a header waited for an output VC (duration = the wait)
//   vc_allocated  a header claimed an output VC (or an ejection port when
//                 channel == kNoChannel) — one per hop
//   channel_crossed  the header flit physically entered the channel
//   ejected       the tail flit left the network
//   dropped       the packet was discarded by the fault machinery (failed
//                 link/switch, reconfiguration flush, or unreachable
//                 destination); terminal like ejected
#pragma once

#include <cstdint>
#include <vector>

#include "routing/direction.hpp"

namespace downup::obs {

enum class TraceEventKind : std::uint8_t {
  kGenerated,
  kInjected,
  kBlocked,
  kVcAllocated,
  kChannelCrossed,
  kEjected,
  kDropped,
};

const char* toString(TraceEventKind kind) noexcept;

class PacketTracer {
 public:
  static constexpr std::uint32_t kNoChannel = topo::kInvalidChannel;
  /// Direction row meaning "injection" (no arrival direction); matches
  /// MetricsRegistry::kInjectRow.
  static constexpr std::uint8_t kNoDir =
      static_cast<std::uint8_t>(routing::kDirCount);

  struct PacketInfo {
    std::uint32_t packet;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t genCycle;
  };

  struct Event {
    std::uint32_t packet;
    std::uint64_t cycle;
    TraceEventKind kind;
    std::uint8_t fromDir;    // kNoDir when injecting / not applicable
    std::uint8_t toDir;      // kNoDir when not applicable
    std::uint32_t node;      // node the event happened at
    std::uint32_t channel;   // kNoChannel when not applicable
    std::uint64_t value;     // blocked: cycles waited
  };

  /// sampleEvery == 0 disables tracing entirely; 1 records every packet.
  explicit PacketTracer(std::uint32_t sampleEvery)
      : sampleEvery_(sampleEvery) {}

  bool enabled() const noexcept { return sampleEvery_ != 0; }
  bool sampled(std::uint32_t packet) const noexcept {
    return sampleEvery_ != 0 && packet % sampleEvery_ == 0;
  }
  std::uint32_t sampleEvery() const noexcept { return sampleEvery_; }

  /// Registers a sampled packet (call once, at generation).
  void onGenerated(std::uint32_t packet, std::uint32_t src, std::uint32_t dst,
                   std::uint64_t cycle) {
    packets_.push_back(PacketInfo{packet, src, dst, cycle});
    events_.push_back(Event{packet, cycle, TraceEventKind::kGenerated, kNoDir,
                            kNoDir, src, kNoChannel, 0});
  }

  void record(TraceEventKind kind, std::uint32_t packet, std::uint64_t cycle,
              std::uint32_t node, std::uint32_t channel,
              std::uint8_t fromDir = kNoDir, std::uint8_t toDir = kNoDir,
              std::uint64_t value = 0) {
    events_.push_back(
        Event{packet, cycle, kind, fromDir, toDir, node, channel, value});
  }

  const std::vector<PacketInfo>& packets() const noexcept { return packets_; }
  const std::vector<Event>& events() const noexcept { return events_; }

  /// Events of one packet, in recording (= cycle) order.
  std::vector<Event> packetEvents(std::uint32_t packet) const;

  void clear() {
    packets_.clear();
    events_.clear();
  }

 private:
  std::uint32_t sampleEvery_;
  std::vector<PacketInfo> packets_;
  std::vector<Event> events_;
};

}  // namespace downup::obs
