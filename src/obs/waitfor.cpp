#include "obs/waitfor.hpp"

#include <algorithm>
#include <stdexcept>

namespace downup::obs {

WaitForSampler::WaitForSampler(std::uint32_t samplePeriodCycles,
                               std::uint32_t nodeCount,
                               std::uint32_t channelCount,
                               std::uint32_t totalVcs, std::uint32_t vcCount)
    : period_(samplePeriodCycles),
      nodeCount_(nodeCount),
      channelCount_(channelCount),
      vcCount_(vcCount),
      adjacency_(channelCount),
      color_(channelCount, 0),
      prevBlockedOwner_(totalVcs, kNoOwner),
      currBlockedOwner_(totalVcs, kNoOwner),
      stalls_(static_cast<std::size_t>(nodeCount) * routing::kDirCount *
                  routing::kDirCount,
              0) {
  if (samplePeriodCycles == 0) {
    throw std::invalid_argument("WaitForSampler: sample period must be > 0");
  }
  if (vcCount == 0) {
    throw std::invalid_argument("WaitForSampler: vcCount must be > 0");
  }
}

void WaitForSampler::beginSample(std::uint64_t cycle) {
  sampleCycle_ = cycle;
  for (ChannelId c : touched_) adjacency_[c].clear();
  touched_.clear();
  // Last sample's blocked set becomes the standing-stall reference; the
  // buffer it replaces is recycled as this sample's (empty) current set.
  prevBlockedOwner_.swap(currBlockedOwner_);
  std::fill(currBlockedOwner_.begin(), currBlockedOwner_.end(), kNoOwner);
  sampleBlocked_ = 0;
}

bool WaitForSampler::noteBlockedHeader(std::uint32_t vcId,
                                       std::uint32_t owner) {
  ++sampleBlocked_;
  currBlockedOwner_[vcId] = owner;
  return prevBlockedOwner_[vcId] == owner;
}

void WaitForSampler::addHoldEdge(ChannelId from, ChannelId to) {
  if (adjacency_[from].empty()) touched_.push_back(from);
  adjacency_[from].push_back(to);
  ++holdEdges_;
}

void WaitForSampler::addRequestEdge(ChannelId from, ChannelId to,
                                    bool fullyOwned, bool standing,
                                    NodeId node, std::uint32_t fromDir,
                                    std::uint32_t toDir) {
  if (standing) {
    ++stalls_[(static_cast<std::size_t>(node) * routing::kDirCount + fromDir) *
                  routing::kDirCount +
              toDir];
    ++stallsTotal_;
  }
  if (!fullyOwned) {
    if (vcCount_ > 1) ++partialRequests_;
    return;
  }
  if (adjacency_[from].empty()) touched_.push_back(from);
  adjacency_[from].push_back(to);
  ++requestEdges_;
}

void WaitForSampler::endSample() {
  detectCycles(sampleCycle_);
  ++samples_;
  blockedTotal_ += sampleBlocked_;
  blockedPeak_ = std::max(blockedPeak_, sampleBlocked_);
}

void WaitForSampler::detectCycles(std::uint64_t cycle) {
  if (touched_.empty()) return;
  // Iterative three-color DFS over the touched channels; a grey->grey edge
  // is a back edge and the grey stack suffix from its target is the cycle.
  for (ChannelId c : touched_) color_[c] = 0;
  bool found = false;
  for (ChannelId root : touched_) {
    if (found) break;
    if (color_[root] != 0) continue;
    stack_.clear();
    stack_.push_back(Frame{root, 0});
    color_[root] = 1;
    while (!stack_.empty() && !found) {
      Frame& frame = stack_.back();
      const std::vector<ChannelId>& edges = adjacency_[frame.channel];
      if (frame.nextEdge >= edges.size()) {
        color_[frame.channel] = 2;
        stack_.pop_back();
        continue;
      }
      const ChannelId next = edges[frame.nextEdge++];
      if (color_[next] == 1) {
        // Back edge: extract the witness from the grey stack.
        witness_.clear();
        std::size_t start = stack_.size();
        while (start > 0 && stack_[start - 1].channel != next) --start;
        for (std::size_t i = start == 0 ? 0 : start - 1; i < stack_.size();
             ++i) {
          witness_.push_back(stack_[i].channel);
        }
        found = true;
      } else if (color_[next] == 0) {
        color_[next] = 1;
        stack_.push_back(Frame{next, 0});
      }
    }
  }
  // Leave no grey residue for the next sample's partial repaint.
  for (ChannelId c : touched_) color_[c] = 0;
  if (found) {
    ++cycleSamples_;
    lastCycleAt_ = cycle;
  }
}

void WaitForSampler::reset() {
  for (ChannelId c : touched_) adjacency_[c].clear();
  touched_.clear();
  std::fill(prevBlockedOwner_.begin(), prevBlockedOwner_.end(), kNoOwner);
  std::fill(currBlockedOwner_.begin(), currBlockedOwner_.end(), kNoOwner);
  sampleBlocked_ = 0;
  samples_ = 0;
  blockedTotal_ = 0;
  blockedPeak_ = 0;
  holdEdges_ = 0;
  requestEdges_ = 0;
  partialRequests_ = 0;
  cycleSamples_ = 0;
  lastCycleAt_ = 0;
  witness_.clear();
  std::fill(stalls_.begin(), stalls_.end(), 0);
  stallsTotal_ = 0;
}

void WaitForSampler::mergeFrom(const WaitForSampler& other) {
  if (other.period_ != period_ || other.nodeCount_ != nodeCount_ ||
      other.channelCount_ != channelCount_ || other.vcCount_ != vcCount_) {
    throw std::invalid_argument(
        "WaitForSampler::mergeFrom: mismatched dimensions");
  }
  const std::lock_guard<std::mutex> lock(mergeMutex_);
  samples_ += other.samples_;
  blockedTotal_ += other.blockedTotal_;
  blockedPeak_ = std::max(blockedPeak_, other.blockedPeak_);
  holdEdges_ += other.holdEdges_;
  requestEdges_ += other.requestEdges_;
  partialRequests_ += other.partialRequests_;
  cycleSamples_ += other.cycleSamples_;
  lastCycleAt_ = std::max(lastCycleAt_, other.lastCycleAt_);
  if (witness_.empty()) witness_ = other.witness_;
  for (std::size_t i = 0; i < stalls_.size(); ++i) stalls_[i] += other.stalls_[i];
  stallsTotal_ += other.stallsTotal_;
}

}  // namespace downup::obs
