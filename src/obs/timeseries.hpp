// Time-resolved observability: a flight recorder of fixed-cycle windows.
//
// Everything the end-of-run aggregates (RunStats, MetricsRegistry) fold
// into one number is also interesting *over time*: congestion onset as the
// offered load approaches saturation, the throughput dip around a fault/
// reconfiguration event, and whether warm-up really reached steady state.
// The collector buckets engine events into windows of `windowCycles` cycles
// and keeps the last `maxWindows` of them in a ring, so memory is bounded
// no matter how long the run is.
//
// Per window: generated packets, injected flits (left a source queue),
// channel flits (crossed a switch-to-switch channel), ejected flits and
// packets, a latency quantile-sketch snapshot of the packets delivered in
// the window, blocked-cycle attribution, fault drops, degraded cycles
// (reconfiguration window open) and per-tree-level — optionally
// per-channel — flit/blocked breakdowns.
//
// Reconfiguration state is additionally recorded as explicit event spans
// (fault cycle -> hot-swap cycle, full vs incremental, destinations
// rebuilt), which is what the recovery-curve analyzer (stats/recovery.hpp)
// consumes.
//
// Recording discipline (same contract as MetricsRegistry): recorders are
// single-writer, never draw RNG, never touch engine state, and are
// allocation-free in the steady state — window closure writes into
// preallocated ring slots (per-level/per-channel vectors are sized on
// first use of a slot and reused thereafter).  A run without a collector
// attached pays one never-taken null check per hook.  Parallel sweeps give
// each run its own collector and fold them with mergeFrom().
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "routing/direction.hpp"
#include "util/summary.hpp"

namespace downup::obs {

using routing::ChannelId;
using routing::NodeId;

struct TimeSeriesOptions {
  /// Window length in cycles (must be > 0 to enable the collector).
  std::uint32_t windowCycles = 1024;
  /// Ring capacity: the most recent maxWindows windows are retained.
  std::uint32_t maxWindows = 4096;
  /// Record per-channel flit counts per window (memory: channels x ring).
  bool perChannel = false;
  /// Exact capacity of the per-window latency sketch (values beyond this
  /// collapse to histogram quantiles, as in sim::Telemetry).
  std::uint32_t latencySketchCap = 4096;
};

class TimeSeriesCollector {
 public:
  /// One closed window of the series.
  struct Window {
    std::uint64_t startCycle = 0;
    std::uint64_t endCycle = 0;  // exclusive
    std::uint64_t generatedPackets = 0;
    std::uint64_t injectedFlits = 0;  // flits that left a source queue
    std::uint64_t channelFlits = 0;   // switch-to-switch channel entries
    std::uint64_t ejectedFlits = 0;
    std::uint64_t ejectedPackets = 0;
    std::uint64_t blockedCycles = 0;  // claim-time attribution in-window
    std::uint64_t droppedPackets = 0;
    std::uint64_t degradedCycles = 0;  // reconfiguration window open
    util::QuantileSketch::Snapshot latency;  // packets delivered in-window
    std::vector<std::uint64_t> levelFlits;
    std::vector<std::uint64_t> levelBlockedCycles;
    std::vector<std::uint64_t> channelFlitsPerChannel;  // iff perChannel
  };

  /// One fault -> hot-swap reconfiguration span.  A later fault during an
  /// open window appends its own event; every event still pending at the
  /// swap is completed by it (they share the swapCycle).
  struct ReconfigEvent {
    static constexpr std::uint64_t kPending = ~std::uint64_t{0};
    std::uint64_t faultCycle = 0;
    std::uint64_t swapCycle = kPending;
    bool incremental = false;
    std::uint64_t destinationsRebuilt = 0;
    std::uint64_t unreachablePairs = 0;
    bool pending() const noexcept { return swapCycle == kPending; }
  };

  TimeSeriesCollector(const TimeSeriesOptions& options,
                      std::uint32_t nodeCount, std::uint32_t channelCount);

  /// Installs the tree-level dimension (same convention as
  /// MetricsRegistry::setLevels); without it every event lands in level 0.
  void setLevels(std::span<const std::uint32_t> nodeLevel,
                 std::span<const std::uint32_t> channelLevel);

  // --- engine-facing recorders (single-writer, no allocation) ---

  void recordGenerated() noexcept { ++generatedPackets_; }
  void recordInjectedFlit() noexcept { ++injectedFlits_; }
  void recordChannelFlit(ChannelId channel) noexcept {
    ++channelFlits_;
    ++levelFlits_[channelLevel_[channel]];
    if (!channelFlitsPerChannel_.empty()) ++channelFlitsPerChannel_[channel];
  }
  void recordEjectedFlit() noexcept { ++ejectedFlits_; }
  void recordDelivered(double latency) {
    ++ejectedPackets_;
    latencySketch_.add(latency);
  }
  void recordBlocked(NodeId node, std::uint64_t waitedCycles) noexcept {
    blockedCycles_ += waitedCycles;
    levelBlockedCycles_[nodeLevel_[node]] += waitedCycles;
  }
  void recordDrop() noexcept { ++droppedPackets_; }
  void recordDegradedCycle() noexcept { ++degradedCycles_; }

  /// A fault event changed the topology at `cycle` (opens a span).
  void onFaultApplied(std::uint64_t cycle) {
    events_.push_back(ReconfigEvent{cycle});
  }
  /// The rebuilt routing was hot-swapped at `cycle`; completes every
  /// pending span.
  void onReconfigComplete(std::uint64_t cycle, bool incremental,
                          std::uint64_t destinationsRebuilt,
                          std::uint64_t unreachablePairs) noexcept {
    for (ReconfigEvent& event : events_) {
      if (!event.pending()) continue;
      event.swapCycle = cycle;
      event.incremental = incremental;
      event.destinationsRebuilt = destinationsRebuilt;
      event.unreachablePairs = unreachablePairs;
    }
  }

  /// End-of-cycle hook: closes the current window when `cycle` is its last
  /// cycle.  Must be called once per simulated cycle while attached.
  void tick(std::uint64_t cycle) {
    if (cycle + 1 >= windowEnd_) closeWindow(cycle + 1);
  }

  /// Flushes a partially filled window (end of run); no-op when the
  /// current window is empty of cycles.
  void finish(std::uint64_t cycle) {
    if (cycle > windowStart_) closeWindow(cycle);
  }

  // --- accessors ---

  std::uint32_t windowCycles() const noexcept { return windowCycles_; }
  std::uint32_t nodeCount() const noexcept {
    return static_cast<std::uint32_t>(nodeLevel_.size());
  }
  std::uint32_t channelCount() const noexcept {
    return static_cast<std::uint32_t>(channelLevel_.size());
  }
  std::uint32_t levelCount() const noexcept {
    return static_cast<std::uint32_t>(levelFlits_.size());
  }
  bool perChannel() const noexcept { return !channelFlitsPerChannel_.empty(); }

  /// Closed windows, oldest first (at most maxWindows; earlier windows are
  /// evicted once the ring wraps).
  std::size_t windowCount() const noexcept { return count_; }
  const Window& window(std::size_t i) const noexcept {
    return ring_[(first_ + i) % ring_.size()];
  }
  /// Total windows ever closed (== windowCount() until the ring wraps).
  std::uint64_t windowsClosed() const noexcept { return windowsClosed_; }

  std::span<const ReconfigEvent> reconfigEvents() const noexcept {
    return events_;
  }

  /// Clears every window, event and running accumulator (sweep-sample
  /// reuse); keeps dimensions, levels and ring capacity.
  void reset();

  /// Folds `other` (same windowCycles/dimensions, std::invalid_argument
  /// otherwise) into this collector, matching windows by startCycle and
  /// appending other's reconfiguration events.  Counter fields and latency
  /// count/mean/min/max merge exactly; merged latency quantiles are the
  /// delivered-count-weighted average of the two snapshots (documented
  /// approximation).  Locks this collector, so concurrent merges from a
  /// parallelFor are safe.
  void mergeFrom(const TimeSeriesCollector& other);

 private:
  void closeWindow(std::uint64_t endCycle);
  Window& slotForNewWindow();

  std::uint32_t windowCycles_;
  bool wantPerChannel_;
  std::vector<std::uint32_t> nodeLevel_;
  std::vector<std::uint32_t> channelLevel_;

  // Running accumulators for the open window.
  std::uint64_t windowStart_ = 0;
  std::uint64_t windowEnd_;
  std::uint64_t generatedPackets_ = 0;
  std::uint64_t injectedFlits_ = 0;
  std::uint64_t channelFlits_ = 0;
  std::uint64_t ejectedFlits_ = 0;
  std::uint64_t ejectedPackets_ = 0;
  std::uint64_t blockedCycles_ = 0;
  std::uint64_t droppedPackets_ = 0;
  std::uint64_t degradedCycles_ = 0;
  util::QuantileSketch latencySketch_;
  std::vector<std::uint64_t> levelFlits_;
  std::vector<std::uint64_t> levelBlockedCycles_;
  std::vector<std::uint64_t> channelFlitsPerChannel_;  // iff perChannel

  // Ring of closed windows.
  std::vector<Window> ring_;
  std::size_t first_ = 0;
  std::size_t count_ = 0;
  std::uint64_t windowsClosed_ = 0;

  std::vector<ReconfigEvent> events_;

  std::mutex mergeMutex_;
};

}  // namespace downup::obs
