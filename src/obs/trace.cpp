#include "obs/trace.hpp"

namespace downup::obs {

const char* toString(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kGenerated: return "generated";
    case TraceEventKind::kInjected: return "injected";
    case TraceEventKind::kBlocked: return "blocked";
    case TraceEventKind::kVcAllocated: return "vc_allocated";
    case TraceEventKind::kChannelCrossed: return "channel_crossed";
    case TraceEventKind::kEjected: return "ejected";
    case TraceEventKind::kDropped: return "dropped";
  }
  return "unknown";
}

std::vector<PacketTracer::Event> PacketTracer::packetEvents(
    std::uint32_t packet) const {
  std::vector<Event> result;
  for (const Event& event : events_) {
    if (event.packet == packet) result.push_back(event);
  }
  return result;
}

}  // namespace downup::obs
