#include "obs/export.hpp"

#include <cstdio>
#include <ctime>
#include <ostream>
#include <string_view>

namespace downup::obs {

namespace {

std::string_view rowName(std::uint32_t row) {
  if (row >= routing::kDirCount) return "INJECT";
  return routing::toString(static_cast<routing::Dir>(row));
}

std::string turnName(std::uint32_t fromRow, std::uint32_t toDir) {
  std::string name(rowName(fromRow));
  name += "->";
  name += rowName(toDir);
  return name;
}

}  // namespace

std::string gitRevision() {
  std::string rev;
  if (std::FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buffer[64];
    if (std::fgets(buffer, sizeof buffer, pipe) != nullptr) rev = buffer;
    pclose(pipe);
  }
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

std::string utcTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

void writeMetricsJsonl(const MetricsRegistry& metrics,
                       const topo::Topology* topo,
                       std::uint64_t measuredCycles, std::ostream& out) {
  out << "{\"record\":\"meta\",\"schema\":\"obs_metrics/1\",\"gitRev\":\""
      << gitRevision() << "\",\"timestampUtc\":\"" << utcTimestamp()
      << "\",\"nodes\":" << metrics.nodeCount()
      << ",\"channels\":" << metrics.channelCount()
      << ",\"levels\":" << metrics.levelCount()
      << ",\"measuredCycles\":" << measuredCycles << "}\n";
  const auto levelFlits = metrics.levelFlits();
  const auto levelBlocked = metrics.levelBlockedCycles();
  const auto population = metrics.levelPopulation();
  for (std::uint32_t l = 0; l < metrics.levelCount(); ++l) {
    out << "{\"record\":\"level\",\"level\":" << l
        << ",\"nodes\":" << population[l] << ",\"flits\":" << levelFlits[l]
        << ",\"blockedCycles\":" << levelBlocked[l] << "}\n";
  }
  for (std::uint32_t from = 0; from < MetricsRegistry::kTurnRows; ++from) {
    for (std::uint32_t to = 0; to < routing::kDirCount; ++to) {
      const std::uint64_t taken = metrics.turnTaken(from, to);
      const std::uint64_t blocked = metrics.turnBlockedCycles(from, to);
      if (taken == 0 && blocked == 0) continue;
      out << "{\"record\":\"turn\",\"from\":\"" << rowName(from)
          << "\",\"to\":\"" << rowName(to) << "\",\"taken\":" << taken
          << ",\"blockedCycles\":" << blocked << "}\n";
    }
  }
  for (std::uint32_t v = 0; v < metrics.nodeCount(); ++v) {
    const std::uint64_t blocked = metrics.nodeBlockedCycles(v);
    if (blocked == 0) continue;
    out << "{\"record\":\"node\",\"node\":" << v
        << ",\"level\":" << metrics.nodeLevel(v)
        << ",\"blockedCycles\":" << blocked << "}\n";
  }
  const auto channelFlits = metrics.channelFlits();
  for (std::uint32_t c = 0; c < metrics.channelCount(); ++c) {
    if (channelFlits[c] == 0) continue;
    out << "{\"record\":\"channel\",\"channel\":" << c;
    if (topo != nullptr) {
      out << ",\"src\":" << topo->channelSrc(c)
          << ",\"dst\":" << topo->channelDst(c);
    }
    out << ",\"flits\":" << channelFlits[c] << "}\n";
  }
}

namespace {

void writeEventJsonl(const PacketTracer::Event& event,
                     const topo::Topology* topo, std::ostream& out) {
  out << "{\"record\":\"event\",\"packet\":" << event.packet
      << ",\"cycle\":" << event.cycle << ",\"kind\":\""
      << toString(event.kind) << "\",\"node\":" << event.node;
  if (event.channel != PacketTracer::kNoChannel) {
    out << ",\"channel\":" << event.channel;
    if (topo != nullptr) out << ",\"to\":" << topo->channelDst(event.channel);
  }
  if (event.toDir != PacketTracer::kNoDir) {
    out << ",\"turn\":\"" << turnName(event.fromDir, event.toDir) << "\"";
  }
  if (event.kind == TraceEventKind::kBlocked) {
    out << ",\"waited\":" << event.value;
  }
  out << "}\n";
}

}  // namespace

void writeTraceJsonl(const PacketTracer& tracer, const topo::Topology* topo,
                     std::ostream& out) {
  out << "{\"record\":\"meta\",\"schema\":\"obs_trace/1\",\"gitRev\":\""
      << gitRevision() << "\",\"timestampUtc\":\"" << utcTimestamp()
      << "\",\"sampleEvery\":" << tracer.sampleEvery() << "}\n";
  for (const PacketTracer::PacketInfo& packet : tracer.packets()) {
    out << "{\"record\":\"packet\",\"packet\":" << packet.packet
        << ",\"src\":" << packet.src << ",\"dst\":" << packet.dst
        << ",\"genCycle\":" << packet.genCycle << "}\n";
  }
  for (const PacketTracer::Event& event : tracer.events()) {
    writeEventJsonl(event, topo, out);
  }
}

namespace {

/// Emits one trace_event object, handling the leading comma.
class ChromeEvents {
 public:
  explicit ChromeEvents(std::ostream& out) : out_(out) {}

  std::ostream& next() {
    out_ << (first_ ? "\n  " : ",\n  ");
    first_ = false;
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void writeChromeTrace(const PacketTracer& tracer, const topo::Topology* topo,
                      std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  ChromeEvents events(out);
  for (const PacketTracer::PacketInfo& packet : tracer.packets()) {
    events.next() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
                  << packet.packet << ",\"tid\":0,\"args\":{\"name\":\"packet "
                  << packet.packet << "  n" << packet.src << " -> n"
                  << packet.dst << "\"}}";
    events.next() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                  << packet.packet
                  << ",\"tid\":0,\"args\":{\"name\":\"hops\"}}";
    events.next() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                  << packet.packet
                  << ",\"tid\":1,\"args\":{\"name\":\"stalls\"}}";

    const std::vector<PacketTracer::Event> lifecycle =
        tracer.packetEvents(packet.packet);
    for (std::size_t i = 0; i < lifecycle.size(); ++i) {
      const PacketTracer::Event& event = lifecycle[i];
      switch (event.kind) {
        case TraceEventKind::kVcAllocated: {
          // The hop span runs from this claim to the next claim (or the
          // ejection); consecutive hops tile the packet's timeline.
          std::uint64_t end = event.cycle + 1;
          for (std::size_t j = i + 1; j < lifecycle.size(); ++j) {
            if (lifecycle[j].kind == TraceEventKind::kVcAllocated ||
                lifecycle[j].kind == TraceEventKind::kEjected) {
              end = lifecycle[j].cycle;
              break;
            }
          }
          std::ostream& o = events.next();
          o << "{\"name\":\"";
          if (event.channel == PacketTracer::kNoChannel) {
            o << "eject @n" << event.node;
          } else {
            o << "n" << event.node << " -> n"
              << (topo != nullptr ? topo->channelDst(event.channel)
                                  : event.channel);
            if (event.toDir != PacketTracer::kNoDir) {
              o << " [" << turnName(event.fromDir, event.toDir) << "]";
            }
          }
          o << "\",\"ph\":\"X\",\"pid\":" << event.packet
            << ",\"tid\":0,\"ts\":" << event.cycle << ",\"dur\":"
            << (end > event.cycle ? end - event.cycle : 1)
            << ",\"args\":{\"node\":" << event.node;
          if (event.channel != PacketTracer::kNoChannel) {
            o << ",\"channel\":" << event.channel;
          }
          o << "}}";
          break;
        }
        case TraceEventKind::kBlocked:
          events.next() << "{\"name\":\"blocked\",\"ph\":\"X\",\"pid\":"
                        << event.packet << ",\"tid\":1,\"ts\":"
                        << event.cycle - event.value << ",\"dur\":"
                        << event.value << ",\"args\":{\"node\":" << event.node
                        << ",\"waited\":" << event.value << "}}";
          break;
        case TraceEventKind::kGenerated:
        case TraceEventKind::kInjected:
        case TraceEventKind::kEjected:
        case TraceEventKind::kDropped:
          events.next() << "{\"name\":\"" << toString(event.kind)
                        << "\",\"ph\":\"i\",\"s\":\"p\",\"pid\":"
                        << event.packet << ",\"tid\":0,\"ts\":" << event.cycle
                        << ",\"args\":{\"node\":" << event.node << "}}";
          break;
        case TraceEventKind::kChannelCrossed:
          // Covered by the hop span; skip to keep the timeline readable.
          break;
      }
    }
  }
  out << "\n]}\n";
}

}  // namespace downup::obs
