#include "obs/export.hpp"

#include <cstdio>
#include <ctime>
#include <ostream>
#include <string_view>

namespace downup::obs {

namespace {

std::string_view rowName(std::uint32_t row) {
  if (row >= routing::kDirCount) return "INJECT";
  return routing::toString(static_cast<routing::Dir>(row));
}

std::string turnName(std::uint32_t fromRow, std::uint32_t toDir) {
  std::string name(rowName(fromRow));
  name += "->";
  name += rowName(toDir);
  return name;
}

}  // namespace

std::string gitRevision() {
  std::string rev;
  if (std::FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buffer[64];
    if (std::fgets(buffer, sizeof buffer, pipe) != nullptr) rev = buffer;
    pclose(pipe);
  }
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

std::string utcTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

void writeMetricsJsonl(const MetricsRegistry& metrics,
                       const topo::Topology* topo,
                       std::uint64_t measuredCycles, std::ostream& out) {
  out << "{\"record\":\"meta\",\"schema\":\"obs_metrics/1\",\"gitRev\":\""
      << gitRevision() << "\",\"timestampUtc\":\"" << utcTimestamp()
      << "\",\"nodes\":" << metrics.nodeCount()
      << ",\"channels\":" << metrics.channelCount()
      << ",\"levels\":" << metrics.levelCount()
      << ",\"measuredCycles\":" << measuredCycles << "}\n";
  const auto levelFlits = metrics.levelFlits();
  const auto levelBlocked = metrics.levelBlockedCycles();
  const auto population = metrics.levelPopulation();
  for (std::uint32_t l = 0; l < metrics.levelCount(); ++l) {
    out << "{\"record\":\"level\",\"level\":" << l
        << ",\"nodes\":" << population[l] << ",\"flits\":" << levelFlits[l]
        << ",\"blockedCycles\":" << levelBlocked[l] << "}\n";
  }
  for (std::uint32_t from = 0; from < MetricsRegistry::kTurnRows; ++from) {
    for (std::uint32_t to = 0; to < routing::kDirCount; ++to) {
      const std::uint64_t taken = metrics.turnTaken(from, to);
      const std::uint64_t blocked = metrics.turnBlockedCycles(from, to);
      if (taken == 0 && blocked == 0) continue;
      out << "{\"record\":\"turn\",\"from\":\"" << rowName(from)
          << "\",\"to\":\"" << rowName(to) << "\",\"taken\":" << taken
          << ",\"blockedCycles\":" << blocked << "}\n";
    }
  }
  for (std::uint32_t v = 0; v < metrics.nodeCount(); ++v) {
    const std::uint64_t blocked = metrics.nodeBlockedCycles(v);
    if (blocked == 0) continue;
    out << "{\"record\":\"node\",\"node\":" << v
        << ",\"level\":" << metrics.nodeLevel(v)
        << ",\"blockedCycles\":" << blocked << "}\n";
  }
  const auto channelFlits = metrics.channelFlits();
  for (std::uint32_t c = 0; c < metrics.channelCount(); ++c) {
    if (channelFlits[c] == 0) continue;
    out << "{\"record\":\"channel\",\"channel\":" << c;
    if (topo != nullptr) {
      out << ",\"src\":" << topo->channelSrc(c)
          << ",\"dst\":" << topo->channelDst(c);
    }
    out << ",\"flits\":" << channelFlits[c] << "}\n";
  }
}

namespace {

void writeEventJsonl(const PacketTracer::Event& event,
                     const topo::Topology* topo, std::ostream& out) {
  out << "{\"record\":\"event\",\"packet\":" << event.packet
      << ",\"cycle\":" << event.cycle << ",\"kind\":\""
      << toString(event.kind) << "\",\"node\":" << event.node;
  if (event.channel != PacketTracer::kNoChannel) {
    out << ",\"channel\":" << event.channel;
    if (topo != nullptr) out << ",\"to\":" << topo->channelDst(event.channel);
  }
  if (event.toDir != PacketTracer::kNoDir) {
    out << ",\"turn\":\"" << turnName(event.fromDir, event.toDir) << "\"";
  }
  if (event.kind == TraceEventKind::kBlocked) {
    out << ",\"waited\":" << event.value;
  }
  out << "}\n";
}

}  // namespace

void writeTraceJsonl(const PacketTracer& tracer, const topo::Topology* topo,
                     std::ostream& out) {
  out << "{\"record\":\"meta\",\"schema\":\"obs_trace/1\",\"gitRev\":\""
      << gitRevision() << "\",\"timestampUtc\":\"" << utcTimestamp()
      << "\",\"sampleEvery\":" << tracer.sampleEvery() << "}\n";
  for (const PacketTracer::PacketInfo& packet : tracer.packets()) {
    out << "{\"record\":\"packet\",\"packet\":" << packet.packet
        << ",\"src\":" << packet.src << ",\"dst\":" << packet.dst
        << ",\"genCycle\":" << packet.genCycle << "}\n";
  }
  for (const PacketTracer::Event& event : tracer.events()) {
    writeEventJsonl(event, topo, out);
  }
}

namespace {

/// Emits one trace_event object, handling the leading comma.
class ChromeEvents {
 public:
  explicit ChromeEvents(std::ostream& out) : out_(out) {}

  std::ostream& next() {
    out_ << (first_ ? "\n  " : ",\n  ");
    first_ = false;
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void writeTimeSeriesCsv(const TimeSeriesCollector& series, std::ostream& out) {
  out << "window_start,window_end,generated_packets,injected_flits,"
         "channel_flits,ejected_flits,ejected_packets,blocked_cycles,"
         "dropped_packets,degraded_cycles,lat_count,lat_mean,lat_min,"
         "lat_max,lat_p50,lat_p95,lat_p99";
  for (std::uint32_t l = 0; l < series.levelCount(); ++l) {
    out << ",level" << l << "_flits,level" << l << "_blocked_cycles";
  }
  out << '\n';
  for (std::size_t i = 0; i < series.windowCount(); ++i) {
    const TimeSeriesCollector::Window& w = series.window(i);
    out << w.startCycle << ',' << w.endCycle << ',' << w.generatedPackets
        << ',' << w.injectedFlits << ',' << w.channelFlits << ','
        << w.ejectedFlits << ',' << w.ejectedPackets << ',' << w.blockedCycles
        << ',' << w.droppedPackets << ',' << w.degradedCycles << ','
        << w.latency.count << ',' << w.latency.mean << ',' << w.latency.min
        << ',' << w.latency.max << ',' << w.latency.p50 << ','
        << w.latency.p95 << ',' << w.latency.p99;
    for (std::uint32_t l = 0; l < series.levelCount(); ++l) {
      const std::uint64_t flits =
          l < w.levelFlits.size() ? w.levelFlits[l] : 0;
      const std::uint64_t blocked =
          l < w.levelBlockedCycles.size() ? w.levelBlockedCycles[l] : 0;
      out << ',' << flits << ',' << blocked;
    }
    out << '\n';
  }
}

void writeTimeSeriesJsonl(const TimeSeriesCollector& series,
                          const WaitForSampler* waitfor, std::ostream& out) {
  out << "{\"record\":\"meta\",\"schema\":\"obs_timeseries/1\",\"gitRev\":\""
      << gitRevision() << "\",\"timestampUtc\":\"" << utcTimestamp()
      << "\",\"nodes\":" << series.nodeCount()
      << ",\"channels\":" << series.channelCount()
      << ",\"levels\":" << series.levelCount()
      << ",\"windowCycles\":" << series.windowCycles()
      << ",\"windowsClosed\":" << series.windowsClosed()
      << ",\"windowsRetained\":" << series.windowCount()
      << ",\"perChannel\":" << (series.perChannel() ? "true" : "false")
      << "}\n";
  for (std::size_t i = 0; i < series.windowCount(); ++i) {
    const TimeSeriesCollector::Window& w = series.window(i);
    out << "{\"record\":\"window\",\"start\":" << w.startCycle
        << ",\"end\":" << w.endCycle << ",\"generated\":" << w.generatedPackets
        << ",\"injectedFlits\":" << w.injectedFlits
        << ",\"channelFlits\":" << w.channelFlits
        << ",\"ejectedFlits\":" << w.ejectedFlits
        << ",\"ejectedPackets\":" << w.ejectedPackets
        << ",\"blockedCycles\":" << w.blockedCycles
        << ",\"droppedPackets\":" << w.droppedPackets
        << ",\"degradedCycles\":" << w.degradedCycles
        << ",\"latency\":{\"count\":" << w.latency.count
        << ",\"mean\":" << w.latency.mean << ",\"min\":" << w.latency.min
        << ",\"max\":" << w.latency.max << ",\"p50\":" << w.latency.p50
        << ",\"p95\":" << w.latency.p95 << ",\"p99\":" << w.latency.p99
        << "},\"levelFlits\":[";
    for (std::size_t l = 0; l < w.levelFlits.size(); ++l) {
      out << (l == 0 ? "" : ",") << w.levelFlits[l];
    }
    out << "],\"levelBlockedCycles\":[";
    for (std::size_t l = 0; l < w.levelBlockedCycles.size(); ++l) {
      out << (l == 0 ? "" : ",") << w.levelBlockedCycles[l];
    }
    out << ']';
    if (!w.channelFlitsPerChannel.empty()) {
      out << ",\"channelFlits_perChannel\":[";
      for (std::size_t c = 0; c < w.channelFlitsPerChannel.size(); ++c) {
        out << (c == 0 ? "" : ",") << w.channelFlitsPerChannel[c];
      }
      out << ']';
    }
    out << "}\n";
  }
  for (const auto& event : series.reconfigEvents()) {
    out << "{\"record\":\"reconfig\",\"faultCycle\":" << event.faultCycle;
    if (event.pending()) {
      out << ",\"swapCycle\":null";
    } else {
      out << ",\"swapCycle\":" << event.swapCycle;
    }
    out << ",\"incremental\":" << (event.incremental ? "true" : "false")
        << ",\"destinationsRebuilt\":" << event.destinationsRebuilt
        << ",\"unreachablePairs\":" << event.unreachablePairs << "}\n";
  }
  if (waitfor != nullptr) {
    out << "{\"record\":\"waitfor_summary\",\"samplePeriod\":"
        << waitfor->samplePeriod() << ",\"samples\":" << waitfor->samples()
        << ",\"blockedHeadersTotal\":" << waitfor->blockedHeadersTotal()
        << ",\"blockedHeadersPeak\":" << waitfor->blockedHeadersPeak()
        << ",\"holdEdges\":" << waitfor->holdEdgesTotal()
        << ",\"requestEdges\":" << waitfor->requestEdgesTotal()
        << ",\"partialRequests\":" << waitfor->partialRequestsTotal()
        << ",\"cycleSamples\":" << waitfor->cycleSamples()
        << ",\"cyclesAreHard\":" << (waitfor->cyclesAreHard() ? "true" : "false")
        << ",\"standingStalls\":" << waitfor->standingStallsTotal()
        << ",\"witnessCycle\":[";
    const auto witness = waitfor->witnessCycle();
    for (std::size_t i = 0; i < witness.size(); ++i) {
      out << (i == 0 ? "" : ",") << witness[i];
    }
    out << "]}\n";
    // Standing-stall attribution cells, zero rows omitted.
    for (NodeId v = 0; v < waitfor->nodeCount(); ++v) {
      for (std::uint32_t from = 0; from < routing::kDirCount; ++from) {
        for (std::uint32_t to = 0; to < routing::kDirCount; ++to) {
          const std::uint64_t stalls = waitfor->standingStalls(v, from, to);
          if (stalls == 0) continue;
          out << "{\"record\":\"standing_stall\",\"node\":" << v
              << ",\"turn\":\"" << turnName(from, to)
              << "\",\"samples\":" << stalls << "}\n";
        }
      }
    }
  }
}

void writeChromeTrace(const PacketTracer& tracer, const topo::Topology* topo,
                      std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  ChromeEvents events(out);
  for (const PacketTracer::PacketInfo& packet : tracer.packets()) {
    events.next() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
                  << packet.packet << ",\"tid\":0,\"args\":{\"name\":\"packet "
                  << packet.packet << "  n" << packet.src << " -> n"
                  << packet.dst << "\"}}";
    events.next() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                  << packet.packet
                  << ",\"tid\":0,\"args\":{\"name\":\"hops\"}}";
    events.next() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                  << packet.packet
                  << ",\"tid\":1,\"args\":{\"name\":\"stalls\"}}";

    const std::vector<PacketTracer::Event> lifecycle =
        tracer.packetEvents(packet.packet);
    for (std::size_t i = 0; i < lifecycle.size(); ++i) {
      const PacketTracer::Event& event = lifecycle[i];
      switch (event.kind) {
        case TraceEventKind::kVcAllocated: {
          // The hop span runs from this claim to the next claim (or the
          // ejection); consecutive hops tile the packet's timeline.
          std::uint64_t end = event.cycle + 1;
          for (std::size_t j = i + 1; j < lifecycle.size(); ++j) {
            if (lifecycle[j].kind == TraceEventKind::kVcAllocated ||
                lifecycle[j].kind == TraceEventKind::kEjected) {
              end = lifecycle[j].cycle;
              break;
            }
          }
          std::ostream& o = events.next();
          o << "{\"name\":\"";
          if (event.channel == PacketTracer::kNoChannel) {
            o << "eject @n" << event.node;
          } else {
            o << "n" << event.node << " -> n"
              << (topo != nullptr ? topo->channelDst(event.channel)
                                  : event.channel);
            if (event.toDir != PacketTracer::kNoDir) {
              o << " [" << turnName(event.fromDir, event.toDir) << "]";
            }
          }
          o << "\",\"ph\":\"X\",\"pid\":" << event.packet
            << ",\"tid\":0,\"ts\":" << event.cycle << ",\"dur\":"
            << (end > event.cycle ? end - event.cycle : 1)
            << ",\"args\":{\"node\":" << event.node;
          if (event.channel != PacketTracer::kNoChannel) {
            o << ",\"channel\":" << event.channel;
          }
          o << "}}";
          break;
        }
        case TraceEventKind::kBlocked:
          events.next() << "{\"name\":\"blocked\",\"ph\":\"X\",\"pid\":"
                        << event.packet << ",\"tid\":1,\"ts\":"
                        << event.cycle - event.value << ",\"dur\":"
                        << event.value << ",\"args\":{\"node\":" << event.node
                        << ",\"waited\":" << event.value << "}}";
          break;
        case TraceEventKind::kGenerated:
        case TraceEventKind::kInjected:
        case TraceEventKind::kEjected:
        case TraceEventKind::kDropped:
          events.next() << "{\"name\":\"" << toString(event.kind)
                        << "\",\"ph\":\"i\",\"s\":\"p\",\"pid\":"
                        << event.packet << ",\"tid\":0,\"ts\":" << event.cycle
                        << ",\"args\":{\"node\":" << event.node << "}}";
          break;
        case TraceEventKind::kChannelCrossed:
          // Covered by the hop span; skip to keep the timeline readable.
          break;
      }
    }
  }
  out << "\n]}\n";
}

void writeTimeSeriesChromeTrace(const TimeSeriesCollector& series,
                                std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  ChromeEvents events(out);
  events.next() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                   "\"tid\":0,\"args\":{\"name\":\"network time series\"}}";
  // One counter sample per window, stamped at the window start; Perfetto
  // draws each track as a step function over the run.
  for (std::size_t i = 0; i < series.windowCount(); ++i) {
    const TimeSeriesCollector::Window& w = series.window(i);
    const double len = static_cast<double>(w.endCycle - w.startCycle);
    const auto rate = [len](std::uint64_t count) {
      return len == 0.0 ? 0.0 : static_cast<double>(count) / len;
    };
    events.next() << "{\"name\":\"flit rate (per cycle)\",\"ph\":\"C\","
                     "\"pid\":0,\"ts\":"
                  << w.startCycle << ",\"args\":{\"injected\":"
                  << rate(w.injectedFlits)
                  << ",\"ejected\":" << rate(w.ejectedFlits) << "}}";
    events.next() << "{\"name\":\"latency (cycles)\",\"ph\":\"C\",\"pid\":0,"
                     "\"ts\":"
                  << w.startCycle << ",\"args\":{\"p50\":" << w.latency.p50
                  << ",\"p99\":" << w.latency.p99 << "}}";
    events.next() << "{\"name\":\"blocked cycles\",\"ph\":\"C\",\"pid\":0,"
                     "\"ts\":"
                  << w.startCycle << ",\"args\":{\"blocked\":"
                  << w.blockedCycles << "}}";
    events.next() << "{\"name\":\"drops\",\"ph\":\"C\",\"pid\":0,\"ts\":"
                  << w.startCycle << ",\"args\":{\"dropped\":"
                  << w.droppedPackets << "}}";
    std::ostream& o = events.next();
    o << "{\"name\":\"level flits\",\"ph\":\"C\",\"pid\":0,\"ts\":"
      << w.startCycle << ",\"args\":{";
    for (std::size_t l = 0; l < w.levelFlits.size(); ++l) {
      o << (l == 0 ? "" : ",") << "\"L" << l << "\":" << w.levelFlits[l];
    }
    o << "}}";
  }
  for (const auto& event : series.reconfigEvents()) {
    events.next() << "{\"name\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,"
                     "\"tid\":0,\"ts\":"
                  << event.faultCycle << ",\"args\":{}}";
    if (event.pending()) continue;
    events.next() << "{\"name\":\"reconfiguration"
                  << (event.incremental ? " (incremental)" : " (full)")
                  << "\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":"
                  << event.faultCycle << ",\"dur\":"
                  << (event.swapCycle > event.faultCycle
                          ? event.swapCycle - event.faultCycle
                          : 1)
                  << ",\"args\":{\"destinationsRebuilt\":"
                  << event.destinationsRebuilt << ",\"unreachablePairs\":"
                  << event.unreachablePairs << "}}";
  }
  out << "\n]}\n";
}

}  // namespace downup::obs
