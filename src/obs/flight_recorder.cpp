#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

#include "obs/export.hpp"

namespace downup::obs {

const char* toString(FabricEventKind kind) noexcept {
  switch (kind) {
    case FabricEventKind::kTransitionPosted: return "transition_posted";
    case FabricEventKind::kWindowOpened: return "window_opened";
    case FabricEventKind::kWindowExtended: return "window_extended";
    case FabricEventKind::kRebuildStarted: return "rebuild_started";
    case FabricEventKind::kRebuildFinished: return "rebuild_finished";
    case FabricEventKind::kRebuildSkipped: return "rebuild_skipped";
    case FabricEventKind::kPublish: return "publish";
    case FabricEventKind::kReclaim: return "reclaim";
    case FabricEventKind::kAnomaly: return "anomaly";
  }
  return "?";
}

const char* toString(AnomalyCode code) noexcept {
  switch (code) {
    case AnomalyCode::kUnverifiedRouting: return "unverified_routing";
    case AnomalyCode::kWaitForHardCycle: return "waitfor_hard_cycle";
    case AnomalyCode::kOracleViolation: return "oracle_violation";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()) {
  std::size_t pow2 = 1;
  while (pow2 < capacity) pow2 <<= 1;
  slots_backing_ = std::make_unique<Slot[]>(pow2);
  slots_ = {slots_backing_.get(), pow2};
  mask_ = pow2 - 1;
}

void FlightRecorder::record(FabricEventKind kind, std::uint64_t cycle,
                            std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) noexcept {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Mark busy (even stamp) so a concurrent dump discards the slot, fill
  // the payload with relaxed stores, then publish (odd stamp, release) so
  // a reader that sees the published stamp also sees every payload store.
  slot.stamp.store(ticket << 1, std::memory_order_release);
  slot.timeNs.store(nowNs(), std::memory_order_relaxed);
  slot.cycle.store(cycle, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.stamp.store((ticket << 1) | 1, std::memory_order_release);
}

std::size_t FlightRecorder::dump(std::vector<FabricEvent>& out) const {
  out.clear();
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t stamp1 = slot.stamp.load(std::memory_order_acquire);
    if ((stamp1 & 1) == 0) continue;  // never published or mid-write
    FabricEvent event;
    event.seq = stamp1 >> 1;
    event.timeNs = slot.timeNs.load(std::memory_order_relaxed);
    event.cycle = slot.cycle.load(std::memory_order_relaxed);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    event.c = slot.c.load(std::memory_order_relaxed);
    event.kind =
        static_cast<FabricEventKind>(slot.kind.load(std::memory_order_relaxed));
    // A concurrent writer may have overwritten the slot mid-copy; the
    // payload loads cannot tear individually (atomics), and the stamp
    // re-check rejects a mixed-generation copy.
    if (slot.stamp.load(std::memory_order_acquire) != stamp1) continue;
    out.push_back(event);
  }
  std::sort(out.begin(), out.end(),
            [](const FabricEvent& x, const FabricEvent& y) {
              return x.seq < y.seq;
            });
  return out.size();
}

void FlightRecorder::writeJsonl(std::ostream& out) const {
  std::vector<FabricEvent> events;
  dump(events);
  out << "{\"record\":\"meta\",\"schema\":\"obs_flight/1\",\"gitRev\":\""
      << gitRevision() << "\",\"timestampUtc\":\"" << utcTimestamp()
      << "\",\"capacity\":" << capacity() << ",\"recorded\":" << recorded()
      << ",\"dumped\":" << events.size() << "}\n";
  for (const FabricEvent& event : events) {
    out << "{\"record\":\"event\",\"seq\":" << event.seq
        << ",\"timeNs\":" << event.timeNs << ",\"cycle\":" << event.cycle
        << ",\"kind\":\"" << toString(event.kind) << "\",\"a\":" << event.a
        << ",\"b\":" << event.b << ",\"c\":" << event.c;
    if (event.kind == FabricEventKind::kAnomaly) {
      out << ",\"anomaly\":\""
          << toString(static_cast<AnomalyCode>(event.a)) << "\"";
    }
    out << "}\n";
  }
}

}  // namespace downup::obs
