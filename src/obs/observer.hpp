// The observability bundle a simulation run attaches to: an optional
// metrics registry, an optional sampled packet tracer and an optional phase
// profiler, sized for one topology and handed to the engine as a single
// non-owning pointer (SimConfig::observer).
//
// The engine caches one raw pointer per component at construction and
// guards every hook with a null check, so a run without an observer pays a
// handful of never-taken branches and nothing else — golden runs are
// bit-for-bit identical either way (hooks never draw RNG or alter
// scheduling, so they are bit-for-bit identical even when enabled).
//
// An Observer must not be shared between concurrently running simulations
// (its components are single-writer); parallel sweeps use one Observer per
// run and MetricsRegistry::mergeFrom to fold results.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/waitfor.hpp"
#include "topology/topology.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::obs {

struct ObsOptions {
  /// Collect the metrics registry (turn usage, blocked-cycle attribution,
  /// root-distance histograms, per-channel flits).
  bool metrics = false;
  /// Trace every Nth packet's per-hop lifecycle; 0 disables tracing.
  std::uint32_t traceSampleEvery = 0;
  /// Time the engine phases with steady_clock.
  bool profilePhases = false;
  /// Windowed time-series flight recorder (obs/timeseries.hpp): bucket the
  /// run into windows of this many cycles; 0 disables.
  std::uint32_t timeseriesWindowCycles = 0;
  /// Ring capacity of the time series (most recent windows retained).
  std::uint32_t timeseriesMaxWindows = 4096;
  /// Record per-channel flit counts per window (memory: channels x ring).
  bool timeseriesPerChannel = false;
  /// Wait-for-graph deadlock-risk sampling (obs/waitfor.hpp): walk blocked
  /// worms' channel dependencies every this many cycles; 0 disables.
  std::uint32_t waitForSamplePeriod = 0;
  /// Record control-plane rebuild spans (obs/span.hpp): the engine hands
  /// the recorder to its internal FabricManager, so every reconfiguration
  /// epoch traces its pipeline stages.  Export with writeSpansJsonl /
  /// writeSpansChromeTrace.
  bool controlPlaneSpans = false;
};

class Observer {
 public:
  /// Sizes the enabled components for `topo`.  When `ct` is given, the
  /// metrics registry buckets nodes by tree level Y(v) and channels by
  /// min(Y(src), Y(dst)); otherwise everything lands in level 0.
  /// The wait-for sampler is additionally sized for `vcCount` virtual
  /// channels per physical channel (SimConfig::vcCount; the default matches
  /// the simulator's default).
  Observer(const ObsOptions& options, const topo::Topology& topo,
           const tree::CoordinatedTree* ct = nullptr,
           std::uint32_t vcCount = 1);

  /// Engine handshake: throws std::invalid_argument when the observer was
  /// sized for a different topology.
  void attach(std::uint32_t nodeCount, std::uint32_t channelCount) const;

  MetricsRegistry* metrics() noexcept { return metrics_.get(); }
  const MetricsRegistry* metrics() const noexcept { return metrics_.get(); }
  PacketTracer* tracer() noexcept { return tracer_.get(); }
  const PacketTracer* tracer() const noexcept { return tracer_.get(); }
  PhaseProfiler* profiler() noexcept { return profiler_.get(); }
  const PhaseProfiler* profiler() const noexcept { return profiler_.get(); }
  TimeSeriesCollector* timeseries() noexcept { return timeseries_.get(); }
  const TimeSeriesCollector* timeseries() const noexcept {
    return timeseries_.get();
  }
  WaitForSampler* waitFor() noexcept { return waitfor_.get(); }
  const WaitForSampler* waitFor() const noexcept { return waitfor_.get(); }
  SpanRecorder* controlPlaneSpans() noexcept {
    return controlPlaneSpans_.get();
  }
  const SpanRecorder* controlPlaneSpans() const noexcept {
    return controlPlaneSpans_.get();
  }

  /// Clears every enabled component (reuse across sweep samples).
  void reset();

 private:
  std::uint32_t nodeCount_;
  std::uint32_t channelCount_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<PacketTracer> tracer_;
  std::unique_ptr<PhaseProfiler> profiler_;
  std::unique_ptr<TimeSeriesCollector> timeseries_;
  std::unique_ptr<WaitForSampler> waitfor_;
  std::unique_ptr<SpanRecorder> controlPlaneSpans_;
};

}  // namespace downup::obs
