#include "obs/phase_profiler.hpp"

#include <iomanip>
#include <ostream>

namespace downup::obs {

const char* PhaseProfiler::toString(Phase phase) noexcept {
  switch (phase) {
    case kFlowControl: return "flow_control";
    case kTraffic: return "traffic";
    case kAllocation: return "allocation";
    case kArbitration: return "arbitration";
    case kPhaseCount: break;
  }
  return "unknown";
}

std::uint64_t PhaseProfiler::totalNanos() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t n : nanos_) total += n;
  return total;
}

void PhaseProfiler::report(std::ostream& out) const {
  const double total = static_cast<double>(totalNanos());
  const double cycles = static_cast<double>(cycles_ == 0 ? 1 : cycles_);
  out << "phase profile (" << cycles_ << " cycles):\n";
  for (std::uint8_t p = 0; p < kPhaseCount; ++p) {
    const auto phase = static_cast<Phase>(p);
    const double nanos = static_cast<double>(nanos_[p]);
    out << "  " << std::left << std::setw(14) << toString(phase)
        << std::right << std::fixed << std::setprecision(2) << std::setw(10)
        << nanos / 1e6 << " ms  " << std::setw(5) << std::setprecision(1)
        << (total > 0.0 ? 100.0 * nanos / total : 0.0) << "%  "
        << std::setw(8) << std::setprecision(1) << nanos / cycles
        << " ns/cycle\n";
  }
}

}  // namespace downup::obs
