#include "obs/phase_profiler.hpp"

#include <iomanip>
#include <ostream>

namespace downup::obs {

namespace {

// Aggregate slot names (the "phase/" prefix keeps engine phases apart from
// any fabric-stage aggregates sharing the recorder).
constexpr std::array<const char*, PhaseProfiler::kPhaseCount> kSlotNames = {
    "phase/flow_control",
    "phase/traffic",
    "phase/allocation",
    "phase/arbitration",
};

}  // namespace

const char* PhaseProfiler::toString(Phase phase) noexcept {
  switch (phase) {
    case kFlowControl: return "flow_control";
    case kTraffic: return "traffic";
    case kAllocation: return "allocation";
    case kArbitration: return "arbitration";
    case kPhaseCount: break;
  }
  return "unknown";
}

PhaseProfiler::PhaseProfiler(util::SpanRecorder* recorder)
    : owned_(recorder == nullptr ? std::make_unique<util::SpanRecorder>()
                                 : nullptr),
      recorder_(recorder != nullptr ? recorder : owned_.get()) {
  for (std::uint8_t p = 0; p < kPhaseCount; ++p) {
    ids_[p] = recorder_->registerAggregate(kSlotNames[p]);
  }
}

util::PerfCounts PhaseProfiler::phaseCounts(Phase phase) const {
  for (const util::SpanRecorder::Aggregate& agg : recorder_->aggregates()) {
    if (agg.name == kSlotNames[phase]) return agg.counters;
  }
  return {};
}

std::uint64_t PhaseProfiler::totalNanos() const noexcept {
  std::uint64_t total = 0;
  for (std::uint8_t p = 0; p < kPhaseCount; ++p) {
    total += recorder_->aggregateNs(ids_[p]);
  }
  return total;
}

void PhaseProfiler::reset() noexcept {
  for (std::uint8_t p = 0; p < kPhaseCount; ++p) {
    recorder_->resetAggregate(ids_[p]);
  }
  cycles_ = 0;
}

void PhaseProfiler::report(std::ostream& out) const {
  const double total = static_cast<double>(totalNanos());
  const double cycles = static_cast<double>(cycles_ == 0 ? 1 : cycles_);
  // Counter columns appear only when the counted path actually ran — the
  // plain report stays byte-identical to the pre-counter format.
  std::array<util::PerfCounts, kPhaseCount> counts;
  bool anyCounts = false;
  for (std::uint8_t p = 0; p < kPhaseCount; ++p) {
    counts[p] = phaseCounts(static_cast<Phase>(p));
    anyCounts = anyCounts || !counts[p].empty();
  }
  out << "phase profile (" << cycles_ << " cycles):\n";
  for (std::uint8_t p = 0; p < kPhaseCount; ++p) {
    const auto phase = static_cast<Phase>(p);
    const double nanos = static_cast<double>(phaseNanos(phase));
    out << "  " << std::left << std::setw(14) << toString(phase)
        << std::right << std::fixed << std::setprecision(2) << std::setw(10)
        << nanos / 1e6 << " ms  " << std::setw(5) << std::setprecision(1)
        << (total > 0.0 ? 100.0 * nanos / total : 0.0) << "%  "
        << std::setw(8) << std::setprecision(1) << nanos / cycles
        << " ns/cycle";
    if (anyCounts) {
      out << "  ipc ";
      if (counts[p].ipc() >= 0) {
        out << std::setprecision(2) << counts[p].ipc();
      } else {
        out << "-";
      }
      out << "  miss ";
      if (counts[p].cacheMissRate() >= 0) {
        out << std::setprecision(3) << counts[p].cacheMissRate();
      } else {
        out << "-";
      }
    }
    out << "\n";
  }
}

}  // namespace downup::obs
