#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace downup::obs {

MetricsRegistry::MetricsRegistry(std::uint32_t nodeCount,
                                 std::uint32_t channelCount)
    : nodeCount_(nodeCount),
      nodeLevel_(nodeCount, 0),
      channelLevel_(channelCount, 0),
      levelPopulation_(1, nodeCount),
      turnTaken_(kTurnCells, 0),
      blockedNodeTurn_(static_cast<std::size_t>(nodeCount) * kTurnCells, 0),
      channelFlits_(channelCount, 0),
      levelFlits_(1, 0),
      levelBlockedCycles_(1, 0),
      nodeDrops_(nodeCount, 0) {}

void MetricsRegistry::setLevels(std::span<const std::uint32_t> nodeLevel,
                                std::span<const std::uint32_t> channelLevel) {
  if (nodeLevel.size() != nodeLevel_.size() ||
      channelLevel.size() != channelLevel_.size()) {
    throw std::invalid_argument("MetricsRegistry::setLevels: size mismatch");
  }
  nodeLevel_.assign(nodeLevel.begin(), nodeLevel.end());
  channelLevel_.assign(channelLevel.begin(), channelLevel.end());
  std::uint32_t levels = 1;
  for (std::uint32_t l : nodeLevel_) levels = std::max(levels, l + 1);
  for (std::uint32_t l : channelLevel_) levels = std::max(levels, l + 1);
  levelPopulation_.assign(levels, 0);
  for (std::uint32_t l : nodeLevel_) ++levelPopulation_[l];
  levelFlits_.assign(levels, 0);
  levelBlockedCycles_.assign(levels, 0);
}

std::uint64_t MetricsRegistry::turnBlockedCycles(std::uint32_t fromRow,
                                                 std::uint32_t toDir) const {
  const std::uint32_t turn = fromRow * routing::kDirCount + toDir;
  std::uint64_t total = 0;
  for (std::uint32_t v = 0; v < nodeCount_; ++v) {
    total += blockedNodeTurn_[static_cast<std::size_t>(v) * kTurnCells + turn];
  }
  return total;
}

std::uint64_t MetricsRegistry::nodeBlockedCycles(NodeId v) const {
  const std::uint64_t* row =
      blockedNodeTurn_.data() + static_cast<std::size_t>(v) * kTurnCells;
  std::uint64_t total = 0;
  for (std::uint32_t t = 0; t < kTurnCells; ++t) total += row[t];
  return total;
}

std::uint64_t MetricsRegistry::totalBlockedCycles() const {
  std::uint64_t total = 0;
  for (std::uint64_t x : blockedNodeTurn_) total += x;
  return total;
}

std::uint64_t MetricsRegistry::totalTurnsTaken() const {
  std::uint64_t total = 0;
  for (std::uint64_t x : turnTaken_) total += x;
  return total;
}

std::uint64_t MetricsRegistry::totalDrops() const {
  std::uint64_t total = 0;
  for (std::uint64_t x : nodeDrops_) total += x;
  return total;
}

std::vector<double> MetricsRegistry::channelUtilization(
    std::uint64_t measuredCycles) const {
  const double cycles =
      static_cast<double>(std::max<std::uint64_t>(1, measuredCycles));
  std::vector<double> utilization(channelFlits_.size());
  for (std::size_t c = 0; c < channelFlits_.size(); ++c) {
    utilization[c] = static_cast<double>(channelFlits_[c]) / cycles;
  }
  return utilization;
}

void MetricsRegistry::reset() {
  std::fill(turnTaken_.begin(), turnTaken_.end(), 0);
  std::fill(blockedNodeTurn_.begin(), blockedNodeTurn_.end(), 0);
  std::fill(channelFlits_.begin(), channelFlits_.end(), 0);
  std::fill(levelFlits_.begin(), levelFlits_.end(), 0);
  std::fill(levelBlockedCycles_.begin(), levelBlockedCycles_.end(), 0);
  std::fill(nodeDrops_.begin(), nodeDrops_.end(), 0);
}

void MetricsRegistry::mergeFrom(const MetricsRegistry& other) {
  if (other.nodeCount_ != nodeCount_ ||
      other.channelFlits_.size() != channelFlits_.size() ||
      other.levelFlits_.size() != levelFlits_.size()) {
    throw std::invalid_argument("MetricsRegistry::mergeFrom: shape mismatch");
  }
  const std::lock_guard<std::mutex> lock(mergeMutex_);
  for (std::size_t i = 0; i < turnTaken_.size(); ++i) {
    turnTaken_[i] += other.turnTaken_[i];
  }
  for (std::size_t i = 0; i < blockedNodeTurn_.size(); ++i) {
    blockedNodeTurn_[i] += other.blockedNodeTurn_[i];
  }
  for (std::size_t i = 0; i < channelFlits_.size(); ++i) {
    channelFlits_[i] += other.channelFlits_[i];
  }
  for (std::size_t i = 0; i < levelFlits_.size(); ++i) {
    levelFlits_[i] += other.levelFlits_[i];
    levelBlockedCycles_[i] += other.levelBlockedCycles_[i];
  }
  for (std::size_t i = 0; i < nodeDrops_.size(); ++i) {
    nodeDrops_[i] += other.nodeDrops_[i];
  }
}

}  // namespace downup::obs
