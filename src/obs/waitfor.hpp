// Wait-for-graph sampling: periodic deadlock-risk snapshots of the running
// network.
//
// Every `samplePeriodCycles` cycles the engine walks its owned virtual
// channels and reports the channel-dependency edges of the moment:
//
//   * hold edges     — an owned, routed VC in channel A forwards into
//     channel B: the worm's flits in A drain only as B drains;
//   * request edges  — a blocked (unrouted) header sitting in channel A
//     wants one of its candidate output channels B, reported only when
//     *every* VC of B is owned (a candidate with a free VC is not a wait —
//     the claim lands as soon as allocation revisits the header).
//
// A directed cycle in that graph is a channel-dependency knot: with one VC
// per channel it is a deadlock witness (each channel in the cycle is held
// and waits on the next), and with VC > 1 it is flagged as a *near-cycle*
// (a free VC elsewhere on a cycle channel can still break the knot — the
// classic argument why VCs mask, not remove, cyclic dependencies).  For
// DOWN/UP and every other acyclic turn rule, all hold and request edges
// follow allowed turns, so the sampler can never find a cycle — the suite
// asserts exactly that over seeded runs, and a deliberately broken rule
// (tests/obs/waitfor_test.cpp) must produce one.
//
// Standing-stall attribution: a header blocked in two consecutive samples
// is a *standing* stall, counted into a node x (from-dir x to-dir) cell per
// requested turn — the time-resolved counterpart of MetricsRegistry's
// blocked-cycle attribution, isolating where stalls persist rather than
// merely occur.
//
// Same discipline as the rest of obs/: single-writer, never draws RNG,
// never mutates engine state, allocation-free in the steady state (the
// adjacency/scratch buffers grow to the working-set high-water mark and are
// reused), and merged across parallel sweep runs with mergeFrom().
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "routing/direction.hpp"

namespace downup::obs {

using routing::ChannelId;
using routing::NodeId;

class WaitForSampler {
 public:
  static constexpr std::uint32_t kNoOwner = ~std::uint32_t{0};

  WaitForSampler(std::uint32_t samplePeriodCycles, std::uint32_t nodeCount,
                 std::uint32_t channelCount, std::uint32_t totalVcs,
                 std::uint32_t vcCount);

  std::uint32_t samplePeriod() const noexcept { return period_; }
  bool due(std::uint64_t cycle) const noexcept {
    return cycle % period_ == 0;
  }

  // --- engine-facing per-sample protocol ---

  void beginSample(std::uint64_t cycle);
  /// Registers a blocked (unrouted) header owned by `owner` in VC `vcId`;
  /// returns true when the same owner was blocked there in the previous
  /// sample (a standing stall).
  bool noteBlockedHeader(std::uint32_t vcId, std::uint32_t owner);
  /// Committed-worm dependency: flits in `from` drain into `to`.
  void addHoldEdge(ChannelId from, ChannelId to);
  /// Blocked header in `from` requesting candidate `to`.  `fullyOwned` says
  /// every VC of `to` is owned (only then does the edge join the graph);
  /// `standing` is noteBlockedHeader's return, attributing the requested
  /// turn into the standing-stall cells.
  void addRequestEdge(ChannelId from, ChannelId to, bool fullyOwned,
                      bool standing, NodeId node, std::uint32_t fromDir,
                      std::uint32_t toDir);
  /// Runs cycle detection over the sample's edges and folds the sample into
  /// the running statistics.
  void endSample();

  // --- results ---

  std::uint64_t samples() const noexcept { return samples_; }
  std::uint64_t blockedHeadersTotal() const noexcept { return blockedTotal_; }
  std::uint64_t blockedHeadersPeak() const noexcept { return blockedPeak_; }
  std::uint64_t holdEdgesTotal() const noexcept { return holdEdges_; }
  std::uint64_t requestEdgesTotal() const noexcept { return requestEdges_; }
  /// Requests against channels with some but not all VCs owned (VC > 1
  /// only): saturation pressure short of a graph edge.
  std::uint64_t partialRequestsTotal() const noexcept {
    return partialRequests_;
  }

  /// Samples in which at least one dependency cycle was found.
  std::uint64_t cycleSamples() const noexcept { return cycleSamples_; }
  bool everCycle() const noexcept { return cycleSamples_ != 0; }
  /// True when detections are hard deadlock witnesses (vcCount == 1);
  /// false means cycles are near-cycles (VCs may still break the knot).
  bool cyclesAreHard() const noexcept { return vcCount_ == 1; }
  /// Cycle of the most recent detection (channel ids in dependency order);
  /// empty while everCycle() is false.
  std::span<const ChannelId> witnessCycle() const noexcept { return witness_; }
  std::uint64_t lastCycleSampleCycle() const noexcept { return lastCycleAt_; }

  std::uint32_t nodeCount() const noexcept { return nodeCount_; }
  std::uint32_t channelCount() const noexcept { return channelCount_; }
  std::uint32_t vcCount() const noexcept { return vcCount_; }
  /// Standing-stall count for (node, fromDir row, toDir) — fromDir is a
  /// routing::Dir index (blocked headers always arrived over a channel).
  std::uint64_t standingStalls(NodeId node, std::uint32_t fromDir,
                               std::uint32_t toDir) const noexcept {
    return stalls_[(static_cast<std::size_t>(node) * routing::kDirCount +
                    fromDir) *
                       routing::kDirCount +
                   toDir];
  }
  std::uint64_t standingStallsTotal() const noexcept { return stallsTotal_; }

  /// Clears all statistics and per-sample carry-over (sweep-sample reuse).
  void reset();

  /// Folds another run's sampler (same dimensions, std::invalid_argument
  /// otherwise) into this one: counters and stall cells sum; the witness
  /// cycle is adopted from `other` when this sampler has none.  Locks this
  /// sampler, so concurrent merges from a parallelFor are safe.
  void mergeFrom(const WaitForSampler& other);

 private:
  void detectCycles(std::uint64_t cycle);

  std::uint32_t period_;
  std::uint32_t nodeCount_;
  std::uint32_t channelCount_;
  std::uint32_t vcCount_;

  // Per-sample scratch (capacity reused across samples).
  std::vector<std::vector<ChannelId>> adjacency_;  // per channel
  std::vector<ChannelId> touched_;                 // channels with edges
  std::vector<std::uint8_t> color_;                // DFS: 0 white 1 grey 2 black
  struct Frame {
    ChannelId channel;
    std::uint32_t nextEdge;
  };
  std::vector<Frame> stack_;
  std::uint64_t sampleBlocked_ = 0;
  std::uint64_t sampleCycle_ = 0;

  // Standing-stall tracking: who was blocked where, last sample vs now.
  std::vector<std::uint32_t> prevBlockedOwner_;  // per VC
  std::vector<std::uint32_t> currBlockedOwner_;  // per VC

  // Running statistics.
  std::uint64_t samples_ = 0;
  std::uint64_t blockedTotal_ = 0;
  std::uint64_t blockedPeak_ = 0;
  std::uint64_t holdEdges_ = 0;
  std::uint64_t requestEdges_ = 0;
  std::uint64_t partialRequests_ = 0;
  std::uint64_t cycleSamples_ = 0;
  std::uint64_t lastCycleAt_ = 0;
  std::vector<ChannelId> witness_;
  std::vector<std::uint64_t> stalls_;  // node x dir x dir
  std::uint64_t stallsTotal_ = 0;

  std::mutex mergeMutex_;
};

}  // namespace downup::obs
