#include "obs/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace downup::obs {

namespace {

/// Delivered-count-weighted combination of two window latency snapshots:
/// count/mean/min/max are exact; quantiles are the weighted average (the
/// windows being merged summarize the *same* window of different sweep
/// samples, so their distributions are close and the approximation small).
util::QuantileSketch::Snapshot mergeSnapshots(
    const util::QuantileSketch::Snapshot& a,
    const util::QuantileSketch::Snapshot& b) {
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  util::QuantileSketch::Snapshot merged;
  merged.count = a.count + b.count;
  const double wa = static_cast<double>(a.count);
  const double wb = static_cast<double>(b.count);
  const double total = wa + wb;
  merged.mean = (a.mean * wa + b.mean * wb) / total;
  merged.min = std::min(a.min, b.min);
  merged.max = std::max(a.max, b.max);
  merged.p50 = (a.p50 * wa + b.p50 * wb) / total;
  merged.p95 = (a.p95 * wa + b.p95 * wb) / total;
  merged.p99 = (a.p99 * wa + b.p99 * wb) / total;
  return merged;
}

void addInto(std::vector<std::uint64_t>& into,
             const std::vector<std::uint64_t>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

}  // namespace

TimeSeriesCollector::TimeSeriesCollector(const TimeSeriesOptions& options,
                                         std::uint32_t nodeCount,
                                         std::uint32_t channelCount)
    : windowCycles_(options.windowCycles),
      wantPerChannel_(options.perChannel),
      nodeLevel_(nodeCount, 0),
      channelLevel_(channelCount, 0),
      windowEnd_(options.windowCycles),
      latencySketch_(std::max<std::size_t>(1, options.latencySketchCap)),
      levelFlits_(1, 0),
      levelBlockedCycles_(1, 0) {
  if (options.windowCycles == 0) {
    throw std::invalid_argument(
        "TimeSeriesCollector: windowCycles must be > 0");
  }
  if (options.maxWindows == 0) {
    throw std::invalid_argument("TimeSeriesCollector: maxWindows must be > 0");
  }
  ring_.resize(options.maxWindows);
  if (wantPerChannel_) channelFlitsPerChannel_.assign(channelCount, 0);
}

void TimeSeriesCollector::setLevels(
    std::span<const std::uint32_t> nodeLevel,
    std::span<const std::uint32_t> channelLevel) {
  if (nodeLevel.size() != nodeLevel_.size() ||
      channelLevel.size() != channelLevel_.size()) {
    throw std::invalid_argument("TimeSeriesCollector::setLevels: wrong sizes");
  }
  std::uint32_t maxLevel = 0;
  for (std::uint32_t level : nodeLevel) maxLevel = std::max(maxLevel, level);
  for (std::uint32_t level : channelLevel) maxLevel = std::max(maxLevel, level);
  nodeLevel_.assign(nodeLevel.begin(), nodeLevel.end());
  channelLevel_.assign(channelLevel.begin(), channelLevel.end());
  levelFlits_.assign(maxLevel + 1, 0);
  levelBlockedCycles_.assign(maxLevel + 1, 0);
}

TimeSeriesCollector::Window& TimeSeriesCollector::slotForNewWindow() {
  if (count_ < ring_.size()) {
    return ring_[(first_ + count_++) % ring_.size()];
  }
  // Ring full: the oldest window's slot is recycled for the newest.
  Window& slot = ring_[first_];
  first_ = (first_ + 1) % ring_.size();
  return slot;
}

void TimeSeriesCollector::closeWindow(std::uint64_t endCycle) {
  Window& slot = slotForNewWindow();
  slot.startCycle = windowStart_;
  slot.endCycle = endCycle;
  slot.generatedPackets = generatedPackets_;
  slot.injectedFlits = injectedFlits_;
  slot.channelFlits = channelFlits_;
  slot.ejectedFlits = ejectedFlits_;
  slot.ejectedPackets = ejectedPackets_;
  slot.blockedCycles = blockedCycles_;
  slot.droppedPackets = droppedPackets_;
  slot.degradedCycles = degradedCycles_;
  slot.latency = latencySketch_.snapshot();
  // assign() reuses the slot vectors' capacity after the first lap around
  // the ring, so steady-state window closure performs no allocation.
  slot.levelFlits.assign(levelFlits_.begin(), levelFlits_.end());
  slot.levelBlockedCycles.assign(levelBlockedCycles_.begin(),
                                 levelBlockedCycles_.end());
  slot.channelFlitsPerChannel.assign(channelFlitsPerChannel_.begin(),
                                     channelFlitsPerChannel_.end());

  windowStart_ = endCycle;
  windowEnd_ = endCycle + windowCycles_;
  ++windowsClosed_;
  generatedPackets_ = 0;
  injectedFlits_ = 0;
  channelFlits_ = 0;
  ejectedFlits_ = 0;
  ejectedPackets_ = 0;
  blockedCycles_ = 0;
  droppedPackets_ = 0;
  degradedCycles_ = 0;
  latencySketch_.clear();
  std::fill(levelFlits_.begin(), levelFlits_.end(), 0);
  std::fill(levelBlockedCycles_.begin(), levelBlockedCycles_.end(), 0);
  std::fill(channelFlitsPerChannel_.begin(), channelFlitsPerChannel_.end(), 0);
}

void TimeSeriesCollector::reset() {
  first_ = 0;
  count_ = 0;
  windowsClosed_ = 0;
  windowStart_ = 0;
  windowEnd_ = windowCycles_;
  generatedPackets_ = 0;
  injectedFlits_ = 0;
  channelFlits_ = 0;
  ejectedFlits_ = 0;
  ejectedPackets_ = 0;
  blockedCycles_ = 0;
  droppedPackets_ = 0;
  degradedCycles_ = 0;
  latencySketch_.clear();
  std::fill(levelFlits_.begin(), levelFlits_.end(), 0);
  std::fill(levelBlockedCycles_.begin(), levelBlockedCycles_.end(), 0);
  std::fill(channelFlitsPerChannel_.begin(), channelFlitsPerChannel_.end(), 0);
  events_.clear();
}

void TimeSeriesCollector::mergeFrom(const TimeSeriesCollector& other) {
  if (other.windowCycles_ != windowCycles_ ||
      other.nodeLevel_.size() != nodeLevel_.size() ||
      other.channelLevel_.size() != channelLevel_.size()) {
    throw std::invalid_argument(
        "TimeSeriesCollector::mergeFrom: mismatched dimensions");
  }
  const std::lock_guard<std::mutex> lock(mergeMutex_);
  if (count_ == 0) {
    for (std::size_t i = 0; i < other.windowCount(); ++i) {
      slotForNewWindow() = other.window(i);
    }
    windowsClosed_ += other.windowsClosed_;
  } else {
    if (other.windowCount() != count_) {
      throw std::invalid_argument(
          "TimeSeriesCollector::mergeFrom: window sequences differ");
    }
    for (std::size_t i = 0; i < count_; ++i) {
      Window& mine = ring_[(first_ + i) % ring_.size()];
      const Window& theirs = other.window(i);
      if (mine.startCycle != theirs.startCycle ||
          mine.endCycle != theirs.endCycle) {
        throw std::invalid_argument(
            "TimeSeriesCollector::mergeFrom: window sequences differ");
      }
      mine.generatedPackets += theirs.generatedPackets;
      mine.injectedFlits += theirs.injectedFlits;
      mine.channelFlits += theirs.channelFlits;
      mine.ejectedFlits += theirs.ejectedFlits;
      mine.ejectedPackets += theirs.ejectedPackets;
      mine.blockedCycles += theirs.blockedCycles;
      mine.droppedPackets += theirs.droppedPackets;
      mine.degradedCycles += theirs.degradedCycles;
      mine.latency = mergeSnapshots(mine.latency, theirs.latency);
      addInto(mine.levelFlits, theirs.levelFlits);
      addInto(mine.levelBlockedCycles, theirs.levelBlockedCycles);
      addInto(mine.channelFlitsPerChannel, theirs.channelFlitsPerChannel);
    }
  }
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

}  // namespace downup::obs
