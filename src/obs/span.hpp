// Control-plane span tracing: the obs-layer surface over
// util::SpanRecorder (see util/span_recorder.hpp for why the recorder
// itself lives a layer down) plus the exporters.
//
// A SpanRecorder handed to FabricManager::Options::spans (or to the
// construction pipeline via core::DownUpOptions / fault::Reconfigurator)
// records the full rebuild pipeline as nested spans:
//
//   rebuild                     one service-loop decision or driven publish
//   ├─ coalesce_wait            the burst-coalescing sleep (service mode)
//   ├─ event_dequeue            queue drain + fold into desired masks
//   ├─ dirty_set                incremental applicability + dirty-set scan
//   ├─ partition / subtopo      alive-component labelling + compaction
//   ├─ tree                     coordinated-tree construction per component
//   ├─ classify / repair / release   turn-rule stages per component
//   ├─ table_build              RoutingTable::build or rebuildDead
//   │  ├─ bfs                   per-destination reverse BFS fan-out
//   │  └─ candidate_fill        CSR successor-index construction
//   ├─ verify                   deadlock-freedom + connectivity check
//   ├─ merge                    per-component remap into host numbering
//   └─ publish                  epoch swap + reclaim sweep
//
// Parallel stages carry `threads` / `parallel` args so a trace shows which
// path ran.  Schemas: spans JSONL is obs_spans/2 (results/README.md); the
// Chrome trace is standard trace_event JSON, loadable in Perfetto with one
// track per recording thread.
//
// obs_spans/2 extends /1 with micro-architectural data (util/perf_counters):
//   * the meta record reports counter availability — "detached" (no group
//     attached), "available", "partial" (software clock only; reason says
//     why the PMU events failed) or "unavailable" (reason carries the
//     errno) — so a consumer can always tell absent from zero;
//   * spans begun on the counting thread carry a "counters" object with
//     only the events that actually opened, plus derived ipc/missRate
//     when their inputs are present;
//   * alloc-tracked spans carry an "alloc" {count, bytes} object
//     (innermost-span attribution, see util/span_recorder.hpp);
//   * per-name accumulated stages (the engine phase profiler) export as
//     "aggregate" records after the spans.
#pragma once

#include <iosfwd>

#include "util/span_recorder.hpp"

namespace downup::obs {

using util::ScopedSpan;
using util::SpanRecorder;

/// Spans as JSONL (schema obs_spans/2): a `meta` header with counter
/// availability, then one `span` record per span in begin order with
/// id/parent/tid/depth, microsecond start/duration, the numeric args and
/// any counter/alloc payloads, then one `aggregate` record per registered
/// aggregate slot.
void writeSpansJsonl(const SpanRecorder& spans, std::ostream& out);

/// Spans as Chrome trace_event JSON (Perfetto-loadable): one "X" complete
/// event per closed span (pid 0, tid = recording thread), args attached.
void writeSpansChromeTrace(const SpanRecorder& spans, std::ostream& out);

}  // namespace downup::obs
