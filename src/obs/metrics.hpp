// Engine-wide metrics registry: named counters with per-node, per-turn
// (direction-pair) and per-tree-level dimensions, recorded by the wormhole
// engine through two narrow hooks and read back by reports and exporters.
//
// The registry answers the questions the paper's anti-hot-spot claim poses:
//   * where does congestion form?   blocked-cycle attribution, keyed jointly
//     by the node a header waited at and the turn it eventually took;
//   * which turns carry traffic?    turn-usage counters split by direction
//     pair, so released turns such as T(LU_CROSS -> RD_TREE) and
//     T(RU_CROSS -> RD_TREE) are individually visible;
//   * is the root region hot?       flits and blocked cycles bucketed by
//     tree level Y (root-distance congestion histograms).
//
// Blocked-cycle attribution is computed at claim time — when a header
// finally wins an output VC, the cycles it waited beyond the 1-clock routing
// delay are charged to (node, turn) — so it is exact under both the
// per-cycle re-attempt path and blocked-claimant parking, and costs nothing
// per blocked cycle.  Headers still blocked when the run ends are not
// charged (their turn is unknown); under-saturation runs deliver everything,
// so the undercount only matters past saturation.
//
// Concurrency: record*() calls are single-writer (one simulation owns one
// registry).  Parallel sweeps give each run its own registry and fold them
// with mergeFrom(), which locks the destination and is safe to call
// concurrently from a parallelFor.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "routing/direction.hpp"

namespace downup::obs {

using routing::ChannelId;
using routing::NodeId;

class MetricsRegistry {
 public:
  /// Turn rows are the 8 arrival directions plus one injection row (a
  /// packet entering the network has no arrival direction).
  static constexpr std::uint32_t kInjectRow =
      static_cast<std::uint32_t>(routing::kDirCount);
  static constexpr std::uint32_t kTurnRows = kInjectRow + 1;
  static constexpr std::uint32_t kTurnCells =
      kTurnRows * static_cast<std::uint32_t>(routing::kDirCount);

  MetricsRegistry(std::uint32_t nodeCount, std::uint32_t channelCount);

  /// Installs the tree-level dimension: nodeLevel[v] = Y(v), and each
  /// channel is bucketed at min(Y(src), Y(dst)) — the end closer to the
  /// root, so both directions of a root link count as root-level traffic.
  /// Without levels every event lands in the single level 0.
  void setLevels(std::span<const std::uint32_t> nodeLevel,
                 std::span<const std::uint32_t> channelLevel);

  // --- engine-facing recorders (single-writer, no allocation) ---

  /// A header claimed an output VC at `node`, taking the turn
  /// (fromRow -> toDir) after waiting `waitedCycles` beyond the routing
  /// delay.  fromRow is index(dir(in)) or kInjectRow for injection.
  void recordTurnClaim(NodeId node, std::uint32_t fromRow, std::uint32_t toDir,
                       std::uint64_t waitedCycles) noexcept {
    const std::uint32_t turn = fromRow * routing::kDirCount + toDir;
    ++turnTaken_[turn];
    if (waitedCycles > 0) {
      blockedNodeTurn_[static_cast<std::size_t>(node) * kTurnCells + turn] +=
          waitedCycles;
      levelBlockedCycles_[nodeLevel_[node]] += waitedCycles;
    }
  }

  /// A flit entered switch-to-switch channel `channel`.
  void recordChannelFlit(ChannelId channel) noexcept {
    ++channelFlits_[channel];
    ++levelFlits_[channelLevel_[channel]];
  }

  /// The fault machinery discarded a packet; `node` attributes the drop
  /// (the failed switch, the node the worm's frontier was parked at, or the
  /// source for injection/unreachable drops).
  void recordDrop(NodeId node) noexcept { ++nodeDrops_[node]; }

  // --- accessors ---

  std::uint32_t nodeCount() const noexcept { return nodeCount_; }
  std::uint32_t channelCount() const noexcept {
    return static_cast<std::uint32_t>(channelFlits_.size());
  }
  std::uint32_t levelCount() const noexcept {
    return static_cast<std::uint32_t>(levelFlits_.size());
  }
  std::uint32_t nodeLevel(NodeId v) const noexcept { return nodeLevel_[v]; }
  /// Nodes per level (all at level 0 until setLevels).
  std::span<const std::uint32_t> levelPopulation() const noexcept {
    return levelPopulation_;
  }

  std::uint64_t turnTaken(std::uint32_t fromRow,
                          std::uint32_t toDir) const noexcept {
    return turnTaken_[fromRow * routing::kDirCount + toDir];
  }
  /// Blocked cycles summed over nodes for one turn.
  std::uint64_t turnBlockedCycles(std::uint32_t fromRow,
                                  std::uint32_t toDir) const;
  /// Blocked cycles summed over turns for one node.
  std::uint64_t nodeBlockedCycles(NodeId v) const;
  /// Joint (node, turn) blocked cycles.
  std::uint64_t blockedCycles(NodeId v, std::uint32_t fromRow,
                              std::uint32_t toDir) const noexcept {
    return blockedNodeTurn_[static_cast<std::size_t>(v) * kTurnCells +
                            fromRow * routing::kDirCount + toDir];
  }

  std::span<const std::uint64_t> channelFlits() const noexcept {
    return channelFlits_;
  }
  std::span<const std::uint64_t> levelFlits() const noexcept {
    return levelFlits_;
  }
  std::span<const std::uint64_t> levelBlockedCycles() const noexcept {
    return levelBlockedCycles_;
  }

  std::uint64_t totalBlockedCycles() const;
  std::uint64_t totalTurnsTaken() const;

  std::uint64_t nodeDrops(NodeId v) const noexcept { return nodeDrops_[v]; }
  std::uint64_t totalDrops() const;

  /// Channel utilization in flits/cycle given the measured window length.
  std::vector<double> channelUtilization(std::uint64_t measuredCycles) const;

  /// Clears every counter (sweep-sample reuse); keeps dimensions and levels.
  void reset();

  /// Folds `other` (same dimensions, std::invalid_argument otherwise) into
  /// this registry.  Locks this registry, so concurrent merges are safe.
  void mergeFrom(const MetricsRegistry& other);

 private:
  std::uint32_t nodeCount_;
  std::vector<std::uint32_t> nodeLevel_;     // per node, default 0
  std::vector<std::uint32_t> channelLevel_;  // per channel, default 0
  std::vector<std::uint32_t> levelPopulation_;

  std::vector<std::uint64_t> turnTaken_;       // [kTurnCells]
  std::vector<std::uint64_t> blockedNodeTurn_; // [node * kTurnCells + turn]
  std::vector<std::uint64_t> channelFlits_;    // per channel
  std::vector<std::uint64_t> levelFlits_;      // per level
  std::vector<std::uint64_t> levelBlockedCycles_;  // per level
  std::vector<std::uint64_t> nodeDrops_;       // per node (fault machinery)

  std::mutex mergeMutex_;
};

}  // namespace downup::obs
