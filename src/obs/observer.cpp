#include "obs/observer.hpp"

#include <algorithm>
#include <stdexcept>

namespace downup::obs {

Observer::Observer(const ObsOptions& options, const topo::Topology& topo,
                   const tree::CoordinatedTree* ct, std::uint32_t vcCount)
    : nodeCount_(topo.nodeCount()), channelCount_(topo.channelCount()) {
  // The coordinated tree gives both level-bucketing consumers the same
  // mapping: nodes by Y(v), channels by min(Y(src), Y(dst)).
  std::vector<std::uint32_t> nodeLevel;
  std::vector<std::uint32_t> channelLevel;
  if (ct != nullptr) {
    nodeLevel.resize(nodeCount_);
    for (topo::NodeId v = 0; v < nodeCount_; ++v) nodeLevel[v] = ct->y(v);
    channelLevel.resize(channelCount_);
    for (topo::ChannelId c = 0; c < channelCount_; ++c) {
      channelLevel[c] =
          std::min(ct->y(topo.channelSrc(c)), ct->y(topo.channelDst(c)));
    }
  }
  if (options.metrics) {
    metrics_ = std::make_unique<MetricsRegistry>(nodeCount_, channelCount_);
    if (ct != nullptr) metrics_->setLevels(nodeLevel, channelLevel);
  }
  if (options.traceSampleEvery > 0) {
    tracer_ = std::make_unique<PacketTracer>(options.traceSampleEvery);
  }
  // Control-plane spans before the profiler: when both are enabled the
  // profiler folds its phase aggregates into the same recorder, so one
  // obs_spans/2 dump carries the rebuild trace and the phase totals.
  if (options.controlPlaneSpans) {
    controlPlaneSpans_ = std::make_unique<SpanRecorder>();
  }
  if (options.profilePhases) {
    profiler_ = std::make_unique<PhaseProfiler>(controlPlaneSpans_.get());
  }
  if (options.timeseriesWindowCycles > 0) {
    TimeSeriesOptions tsOptions;
    tsOptions.windowCycles = options.timeseriesWindowCycles;
    tsOptions.maxWindows = options.timeseriesMaxWindows;
    tsOptions.perChannel = options.timeseriesPerChannel;
    timeseries_ = std::make_unique<TimeSeriesCollector>(tsOptions, nodeCount_,
                                                        channelCount_);
    if (ct != nullptr) timeseries_->setLevels(nodeLevel, channelLevel);
  }
  if (options.waitForSamplePeriod > 0) {
    waitfor_ = std::make_unique<WaitForSampler>(
        options.waitForSamplePeriod, nodeCount_, channelCount_,
        channelCount_ * vcCount, vcCount);
  }
}

void Observer::attach(std::uint32_t nodeCount,
                      std::uint32_t channelCount) const {
  if (nodeCount != nodeCount_ || channelCount != channelCount_) {
    throw std::invalid_argument(
        "Observer: sized for a different topology than the simulation's");
  }
}

void Observer::reset() {
  if (metrics_) metrics_->reset();
  if (tracer_) tracer_->clear();
  if (profiler_) profiler_->reset();
  if (timeseries_) timeseries_->reset();
  if (waitfor_) waitfor_->reset();
  if (controlPlaneSpans_) controlPlaneSpans_->clear();
}

}  // namespace downup::obs
