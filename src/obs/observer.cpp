#include "obs/observer.hpp"

#include <algorithm>
#include <stdexcept>

namespace downup::obs {

Observer::Observer(const ObsOptions& options, const topo::Topology& topo,
                   const tree::CoordinatedTree* ct)
    : nodeCount_(topo.nodeCount()), channelCount_(topo.channelCount()) {
  if (options.metrics) {
    metrics_ = std::make_unique<MetricsRegistry>(nodeCount_, channelCount_);
    if (ct != nullptr) {
      std::vector<std::uint32_t> nodeLevel(nodeCount_);
      for (topo::NodeId v = 0; v < nodeCount_; ++v) nodeLevel[v] = ct->y(v);
      std::vector<std::uint32_t> channelLevel(channelCount_);
      for (topo::ChannelId c = 0; c < channelCount_; ++c) {
        channelLevel[c] =
            std::min(ct->y(topo.channelSrc(c)), ct->y(topo.channelDst(c)));
      }
      metrics_->setLevels(nodeLevel, channelLevel);
    }
  }
  if (options.traceSampleEvery > 0) {
    tracer_ = std::make_unique<PacketTracer>(options.traceSampleEvery);
  }
  if (options.profilePhases) {
    profiler_ = std::make_unique<PhaseProfiler>();
  }
}

void Observer::attach(std::uint32_t nodeCount,
                      std::uint32_t channelCount) const {
  if (nodeCount != nodeCount_ || channelCount != channelCount_) {
    throw std::invalid_argument(
        "Observer: sized for a different topology than the simulation's");
  }
}

void Observer::reset() {
  if (metrics_) metrics_->reset();
  if (tracer_) tracer_->clear();
  if (profiler_) profiler_->reset();
}

}  // namespace downup::obs
