// Exporters for the observability subsystem, plus the run-provenance
// helpers (git revision, UTC timestamp) every machine-readable artifact of
// this repo stamps into its output.
//
// Formats (schemas documented in results/README.md):
//   * metrics JSONL  — one self-describing record per line: a `meta` header
//     (schema, gitRev, timestampUtc, dimensions) followed by `level`,
//     `turn`, `node` and `channel` records (zero-valued rows are omitted);
//   * trace JSONL    — a `meta` header, one `packet` record per sampled
//     packet, one `event` record per lifecycle event;
//   * Chrome trace_event JSON — loadable in chrome://tracing / Perfetto:
//     each sampled packet is a process, tid 0 carries the per-hop spans
//     (one "X" complete event per hop, named after the channel crossed and
//     the turn taken), tid 1 the blocked spans, and inject/eject appear as
//     instant events.  Timestamps are cycles interpreted as microseconds.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/waitfor.hpp"
#include "topology/topology.hpp"

namespace downup::obs {

/// Short git revision of the working tree, or "unknown".
std::string gitRevision();

/// ISO-8601 UTC timestamp of "now".
std::string utcTimestamp();

/// Metrics registry as JSONL.  `topo` (optional) adds channel endpoints to
/// the per-channel records.  `measuredCycles` (0 = unknown) is recorded in
/// the meta line so utilization can be derived from the raw flit counts.
void writeMetricsJsonl(const MetricsRegistry& metrics,
                       const topo::Topology* topo,
                       std::uint64_t measuredCycles, std::ostream& out);

/// Tracer buffers as JSONL.
void writeTraceJsonl(const PacketTracer& tracer, const topo::Topology* topo,
                     std::ostream& out);

/// Tracer buffers as Chrome trace_event JSON (Perfetto-loadable).
void writeChromeTrace(const PacketTracer& tracer, const topo::Topology* topo,
                      std::ostream& out);

/// Time series as CSV: one row per closed window (per-level columns are
/// expanded; per-channel counts are omitted — use the JSONL for those).
void writeTimeSeriesCsv(const TimeSeriesCollector& series, std::ostream& out);

/// Time series as JSONL (schema obs_timeseries/1): a `meta` header, one
/// `window` record per closed window, one `reconfig` record per
/// fault -> swap span, and — when `waitfor` is non-null — one
/// `waitfor_summary` record with the sampler's totals.
void writeTimeSeriesJsonl(const TimeSeriesCollector& series,
                          const WaitForSampler* waitfor, std::ostream& out);

/// Time series as Chrome trace_event JSON: Perfetto counter tracks ("C"
/// events, one per window boundary) for the headline rates plus per-level
/// flit counters, "X" spans for reconfiguration windows and "i" instants
/// for fault events.  Timestamps are cycles interpreted as microseconds.
void writeTimeSeriesChromeTrace(const TimeSeriesCollector& series,
                                std::ostream& out);

}  // namespace downup::obs
