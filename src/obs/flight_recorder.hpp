// Always-on flight recorder for control-plane events.
//
// A bounded lock-free ring of the most recent fabric events (fault
// transitions posted, coalescing windows, rebuilds, publishes, reclaims),
// recorded unconditionally — unlike spans and metrics, the recorder is
// cheap enough (a ticket fetch_add plus a handful of relaxed atomic
// stores, no allocation, no locks) to stay on in production, so a
// post-mortem after an anomaly (an unverified routing epoch, a wait-for
// hard cycle) can dump the event sequence that led up to it without
// re-running the scenario.
//
// Concurrency: any thread may record(); writers claim a slot with one
// fetch_add ticket and publish it with a per-slot stamp (seqlock flavor).
// dump() is a wait-free read-only scan from any thread: it re-reads each
// slot's stamp around the payload copy and discards slots a concurrent
// writer was mutating, so a dump taken mid-burst yields a consistent
// (possibly slightly shorter) history.  Payload fields are relaxed atomics
// — individually untearable, with cross-field consistency guaranteed by
// the stamp check — so the protocol is fully visible to ThreadSanitizer.
//
// Timestamps are steady_clock nanoseconds since the recorder's
// construction; `cycle` carries the fault-schedule cycle where the event
// has one (transitions), 0 otherwise.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

namespace downup::obs {

enum class FabricEventKind : std::uint8_t {
  kTransitionPosted,  // a = entity (0 link, 1 node), b = id, c = alive
  kWindowOpened,      // a = queue depth at open
  kWindowExtended,    // a = transitions that arrived during the wait
  kRebuildStarted,    // a = incremental requested, b = batch size
  kRebuildFinished,   // a = epoch, b = rebuilt destinations, c = ok
  kRebuildSkipped,    // a = batch size (flap cancelled out)
  kPublish,           // a = epoch, b = retired-list depth after publish
  kReclaim,           // a = snapshots freed, b = retired remaining
  kAnomaly,           // a = AnomalyCode
};

const char* toString(FabricEventKind kind) noexcept;

enum class AnomalyCode : std::uint8_t {
  kUnverifiedRouting = 0,  // a published epoch failed verification
  kWaitForHardCycle = 1,   // the wait-for sampler found a hard deadlock
  kOracleViolation = 2,    // the independent deadlock oracle rejected a
                           // routing snapshot (verify/gate.hpp)
};

const char* toString(AnomalyCode code) noexcept;

struct FabricEvent {
  std::uint64_t seq = 0;     // global record order (monotone)
  std::uint64_t timeNs = 0;  // since recorder construction
  std::uint64_t cycle = 0;
  FabricEventKind kind = FabricEventKind::kTransitionPosted;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (default keeps the ring
  /// around 100 KiB).
  explicit FlightRecorder(std::size_t capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event (any thread, lock-free, allocation-free).
  void record(FabricEventKind kind, std::uint64_t cycle = 0,
              std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t c = 0) noexcept;

  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Total events ever recorded (>= capacity() means the ring wrapped).
  std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Copies the surviving events into `out` (cleared first), oldest first.
  /// Returns the number of events dumped.  Safe concurrent with writers.
  std::size_t dump(std::vector<FabricEvent>& out) const;

  /// Dumps as JSONL: a `meta` record, then one `event` record per
  /// surviving event in sequence order.
  void writeJsonl(std::ostream& out) const;

 private:
  struct Slot {
    // Stamp protocol: (ticket << 1) while the writer fills the payload,
    // (ticket << 1) | 1 once published.  Readers accept a slot only when
    // the stamp is published and unchanged across the payload copy.
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> timeNs{0};
    std::atomic<std::uint64_t> cycle{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint64_t> c{0};
    std::atomic<std::uint8_t> kind{0};
  };

  std::uint64_t nowNs() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<Slot[]> slots_backing_;
  std::span<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace downup::obs
