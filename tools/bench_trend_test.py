#!/usr/bin/env python3
"""Self-test for tools/bench_trend, run by ctest (BenchTrendTest).

Fabricates baseline and current BENCH files in temp directories and checks
the gate arithmetic end to end: pass within threshold, fail past it, fail
on missing gated metrics, report-only when no --current is given, and the
bench_trend/1 JSON report shape.
"""

import json
import os
import subprocess
import sys
import tempfile

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_trend")


def build_json(full_serial_128):
    return {
        "bench": "bench_build", "gitRev": "test", "timestampUtc": "t",
        "sizes": [
            {"switches": 128, "fullSerialMs": full_serial_128,
             "tableSerialMs": 3.0, "reconfigIncrMs": 1.0},
            {"switches": 256, "fullSerialMs": 14.0},
        ],
    }


def serve_json(lookups_per_sec):
    return {
        "bench": "bench_serve", "gitRev": "test", "timestampUtc": "t",
        "lookupsPerSec": lookups_per_sec, "lookupP50Ns": 3000,
    }


def micro_json(cps):
    return {
        "bench": "bench_micro.scenarios", "gitRev": "test",
        "timestampUtc": "t",
        "scenarios": [{"name": "near_idle", "cyclesPerSec": cps}],
    }


def write(directory, name, data):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(data, f)
    return path


def run(args):
    proc = subprocess.run([sys.executable, TOOL] + args,
                         capture_output=True, text=True)
    return proc


def expect(condition, message, proc=None):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        if proc is not None:
            print(proc.stdout, file=sys.stderr)
            print(proc.stderr, file=sys.stderr)
        sys.exit(1)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        results = os.path.join(tmp, "results")
        os.mkdir(results)
        write(results, "BENCH_build.json", build_json(4.0))
        write(results, "BENCH_serve.json", serve_json(1_000_000))
        write(results, "BENCH_micro.json", micro_json(500_000))

        # Report-only: no --current, exit 0, trajectory printed.
        proc = run(["--results", results])
        expect(proc.returncode == 0, "report-only run should exit 0", proc)
        expect("bench_build" in proc.stdout and "bench_serve" in proc.stdout
               and "bench_micro" in proc.stdout,
               "trajectory should merge all three baselines", proc)
        expect("none armed" in proc.stdout,
               "report-only run should say no gates armed", proc)

        # Both gates within threshold: exit 0, PASS verdicts.
        cur_ok_build = write(tmp, "cur_build.json", build_json(4.5))
        cur_ok_serve = write(tmp, "cur_serve.json", serve_json(900_000))
        report_json = os.path.join(tmp, "trend.json")
        proc = run(["--results", results,
                    "--current", f"bench_build={cur_ok_build}",
                    "--current", f"bench_serve={cur_ok_serve}",
                    "--json", report_json])
        expect(proc.returncode == 0, "within-threshold run should pass", proc)
        expect("gate result: PASS" in proc.stdout, "PASS verdict", proc)
        with open(report_json) as f:
            report = json.load(f)
        expect(report["schema"] == "bench_trend/1", "report schema")
        expect(report["ok"] is True, "report ok flag")
        expect(len(report["gates"]) == 2, "both gates armed")
        expect(len(report["baselines"]) == 3, "all baselines in report")

        # Construction regression past 1.25x: exit 1.
        cur_slow = write(tmp, "cur_slow.json", build_json(5.5))
        proc = run(["--results", results,
                    "--current", f"bench_build={cur_slow}"])
        expect(proc.returncode == 1, ">25% build regression should fail",
               proc)
        expect("FAIL" in proc.stdout, "FAIL verdict printed", proc)

        # Serve throughput below 0.75x: exit 1.
        cur_slow_serve = write(tmp, "cur_slow_serve.json", serve_json(700_000))
        proc = run(["--results", results,
                    "--current", f"bench_serve={cur_slow_serve}"])
        expect(proc.returncode == 1, ">25% serve drop should fail", proc)

        # Gated metric missing from the current file: exit 1, not a pass.
        broken = write(tmp, "cur_broken.json", {
            "bench": "bench_serve", "gitRev": "test", "timestampUtc": "t",
            "lookupP50Ns": 3000,
        })
        proc = run(["--results", results,
                    "--current", f"bench_serve={broken}"])
        expect(proc.returncode == 1, "missing gated metric should fail", proc)
        expect("metric missing" in proc.stdout, "missing-metric note", proc)

        # Mislabelled --current: exit 2 (malformed input).
        proc = run(["--results", results,
                    "--current", f"bench_build={cur_ok_serve}"])
        expect(proc.returncode == 2, "bench-name mismatch should exit 2",
               proc)

    print("bench_trend_test: all cases passed")


if __name__ == "__main__":
    main()
