// Extension: the original Glass & Ni turn model (the paper's reference [1])
// on the topology it was designed for, vs the tree-based turn-model
// routings applied to the same mesh.  Shows what the irregular-network
// algorithms give up when a regular topology's structure is available.
#include <iomanip>
#include <iostream>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "routing/mesh_turn.hpp"
#include "routing/path_analysis.hpp"
#include "sim/engine.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/thread_pool.hpp"

namespace {

double saturate(const downup::routing::RoutingTable& table,
                const downup::sim::TrafficPattern& traffic,
                downup::sim::SimConfig config) {
  const double probed =
      downup::stats::probeSaturationLoad(table, traffic, config);
  const auto loads = downup::stats::loadGrid(std::min(1.0, 1.8 * probed), 6);
  const auto sweep = downup::stats::runSweep(table, traffic, loads, config);
  return downup::stats::findSaturation(sweep).maxAccepted;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace downup;
  bench::ScenarioCli cli(
      "exp_mesh_turnmodel",
      "Glass & Ni mesh turn model vs tree-based routings on a mesh",
      {.topology = false, .obsOutputs = false});
  auto width = cli.cli().positiveOption<int>("width", 8, "mesh width");
  auto height = cli.cli().positiveOption<int>("height", 8, "mesh height");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(cli.threads()));

  const auto w = static_cast<topo::NodeId>(*width);
  const auto h = static_cast<topo::NodeId>(*height);
  const topo::Topology topo = topo::mesh(w, h);
  const sim::UniformTraffic traffic(topo.nodeCount());
  sim::SimConfig config = cli.simConfig();
  config.seed = cli.seed();

  std::cout << w << "x" << h << " mesh, uniform traffic, "
            << cli.packetFlits() << "-flit packets\n\n"
            << std::left << std::setw(18) << "routing" << std::setw(12)
            << "satTput" << std::setw(12) << "avgPath" << std::setw(12)
            << "adaptivity" << "\n";

  const auto report = [&](const routing::Routing& routing) {
    std::cout << std::left << std::setw(18) << routing.name() << std::setw(12)
              << std::fixed << std::setprecision(5)
              << saturate(routing.table(), traffic, config) << std::setw(12)
              << std::setprecision(3) << routing.table().averagePathLength()
              << std::setw(12) << routing::averageAdaptivity(routing.table())
              << "\n";
  };

  for (routing::MeshTurnModel model :
       {routing::MeshTurnModel::kXY, routing::MeshTurnModel::kWestFirst,
        routing::MeshTurnModel::kNorthLast,
        routing::MeshTurnModel::kNegativeFirst}) {
    report(routing::buildMeshRouting(topo, w, h, model));
  }

  util::Rng treeRng(cli.seed() + 1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  for (core::Algorithm algorithm :
       {core::Algorithm::kUpDownBfs, core::Algorithm::kLTurn,
        core::Algorithm::kDownUp}) {
    report(core::buildRouting(algorithm, topo, ct, &pool));
  }

  std::cout
      << "\n(the classic mesh result reproduces: deterministic XY wins "
         "under uniform traffic\nbecause it balances load perfectly, while "
         "every partially adaptive scheme —\nGlass & Ni's and the "
         "tree-based ones alike — clusters below it; the tree-based\n"
         "routings match the native partially-adaptive turn models even on "
         "the mesh)\n";
  return 0;
}
