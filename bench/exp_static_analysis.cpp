// Ablation/validation: static path analysis vs dynamic simulation.
// analyzePaths() predicts each channel's load assuming uniform splitting
// over minimal legal paths; this bench measures how well that static
// prediction ranks the channel utilizations an actual wormhole simulation
// produces (Pearson correlation), and compares the algorithms' static
// balance figures (max/mean expected load = the bottleneck factor).
#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "routing/path_analysis.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"
#include "util/thread_pool.hpp"

namespace {

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace downup;
  bench::ScenarioCli cli("exp_static_analysis",
                         "static path-analysis load prediction vs simulation",
                         {.switches = 48,
                          .samples = 3,
                          .packetFlits = 32,
                          .measure = 10000});
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(cli.threads()));

  std::cout << std::left << std::setw(20) << "algorithm" << std::setw(12)
            << "corr" << std::setw(16) << "staticMax/Mean" << std::setw(12)
            << "meanPaths" << std::setw(12) << "adaptivity" << "\n";

  for (core::Algorithm algorithm :
       {core::Algorithm::kUpDownBfs, core::Algorithm::kLTurn,
        core::Algorithm::kLeftRight, core::Algorithm::kDownUp}) {
    double corrSum = 0.0;
    double bottleneckSum = 0.0;
    double pathSum = 0.0;
    double adaptSum = 0.0;
    for (int sample = 0; sample < cli.samples(); ++sample) {
      util::Rng rng(cli.seed() + static_cast<std::uint64_t>(sample));
      const topo::Topology topo = topo::randomIrregular(
          static_cast<topo::NodeId>(cli.switches()),
          {.maxPorts = static_cast<unsigned>(cli.ports())}, rng);
      util::Rng treeRng(cli.seed() + 100 + static_cast<std::uint64_t>(sample));
      const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
          topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
      const routing::Routing routing =
          core::buildRouting(algorithm, topo, ct, &pool);

      const routing::PathAnalysis analysis =
          routing::analyzePaths(routing.table());
      bottleneckSum += analysis.maxLoad / analysis.meanLoad;
      pathSum += analysis.meanPathCount;
      adaptSum += routing::averageAdaptivity(routing.table());

      sim::SimConfig config = cli.simConfig();
      config.seed = cli.seed() + 500 + static_cast<std::uint64_t>(sample);
      const sim::UniformTraffic traffic(topo.nodeCount());
      // The last sample per algorithm carries the optional observability
      // artifacts (--metrics-out / --timeseries-out).
      std::unique_ptr<obs::Observer> observer;
      if (cli.wantsObserver() && sample + 1 == cli.samples()) {
        obs::ObsOptions obsOptions;
        cli.applyObsOutputs(obsOptions);
        observer = std::make_unique<obs::Observer>(obsOptions, topo, &ct);
        config.observer = observer.get();
      }
      // Below saturation so queueing does not distort the comparison.
      const sim::RunStats stats = sim::simulate(
          routing.table(), traffic, 0.01 * cli.ports(), config);
      corrSum += pearson(analysis.expectedLoad, stats.channelUtilization);
      if (observer != nullptr) {
        cli.writeObsArtifacts(*observer, &topo, config.measureCycles,
                              config.warmupCycles + config.measureCycles,
                              std::string(core::toString(algorithm)));
      }
    }
    const auto inv = 1.0 / static_cast<double>(cli.samples());
    std::cout << std::left << std::setw(20) << core::toString(algorithm)
              << std::setw(12) << std::fixed << std::setprecision(4)
              << corrSum * inv << std::setw(16) << bottleneckSum * inv
              << std::setw(12) << std::setprecision(2) << pathSum * inv
              << std::setw(12) << adaptSum * inv << "\n";
  }
  std::cout << "\n(corr: Pearson correlation between predicted channel load "
               "and simulated\nutilization at low load; staticMax/Mean: "
               "bottleneck channel factor — lower is\nbetter balanced; "
               "meanPaths: avg number of minimal legal paths per pair)\n";
  return 0;
}
