// Shared command-line plumbing for the experiment benches.  Every bench
// runs a reduced-but-representative configuration by default (finishes in
// seconds on one core) and switches to the paper's 128-switch / 10-sample
// setup with --full.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>

#include "stats/experiment.hpp"
#include "stats/report.hpp"
#include "util/cli.hpp"

namespace downup::bench {

class ExperimentCli {
 public:
  ExperimentCli(std::string program, std::string description)
      : cli_(std::move(program), std::move(description)) {
    switches_ = cli_.positiveOption<int>("switches", 32, "number of switches (paper: 128)");
    samples_ = cli_.positiveOption<int>("samples", 3,
                                "random topologies per configuration (paper: 10)");
    ports_ = cli_.option<int>("ports", 0,
                              "restrict to one port count (4 or 8); 0 = both");
    loadPoints_ = cli_.positiveOption<int>("load-points", 8, "offered-load sweep points");
    maxLoadPerPort_ = cli_.option<double>(
        "max-load-per-port", 0.06,
        "sweep upper bound = this x ports (flits/node/clk)");
    packetLen_ = cli_.positiveOption<int>("packet-flits", 128, "packet length in flits");
    warmup_ = cli_.option<int>("warmup", 3000, "warm-up cycles");
    measure_ = cli_.positiveOption<int>("measure", 12000, "measured cycles");
    seed_ = cli_.option<std::uint64_t>("seed", 2004, "base RNG seed");
    csv_ = cli_.option<std::string>(
        "csv", "", "CSV output path prefix (empty = no CSV files)");
    threads_ = cli_.positiveOption<int>(
        "threads", defaultThreads(),
        "worker threads for parallel sweeps and table construction");
    full_ = cli_.flag("full",
                      "run the paper-scale configuration "
                      "(128 switches, 10 samples, long windows)");
    quiet_ = cli_.flag("quiet", "suppress progress lines on stderr");
  }

  util::Cli& cli() { return cli_; }

  /// Default worker-thread count: every hardware thread (results are
  /// identical at any width — parallelism only partitions deterministic
  /// work).  hardware_concurrency() may report 0; clamp to 1.
  static int defaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(hw == 0 ? 1 : hw);
  }

  stats::ExperimentConfig parse(int argc, const char* const* argv) {
    cli_.parse(argc, argv);
    stats::ExperimentConfig config;
    if (*full_) {
      config = stats::ExperimentConfig::paperScale();
    } else {
      config.switches = static_cast<topo::NodeId>(*switches_);
      config.samples = static_cast<unsigned>(*samples_);
      config.loadPoints = static_cast<unsigned>(*loadPoints_);
      config.sim.warmupCycles = static_cast<std::uint32_t>(*warmup_);
      config.sim.measureCycles = static_cast<std::uint32_t>(*measure_);
      config.sim.packetLengthFlits = static_cast<std::uint32_t>(*packetLen_);
    }
    config.maxLoadPerPort = *maxLoadPerPort_;
    config.baseSeed = *seed_;
    config.verbose = !*quiet_;
    config.threads = static_cast<unsigned>(*threads_);
    if (*ports_ == 4 || *ports_ == 8) {
      config.portConfigs = {static_cast<unsigned>(*ports_)};
    }
    return config;
  }

  const std::string& csvPrefix() const { return *csv_; }

  /// Emits the standard CSV pair when --csv was given.
  void maybeWriteCsv(const stats::ExperimentResults& results) const {
    if (csv_->empty()) return;
    stats::writeMetricsCsv(results, *csv_ + "_metrics.csv");
    stats::writeCurvesCsv(results, *csv_ + "_curves.csv");
  }

 private:
  util::Cli cli_;
  std::shared_ptr<int> switches_;
  std::shared_ptr<int> samples_;
  std::shared_ptr<int> ports_;
  std::shared_ptr<int> loadPoints_;
  std::shared_ptr<double> maxLoadPerPort_;
  std::shared_ptr<int> packetLen_;
  std::shared_ptr<int> warmup_;
  std::shared_ptr<int> measure_;
  std::shared_ptr<std::uint64_t> seed_;
  std::shared_ptr<std::string> csv_;
  std::shared_ptr<int> threads_;
  std::shared_ptr<bool> full_;
  std::shared_ptr<bool> quiet_;
};

/// Prints the paper's published numbers next to ours for one table, so the
/// shape comparison is immediate.  `paper` is row-major over
/// (policy M1..M3) x (lturn 4p, lturn 8p, downup 4p, downup 8p).
inline void printPaperReference(std::ostream& out, std::string_view caption,
                                const double (&paper)[3][4],
                                std::string_view suffix = "") {
  out << "\npaper reference (" << caption << "):\n";
  static constexpr const char* kRows[3] = {"M1", "M2", "M3"};
  static constexpr const char* kCols[4] = {"lturn 4p", "lturn 8p",
                                           "downup 4p", "downup 8p"};
  out << "      ";
  for (const char* col : kCols) out << col << "\t";
  out << "\n";
  for (int r = 0; r < 3; ++r) {
    out << kRows[r] << "    ";
    for (int c = 0; c < 4; ++c) out << paper[r][c] << suffix << "\t";
    out << "\n";
  }
}

}  // namespace downup::bench
