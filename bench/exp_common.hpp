// Shared command-line plumbing for the experiment benches.  Every bench
// runs a reduced-but-representative configuration by default (finishes in
// seconds on one core) and switches to the paper's 128-switch / 10-sample
// setup with --full.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <string>
#include <thread>

#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "sim/config.hpp"
#include "stats/experiment.hpp"
#include "stats/report.hpp"
#include "topology/topology.hpp"
#include "util/cli.hpp"

namespace downup::bench {

class ExperimentCli {
 public:
  ExperimentCli(std::string program, std::string description)
      : cli_(std::move(program), std::move(description)) {
    switches_ = cli_.positiveOption<int>("switches", 32, "number of switches (paper: 128)");
    samples_ = cli_.positiveOption<int>("samples", 3,
                                "random topologies per configuration (paper: 10)");
    ports_ = cli_.option<int>("ports", 0,
                              "restrict to one port count (4 or 8); 0 = both");
    loadPoints_ = cli_.positiveOption<int>("load-points", 8, "offered-load sweep points");
    maxLoadPerPort_ = cli_.option<double>(
        "max-load-per-port", 0.06,
        "sweep upper bound = this x ports (flits/node/clk)");
    packetLen_ = cli_.positiveOption<int>("packet-flits", 128, "packet length in flits");
    warmup_ = cli_.option<int>("warmup", 3000, "warm-up cycles");
    measure_ = cli_.positiveOption<int>("measure", 12000, "measured cycles");
    seed_ = cli_.option<std::uint64_t>("seed", 2004, "base RNG seed");
    csv_ = cli_.option<std::string>(
        "csv", "", "CSV output path prefix (empty = no CSV files)");
    threads_ = cli_.positiveOption<int>(
        "threads", defaultThreads(),
        "worker threads for parallel sweeps and table construction");
    full_ = cli_.flag("full",
                      "run the paper-scale configuration "
                      "(128 switches, 10 samples, long windows)");
    quiet_ = cli_.flag("quiet", "suppress progress lines on stderr");
  }

  util::Cli& cli() { return cli_; }

  /// Default worker-thread count: every hardware thread (results are
  /// identical at any width — parallelism only partitions deterministic
  /// work).  hardware_concurrency() may report 0; clamp to 1.
  static int defaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(hw == 0 ? 1 : hw);
  }

  stats::ExperimentConfig parse(int argc, const char* const* argv) {
    cli_.parse(argc, argv);
    stats::ExperimentConfig config;
    if (*full_) {
      config = stats::ExperimentConfig::paperScale();
    } else {
      config.switches = static_cast<topo::NodeId>(*switches_);
      config.samples = static_cast<unsigned>(*samples_);
      config.loadPoints = static_cast<unsigned>(*loadPoints_);
      config.sim.warmupCycles = static_cast<std::uint32_t>(*warmup_);
      config.sim.measureCycles = static_cast<std::uint32_t>(*measure_);
      config.sim.packetLengthFlits = static_cast<std::uint32_t>(*packetLen_);
    }
    config.maxLoadPerPort = *maxLoadPerPort_;
    config.baseSeed = *seed_;
    config.verbose = !*quiet_;
    config.threads = static_cast<unsigned>(*threads_);
    if (*ports_ == 4 || *ports_ == 8) {
      config.portConfigs = {static_cast<unsigned>(*ports_)};
    }
    return config;
  }

  const std::string& csvPrefix() const { return *csv_; }

  /// Emits the standard CSV pair when --csv was given.
  void maybeWriteCsv(const stats::ExperimentResults& results) const {
    if (csv_->empty()) return;
    stats::writeMetricsCsv(results, *csv_ + "_metrics.csv");
    stats::writeCurvesCsv(results, *csv_ + "_curves.csv");
  }

 private:
  util::Cli cli_;
  std::shared_ptr<int> switches_;
  std::shared_ptr<int> samples_;
  std::shared_ptr<int> ports_;
  std::shared_ptr<int> loadPoints_;
  std::shared_ptr<double> maxLoadPerPort_;
  std::shared_ptr<int> packetLen_;
  std::shared_ptr<int> warmup_;
  std::shared_ptr<int> measure_;
  std::shared_ptr<std::uint64_t> seed_;
  std::shared_ptr<std::string> csv_;
  std::shared_ptr<int> threads_;
  std::shared_ptr<bool> full_;
  std::shared_ptr<bool> quiet_;
};

/// Per-bench defaults for ScenarioCli.  Set `samples` to 0 to omit the
/// --samples option, `topology` to false to omit --switches/--ports (the
/// mesh bench sizes its own grid), and `obsOutputs` to false for benches
/// whose inner loop is a load sweep with no single instrumentable run.
struct ScenarioDefaults {
  int switches = 32;
  int ports = 4;
  int samples = 0;
  std::uint64_t seed = 2004;
  int packetFlits = 64;
  int warmup = 2000;
  int measure = 8000;
  bool topology = true;
  bool obsOutputs = true;
};

/// Shared flags for the single-scenario benches (the ones that run a fixed
/// set of configurations rather than ExperimentCli's full load sweep):
/// topology size, simulation window, threads, and the uniform observability
/// outputs --metrics-out / --timeseries-out every instrumented bench
/// accepts.  Bench-specific options register on `cli()` before `parse()`.
class ScenarioCli {
 public:
  ScenarioCli(std::string program, std::string description,
              ScenarioDefaults defaults = {})
      : cli_(std::move(program), std::move(description)),
        defaults_(defaults) {
    if (defaults.topology) {
      switches_ = cli_.positiveOption<int>("switches", defaults.switches,
                                           "number of switches");
      ports_ = cli_.positiveOption<int>("ports", defaults.ports,
                                        "ports per switch");
    }
    if (defaults.samples > 0) {
      samples_ = cli_.positiveOption<int>("samples", defaults.samples,
                                          "random topologies");
    }
    seed_ = cli_.option<std::uint64_t>("seed", defaults.seed, "base seed");
    packetFlits_ = cli_.positiveOption<int>("packet-flits",
                                            defaults.packetFlits,
                                            "packet length in flits");
    warmup_ = cli_.option<int>("warmup", defaults.warmup, "warm-up cycles");
    measure_ = cli_.positiveOption<int>("measure", defaults.measure,
                                        "measured cycles");
    threads_ = cli_.positiveOption<int>(
        "threads", ExperimentCli::defaultThreads(),
        "worker threads for table construction and parallel sweeps");
    if (defaults.obsOutputs) {
      metricsOut_ = cli_.option<std::string>(
          "metrics-out", "",
          "metrics JSONL path prefix (.LABEL.jsonl appended)");
      timeseriesOut_ = cli_.option<std::string>(
          "timeseries-out", "",
          "time-series path prefix (.LABEL.{csv,jsonl,trace.json} appended)");
      timeseriesWindow_ = cli_.positiveOption<int>(
          "timeseries-window", 1024, "time-series window length in cycles");
      waitforPeriod_ = cli_.option<int>(
          "waitfor-period", 0,
          "wait-for-graph sample period in cycles (0 = off)");
      spansOut_ = cli_.option<std::string>(
          "spans-out", "",
          "control-plane span path prefix (.LABEL.{jsonl,trace.json} "
          "appended)");
    }
  }

  util::Cli& cli() { return cli_; }

  void parse(int argc, const char* const* argv) { cli_.parse(argc, argv); }

  int switches() const { return switches_ ? *switches_ : defaults_.switches; }
  int ports() const { return ports_ ? *ports_ : defaults_.ports; }
  int samples() const { return samples_ ? *samples_ : defaults_.samples; }
  std::uint64_t seed() const { return *seed_; }
  int packetFlits() const { return *packetFlits_; }
  int warmup() const { return *warmup_; }
  int measure() const { return *measure_; }
  int threads() const { return *threads_; }
  const std::string& metricsOut() const {
    static const std::string kEmpty;
    return metricsOut_ ? *metricsOut_ : kEmpty;
  }
  const std::string& timeseriesOut() const {
    static const std::string kEmpty;
    return timeseriesOut_ ? *timeseriesOut_ : kEmpty;
  }
  int timeseriesWindow() const {
    return timeseriesWindow_ ? *timeseriesWindow_ : 1024;
  }
  int waitforPeriod() const {
    return waitforPeriod_ ? *waitforPeriod_ : 0;
  }
  const std::string& spansOut() const {
    static const std::string kEmpty;
    return spansOut_ ? *spansOut_ : kEmpty;
  }

  /// SimConfig with the shared window/packet knobs filled in.  The seed is
  /// left at its default — benches derive per-sample seeds from seed().
  sim::SimConfig simConfig() const {
    sim::SimConfig config;
    config.packetLengthFlits = static_cast<std::uint32_t>(*packetFlits_);
    config.warmupCycles = static_cast<std::uint32_t>(*warmup_);
    config.measureCycles = static_cast<std::uint64_t>(*measure_);
    return config;
  }

  /// True when any --metrics-out / --timeseries-out / --spans-out artifact
  /// was requested (attaching an observer is only worth the hook overhead
  /// then).
  bool wantsObserver() const {
    return metricsOut_ && timeseriesOut_ &&
           (!metricsOut_->empty() || !timeseriesOut_->empty() ||
            !spansOut_->empty());
  }

  /// Enables the collectors the requested outputs need.
  void applyObsOutputs(obs::ObsOptions& options) const {
    if (!metricsOut_) return;
    if (!metricsOut_->empty()) options.metrics = true;
    if (!timeseriesOut_->empty()) {
      options.timeseriesWindowCycles =
          static_cast<std::uint32_t>(*timeseriesWindow_);
    }
    options.waitForSamplePeriod = static_cast<std::uint32_t>(
        *waitforPeriod_ < 0 ? 0 : *waitforPeriod_);
    if (!spansOut_->empty()) options.controlPlaneSpans = true;
  }

  /// Writes the uniform artifacts for one labelled run: the metrics JSONL
  /// and the time-series CSV + JSONL + Perfetto trace, each only when its
  /// prefix option was given and its collector is attached.  `finishCycle`
  /// (usually net.now()) flushes the partial last window first.
  void writeObsArtifacts(obs::Observer& observer, const topo::Topology* topo,
                         std::uint64_t measuredCycles,
                         std::uint64_t finishCycle,
                         const std::string& label) const {
    if (!metricsOut_) return;
    const auto dotted = [&label](const std::string& prefix,
                                 const char* suffix) {
      return label.empty() ? prefix + suffix : prefix + "." + label + suffix;
    };
    if (!metricsOut_->empty() && observer.metrics() != nullptr) {
      const std::string path = dotted(*metricsOut_, ".jsonl");
      std::ofstream out(path);
      obs::writeMetricsJsonl(*observer.metrics(), topo, measuredCycles, out);
      std::cout << "wrote " << path << "\n";
    }
    if (!timeseriesOut_->empty() && observer.timeseries() != nullptr) {
      obs::TimeSeriesCollector& series = *observer.timeseries();
      series.finish(finishCycle);
      {
        std::ofstream out(dotted(*timeseriesOut_, ".csv"));
        obs::writeTimeSeriesCsv(series, out);
      }
      {
        std::ofstream out(dotted(*timeseriesOut_, ".jsonl"));
        obs::writeTimeSeriesJsonl(series, observer.waitFor(), out);
      }
      {
        std::ofstream out(dotted(*timeseriesOut_, ".trace.json"));
        obs::writeTimeSeriesChromeTrace(series, out);
      }
      std::cout << "wrote " << dotted(*timeseriesOut_, ".{csv,jsonl,trace.json}")
                << "\n";
    }
    if (!spansOut_->empty() && observer.controlPlaneSpans() != nullptr) {
      writeSpans(*observer.controlPlaneSpans(), label);
    }
  }

  /// Writes the control-plane span artifacts (JSONL + Perfetto trace) for
  /// one labelled recorder; usable with a standalone SpanRecorder too (the
  /// service-mode benches record spans without an Observer).
  void writeSpans(const obs::SpanRecorder& spans,
                  const std::string& label) const {
    if (!spansOut_ || spansOut_->empty()) return;
    const auto dotted = [&label, this](const char* suffix) {
      return label.empty() ? *spansOut_ + suffix
                           : *spansOut_ + "." + label + suffix;
    };
    {
      std::ofstream out(dotted(".jsonl"));
      obs::writeSpansJsonl(spans, out);
    }
    {
      std::ofstream out(dotted(".trace.json"));
      obs::writeSpansChromeTrace(spans, out);
    }
    std::cout << "wrote " << dotted(".{jsonl,trace.json}") << "\n";
  }

 private:
  util::Cli cli_;
  ScenarioDefaults defaults_;
  std::shared_ptr<int> switches_;
  std::shared_ptr<int> ports_;
  std::shared_ptr<int> samples_;
  std::shared_ptr<std::uint64_t> seed_;
  std::shared_ptr<int> packetFlits_;
  std::shared_ptr<int> warmup_;
  std::shared_ptr<int> measure_;
  std::shared_ptr<int> threads_;
  std::shared_ptr<std::string> metricsOut_;
  std::shared_ptr<std::string> timeseriesOut_;
  std::shared_ptr<int> timeseriesWindow_;
  std::shared_ptr<int> waitforPeriod_;
  std::shared_ptr<std::string> spansOut_;
};

/// Prints the paper's published numbers next to ours for one table, so the
/// shape comparison is immediate.  `paper` is row-major over
/// (policy M1..M3) x (lturn 4p, lturn 8p, downup 4p, downup 8p).
inline void printPaperReference(std::ostream& out, std::string_view caption,
                                const double (&paper)[3][4],
                                std::string_view suffix = "") {
  out << "\npaper reference (" << caption << "):\n";
  static constexpr const char* kRows[3] = {"M1", "M2", "M3"};
  static constexpr const char* kCols[4] = {"lturn 4p", "lturn 8p",
                                           "downup 4p", "downup 8p"};
  out << "      ";
  for (const char* col : kCols) out << col << "\t";
  out << "\n";
  for (int r = 0; r < 3; ++r) {
    out << kRows[r] << "    ";
    for (int c = 0; c < 4; ++c) out << paper[r][c] << suffix << "\t";
    out << "\n";
  }
}

}  // namespace downup::bench
