// Adversarial saturation surfaces under fault churn, with the independent
// deadlock oracle gating every routing the run ever publishes.
//
// For each routing algorithm (DOWN/UP and the L-turn comparison rule) and
// each adversarial traffic pattern (uniform baseline, tornado, root-directed
// hotspot storm, bursty MMPP), the bench sweeps offered load across the
// saturation point while a seeded link-failure schedule churns the
// topology.  Every cell runs with an OracleGate attached: table builds,
// reconfiguration merges, epoch publishes and the engine's two
// mid-reconfiguration snapshots are all cross-validated against the
// peeling oracle (src/verify/).  The bench FAILS (exit 1) on any oracle
// violation, any undrained cell or any watchdog deadlock — it is the
// standing adversarial-robustness assertion CI runs.
//
// Cells run SERIALLY by design: the storm/MMPP patterns carry mutable
// modulation state, and serial cells make the oracle's audit ledger
// attributable per cell.
//
//   --out FILE   writes the saturation-vs-pattern surface as CSV
//                (results/adversarial_surface_128.csv is the checked-in
//                128-switch dataset)
//
//   ./exp_adversarial --switches 128 --failures 2 --out results/adversarial_surface_128.csv
#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "fault/schedule.hpp"
#include "sim/network.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/thread_pool.hpp"
#include "verify/gate.hpp"

namespace {

using namespace downup;

struct CellResult {
  std::string algorithm;
  std::string pattern;
  double offered = 0.0;
  double accepted = 0.0;
  double avgLatency = 0.0;
  double p99Latency = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t reconfigurations = 0;
  bool drained = false;
  bool deadlocked = false;
  std::uint64_t oracleAudits = 0;  // audits this cell contributed
};

/// Fresh pattern per cell: the modulating patterns carry evolution state,
/// so sharing one across cells would entangle their runs.
std::unique_ptr<sim::TrafficPattern> makePattern(
    const std::string& name, const topo::Topology& topo,
    const tree::CoordinatedTree& ct, std::uint64_t seed) {
  const topo::NodeId n = topo.nodeCount();
  if (name == "uniform") return std::make_unique<sim::UniformTraffic>(n);
  if (name == "tornado") return std::make_unique<sim::TornadoTraffic>(n);
  if (name == "hotspot-storm") {
    // Storm targets: the coordinated tree's root and its neighbors — the
    // switches whose channels the DOWN/UP rule already concentrates.
    std::vector<topo::NodeId> targets{ct.root()};
    for (const topo::NodeId v : topo.neighbors(ct.root())) {
      targets.push_back(v);
    }
    return std::make_unique<sim::HotspotStormTraffic>(
        n, std::move(targets), /*stormFraction=*/0.3, /*surge=*/2.0,
        /*onMeanCycles=*/200, /*offMeanCycles=*/600, seed);
  }
  if (name == "mmpp") {
    // Duty cycle 1/4 at 4x keeps the mean offered load equal to the base
    // rate, so cells stay comparable across patterns.
    return std::make_unique<sim::MmppTraffic>(sim::MmppTraffic::onOff(
        n, /*burst=*/4.0, /*onMeanCycles=*/150, /*offMeanCycles=*/450, seed));
  }
  throw std::invalid_argument("unknown pattern " + name);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScenarioCli cli(
      "exp_adversarial",
      "oracle-gated saturation surfaces under adversarial traffic + fault "
      "churn (DOWN/UP vs L-turn)",
      {.packetFlits = 32, .warmup = 2000, .measure = 8000,
       .obsOutputs = false});
  auto failures = cli.cli().option<int>(
      "failures", 2, "seeded link failures churned into every cell");
  auto latency = cli.cli().positiveOption<int>(
      "reconfig-latency", 200, "cycles from fault to routing hot-swap");
  auto loadPoints = cli.cli().positiveOption<int>(
      "load-points", 5, "offered-load sweep points per (algorithm, pattern)");
  auto outPath = cli.cli().option<std::string>(
      "out", "", "surface CSV path (empty = stdout only)");
  auto dumpPrefix = cli.cli().option<std::string>(
      "oracle-dump", "",
      "replay-case path prefix for oracle violations (.caseN.jsonl)");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(cli.threads()));

  util::Rng rng(cli.seed());
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(cli.switches()),
      {.maxPorts = static_cast<unsigned>(cli.ports())}, rng);
  util::Rng treeRng(cli.seed() + 100);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);

  // One gate for the whole surface: every table build in the process (the
  // hook), every reconfiguration merge, every epoch publish and both
  // mid-reconfiguration snapshots of every cell land in its ledger.
  verify::OracleGate::Options gateOptions;
  gateOptions.dumpPathPrefix = *dumpPrefix;
  verify::OracleGate gate(gateOptions);
  gate.installBuildHook();

  const sim::UniformTraffic probeTraffic(topo.nodeCount());
  sim::SimConfig baseConfig = cli.simConfig();
  baseConfig.reconfigLatencyCycles = static_cast<std::uint32_t>(*latency);
  baseConfig.oracleGate = &gate;

  struct Alg {
    const char* name;
    core::Algorithm algorithm;
  };
  const Alg algs[] = {{"downup", core::Algorithm::kDownUp},
                      {"lturn", core::Algorithm::kLTurn}};
  const char* patterns[] = {"uniform", "tornado", "hotspot-storm", "mmpp"};

  const int measure = cli.measure();
  const std::uint64_t firstFault = baseConfig.warmupCycles + measure / 5;
  const std::uint64_t faultStep =
      *failures > 1 ? std::max<std::uint64_t>(
                          (measure * 7ull / 10) /
                              static_cast<std::uint64_t>(*failures),
                          static_cast<std::uint64_t>(*latency) + 1)
                    : 1;
  const fault::FaultSchedule schedule =
      fault::FaultSchedule::randomLinkFailures(
          topo, static_cast<unsigned>(*failures < 0 ? 0 : *failures),
          firstFault, faultStep, cli.seed() + 500);

  std::cout << cli.switches() << " switches, " << topo.linkCount()
            << " links; " << schedule.size()
            << " churned link failure(s) per cell; oracle gate ON\n\n";

  std::vector<CellResult> cells;
  bool ok = true;
  for (const Alg& alg : algs) {
    const routing::Routing routing =
        core::buildRouting(alg.algorithm, topo, ct, &pool);
    const double saturation = stats::probeSaturationLoad(
        routing.table(), probeTraffic, baseConfig);
    std::cout << alg.name << ": saturation ~" << std::fixed
              << std::setprecision(4) << saturation << " flits/node/clock\n";

    for (const char* patternName : patterns) {
      for (int p = 0; p < *loadPoints; ++p) {
        // 0.3x .. 1.2x of the algorithm's uniform saturation point: the
        // surface shows where each pattern actually collapses.
        const double frac =
            0.3 + (1.2 - 0.3) * (*loadPoints == 1
                                     ? 1.0
                                     : static_cast<double>(p) /
                                           (*loadPoints - 1));
        const double load = std::min(1.0, frac * saturation);

        const auto pattern = makePattern(
            patternName, topo, ct,
            cli.seed() + 900 + static_cast<std::uint64_t>(p));
        sim::SimConfig config = baseConfig;
        config.faultSchedule = &schedule;
        config.seed = cli.seed() + 300 + static_cast<std::uint64_t>(p);

        const std::uint64_t auditsBefore = gate.audits();
        sim::WormholeNetwork net(routing.table(), *pattern, load, config);
        net.run();
        const bool drained = net.drainRemaining(200000);
        const sim::RunStats stats = net.collectStats();

        CellResult cell;
        cell.algorithm = alg.name;
        cell.pattern = patternName;
        cell.offered = load;
        cell.accepted = stats.acceptedFlitsPerNodePerCycle;
        cell.avgLatency = stats.avgLatency;
        cell.p99Latency = stats.p99Latency;
        cell.dropped = stats.packetsDroppedTotal();
        cell.reconfigurations = stats.reconfigurations;
        cell.drained = drained;
        cell.deadlocked = net.deadlocked();
        cell.oracleAudits = gate.audits() - auditsBefore;
        cells.push_back(cell);

        if (!drained || net.deadlocked()) ok = false;
      }
    }
  }

  const auto writeSurface = [&cells](std::ostream& out) {
    out << "algorithm,pattern,offered_load,accepted_flits_per_node_per_cycle,"
           "avg_latency,p99_latency,packets_dropped,reconfigurations,"
           "drained,oracle_audits\n";
    for (const CellResult& c : cells) {
      out << c.algorithm << ',' << c.pattern << ',' << std::fixed
          << std::setprecision(6) << c.offered << ',' << c.accepted << ','
          << std::setprecision(2) << c.avgLatency << ',' << c.p99Latency
          << ',' << c.dropped << ',' << c.reconfigurations << ','
          << (c.drained ? 1 : 0) << ',' << c.oracleAudits << "\n";
    }
  };
  if (!outPath->empty()) {
    std::ofstream out(*outPath);
    writeSurface(out);
    std::cout << "\nwrote " << *outPath << "\n";
  }

  std::cout << "\n" << std::left << std::setw(9) << "alg" << std::setw(15)
            << "pattern" << std::setw(10) << "offered" << std::setw(10)
            << "accepted" << std::setw(10) << "p99" << std::setw(8)
            << "drained" << "audits\n";
  for (const CellResult& c : cells) {
    std::cout << std::left << std::setw(9) << c.algorithm << std::setw(15)
              << c.pattern << std::setw(10) << std::fixed
              << std::setprecision(4) << c.offered << std::setw(10)
              << c.accepted << std::setw(10) << std::setprecision(1)
              << c.p99Latency << std::setw(8) << (c.drained ? "yes" : "NO")
              << c.oracleAudits << "\n";
  }

  std::cout << "\noracle: " << gate.audits() << " audits ("
            << gate.auditsAt("table_build") << " table_build, "
            << gate.auditsAt("reconfig_full") << " reconfig_full, "
            << gate.auditsAt("reconfig_incremental") << " reconfig_incr, "
            << gate.auditsAt("epoch_publish") << " epoch_publish, "
            << gate.auditsAt("mid_reconfig_quarantine") << " quarantine, "
            << gate.auditsAt("mid_reconfig_preswap") << " preswap), "
            << gate.violations() << " violation(s)\n";
  if (gate.violations() != 0) {
    ok = false;
    if (!gate.lastCasePath().empty()) {
      std::cout << "last replay case: " << gate.lastCasePath() << "\n";
    }
    std::cout << gate.lastViolation().describe() << "\n";
  }
  if (schedule.size() > 0 && gate.auditsAt("mid_reconfig_quarantine") == 0) {
    std::cout << "ERROR: fault churn ran but no quarantine state was "
                 "audited\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
