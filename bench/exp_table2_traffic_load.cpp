// Reproduces Table 2 of the paper: traffic load (the standard deviation of
// node utilization over all switches) at peak throughput — lower means a
// better-balanced network.
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ExperimentCli cli("exp_table2_traffic_load",
                           "Table 2: traffic load (std-dev of node "
                           "utilization) at peak throughput");
  const stats::ExperimentConfig config = cli.parse(argc, argv);
  const stats::ExperimentResults results = stats::runExperiment(config);

  stats::printPaperTable(
      std::cout, "Table 2. Traffic load (std-dev of node utilization)",
      results,
      [](const stats::Cell& cell) { return cell.trafficLoad.mean(); });

  static constexpr double kPaper[3][4] = {
      {0.078314, 0.048727, 0.077657, 0.043990},
      {0.081115, 0.050460, 0.078501, 0.047316},
      {0.083969, 0.053392, 0.078047, 0.049796},
  };
  bench::printPaperReference(std::cout, "Table 2, traffic load", kPaper);
  cli.maybeWriteCsv(results);
  return 0;
}
