// Reproduces Table 1 of the paper: average node utilization at each
// algorithm's peak throughput, for L-turn vs DOWN/UP over trees M1/M2/M3
// and 4-/8-port irregular 128-switch networks.
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ExperimentCli cli(
      "exp_table1_node_util",
      "Table 1: average node utilization at peak throughput");
  const stats::ExperimentConfig config = cli.parse(argc, argv);
  const stats::ExperimentResults results = stats::runExperiment(config);

  stats::printPaperTable(
      std::cout, "Table 1. Average node utilization (flits/clock/port)",
      results,
      [](const stats::Cell& cell) { return cell.nodeUtilization.mean(); });

  // Paper Table 1 values: higher is better; DOWN/UP > L-turn everywhere.
  static constexpr double kPaper[3][4] = {
      {0.115772, 0.123159, 0.123295, 0.147124},
      {0.108101, 0.111653, 0.121793, 0.139588},
      {0.095841, 0.092198, 0.120955, 0.126071},
  };
  bench::printPaperReference(std::cout, "Table 1, node utilization", kPaper);
  cli.maybeWriteCsv(results);
  return 0;
}
