// Anti-hot-spot observability experiment: runs DOWN/UP and L-turn on the
// 128-switch reference topology near saturation with the metrics registry
// attached, and prints their per-tree-level blocked-cycle histograms side
// by side — the paper's "traffic concentrates at the root" claim, measured
// directly instead of inferred from throughput.
//
// Each algorithm also gets a full hotspot report (top blocked nodes with
// dominant turns, turn-usage table with the released turns marked) and,
// optionally, machine-readable artifacts:
//
//   --metrics-out PREFIX     writes PREFIX.downup.jsonl / PREFIX.lturn.jsonl
//   --timeseries-out PREFIX  writes PREFIX.<algo>.{csv,jsonl,trace.json}
//   --heatmap-out PREFIX     writes PREFIX.downup.dot / PREFIX.lturn.dot
//                            (render with `dot -Tsvg`)
//
//   ./exp_obs_hotspot --switches 128 --ports 4 --load-frac 0.9
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "stats/report.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "tree/graphviz.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace downup;

struct AlgoRun {
  const char* name;
  core::Algorithm algorithm;
  double saturationLoad = 0.0;
  double offeredLoad = 0.0;
  sim::RunStats stats;
  std::vector<std::uint64_t> levelFlits;
  std::vector<std::uint64_t> levelBlocked;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ScenarioCli cli(
      "exp_obs_hotspot",
      "per-tree-level congestion histograms, DOWN/UP vs L-turn",
      {.switches = 128,
       .seed = 7,
       .packetFlits = 32,
       .warmup = 5000,
       .measure = 30000});
  auto loadFrac = cli.cli().option<double>(
      "load-frac", 0.9, "offered load as a fraction of probed saturation");
  auto topN =
      cli.cli().positiveOption<int>("top", 8, "nodes in the top-blocked table");
  auto heatmapOut = cli.cli().option<std::string>(
      "heatmap-out", "", "Graphviz heatmap prefix (.downup/.lturn appended)");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(cli.threads()));

  util::Rng rng(cli.seed());
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(cli.switches()),
      {.maxPorts = static_cast<unsigned>(cli.ports())}, rng);
  util::Rng treeRng(cli.seed() + 1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const sim::UniformTraffic traffic(topo.nodeCount());

  sim::SimConfig config = cli.simConfig();
  config.seed = cli.seed() + 2;

  std::cout << "network: " << topo.nodeCount() << " switches / "
            << topo.linkCount() << " links, M1 tree root " << ct.root()
            << ", uniform traffic, " << cli.packetFlits()
            << "-flit packets\n";

  AlgoRun runs[] = {{"downup", core::Algorithm::kDownUp},
                    {"lturn", core::Algorithm::kLTurn}};
  for (AlgoRun& run : runs) {
    const routing::Routing routing =
        core::buildRouting(run.algorithm, topo, ct, &pool);
    run.saturationLoad =
        stats::probeSaturationLoad(routing.table(), traffic, config);
    run.offeredLoad = *loadFrac * run.saturationLoad;

    obs::ObsOptions obsOptions{.metrics = true};
    cli.applyObsOutputs(obsOptions);
    obs::Observer observer(obsOptions, topo, &ct);
    sim::SimConfig obsConfig = config;
    obsConfig.observer = &observer;
    sim::WormholeNetwork net(routing.table(), traffic, run.offeredLoad,
                             obsConfig);
    run.stats = net.run();
    const std::uint64_t finishCycle = net.now();
    const obs::MetricsRegistry& metrics = *observer.metrics();
    run.levelFlits.assign(metrics.levelFlits().begin(),
                          metrics.levelFlits().end());
    run.levelBlocked.assign(metrics.levelBlockedCycles().begin(),
                            metrics.levelBlockedCycles().end());

    std::cout << "\n=== " << run.name << "  (saturation ~"
              << std::setprecision(4) << std::fixed << run.saturationLoad
              << ", offered " << run.offeredLoad << " flits/node/cycle, "
              << "accepted " << run.stats.acceptedFlitsPerNodePerCycle
              << ", avg latency " << std::setprecision(0)
              << run.stats.avgLatency << ") ===\n\n";
    stats::printHotspotReport(std::cout, metrics,
                              static_cast<std::size_t>(*topN));

    std::cout << "\n";
    cli.writeObsArtifacts(observer, &topo, obsConfig.measureCycles,
                          finishCycle, run.name);
    if (!heatmapOut->empty()) {
      const std::vector<double> utilization =
          metrics.channelUtilization(obsConfig.measureCycles);
      std::vector<std::uint64_t> blockedPerNode(topo.nodeCount());
      for (topo::NodeId v = 0; v < topo.nodeCount(); ++v) {
        blockedPerNode[v] = metrics.nodeBlockedCycles(v);
      }
      const std::string path = *heatmapOut + "." + run.name + ".dot";
      std::ofstream out(path);
      tree::exportGraphvizHeatmap(
          topo, ct, {.channelUtilization = utilization,
                     .nodeBlockedCycles = blockedPerNode},
          out);
      std::cout << "wrote " << path << "\n";
    }
  }

  // The headline comparison: blocked cycles per node at each tree level.
  std::cout << "\n=== per-level blocked cycles per node, side by side ===\n\n";
  std::cout << std::left << std::setw(8) << "level" << std::right
            << std::setw(16) << "downup" << std::setw(16) << "lturn"
            << std::setw(16) << "downup flits" << std::setw(16)
            << "lturn flits" << "\n";
  const std::size_t levels =
      std::max(runs[0].levelBlocked.size(), runs[1].levelBlocked.size());
  std::vector<std::uint32_t> population(levels, 0);
  for (topo::NodeId v = 0; v < topo.nodeCount(); ++v) {
    ++population[ct.y(v)];
  }
  for (std::size_t level = 0; level < levels; ++level) {
    const double nodes = std::max<std::uint32_t>(population[level], 1);
    const auto at = [level](const std::vector<std::uint64_t>& v) {
      return level < v.size() ? v[level] : 0;
    };
    std::cout << std::left << std::setw(8) << level << std::right
              << std::fixed << std::setprecision(1) << std::setw(16)
              << static_cast<double>(at(runs[0].levelBlocked)) / nodes
              << std::setw(16)
              << static_cast<double>(at(runs[1].levelBlocked)) / nodes
              << std::setw(16)
              << static_cast<double>(at(runs[0].levelFlits)) / nodes
              << std::setw(16)
              << static_cast<double>(at(runs[1].levelFlits)) / nodes << "\n";
  }
  return 0;
}
