// Construction-time benchmark: how long it takes to go from a bare
// irregular topology to a verified DOWN/UP routing table, stage by stage,
// across network sizes — and how much the batched release pass, the
// parallel table build and incremental reconfiguration buy over the
// reference implementations.
//
// Stages timed per size (best of --repeats runs):
//   tree            coordinated-tree construction (M1 policy)
//   classify        Definition-5 channel-direction classification
//   repair          turn-rule construction + residual-cycle repair
//   releaseDfs      reference release pass (one DFS per candidate turn);
//                   skipped above --dfs-max-switches (reported as null)
//   releaseBatched  production release pass (SCC condensation + bitset
//                   reachability, incrementally maintained)
//   tableSerial     RoutingTable::build, single thread (the historical
//                   single-pass successor-index algorithm)
//   tableParallel   RoutingTable::build over --threads workers (two-phase
//                   count/fill CSR build; bit-for-bit identical output)
//   fullSerial      tree -> table end to end, single thread
//   fullParallel    same with the worker pool
//   reconfigFull    fault::Reconfigurator::rebuild after one link failure
//   reconfigIncr    fault::Reconfigurator::rebuildIncremental for the same
//                   failure (inherits the turn rule, rebuilds dirty
//                   destinations only; checked identical to the masked
//                   full build before timing)
//
// Writes BENCH_build.json (schema in results/README.md; --json or
// DOWNUP_BENCH_BUILD_JSON overrides the path, "" disables) so CI can gate
// on construction-time regressions.
//
// With --counters, each size additionally runs one untimed SERIAL counted
// pass — tree/classify/repair/release/table_build wrapped in spans with a
// perf_event group and allocation attribution attached — and prints a
// per-stage table of cycles, instructions, IPC, cache-miss rate and heap
// charge, naming the stage with the most cache misses.  The counted pass is
// reported separately (stdout table + "counterStages" JSON section) so the
// timed rows above stay comparable across revisions; when perf_event_open
// is denied the table is replaced by "counters unavailable: <reason>",
// never silent zeros.
//
//   ./bench_build --max-switches 1024 --threads 4 --repeats 3
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/downup_routing.hpp"
#include "core/release.hpp"
#include "core/repair.hpp"
#include "fault/reconfigure.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "topology/generate.hpp"
// Route the global allocation functions through util::noteAllocation so the
// counted pass can charge heap traffic to stages (single-TU pattern; see
// the header).
#include "util/alloc_hooks.hpp"
#include "util/cli.hpp"
#include "util/perf_counters.hpp"
#include "util/span_recorder.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace downup;
using Clock = std::chrono::steady_clock;

// Folded into every timed result so the optimiser cannot delete the work.
std::uint64_t gSink = 0;
inline void keep(std::uint64_t v) {
  gSink ^= v;
  asm volatile("" : : "g"(&gSink) : "memory");
}

template <typename Fn>
double timeMs(int repeats, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

struct SizeResult {
  topo::NodeId switches = 0;
  std::uint32_t links = 0;
  std::uint32_t channels = 0;
  double treeMs = 0;
  double classifyMs = 0;
  double repairMs = 0;
  double releaseDfsMs = -1;  // < 0: skipped
  double releaseBatchedMs = 0;
  double tableSerialMs = 0;
  double tableParallelMs = 0;
  double fullSerialMs = 0;
  double fullParallelMs = 0;
  double reconfigFullMs = 0;
  double reconfigIncrMs = 0;
  double incrementalDirtyFraction = 0;
  std::uint32_t rebuiltDestinations = 0;
};

/// One top-level stage row of the counted pass (taken from the obs_spans/2
/// span the stage recorded).
struct CounterStage {
  const char* stage = nullptr;
  double durMs = 0;
  util::PerfCounts counts;
  std::uint64_t allocCount = 0;
  std::uint64_t allocBytes = 0;
};

struct CounterResult {
  topo::NodeId switches = 0;
  std::vector<CounterStage> stages;
};

/// The serial counted pass: every pipeline stage re-run once under a span
/// with counters + allocation attribution attached.  Untimed and fully
/// separate from the benchmark loops — stage wall-clock here includes the
/// counter reads at span boundaries, which is why these numbers never feed
/// the timed rows.
CounterResult countedPass(topo::NodeId switches, const topo::Topology& topo,
                          const routing::TurnPermissions& released,
                          util::SpanRecorder& counted) {
  {
    util::ScopedSpan span(&counted, "tree");
    util::Rng rng(3);
    const tree::CoordinatedTree t = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, rng);
    keep(t.root());
  }
  util::Rng treeRng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  {
    util::ScopedSpan span(&counted, "classify");
    keep(routing::classifyDownUp(topo, ct).size());
  }
  const routing::DirectionMap dirs = routing::classifyDownUp(topo, ct);
  {
    util::ScopedSpan span(&counted, "repair");
    routing::TurnPermissions perms(topo, dirs, core::downUpTurnSet());
    keep(core::repairTurnCycles(perms).blockedTurns);
  }
  {
    util::ScopedSpan span(&counted, "release");
    routing::TurnPermissions perms = released;  // copy cost inside the span
    keep(core::releaseRedundantProhibitions(perms).releasedTurns);
  }
  // RoutingTable::build records its own "table_build" span (with nested
  // bfs/candidate_fill) on the same recorder.
  keep(routing::RoutingTable::build(released, nullptr, {}, &counted)
           .fingerprint());

  CounterResult res;
  res.switches = switches;
  const auto all = counted.snapshot();
  // Stage rows are the top-level spans; counters there are already
  // inclusive of children, but allocation attribution is exclusive
  // (innermost span), so roll every descendant's charge up into its root
  // — the table answers "what does this STAGE allocate", subtree included.
  std::vector<std::size_t> rootOf(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    rootOf[i] = all[i].parent == util::SpanRecorder::kNoParent
                    ? i
                    : rootOf[all[i].parent];
    if (all[i].depth == 0) {
      CounterStage stage;
      stage.stage = all[i].name;
      stage.durMs = static_cast<double>(all[i].durationNs()) / 1e6;
      stage.counts = all[i].counters;
      res.stages.push_back(stage);
    }
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (CounterStage& stage : res.stages) {
      if (stage.stage == all[rootOf[i]].name) {
        stage.allocCount += all[i].allocCount;
        stage.allocBytes += all[i].allocBytes;
        break;
      }
    }
  }
  counted.clear();
  return res;
}

void printCounterTable(const CounterResult& res) {
  std::printf("\nper-stage counters at %u switches (serial counted pass):\n",
              static_cast<unsigned>(res.switches));
  std::printf("%12s %9s %12s %12s %6s %8s %8s %10s\n", "stage", "ms",
              "cycles", "instr", "ipc", "missRate", "allocs", "allocKiB");
  const CounterStage* topMiss = nullptr;
  for (const CounterStage& s : res.stages) {
    char cycles[24] = "-", instr[24] = "-", ipc[16] = "-", miss[16] = "-";
    if (s.counts.has(util::PerfEvent::kCycles)) {
      std::snprintf(cycles, sizeof cycles, "%llu",
                    static_cast<unsigned long long>(
                        s.counts.get(util::PerfEvent::kCycles)));
    }
    if (s.counts.has(util::PerfEvent::kInstructions)) {
      std::snprintf(instr, sizeof instr, "%llu",
                    static_cast<unsigned long long>(
                        s.counts.get(util::PerfEvent::kInstructions)));
    }
    if (s.counts.ipc() >= 0) {
      std::snprintf(ipc, sizeof ipc, "%.2f", s.counts.ipc());
    }
    if (s.counts.cacheMissRate() >= 0) {
      std::snprintf(miss, sizeof miss, "%.3f", s.counts.cacheMissRate());
    }
    std::printf("%12s %9.2f %12s %12s %6s %8s %8llu %10.1f\n", s.stage,
                s.durMs, cycles, instr, ipc, miss,
                static_cast<unsigned long long>(s.allocCount),
                static_cast<double>(s.allocBytes) / 1024.0);
    if (s.counts.has(util::PerfEvent::kCacheMisses) &&
        (topMiss == nullptr ||
         s.counts.get(util::PerfEvent::kCacheMisses) >
             topMiss->counts.get(util::PerfEvent::kCacheMisses))) {
      topMiss = &s;
    }
  }
  if (topMiss != nullptr) {
    std::printf("top cache-miss stage: %s (%llu misses)\n", topMiss->stage,
                static_cast<unsigned long long>(
                    topMiss->counts.get(util::PerfEvent::kCacheMisses)));
  } else {
    std::printf("top cache-miss stage: unavailable (cache-miss counter did "
                "not open)\n");
  }
}

SizeResult benchOneSize(topo::NodeId switches, util::ThreadPool& pool,
                        int repeats, int dfsMaxSwitches,
                        util::SpanRecorder* spans, util::SpanRecorder* counted,
                        std::vector<CounterResult>* counterResults) {
  SizeResult res;
  res.switches = switches;

  util::Rng topoRng(7);
  const topo::Topology topo =
      topo::randomIrregular(switches, {.maxPorts = 4}, topoRng);
  res.links = topo.linkCount();
  res.channels = topo.channelCount();

  res.treeMs = timeMs(repeats, [&] {
    util::Rng rng(3);
    const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, rng);
    keep(ct.root());
  });

  util::Rng treeRng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);

  res.classifyMs = timeMs(repeats, [&] {
    const routing::DirectionMap dirs = routing::classifyDownUp(topo, ct);
    keep(dirs.size());
  });
  const routing::DirectionMap dirs = routing::classifyDownUp(topo, ct);

  res.repairMs = timeMs(repeats, [&] {
    routing::TurnPermissions perms(topo, dirs, core::downUpTurnSet());
    keep(core::repairTurnCycles(perms).blockedTurns);
  });

  // Master repaired rule; the release stages time only the pass itself on a
  // fresh copy each repeat.
  routing::TurnPermissions repaired(topo, dirs, core::downUpTurnSet());
  core::repairTurnCycles(repaired);

  if (switches <= static_cast<topo::NodeId>(dfsMaxSwitches)) {
    res.releaseDfsMs = timeMs(repeats, [&] {
      routing::TurnPermissions perms = repaired;
      keep(core::releaseRedundantProhibitionsDfs(perms).releasedTurns);
    });
  }
  res.releaseBatchedMs = timeMs(repeats, [&] {
    routing::TurnPermissions perms = repaired;
    keep(core::releaseRedundantProhibitions(perms).releasedTurns);
  });

  routing::TurnPermissions released = repaired;
  core::releaseRedundantProhibitions(released);

  res.tableSerialMs = timeMs(repeats, [&] {
    keep(routing::RoutingTable::build(released).fingerprint());
  });
  res.tableParallelMs = timeMs(repeats, [&] {
    keep(routing::RoutingTable::build(released, &pool).fingerprint());
  });

  res.fullSerialMs = timeMs(repeats, [&] {
    util::Rng rng(3);
    const tree::CoordinatedTree t = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, rng);
    keep(core::buildDownUp(topo, t).table().fingerprint());
  });
  res.fullParallelMs = timeMs(repeats, [&] {
    util::Rng rng(3);
    const tree::CoordinatedTree t = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, rng);
    keep(core::buildDownUp(topo, t, {.pool = &pool}).table().fingerprint());
  });

  // Reconfiguration after one non-partitioning link failure: full rebuild
  // vs the incremental path, from the same healthy previous epoch.  The
  // failed link is the sampled link with the LOWEST dirty fraction that
  // does not partition the network — the cross-link case the incremental
  // path is designed for.  Tree-link failures usually trip the
  // connectivity fallback (the inherited rule cannot serve the severed
  // subtree) and cost a full rebuild plus the applicability checks; the
  // JSON's incrementalDirtyFraction field discloses which case this run
  // measured, and exp_fault_resilience measures the aggregate over random
  // failures.
  const fault::Reconfigurator reconfigurator(topo, &pool);
  const std::vector<std::uint8_t> nodesUp(topo.nodeCount(), 1);
  std::vector<std::uint8_t> linksUp(topo.linkCount(), 1);
  const fault::ReconfigOutcome healthy =
      reconfigurator.rebuild(linksUp, nodesUp);
  {
    const topo::LinkId linkCount = topo.linkCount();
    const topo::LinkId stride = std::max<topo::LinkId>(1, linkCount / 64);
    std::vector<std::pair<double, topo::LinkId>> sampled;
    for (topo::LinkId l = 0; l < linkCount; l += stride) {
      linksUp[l] = 0;
      sampled.emplace_back(reconfigurator.incrementalDirtyFraction(
                               *healthy.table, linksUp, nodesUp),
                           l);
      linksUp[l] = 1;
    }
    std::sort(sampled.begin(), sampled.end());
    for (const auto& [fraction, l] : sampled) {
      linksUp[l] = 0;
      const fault::ReconfigOutcome probe =
          reconfigurator.rebuild(linksUp, nodesUp);
      if (probe.ok() && probe.components == 1) break;  // keep this failure
      linksUp[l] = 1;
    }
  }

  res.incrementalDirtyFraction = reconfigurator.incrementalDirtyFraction(
      *healthy.table, linksUp, nodesUp);
  {
    // Sanity: the incremental epoch must match the masked full build of the
    // inherited rule bit for bit (also exercised by the unit tests; cheap
    // to re-assert here where ASan sweeps run the 4096-switch sizes).
    const fault::ReconfigOutcome incr =
        reconfigurator.rebuildIncremental(*healthy.table, linksUp, nodesUp);
    res.rebuiltDestinations = incr.rebuiltDestinations;
    if (incr.incremental) {
      std::vector<std::uint64_t> alive((topo.channelCount() + 63) / 64, 0);
      for (topo::ChannelId c = 0; c < topo.channelCount(); ++c) {
        if (linksUp[topo::Topology::linkOf(c)] != 0) {
          alive[c >> 6] |= std::uint64_t{1} << (c & 63);
        }
      }
      const routing::RoutingTable masked =
          routing::RoutingTable::build(*incr.perms, &pool, alive);
      if (!incr.table->identicalTo(masked)) {
        std::fprintf(stderr,
                     "bench_build: incremental table mismatch at %u switches\n",
                     static_cast<unsigned>(switches));
        std::exit(1);
      }
    }
  }

  res.reconfigFullMs = timeMs(repeats, [&] {
    keep(reconfigurator.rebuild(linksUp, nodesUp).rebuiltDestinations);
  });
  res.reconfigIncrMs = timeMs(repeats, [&] {
    keep(reconfigurator
                 .rebuildIncremental(*healthy.table, linksUp, nodesUp)
                 .rebuiltDestinations);
  });

  // One untimed instrumented pass per size: record the full rebuild and the
  // incremental reconfiguration stage spans outside the timed loops so the
  // timings above stay undisturbed.
  if (spans != nullptr) {
    keep(routing::RoutingTable::build(released, &pool, {}, spans)
             .fingerprint());
    fault::Reconfigurator traced(topo, &pool);
    traced.setSpans(spans);
    keep(traced.rebuild(linksUp, nodesUp).rebuiltDestinations);
    keep(traced.rebuildIncremental(*healthy.table, linksUp, nodesUp)
             .rebuiltDestinations);
  }

  // The counted pass last, also outside every timed loop: the per-stage
  // counter table is attribution data, not a timing row.
  if (counted != nullptr) {
    CounterResult cr = countedPass(switches, topo, released, *counted);
    printCounterTable(cr);
    counterResults->push_back(std::move(cr));
  }
  return res;
}

/// Counter availability as the JSON status string (mirrors obs_spans/2
/// meta): "available", "partial", "unavailable" or "detached".
const char* counterStatus(const util::PerfCounterGroup* group) {
  if (group == nullptr) return "detached";
  if (!group->available()) return "unavailable";
  return group->eventMask() == ((1u << util::kPerfEventCount) - 1u)
             ? "available"
             : "partial";
}

void writeJson(const char* path, const std::vector<SizeResult>& results,
               int threads, int repeats,
               const std::vector<CounterResult>& counterResults,
               const util::PerfCounterGroup* group) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_build: cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_build\",\n");
  std::fprintf(out, "  \"gitRev\": \"%s\",\n", obs::gitRevision().c_str());
  std::fprintf(out, "  \"timestampUtc\": \"%s\",\n",
               obs::utcTimestamp().c_str());
  std::fprintf(out, "  \"hardwareConcurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"threads\": %d,\n", threads);
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"sizes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(out,
                 "    {\"switches\": %u, \"links\": %u, \"channels\": %u,\n",
                 static_cast<unsigned>(r.switches), r.links, r.channels);
    std::fprintf(out, "     \"treeMs\": %.3f, \"classifyMs\": %.3f, "
                      "\"repairMs\": %.3f,\n",
                 r.treeMs, r.classifyMs, r.repairMs);
    if (r.releaseDfsMs < 0) {
      std::fprintf(out, "     \"releaseDfsMs\": null,");
    } else {
      std::fprintf(out, "     \"releaseDfsMs\": %.3f,", r.releaseDfsMs);
    }
    std::fprintf(out, " \"releaseBatchedMs\": %.3f,\n", r.releaseBatchedMs);
    std::fprintf(out,
                 "     \"tableSerialMs\": %.3f, \"tableParallelMs\": %.3f,\n",
                 r.tableSerialMs, r.tableParallelMs);
    std::fprintf(out,
                 "     \"fullSerialMs\": %.3f, \"fullParallelMs\": %.3f,\n",
                 r.fullSerialMs, r.fullParallelMs);
    std::fprintf(out,
                 "     \"reconfigFullMs\": %.3f, \"reconfigIncrMs\": %.3f,\n",
                 r.reconfigFullMs, r.reconfigIncrMs);
    std::fprintf(out,
                 "     \"incrementalDirtyFraction\": %.4f, "
                 "\"rebuiltDestinations\": %u}%s\n",
                 r.incrementalDirtyFraction, r.rebuiltDestinations,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Counted-pass attribution, kept apart from the timed rows above so the
  // timings stay comparable across revisions.  Events that did not open
  // are simply absent from each stage object.
  std::fprintf(out, "  \"counters\": \"%s\",\n", counterStatus(group));
  if (group != nullptr && !group->degradedReason().empty()) {
    std::fprintf(out, "  \"countersReason\": \"%s\",\n",
                 group->degradedReason().c_str());
  }
  std::fprintf(out, "  \"counterStages\": [");
  bool firstStage = true;
  for (const CounterResult& cr : counterResults) {
    for (const CounterStage& s : cr.stages) {
      std::fprintf(out, "%s\n    {\"switches\": %u, \"stage\": \"%s\", "
                        "\"durMs\": %.3f",
                   firstStage ? "" : ",", static_cast<unsigned>(cr.switches),
                   s.stage, s.durMs);
      firstStage = false;
      for (std::size_t e = 0; e < util::kPerfEventCount; ++e) {
        const auto event = static_cast<util::PerfEvent>(e);
        if (!s.counts.has(event)) continue;
        std::fprintf(out, ", \"%s\": %llu", util::toString(event),
                     static_cast<unsigned long long>(s.counts.get(event)));
      }
      if (s.counts.ipc() >= 0) {
        std::fprintf(out, ", \"ipc\": %.4f", s.counts.ipc());
      }
      if (s.counts.cacheMissRate() >= 0) {
        std::fprintf(out, ", \"cacheMissRate\": %.4f",
                     s.counts.cacheMissRate());
      }
      std::fprintf(out, ", \"allocCount\": %llu, \"allocBytes\": %llu}",
                   static_cast<unsigned long long>(s.allocCount),
                   static_cast<unsigned long long>(s.allocBytes));
    }
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("bench_build: wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_build",
                "routing-construction benchmark: per-stage timings, serial "
                "vs parallel, full vs incremental reconfiguration");
  const unsigned hw = std::thread::hardware_concurrency();
  auto threads = cli.positiveOption<int>(
      "threads", static_cast<int>(hw == 0 ? 1 : hw),
      "worker threads for the parallel stages");
  auto maxSwitches = cli.positiveOption<int>(
      "max-switches", 1024, "largest network size in the sweep (up to 4096)");
  auto minSwitches = cli.positiveOption<int>(
      "min-switches", 64, "smallest network size in the sweep");
  auto repeats = cli.positiveOption<int>(
      "repeats", 3, "timed repetitions per stage (best is reported)");
  auto dfsMax = cli.positiveOption<int>(
      "dfs-max-switches", 1024,
      "largest size on which the reference DFS release pass is timed");
  auto jsonOpt = cli.option<std::string>(
      "json", "",
      "JSON output path (default BENCH_build.json or "
      "$DOWNUP_BENCH_BUILD_JSON; \"\" with the env var disables)");
  auto spansOpt = cli.option<std::string>(
      "spans-out", "",
      "control-plane span path prefix (.{jsonl,trace.json} appended); "
      "records one untimed instrumented build + reconfiguration per size");
  auto countersFlag = cli.flag(
      "counters",
      "per-stage perf-counter + allocation table from one untimed serial "
      "counted pass per size (prints availability when perf_event_open is "
      "denied)");
  cli.parse(argc, argv);

  std::string jsonPath = *jsonOpt;
  if (jsonPath.empty()) {
    const char* env = std::getenv("DOWNUP_BENCH_BUILD_JSON");
    jsonPath = env != nullptr ? env : "BENCH_build.json";
  }

  util::ThreadPool pool(static_cast<std::size_t>(*threads));
  util::SpanRecorder spans;
  util::SpanRecorder* spansPtr = spansOpt->empty() ? nullptr : &spans;

  // The counted pass gets its own recorder: counters + allocation
  // attribution must not leak into the --spans-out trace, whose timings
  // document the uncounted pipeline.
  util::PerfCounterGroup counterGroup(
      util::PerfCounterGroup::Options{.disabled = !*countersFlag});
  util::SpanRecorder countedSpans;
  util::SpanRecorder* countedPtr = nullptr;
  if (*countersFlag) {
    if (counterGroup.available()) {
      countedSpans.attachCounters(&counterGroup);
      if (!counterGroup.degradedReason().empty()) {
        std::printf("counters partial (%s): wall-clock and software events "
                    "only\n",
                    counterGroup.degradedReason().c_str());
      }
    } else {
      std::printf("counters unavailable: %s (reporting wall-clock and "
                  "allocation only)\n",
                  counterGroup.unavailableReason().c_str());
    }
    countedSpans.setAllocTracking(true);
    countedPtr = &countedSpans;
  }
  std::vector<CounterResult> counterResults;
  std::vector<SizeResult> results;
  std::printf("%8s %8s %9s %9s %9s %9s %9s %9s %9s %9s\n", "switches",
              "tree", "repair", "relDFS", "relBatch", "tblSer", "tblPar",
              "fullSer", "rcfgFull", "rcfgIncr");
  for (const int size : {64, 128, 256, 512, 1024, 2048, 4096}) {
    if (size < *minSwitches || size > *maxSwitches) continue;
    const SizeResult r =
        benchOneSize(static_cast<topo::NodeId>(size), pool, *repeats, *dfsMax,
                     spansPtr, countedPtr, &counterResults);
    std::printf(
        "%8u %8.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n",
        static_cast<unsigned>(r.switches), r.treeMs, r.repairMs,
        r.releaseDfsMs < 0 ? 0.0 : r.releaseDfsMs, r.releaseBatchedMs,
        r.tableSerialMs, r.tableParallelMs, r.fullSerialMs, r.reconfigFullMs,
        r.reconfigIncrMs);
    std::fflush(stdout);
    results.push_back(r);
  }
  std::printf("(milliseconds, best of %d; relDFS 0.00 = skipped above "
              "--dfs-max-switches; %d thread%s)\n",
              *repeats, *threads, *threads == 1 ? "" : "s");

  if (!jsonPath.empty()) {
    writeJson(jsonPath.c_str(), results, *threads, *repeats, counterResults,
              *countersFlag ? &counterGroup : nullptr);
  }
  if (spansPtr != nullptr) {
    {
      std::ofstream out(*spansOpt + ".jsonl");
      obs::writeSpansJsonl(spans, out);
    }
    {
      std::ofstream out(*spansOpt + ".trace.json");
      obs::writeSpansChromeTrace(spans, out);
    }
    std::printf("bench_build: wrote %s.{jsonl,trace.json}\n",
                spansOpt->c_str());
  }
  return 0;
}
