// Extension: escape-channel minimal-adaptive routing (Silla & Duato style,
// the paper's reference [8]) vs plain multi-VC turn-restricted routing at
// the same VC budget.  Reports saturation throughput for each algorithm
// under both schemes — and documents the honest outcome that on dense
// port-saturated irregular networks the turn-restricted adaptive relation
// is already diverse enough that escape confinement does not pay.
#include <iomanip>
#include <iostream>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "sim/engine.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/summary.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ScenarioCli cli("exp_escape_adaptive",
                         "escape-channel adaptive routing vs plain multi-VC",
                         {.samples = 3, .obsOutputs = false});
  auto vcs = cli.cli().positiveOption<int>(
      "vcs", 2, "virtual channels per link (>= 2)");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(cli.threads()));

  std::cout << std::left << std::setw(14) << "algorithm" << std::setw(12)
            << "plain" << std::setw(12) << "escape" << std::setw(10)
            << "ratio" << "\n";

  for (core::Algorithm algorithm :
       {core::Algorithm::kUpDownBfs, core::Algorithm::kLTurn,
        core::Algorithm::kDownUp}) {
    util::RunningStat plainSat;
    util::RunningStat escapeSat;
    for (int sample = 0; sample < cli.samples(); ++sample) {
      util::Rng rng(cli.seed() + static_cast<std::uint64_t>(sample));
      const topo::Topology topo = topo::randomIrregular(
          static_cast<topo::NodeId>(cli.switches()),
          {.maxPorts = static_cast<unsigned>(cli.ports())}, rng);
      util::Rng treeRng(cli.seed() + 100 + static_cast<std::uint64_t>(sample));
      const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
          topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
      const routing::Routing routing = core::buildRouting(algorithm, topo, ct, &pool);
      const sim::UniformTraffic traffic(topo.nodeCount());

      sim::SimConfig config = cli.simConfig();
      config.vcCount = static_cast<std::uint32_t>(*vcs);
      config.seed = cli.seed() + 300 + static_cast<std::uint64_t>(sample);

      for (const bool escape : {false, true}) {
        config.escapeAdaptiveRouting = escape;
        const double probed =
            stats::probeSaturationLoad(routing.table(), traffic, config);
        const auto loads = stats::loadGrid(std::min(1.0, 1.8 * probed), 6);
        const auto sweep =
            stats::runSweep(routing.table(), traffic, loads, config);
        (escape ? escapeSat : plainSat)
            .add(stats::findSaturation(sweep).maxAccepted);
      }
    }
    std::cout << std::left << std::setw(14) << core::toString(algorithm)
              << std::setw(12) << std::fixed << std::setprecision(5)
              << plainSat.mean() << std::setw(12) << escapeSat.mean()
              << std::setw(10) << std::setprecision(3)
              << escapeSat.mean() / plainSat.mean() << "\n";
  }
  std::cout << "\n(saturation throughput, flits/clock/node, " << *vcs
            << " VCs/link; ratio = escape/plain)\n";
  return 0;
}
