// Fault recovery curves: the transient the aggregate tables average away.
// Injects seeded link failures into a DOWN/UP run with the windowed
// time-series collector attached, then extracts per-event recovery metrics
// (time-to-reroute, throughput-dip depth/width, time-to-recover, delivered
// deficit) with stats::analyzeRecovery — once under full table rebuilds and
// once under incremental reconfiguration, same faults and seeds.
//
// The wait-for-graph sampler rides along on every run; the bench FAILS
// (exit 1) if any sample ever contains a channel wait cycle, making it a
// standing no-deadlock assertion for CI, alongside drain + routing-verify.
//
// The independent deadlock oracle (src/verify/) is ON by default: every
// table build, reconfiguration merge, epoch publish and both
// mid-reconfiguration snapshots are cross-validated, and the bench fails
// on any violation (or if fault churn ran without the oracle ever seeing a
// quarantine state).  --plant-violation audits a deliberately corrupted
// rule instead, proving the gate fires: the run then exits nonzero and
// (with --oracle-dump PREFIX) leaves a replayable oracle_case/1 witness.
//
// Datasets (checked into results/ for the 32- and 1024-switch single-link
// scenarios):
//
//   --out PREFIX  writes PREFIX.<strategy>.timeseries.csv (the windowed
//                 curve itself) and PREFIX.<strategy>.events.csv (one row
//                 per fault event) for strategy in {full, incremental}
//
//   ./exp_recovery_curve --switches 32 --failures 1 --out results/recovery_32
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "fault/schedule.hpp"
#include "obs/observer.hpp"
#include "sim/network.hpp"
#include "stats/recovery.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/thread_pool.hpp"
#include "verify/gate.hpp"

namespace {

using namespace downup;

struct StrategyRun {
  const char* name;
  bool incremental;
  std::vector<stats::FaultRecovery> events;
  bool drained = false;
  bool verified = false;
  std::uint64_t cycleSamples = 0;
  std::uint64_t waitForSamples = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ScenarioCli cli(
      "exp_recovery_curve",
      "per-fault-event recovery transients, full vs incremental "
      "reconfiguration",
      {.packetFlits = 32, .warmup = 2000, .measure = 20000});
  auto failures = cli.cli().positiveOption<int>(
      "failures", 1, "link failures injected mid-run");
  auto latency = cli.cli().positiveOption<int>(
      "reconfig-latency", 200, "cycles from fault to routing hot-swap");
  auto loadFrac = cli.cli().option<double>(
      "load-frac", 0.6, "offered load as a fraction of probed saturation");
  auto window = cli.cli().positiveOption<int>(
      "window", 256, "time-series window length in cycles");
  auto outPrefix = cli.cli().option<std::string>(
      "out", "",
      "dataset prefix (.<strategy>.timeseries.csv / .events.csv appended)");
  auto noOracle = cli.cli().flag(
      "no-oracle", "detach the independent deadlock oracle (default: on)");
  auto plantViolation = cli.cli().flag(
      "plant-violation",
      "audit an unrestricted copy of every rule (gate self-test; the run "
      "must exit nonzero)");
  auto oracleDump = cli.cli().option<std::string>(
      "oracle-dump", "",
      "replay-case path prefix for oracle violations (.caseN.jsonl)");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(cli.threads()));

  // Gate first, build hook installed before any table exists, so the
  // initial healthy build is audited too.
  verify::OracleGate::Options gateOptions;
  gateOptions.enabled = !*noOracle;
  gateOptions.plantViolation = *plantViolation;
  gateOptions.dumpPathPrefix = *oracleDump;
  verify::OracleGate gate(gateOptions);
  if (gateOptions.enabled) gate.installBuildHook();

  util::Rng rng(cli.seed());
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(cli.switches()),
      {.maxPorts = static_cast<unsigned>(cli.ports())}, rng);
  util::Rng treeRng(cli.seed() + 100);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing =
      core::buildDownUp(topo, ct, {.pool = &pool});
  const sim::UniformTraffic traffic(topo.nodeCount());

  sim::SimConfig config = cli.simConfig();
  config.reconfigLatencyCycles = static_cast<std::uint32_t>(*latency);
  config.seed = cli.seed() + 300;
  if (gateOptions.enabled) config.oracleGate = &gate;

  const double saturation =
      stats::probeSaturationLoad(routing.table(), traffic, config);
  const double load = std::min(1.0, *loadFrac * saturation);

  // Failures land spread across the measurement window, each far enough
  // from the next that its reconfiguration completes first.
  const int measure = cli.measure();
  const std::uint64_t first = config.warmupCycles + measure / 5;
  const std::uint64_t step =
      *failures > 1 ? std::max<std::uint64_t>(
                          (measure * 7ull / 10) /
                              static_cast<std::uint64_t>(*failures),
                          static_cast<std::uint64_t>(*latency) + 1)
                    : 1;
  const fault::FaultSchedule schedule =
      fault::FaultSchedule::randomLinkFailures(
          topo, static_cast<unsigned>(*failures), first, step,
          cli.seed() + 500);
  config.faultSchedule = &schedule;

  std::cout << cli.switches() << " switches, " << topo.linkCount()
            << " links; saturation ~" << std::fixed << std::setprecision(4)
            << saturation << " flits/node/clock; offered " << load << "; "
            << schedule.size() << " failure(s); window " << *window
            << " cycles; reconfig latency " << *latency << "\n\n";

  StrategyRun runs[] = {{"full", false}, {"incremental", true}};
  bool ok = true;
  for (StrategyRun& run : runs) {
    sim::SimConfig strategyConfig = config;
    strategyConfig.reconfigIncremental = run.incremental;

    obs::ObsOptions obsOptions;
    cli.applyObsOutputs(obsOptions);
    obsOptions.timeseriesWindowCycles = static_cast<std::uint32_t>(*window);
    if (obsOptions.waitForSamplePeriod == 0) {
      obsOptions.waitForSamplePeriod = 128;
    }
    obs::Observer observer(obsOptions, topo, &ct, strategyConfig.vcCount);
    strategyConfig.observer = &observer;

    sim::WormholeNetwork net(routing.table(), traffic, load, strategyConfig);
    net.run();
    run.drained = net.drainRemaining(200000);
    const sim::RunStats stats = net.collectStats();
    run.verified = stats.reconfigRoutingVerified;

    obs::TimeSeriesCollector& series = *observer.timeseries();
    series.finish(net.now());
    run.events = stats::analyzeRecovery(series);
    const obs::WaitForSampler& waitFor = *observer.waitFor();
    run.cycleSamples = waitFor.cycleSamples();
    run.waitForSamples = waitFor.samples();

    if (!outPrefix->empty()) {
      const std::string base = *outPrefix + "." + run.name;
      {
        std::ofstream out(base + ".timeseries.csv");
        obs::writeTimeSeriesCsv(series, out);
      }
      {
        std::ofstream out(base + ".events.csv");
        stats::writeRecoveryCsv(run.events, out);
      }
      std::cout << "wrote " << base << ".{timeseries,events}.csv\n";
    }
    cli.writeObsArtifacts(observer, &topo, strategyConfig.measureCycles,
                          net.now(), run.name);

    if (!run.drained || !run.verified) ok = false;
    if (run.cycleSamples != 0) ok = false;
    if (schedule.size() > 0 && run.events.empty()) ok = false;
  }

  // Side-by-side transient comparison, one row per fault event.
  std::cout << "\n" << std::left << std::setw(7) << "event" << std::setw(12)
            << "fault_cyc" << std::setw(22) << "reroute full/incr"
            << std::setw(22) << "recover full/incr" << std::setw(20)
            << "dip depth full/incr" << "\n";
  const auto never = [](std::uint64_t v) {
    return v == stats::FaultRecovery::kNever ? std::string("never")
                                             : std::to_string(v);
  };
  const std::size_t eventCount =
      std::min(runs[0].events.size(), runs[1].events.size());
  for (std::size_t i = 0; i < eventCount; ++i) {
    const stats::FaultRecovery& f = runs[0].events[i];
    const stats::FaultRecovery& g = runs[1].events[i];
    std::cout << std::left << std::setw(7) << i << std::setw(12)
              << f.faultCycle << std::setw(22)
              << (never(f.timeToReroute) + " / " + never(g.timeToReroute))
              << std::setw(22)
              << (never(f.timeToRecover) + " / " + never(g.timeToRecover))
              << std::setw(20)
              << (std::to_string(f.dipDepth).substr(0, 6) + " / " +
                  std::to_string(g.dipDepth).substr(0, 6))
              << "\n";
  }
  for (const StrategyRun& run : runs) {
    std::cout << "\n" << run.name << ": drained=" << (run.drained ? "yes" : "NO")
              << " verified=" << (run.verified ? "yes" : "NO")
              << " wait-for samples=" << run.waitForSamples
              << " cycle samples=" << run.cycleSamples
              << (run.cycleSamples == 0 ? " (no deadlock risk observed)"
                                        : " [WAIT-FOR CYCLE OBSERVED]");
  }
  if (gateOptions.enabled) {
    std::cout << "\n\noracle: " << gate.audits() << " audits ("
              << gate.auditsAt("table_build") << " table_build, "
              << gate.auditsAt("reconfig_full") << " reconfig_full, "
              << gate.auditsAt("reconfig_incremental") << " reconfig_incr, "
              << gate.auditsAt("epoch_publish") << " epoch_publish, "
              << gate.auditsAt("mid_reconfig_quarantine") << " quarantine, "
              << gate.auditsAt("mid_reconfig_preswap") << " preswap), "
              << gate.violations() << " violation(s)";
    if (gate.violations() != 0) {
      ok = false;
      std::cout << "\n" << gate.lastViolation().describe();
      if (!gate.lastCasePath().empty()) {
        std::cout << "\nlast replay case: " << gate.lastCasePath();
      }
    }
    if (schedule.size() > 0 &&
        gate.auditsAt("mid_reconfig_quarantine") == 0) {
      std::cout << "\nERROR: faults fired but no mid-reconfiguration "
                   "quarantine state was audited";
      ok = false;
    }
  }
  std::cout << "\n\n(time-to-reroute = fault -> hot-swap; time-to-recover = "
               "fault -> first window back above 95% of the pre-fault "
               "ejection rate; dip depth = 1 - min rate / baseline)\n";
  return ok ? 0 : 1;
}
