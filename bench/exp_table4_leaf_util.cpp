// Reproduces Table 4 of the paper: leaf utilization — the mean node
// utilization over the leaves of the coordinated tree at peak throughput.
// Higher means more traffic successfully pushed away from the root.
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ExperimentCli cli("exp_table4_leaf_util",
                           "Table 4: leaf utilization at peak throughput");
  const stats::ExperimentConfig config = cli.parse(argc, argv);
  const stats::ExperimentResults results = stats::runExperiment(config);

  stats::printPaperTable(
      std::cout, "Table 4. Leaf utilization (flits/clock/port)", results,
      [](const stats::Cell& cell) { return cell.leafUtilization.mean(); });

  static constexpr double kPaper[3][4] = {
      {0.07336, 0.1065, 0.082897, 0.13807},
      {0.063953, 0.093437, 0.080773, 0.131578},
      {0.050633, 0.072627, 0.078453, 0.111609},
  };
  bench::printPaperReference(std::cout, "Table 4, leaf utilization", kPaper);
  cli.maybeWriteCsv(results);
  return 0;
}
