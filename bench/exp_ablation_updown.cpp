// Ablation: anchor both turn-model routings against the classic baselines —
// BFS up*/down* (Autonet) and DFS up*/down* (Robles et al.) — on the same
// topologies, trees and traffic.
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ExperimentCli cli(
      "exp_ablation_updown",
      "Ablation: up*/down* baselines vs L-turn vs DOWN/UP");
  stats::ExperimentConfig config = cli.parse(argc, argv);
  config.policies = {tree::TreePolicy::kM1SmallestFirst};
  config.algorithms = {core::Algorithm::kUpDownBfs,
                       core::Algorithm::kUpDownDfs, core::Algorithm::kLTurn,
                       core::Algorithm::kDownUp};

  const stats::ExperimentResults results = stats::runExperiment(config);
  std::cout << "Saturation throughput (flits/clock/node):\n";
  stats::printPaperTable(
      std::cout, "", results,
      [](const stats::Cell& cell) { return cell.maxAccepted.mean(); },
      /*precision=*/5);
  std::cout << "\nDegree of hot spots (%):\n";
  stats::printPaperTable(
      std::cout, "", results,
      [](const stats::Cell& cell) { return cell.hotspotPercent.mean(); },
      /*precision=*/2, " %");
  std::cout << "\nAverage legal path length (hops):\n";
  stats::printPaperTable(
      std::cout, "", results,
      [](const stats::Cell& cell) { return cell.avgPathLength.mean(); },
      /*precision=*/4);
  cli.maybeWriteCsv(results);
  return 0;
}
