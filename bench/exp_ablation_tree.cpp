// Ablation: coordinated-tree construction (Remark 1).  M1 (smallest-id
// preorder) should dominate M2 (random) and M3 (largest-id) for both
// algorithms; additionally reports sensitivity to the root choice.
#include <iomanip>
#include <iostream>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "topology/generate.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ExperimentCli cli(
      "exp_ablation_tree",
      "Ablation: tree policy M1/M2/M3 (Remark 1) and root choice");
  const stats::ExperimentConfig config = cli.parse(argc, argv);
  const stats::ExperimentResults results = stats::runExperiment(config);

  std::cout << "Saturation throughput by tree policy (flits/clock/node):\n";
  stats::printPaperTable(
      std::cout, "", results,
      [](const stats::Cell& cell) { return cell.maxAccepted.mean(); },
      /*precision=*/5);
  std::cout << "\nDegree of hot spots by tree policy (%):\n";
  stats::printPaperTable(
      std::cout, "", results,
      [](const stats::Cell& cell) { return cell.hotspotPercent.mean(); },
      /*precision=*/2, " %");

  // Root-choice sensitivity: average legal path length of DOWN/UP when the
  // tree is rooted at every possible switch, on one sample.
  const unsigned ports = config.portConfigs.front();
  util::Rng rng(config.baseSeed + 99);
  const topo::Topology topo = topo::randomIrregular(
      config.switches, {.maxPorts = ports}, rng);
  double best = 1e30;
  double worst = 0.0;
  topo::NodeId bestRoot = 0;
  const topo::NodeId step =
      std::max<topo::NodeId>(1, topo.nodeCount() / 16);  // sample 16 roots
  for (topo::NodeId root = 0; root < topo.nodeCount(); root += step) {
    util::Rng treeRng(1);
    const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, treeRng, root);
    const double length =
        core::buildDownUp(topo, ct).table().averagePathLength();
    if (length < best) {
      best = length;
      bestRoot = root;
    }
    worst = std::max(worst, length);
  }
  std::cout << "\nRoot-choice sensitivity (DOWN/UP avg path length over "
            << "sampled roots, " << ports << "-port sample): best "
            << std::fixed << std::setprecision(4) << best << " (root "
            << bestRoot << "), worst " << worst << "\n";
  cli.maybeWriteCsv(results);
  return 0;
}
