// Fault resilience under dynamic link failures: the paper's selling point
// for topology-agnostic routing is that a SAN keeps running after links die.
// This bench injects seeded random link failures mid-run (partition-avoiding,
// so every drop is the protocol's fault, not physics'), lets the engine
// quarantine + rebuild + hot-swap routing online, drains, and reports the
// degradation surface: delivered fraction, drop attribution, latency and
// reconfiguration cost as failure count x offered load.
//
// Every cell with failures also reruns under incremental reconfiguration
// (SimConfig::reconfigIncremental): the engine keeps the surviving turn
// rule and rebuilds only the destinations the failed link can affect, so
// the window — and reconfigCyclesTotal — shrinks by the dirty fraction.
// The rightmost columns show full vs incremental frozen cycles side by
// side (--no-incremental skips the comparison runs).
//
//   ./exp_fault_resilience --switches 32 --ports 4 --seed 2004
//       --csv results/fault_resilience.csv
//       --events-csv results/fault_resilience_events.csv
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "fault/schedule.hpp"
#include "sim/network.hpp"
#include "stats/recovery.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ScenarioCli cli(
      "exp_fault_resilience",
      "delivered traffic and reconfiguration cost under dynamic "
      "link failures",
      {.packetFlits = 32, .warmup = 1000, .measure = 8000});
  auto latency = cli.cli().positiveOption<int>(
      "reconfig-latency", 200, "cycles from fault to routing hot-swap");
  auto maxFailures = cli.cli().positiveOption<int>(
      "max-failures", 8, "largest failure count tried");
  auto csvPath = cli.cli().option<std::string>("csv", "", "CSV output path");
  auto eventsCsvPath = cli.cli().option<std::string>(
      "events-csv", "",
      "per-reconfiguration-event CSV (fault/swap cycles, recovery curve)");
  auto noIncremental =
      cli.cli().flag("no-incremental",
                     "skip the incremental-reconfiguration comparison runs");
  cli.parse(argc, argv);

  util::Rng rng(cli.seed());
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(cli.switches()),
      {.maxPorts = static_cast<unsigned>(cli.ports())}, rng);
  util::Rng treeRng(cli.seed() + 100);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  util::ThreadPool pool(static_cast<std::size_t>(cli.threads()));
  const routing::Routing routing = core::buildDownUp(topo, ct, {.pool = &pool});
  const sim::UniformTraffic traffic(topo.nodeCount());

  sim::SimConfig config = cli.simConfig();
  config.reconfigLatencyCycles = static_cast<std::uint32_t>(*latency);
  config.seed = cli.seed() + 300;
  const int measure = cli.measure();

  const double saturation =
      stats::probeSaturationLoad(routing.table(), traffic, config);
  const std::vector<double> loads = {
      std::min(1.0, 0.3 * saturation), std::min(1.0, 0.6 * saturation),
      std::min(1.0, 0.9 * saturation)};

  std::vector<unsigned> failureCounts = {0, 1, 2, 4};
  if (*maxFailures > 4) failureCounts.push_back(static_cast<unsigned>(*maxFailures));

  std::unique_ptr<util::CsvWriter> csv;
  if (!csvPath->empty()) {
    csv = std::make_unique<util::CsvWriter>(*csvPath);
    csv->header({"failures", "offered_load", "generated", "delivered",
                 "delivered_frac", "dropped_in_flight", "dropped_unreachable",
                 "reconfigurations", "reconfig_cycles", "avg_latency",
                 "verified", "reconfig_cycles_incremental",
                 "incremental_swaps", "destinations_rebuilt_incremental"});
  }
  std::unique_ptr<util::CsvWriter> eventsCsv;
  if (!eventsCsvPath->empty()) {
    eventsCsv = std::make_unique<util::CsvWriter>(*eventsCsvPath);
    eventsCsv->header(
        {"failures", "offered_load", "strategy", "event", "fault_cycle",
         "swap_cycle", "time_to_reroute", "destinations_rebuilt",
         "unreachable_pairs", "baseline_rate", "dip_rate", "dip_depth",
         "dip_width_cycles", "time_to_recover", "recovered",
         "dropped_packets", "delivered_deficit"});
  }
  // Per-event timings come from the windowed time series, so any of the
  // event-level outputs needs the collector attached.
  const bool wantEvents = eventsCsv != nullptr || cli.wantsObserver();

  std::cout << cli.switches() << " switches, " << topo.linkCount()
            << " links; saturation ~" << std::fixed << std::setprecision(4)
            << saturation << " flits/node/clock; reconfig latency "
            << *latency << " cycles\n\n";
  std::cout << std::left << std::setw(10) << "failures" << std::setw(10)
            << "load" << std::setw(11) << "generated" << std::setw(12)
            << "delivered%" << std::setw(10) << "dropped" << std::setw(9)
            << "unreach" << std::setw(9) << "swaps" << std::setw(12)
            << "avg lat" << std::setw(10) << "rcfg cyc" << std::setw(12)
            << "rcfg incr" << "\n";

  // Runs one cell; when `wantEvents`, a time-series observer rides along
  // (inert for the simulated outcome) and its recovery analysis lands in
  // the events CSV under `strategy`, with the uniform --metrics-out /
  // --timeseries-out artifacts labelled `label`.
  struct CellResult {
    sim::RunStats stats;
    std::uint64_t delivered = 0;
    bool drained = false;
  };
  const auto runCell = [&](const sim::SimConfig& cellConfig, double load,
                           unsigned failures, const char* strategy,
                           const std::string& label) {
    sim::SimConfig obsConfig = cellConfig;
    std::unique_ptr<obs::Observer> observer;
    if (wantEvents) {
      obs::ObsOptions obsOptions;
      cli.applyObsOutputs(obsOptions);
      if (obsOptions.timeseriesWindowCycles == 0) {
        obsOptions.timeseriesWindowCycles = 256;  // events-csv only
      }
      observer = std::make_unique<obs::Observer>(obsOptions, topo, &ct,
                                                 cellConfig.vcCount);
      obsConfig.observer = observer.get();
    }
    sim::WormholeNetwork net(routing.table(), traffic, load, obsConfig);
    net.run();
    CellResult r;
    r.drained = net.drainRemaining(200000);
    r.stats = net.collectStats();
    r.delivered = net.packetsEjected();
    if (observer != nullptr && observer->timeseries() != nullptr) {
      observer->timeseries()->finish(net.now());
      if (eventsCsv != nullptr) {
        const auto events = stats::analyzeRecovery(*observer->timeseries());
        for (std::size_t i = 0; i < events.size(); ++i) {
          const stats::FaultRecovery& e = events[i];
          const auto cellNever = [](std::uint64_t v) {
            return v == stats::FaultRecovery::kNever ? std::string("never")
                                                     : std::to_string(v);
          };
          eventsCsv->cell(failures)
              .cell(load)
              .cell(strategy)
              .cell(static_cast<unsigned long long>(i))
              .cell(e.faultCycle)
              .cell(cellNever(e.swapCycle))
              .cell(cellNever(e.timeToReroute))
              .cell(e.destinationsRebuilt)
              .cell(e.unreachablePairs)
              .cell(e.baselineRate)
              .cell(e.dipRate)
              .cell(e.dipDepth)
              .cell(e.dipWidthCycles)
              .cell(cellNever(e.timeToRecover))
              .cell(e.recovered ? 1 : 0)
              .cell(e.droppedPackets)
              .cell(e.deliveredDeficit);
          eventsCsv->endRow();
        }
      }
      cli.writeObsArtifacts(*observer, &topo, obsConfig.measureCycles,
                            net.now(), label);
    }
    return r;
  };

  for (const unsigned failures : failureCounts) {
    // Failures land spread across the measurement window, each far enough
    // from the next that its reconfiguration completes first.
    const std::uint64_t first = config.warmupCycles + measure / 10;
    const std::uint64_t step =
        failures > 1
            ? std::max<std::uint64_t>(
                  (measure * 8ull / 10) / failures, *latency + 1)
            : 1;
    const fault::FaultSchedule schedule = fault::FaultSchedule::randomLinkFailures(
        topo, failures, first, step, cli.seed() + 500 + failures);
    config.faultSchedule = &schedule;  // empty (failures == 0) is inert

    int loadIndex = 0;
    for (const double load : loads) {
      const std::string cellLabel =
          "f" + std::to_string(failures) + "_l" + std::to_string(loadIndex++);
      const CellResult cell =
          runCell(config, load, failures, "full", cellLabel);
      const bool drained = cell.drained;
      const sim::RunStats& stats = cell.stats;
      const std::uint64_t delivered = cell.delivered;
      const double fraction =
          stats.packetsGenerated == 0
              ? 1.0
              : static_cast<double>(delivered) /
                    static_cast<double>(stats.packetsGenerated);

      // Same scenario under incremental reconfiguration: identical faults
      // and seeds, only the rebuild strategy (and thus window length)
      // differs.
      sim::RunStats incr{};
      bool incrDrained = true;
      const bool compareIncremental = !*noIncremental && failures > 0;
      if (compareIncremental) {
        sim::SimConfig incrConfig = config;
        incrConfig.reconfigIncremental = true;
        const CellResult incrCell = runCell(incrConfig, load, failures,
                                            "incremental", cellLabel + ".incr");
        incrDrained = incrCell.drained;
        incr = incrCell.stats;
      }

      std::cout << std::left << std::setw(10) << schedule.size()
                << std::setw(10) << std::setprecision(4) << load
                << std::setw(11) << stats.packetsGenerated << std::setw(12)
                << std::setprecision(2) << 100.0 * fraction << std::setw(10)
                << stats.packetsDroppedInFlight << std::setw(9)
                << stats.packetsDroppedUnreachable << std::setw(9)
                << stats.reconfigurations << std::setw(12)
                << std::setprecision(2) << stats.avgLatency << std::setw(10)
                << stats.reconfigCyclesTotal;
      if (compareIncremental) {
        std::cout << std::setw(12) << incr.reconfigCyclesTotal;
      } else {
        std::cout << std::setw(12) << "-";
      }
      std::cout << (drained && incrDrained ? "" : "  [DID NOT DRAIN]")
                << (stats.reconfigRoutingVerified && incr.reconfigRoutingVerified
                        ? ""
                        : "  [VERIFY FAILED]")
                << "\n";
      if (csv != nullptr) {
        csv->cell(static_cast<unsigned long long>(schedule.size()))
            .cell(load)
            .cell(stats.packetsGenerated)
            .cell(delivered)
            .cell(fraction)
            .cell(stats.packetsDroppedInFlight)
            .cell(stats.packetsDroppedUnreachable)
            .cell(stats.reconfigurations)
            .cell(stats.reconfigCyclesTotal)
            .cell(stats.avgLatency)
            .cell(stats.reconfigRoutingVerified ? "yes" : "NO")
            .cell(compareIncremental ? incr.reconfigCyclesTotal
                                     : stats.reconfigCyclesTotal)
            .cell(incr.reconfigIncrementalSwaps)
            .cell(incr.reconfigDestinationsRebuilt);
        csv->endRow();
      }
      if (!drained || !stats.reconfigRoutingVerified) return 1;
      if (!incrDrained || !incr.reconfigRoutingVerified) return 1;
    }
  }
  std::cout << "\n(delivered% = ejected / generated after drain; dropped = "
               "worms cut by the failures; unreach = destinations dead or "
               "partitioned; swaps = completed routing rebuilds; rcfg cyc = "
               "cycles with injection frozen, full rebuilds vs the "
               "incremental path)\n";
  return 0;
}
