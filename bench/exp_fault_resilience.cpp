// Fault resilience under dynamic link failures: the paper's selling point
// for topology-agnostic routing is that a SAN keeps running after links die.
// This bench injects seeded random link failures mid-run (partition-avoiding,
// so every drop is the protocol's fault, not physics'), lets the engine
// quarantine + rebuild + hot-swap routing online, drains, and reports the
// degradation surface: delivered fraction, drop attribution, latency and
// reconfiguration cost as failure count x offered load.
//
// Every cell with failures also reruns under incremental reconfiguration
// (SimConfig::reconfigIncremental): the engine keeps the surviving turn
// rule and rebuilds only the destinations the failed link can affect, so
// the window — and reconfigCyclesTotal — shrinks by the dirty fraction.
// The rightmost columns show full vs incremental frozen cycles side by
// side (--no-incremental skips the comparison runs).
//
//   ./exp_fault_resilience --switches 32 --ports 4 --seed 2004
//       --csv results/fault_resilience.csv
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/downup_routing.hpp"
#include "fault/schedule.hpp"
#include "sim/network.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  util::Cli cli("exp_fault_resilience",
                "delivered traffic and reconfiguration cost under dynamic "
                "link failures");
  auto switches = cli.positiveOption<int>("switches", 32, "number of switches");
  auto ports = cli.positiveOption<int>("ports", 4, "ports per switch");
  auto seed = cli.option<std::uint64_t>("seed", 2004, "base seed");
  auto packet = cli.positiveOption<int>("packet-flits", 32,
                                        "packet length (flits)");
  auto warmup = cli.option<int>("warmup", 1000, "warm-up cycles");
  auto measure = cli.positiveOption<int>("measure", 8000, "measured cycles");
  auto latency = cli.positiveOption<int>(
      "reconfig-latency", 200, "cycles from fault to routing hot-swap");
  auto maxFailures = cli.positiveOption<int>("max-failures", 8,
                                             "largest failure count tried");
  auto csvPath = cli.option<std::string>("csv", "", "CSV output path");
  auto noIncremental =
      cli.flag("no-incremental",
               "skip the incremental-reconfiguration comparison runs");
  const unsigned hw = std::thread::hardware_concurrency();
  auto threads = cli.positiveOption<int>(
      "threads", static_cast<int>(hw == 0 ? 1 : hw),
      "worker threads for table construction");
  cli.parse(argc, argv);

  util::Rng rng(*seed);
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(*switches),
      {.maxPorts = static_cast<unsigned>(*ports)}, rng);
  util::Rng treeRng(*seed + 100);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  util::ThreadPool pool(static_cast<std::size_t>(*threads));
  const routing::Routing routing = core::buildDownUp(topo, ct, {.pool = &pool});
  const sim::UniformTraffic traffic(topo.nodeCount());

  sim::SimConfig config;
  config.packetLengthFlits = static_cast<std::uint32_t>(*packet);
  config.warmupCycles = static_cast<std::uint32_t>(*warmup);
  config.measureCycles = static_cast<std::uint32_t>(*measure);
  config.reconfigLatencyCycles = static_cast<std::uint32_t>(*latency);
  config.seed = *seed + 300;

  const double saturation =
      stats::probeSaturationLoad(routing.table(), traffic, config);
  const std::vector<double> loads = {
      std::min(1.0, 0.3 * saturation), std::min(1.0, 0.6 * saturation),
      std::min(1.0, 0.9 * saturation)};

  std::vector<unsigned> failureCounts = {0, 1, 2, 4};
  if (*maxFailures > 4) failureCounts.push_back(static_cast<unsigned>(*maxFailures));

  std::unique_ptr<util::CsvWriter> csv;
  if (!csvPath->empty()) {
    csv = std::make_unique<util::CsvWriter>(*csvPath);
    csv->header({"failures", "offered_load", "generated", "delivered",
                 "delivered_frac", "dropped_in_flight", "dropped_unreachable",
                 "reconfigurations", "reconfig_cycles", "avg_latency",
                 "verified", "reconfig_cycles_incremental",
                 "incremental_swaps", "destinations_rebuilt_incremental"});
  }

  std::cout << *switches << " switches, " << topo.linkCount()
            << " links; saturation ~" << std::fixed << std::setprecision(4)
            << saturation << " flits/node/clock; reconfig latency "
            << *latency << " cycles\n\n";
  std::cout << std::left << std::setw(10) << "failures" << std::setw(10)
            << "load" << std::setw(11) << "generated" << std::setw(12)
            << "delivered%" << std::setw(10) << "dropped" << std::setw(9)
            << "unreach" << std::setw(9) << "swaps" << std::setw(12)
            << "avg lat" << std::setw(10) << "rcfg cyc" << std::setw(12)
            << "rcfg incr" << "\n";

  for (const unsigned failures : failureCounts) {
    // Failures land spread across the measurement window, each far enough
    // from the next that its reconfiguration completes first.
    const std::uint64_t first = config.warmupCycles + *measure / 10;
    const std::uint64_t step =
        failures > 1
            ? std::max<std::uint64_t>(
                  (*measure * 8ull / 10) / failures, *latency + 1)
            : 1;
    const fault::FaultSchedule schedule = fault::FaultSchedule::randomLinkFailures(
        topo, failures, first, step, *seed + 500 + failures);
    config.faultSchedule = &schedule;  // empty (failures == 0) is inert

    for (const double load : loads) {
      sim::WormholeNetwork net(routing.table(), traffic, load, config);
      net.run();
      const bool drained = net.drainRemaining(200000);
      const sim::RunStats stats = net.collectStats();
      const std::uint64_t delivered = net.packetsEjected();
      const double fraction =
          stats.packetsGenerated == 0
              ? 1.0
              : static_cast<double>(delivered) /
                    static_cast<double>(stats.packetsGenerated);

      // Same scenario under incremental reconfiguration: identical faults
      // and seeds, only the rebuild strategy (and thus window length)
      // differs.
      sim::RunStats incr{};
      bool incrDrained = true;
      const bool compareIncremental = !*noIncremental && failures > 0;
      if (compareIncremental) {
        sim::SimConfig incrConfig = config;
        incrConfig.reconfigIncremental = true;
        sim::WormholeNetwork incrNet(routing.table(), traffic, load,
                                     incrConfig);
        incrNet.run();
        incrDrained = incrNet.drainRemaining(200000);
        incr = incrNet.collectStats();
      }

      std::cout << std::left << std::setw(10) << schedule.size()
                << std::setw(10) << std::setprecision(4) << load
                << std::setw(11) << stats.packetsGenerated << std::setw(12)
                << std::setprecision(2) << 100.0 * fraction << std::setw(10)
                << stats.packetsDroppedInFlight << std::setw(9)
                << stats.packetsDroppedUnreachable << std::setw(9)
                << stats.reconfigurations << std::setw(12)
                << std::setprecision(2) << stats.avgLatency << std::setw(10)
                << stats.reconfigCyclesTotal;
      if (compareIncremental) {
        std::cout << std::setw(12) << incr.reconfigCyclesTotal;
      } else {
        std::cout << std::setw(12) << "-";
      }
      std::cout << (drained && incrDrained ? "" : "  [DID NOT DRAIN]")
                << (stats.reconfigRoutingVerified && incr.reconfigRoutingVerified
                        ? ""
                        : "  [VERIFY FAILED]")
                << "\n";
      if (csv != nullptr) {
        csv->cell(static_cast<unsigned long long>(schedule.size()))
            .cell(load)
            .cell(stats.packetsGenerated)
            .cell(delivered)
            .cell(fraction)
            .cell(stats.packetsDroppedInFlight)
            .cell(stats.packetsDroppedUnreachable)
            .cell(stats.reconfigurations)
            .cell(stats.reconfigCyclesTotal)
            .cell(stats.avgLatency)
            .cell(stats.reconfigRoutingVerified ? "yes" : "NO")
            .cell(compareIncremental ? incr.reconfigCyclesTotal
                                     : stats.reconfigCyclesTotal)
            .cell(incr.reconfigIncrementalSwaps)
            .cell(incr.reconfigDestinationsRebuilt);
        csv->endRow();
      }
      if (!drained || !stats.reconfigRoutingVerified) return 1;
      if (!incrDrained || !incr.reconfigRoutingVerified) return 1;
    }
  }
  std::cout << "\n(delivered% = ejected / generated after drain; dropped = "
               "worms cut by the failures; unreach = destinations dead or "
               "partitioned; swaps = completed routing rebuilds; rcfg cyc = "
               "cycles with injection frozen, full rebuilds vs the "
               "incremental path)\n";
  return 0;
}
