// Reproduces Figure 8 of the paper: average message latency and accepted
// traffic under increasing offered load, for L-turn and DOWN/UP over trees
// M1/M2/M3 on 4-port (Fig. 8a) and 8-port (Fig. 8b) irregular networks.
// Prints one series per (ports, tree, algorithm) plus the saturation
// summary (max accepted traffic = the paper's throughput).
#include <fstream>
#include <iomanip>
#include <iostream>

#include "exp_common.hpp"
#include "stats/compare.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ExperimentCli cli(
      "exp_fig8_latency",
      "Figure 8: average message latency vs accepted traffic");
  const stats::ExperimentConfig config = cli.parse(argc, argv);
  const stats::ExperimentResults results = stats::runExperiment(config);

  std::cout << "Figure 8. Average message latency and accepted traffic\n"
            << "(latency in clocks; traffic in flits/clock/node)\n\n";
  stats::printLatencyCurves(std::cout, results);

  std::cout << "\nSaturation summary (max accepted traffic, higher is "
               "better):\n";
  stats::printPaperTable(
      std::cout, "", results,
      [](const stats::Cell& cell) { return cell.maxAccepted.mean(); },
      /*precision=*/5);
  std::cout << "\nZero-load latency (clocks):\n";
  stats::printPaperTable(
      std::cout, "", results,
      [](const stats::Cell& cell) { return cell.zeroLoadLatency.mean(); },
      /*precision=*/1);
  std::cout << "\nShape verdicts (DOWN/UP vs L-turn, per paper claims):\n";
  stats::printShapeVerdicts(
      std::cout, stats::compareAlgorithms(results, core::Algorithm::kDownUp,
                                          core::Algorithm::kLTurn,
                                          stats::paperShapeChecks()));
  cli.maybeWriteCsv(results);
  if (!cli.csvPrefix().empty()) {
    std::ofstream md(cli.csvPrefix() + "_report.md");
    stats::writeMarkdownReport(results, md);
  }
  return 0;
}
