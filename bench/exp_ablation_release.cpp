// Ablation: how much do the Phase-3 released turns buy DOWN/UP, and how
// many per-node repairs does the published turn set need (DESIGN.md §4.4)?
// Compares downup vs downup-norelease on identical topologies and reports
// release / repair-block counts, average path length and saturation
// throughput.
#include <iomanip>
#include <iostream>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "topology/generate.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ExperimentCli cli(
      "exp_ablation_release",
      "Ablation: Phase-3 turn release on/off + repair-pass statistics");
  stats::ExperimentConfig config = cli.parse(argc, argv);
  config.algorithms = {core::Algorithm::kDownUp,
                       core::Algorithm::kDownUpNoRelease};

  // Structural statistics on the same samples the experiment will use.
  std::cout << "Structural statistics per sample (DOWN/UP):\n"
            << std::left << std::setw(8) << "ports" << std::setw(8)
            << "sample" << std::setw(12) << "releases" << std::setw(14)
            << "repairBlocks" << std::setw(14) << "avgPath" << "\n";
  for (unsigned ports : config.portConfigs) {
    for (unsigned sample = 0; sample < config.samples; ++sample) {
      util::Rng rng(config.baseSeed + ports * 1000 + sample);
      const topo::Topology topo =
          topo::randomIrregular(config.switches, {.maxPorts = ports}, rng);
      util::Rng treeRng(config.baseSeed + sample);
      const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
          topo, tree::TreePolicy::kM1SmallestFirst, treeRng);

      routing::TurnPermissions perms(
          topo, routing::classifyDownUp(topo, ct), core::downUpTurnSet());
      const core::RepairStats repair = core::repairTurnCycles(perms);
      const core::ReleaseStats release =
          core::releaseRedundantProhibitions(perms);
      const routing::Routing routing = core::buildDownUp(topo, ct);
      std::cout << std::left << std::setw(8) << ports << std::setw(8)
                << sample << std::setw(12) << release.releasedTurns
                << std::setw(14) << repair.blockedTurns << std::setw(14)
                << std::fixed << std::setprecision(4)
                << routing.table().averagePathLength() << "\n";
    }
  }

  const stats::ExperimentResults results = stats::runExperiment(config);
  std::cout << "\nSaturation throughput (flits/clock/node):\n";
  stats::printPaperTable(
      std::cout, "", results,
      [](const stats::Cell& cell) { return cell.maxAccepted.mean(); },
      /*precision=*/5);
  std::cout << "\nAverage legal path length:\n";
  stats::printPaperTable(
      std::cout, "", results,
      [](const stats::Cell& cell) { return cell.avgPathLength.mean(); },
      /*precision=*/4);
  cli.maybeWriteCsv(results);
  return 0;
}
