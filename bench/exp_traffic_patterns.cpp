// Extension experiment: the paper evaluates only uniform traffic; this
// bench stresses L-turn vs DOWN/UP under hotspot, permutation, local and
// bursty-uniform traffic to check that DOWN/UP's advantage is not a uniform
// artefact.  Reports saturation throughput per pattern.
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "sim/engine.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/summary.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ScenarioCli cli("exp_traffic_patterns",
                         "L-turn vs DOWN/UP under non-uniform traffic",
                         {.samples = 3, .obsOutputs = false});
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(cli.threads()));

  struct PatternSpec {
    const char* name;
    double burstFactor;
  };
  const PatternSpec specs[] = {{"uniform", 1.0},
                               {"uniform+burst", 8.0},
                               {"hotspot", 1.0},
                               {"permutation", 1.0},
                               {"local", 1.0}};

  std::cout << std::left << std::setw(16) << "pattern" << std::setw(12)
            << "lturn" << std::setw(12) << "downup" << std::setw(12)
            << "ratio" << "\n";

  for (const PatternSpec& spec : specs) {
    util::RunningStat lturnSat;
    util::RunningStat downupSat;
    for (int sample = 0; sample < cli.samples(); ++sample) {
      util::Rng rng(cli.seed() + static_cast<std::uint64_t>(sample));
      const topo::Topology topo = topo::randomIrregular(
          static_cast<topo::NodeId>(cli.switches()),
          {.maxPorts = static_cast<unsigned>(cli.ports())}, rng);
      util::Rng treeRng(cli.seed() + 100 + static_cast<std::uint64_t>(sample));
      const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
          topo, tree::TreePolicy::kM1SmallestFirst, treeRng);

      std::unique_ptr<sim::TrafficPattern> pattern;
      util::Rng patternRng(cli.seed() + 200 + static_cast<std::uint64_t>(sample));
      const std::string name = spec.name;
      if (name.starts_with("uniform")) {
        pattern = std::make_unique<sim::UniformTraffic>(topo.nodeCount());
      } else if (name == "hotspot") {
        pattern = std::make_unique<sim::HotspotTraffic>(topo.nodeCount(),
                                                        0, 0.15);
      } else if (name == "permutation") {
        pattern = std::make_unique<sim::PermutationTraffic>(
            sim::PermutationTraffic::random(topo.nodeCount(), patternRng));
      } else {
        pattern = std::make_unique<sim::LocalTraffic>(topo, 3);
      }

      sim::SimConfig config = cli.simConfig();
      config.burstFactor = spec.burstFactor;
      config.seed = cli.seed() + 300 + static_cast<std::uint64_t>(sample);

      for (const core::Algorithm algorithm :
           {core::Algorithm::kLTurn, core::Algorithm::kDownUp}) {
        const routing::Routing routing =
            core::buildRouting(algorithm, topo, ct, &pool);
        const double probed = stats::probeSaturationLoad(
            routing.table(), *pattern, config);
        const auto loads = stats::loadGrid(std::min(1.0, 1.8 * probed), 6);
        const auto sweep =
            stats::runSweep(routing.table(), *pattern, loads, config);
        const double sat = stats::findSaturation(sweep).maxAccepted;
        (algorithm == core::Algorithm::kLTurn ? lturnSat : downupSat).add(sat);
      }
    }
    std::cout << std::left << std::setw(16) << spec.name << std::setw(12)
              << std::fixed << std::setprecision(5) << lturnSat.mean()
              << std::setw(12) << downupSat.mean() << std::setw(12)
              << std::setprecision(3) << downupSat.mean() / lturnSat.mean()
              << "\n";
  }
  std::cout << "\n(saturation throughput in flits/clock/node; ratio > 1 "
               "means DOWN/UP wins)\n";
  return 0;
}
