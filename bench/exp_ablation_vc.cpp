// Ablation: virtual channels.  The paper claims DOWN/UP "can be directly
// applied to arbitrary topology with (or without) any virtual channel";
// this bench quantifies what 1/2/4 VCs per physical channel buy each
// algorithm in saturation throughput.
#include <iomanip>
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ExperimentCli cli("exp_ablation_vc",
                           "Ablation: virtual channels 1/2/4 per link");
  stats::ExperimentConfig base = cli.parse(argc, argv);
  base.policies = {tree::TreePolicy::kM1SmallestFirst};

  std::cout << "Saturation throughput (flits/clock/node) by VC count:\n";
  for (std::uint32_t vcs : {1u, 2u, 4u}) {
    stats::ExperimentConfig config = base;
    config.sim.vcCount = vcs;
    const stats::ExperimentResults results = stats::runExperiment(config);
    std::cout << "\n--- " << vcs << " virtual channel(s) ---\n";
    stats::printPaperTable(
        std::cout, "", results,
        [](const stats::Cell& cell) { return cell.maxAccepted.mean(); },
        /*precision=*/5);
    if (!cli.csvPrefix().empty()) {
      stats::writeMetricsCsv(results, cli.csvPrefix() + "_vc" +
                                          std::to_string(vcs) +
                                          "_metrics.csv");
    }
  }
  return 0;
}
