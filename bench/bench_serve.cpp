// Serving benchmark: route lookups as a concurrent service under fault
// churn.  N reader threads hammer FabricManager's lock-free snapshot path
// (pin -> lookups -> unpin) while an injector thread drives a seeded
// FaultSchedule through a FaultController whose transitions feed the
// fabric's service thread — rebuilds, coalescing and epoch swaps all happen
// live under the readers.
//
// Reported (one JSON row, schema in results/README.md):
//   lookupsPerSec           read-path throughput over the whole serve span
//   lookupP50Ns/P99Ns       per-lookup latency quantiles (timed subsample)
//   acquireP99Ns            pin-acquisition latency quantiles
//   epochSwapStallMaxNs     max reader-visible acquire gap (swap stall)
//   lookupsDuringReconfig   lookups completed while a rebuild was in flight
//                           (nonzero = reads proceed during reconfiguration)
//   rebuilds/rebuildsSkipped/transitionsAbsorbed/rebuildsCoalesced
//                           coalescing effectiveness (flap cancel-outs,
//                           burst folding)
//   retireDepthMax          retired-snapshot list high-water mark
//   snapshotLifetimeP50Ns/P99Ns
//                           publish -> reclaim lifetime per retired epoch
//   fabricMetrics           full FabricMetrics JSON object (histograms +
//                           coalescing ledger)
//
// Writes BENCH_serve.json (--json or $DOWNUP_BENCH_SERVE_JSON overrides,
// "" disables); --metrics-out appends the same row as one JSONL line;
// --spans-out writes the service thread's control-plane spans as JSONL plus
// a Perfetto-loadable trace.
//
//   ./bench_serve --switches 64 --threads 4 --churn 16 --serve-ms 400
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "fabric/manager.hpp"
#include "fault/controller.hpp"
#include "fault/schedule.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/rng.hpp"
#include "util/span_recorder.hpp"
#include "util/summary.hpp"

namespace {

using namespace downup;
using Clock = std::chrono::steady_clock;

thread_local std::uint64_t gSink = 0;
inline void keep(std::uint64_t v) {
  gSink ^= v;
  asm volatile("" : : "g"(&gSink) : "memory");
}

inline double toNs(Clock::duration d) {
  return std::chrono::duration<double, std::nano>(d).count();
}

struct ReaderStats {
  std::uint64_t lookups = 0;
  std::uint64_t lookupsDuringReconfig = 0;
  std::uint64_t acquires = 0;
  double maxAcquireNs = 0.0;
  util::QuantileSketch lookupNs;
  util::QuantileSketch acquireNs;
};

struct ServeResult {
  double durationSeconds = 0.0;
  ReaderStats total;
  std::uint64_t rebuilds = 0;
  std::uint64_t rebuildsSkipped = 0;
  std::uint64_t transitionsAbsorbed = 0;
  std::uint64_t largestBatch = 0;
  std::uint64_t finalEpoch = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t retireDepthMax = 0;
  double snapshotLifetimeP50Ns = 0.0;
  double snapshotLifetimeP99Ns = 0.0;
  std::string fabricMetricsJson;
  bool allOk = true;
};

/// One reader thread: pin the current epoch, run a batch of random-pair
/// lookups against it, unpin, repeat.  Every lookup in one of kTimedEvery
/// batches is timed individually (quantiles without paying two clock reads
/// per lookup on the throughput path).
void readerLoop(fabric::FabricManager& fm, fabric::Reader reader,
                topo::NodeId nodes, std::uint64_t seed,
                const std::atomic<bool>& stop, ReaderStats& stats) {
  constexpr std::uint32_t kBatch = 256;
  constexpr std::uint32_t kTimedEvery = 64;
  util::Rng rng(seed);
  std::uint64_t batchIndex = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const auto tAcquire0 = Clock::now();
    fabric::PinnedSnapshot pin = fm.acquire(reader);
    const double acquireNs = toNs(Clock::now() - tAcquire0);
    stats.acquireNs.add(acquireNs);
    if (acquireNs > stats.maxAcquireNs) stats.maxAcquireNs = acquireNs;
    ++stats.acquires;

    const routing::RoutingTable& table = pin.table();
    const bool timedBatch = (batchIndex++ % kTimedEvery) == 0;
    for (std::uint32_t i = 0; i < kBatch; ++i) {
      const auto src = static_cast<topo::NodeId>(rng.below(nodes));
      auto dst = static_cast<topo::NodeId>(rng.below(nodes));
      if (dst == src) dst = (dst + 1) % nodes;
      if (timedBatch) {
        const auto t0 = Clock::now();
        keep(table.firstChannels(src, dst).size());
        keep(table.distance(src, dst));
        stats.lookupNs.add(toNs(Clock::now() - t0));
      } else {
        keep(table.firstChannels(src, dst).size());
        keep(table.distance(src, dst));
      }
      // Reads keep flowing while the service thread rebuilds; count the
      // ones that overlap an in-flight reconfiguration.
      if (fm.rebuildActive()) ++stats.lookupsDuringReconfig;
    }
    stats.lookups += kBatch;
  }
}

/// Seeded churn: `churn` distinct non-partitioning links each fail and
/// recover (spread-out down/up pairs), then a handful of same-cycle flap
/// bursts exercise the down-before-up ordering and the coalescing
/// cancel-out.  Pure data — the injector thread paces it in wall time.
fault::FaultSchedule makeChurn(const topo::Topology& topo, unsigned churn,
                               std::uint64_t seed) {
  const fault::FaultSchedule picks =
      fault::FaultSchedule::randomLinkFailures(topo, churn, 0, 1, seed);
  fault::FaultSchedule schedule;
  std::uint64_t cycle = 1;
  for (const fault::FaultEvent& pick : picks.events()) {
    schedule.linkDown(cycle++, pick.id);
    schedule.linkUp(cycle++, pick.id);
  }
  const std::size_t flaps = std::min<std::size_t>(4, picks.size());
  for (std::size_t i = 0; i < flaps; ++i) {
    schedule.linkFlap(cycle++, picks.events()[i].id, 0);  // same-cycle flap
  }
  return schedule;
}

void writeRow(std::FILE* out, const ServeResult& r, int switches, int ports,
              std::uint64_t seed, int readers, unsigned churn,
              std::uint64_t coalesceUs, std::uint64_t intervalUs,
              const char* indent, const char* lineEnd) {
  const auto lk = r.total.lookupNs.snapshot();
  const auto aq = r.total.acquireNs.snapshot();
  const double perSec =
      r.durationSeconds > 0.0
          ? static_cast<double>(r.total.lookups) / r.durationSeconds
          : 0.0;
  const std::uint64_t coalesced =
      r.transitionsAbsorbed > r.rebuilds ? r.transitionsAbsorbed - r.rebuilds
                                         : 0;
  std::fprintf(out, "%s\"switches\": %d, \"ports\": %d, \"seed\": %llu,%s",
               indent, switches, ports,
               static_cast<unsigned long long>(seed), lineEnd);
  std::fprintf(out,
               "%s\"readerThreads\": %d, \"churnLinks\": %u, "
               "\"coalesceWindowMicros\": %llu, \"faultIntervalMicros\": "
               "%llu,%s",
               indent, readers, churn,
               static_cast<unsigned long long>(coalesceUs),
               static_cast<unsigned long long>(intervalUs), lineEnd);
  std::fprintf(out,
               "%s\"durationSeconds\": %.3f, \"lookups\": %llu, "
               "\"lookupsPerSec\": %.0f,%s",
               indent, r.durationSeconds,
               static_cast<unsigned long long>(r.total.lookups), perSec,
               lineEnd);
  std::fprintf(out,
               "%s\"lookupP50Ns\": %.0f, \"lookupP99Ns\": %.0f, "
               "\"lookupMaxNs\": %.0f,%s",
               indent, lk.p50, lk.p99, r.total.lookupNs.max(), lineEnd);
  std::fprintf(out,
               "%s\"acquireP50Ns\": %.0f, \"acquireP99Ns\": %.0f, "
               "\"epochSwapStallMaxNs\": %.0f,%s",
               indent, aq.p50, aq.p99, r.total.maxAcquireNs, lineEnd);
  std::fprintf(out,
               "%s\"lookupsDuringReconfig\": %llu, \"rebuilds\": %llu, "
               "\"rebuildsSkipped\": %llu,%s",
               indent,
               static_cast<unsigned long long>(r.total.lookupsDuringReconfig),
               static_cast<unsigned long long>(r.rebuilds),
               static_cast<unsigned long long>(r.rebuildsSkipped), lineEnd);
  std::fprintf(out,
               "%s\"transitionsAbsorbed\": %llu, \"rebuildsCoalesced\": "
               "%llu, \"largestBatch\": %llu,%s",
               indent, static_cast<unsigned long long>(r.transitionsAbsorbed),
               static_cast<unsigned long long>(coalesced),
               static_cast<unsigned long long>(r.largestBatch), lineEnd);
  std::fprintf(out,
               "%s\"finalEpoch\": %llu, \"epochsReclaimed\": %llu,%s",
               indent, static_cast<unsigned long long>(r.finalEpoch),
               static_cast<unsigned long long>(r.reclaimed), lineEnd);
  std::fprintf(out,
               "%s\"retireDepthMax\": %llu, \"snapshotLifetimeP50Ns\": "
               "%.0f, \"snapshotLifetimeP99Ns\": %.0f,%s",
               indent, static_cast<unsigned long long>(r.retireDepthMax),
               r.snapshotLifetimeP50Ns, r.snapshotLifetimeP99Ns, lineEnd);
  std::fprintf(out, "%s\"fabricMetrics\": %s,%s", indent,
               r.fabricMetricsJson.c_str(), lineEnd);
  std::fprintf(out, "%s\"allPublishedOk\": %s", indent,
               r.allOk ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScenarioCli scli(
      "bench_serve",
      "concurrent route-lookup service under fault churn: reader threads "
      "(--threads) hammer the fabric's epoch-swapped snapshot path while a "
      "seeded schedule drives live reconfiguration",
      {.switches = 64, .ports = 4, .warmup = 0, .measure = 8000,
       .obsOutputs = false});
  auto churnOpt = scli.cli().positiveOption<int>(
      "churn", 16, "distinct links that fail and recover during the run");
  auto coalesceOpt = scli.cli().option<int>(
      "coalesce-us", 200, "fabric coalescing window in microseconds");
  auto intervalOpt = scli.cli().positiveOption<int>(
      "fault-interval-us", 4000,
      "wall-clock pacing between schedule cycles (microseconds)");
  auto serveMsOpt = scli.cli().positiveOption<int>(
      "serve-ms", 400, "minimum serving span in milliseconds");
  auto metricsOut = scli.cli().option<std::string>(
      "metrics-out", "", "append the result row as one JSONL line");
  auto spansOut = scli.cli().option<std::string>(
      "spans-out", "",
      "control-plane span path prefix (.{jsonl,trace.json} appended)");
  auto jsonOpt = scli.cli().option<std::string>(
      "json", "",
      "JSON output path (default BENCH_serve.json or "
      "$DOWNUP_BENCH_SERVE_JSON; \"\" with the env var disables)");
  scli.parse(argc, argv);

  const int switches = scli.switches();
  const int readers = scli.threads();
  const auto churn = static_cast<unsigned>(*churnOpt);
  const auto coalesceUs = static_cast<std::uint64_t>(
      *coalesceOpt < 0 ? 0 : *coalesceOpt);
  const auto intervalUs = static_cast<std::uint64_t>(*intervalOpt);

  util::Rng topoRng(scli.seed());
  const topo::Topology topo = topo::randomIrregular(
      static_cast<topo::NodeId>(switches),
      {.maxPorts = static_cast<unsigned>(scli.ports())}, topoRng);
  util::Rng treeRng(scli.seed() + 1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing baseline = core::buildDownUp(topo, ct);

  const fault::FaultSchedule schedule =
      makeChurn(topo, churn, scli.seed() + 2);
  fault::FaultController controller(topo, schedule);
  util::SpanRecorder spans;
  fabric::FabricMetrics metrics;
  fabric::FabricManager::Options fmOptions;
  fmOptions.coalesceWindowMicros = coalesceUs;
  fmOptions.metrics = &metrics;
  if (!spansOut->empty()) fmOptions.spans = &spans;
  fabric::FabricManager fm(topo, baseline.table(), fmOptions);
  controller.attachSink(&fm);

  std::vector<fabric::Reader> handles;
  handles.reserve(static_cast<std::size_t>(readers));
  for (int r = 0; r < readers; ++r) handles.push_back(fm.makeReader());

  std::atomic<bool> stop{false};
  std::vector<ReaderStats> stats(static_cast<std::size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));

  fm.startService();
  const auto t0 = Clock::now();
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back(readerLoop, std::ref(fm), handles[r],
                         topo.nodeCount(), scli.seed() + 100 + r,
                         std::cref(stop), std::ref(stats[r]));
  }

  // Injector: pace the schedule's cycles in wall time; every applyEventsAt
  // posts its batch of effective transitions to the fabric's queue.
  while (controller.nextEventCycle() != fault::FaultController::kNever) {
    controller.applyEventsAt(controller.nextEventCycle());
    std::this_thread::sleep_for(std::chrono::microseconds(intervalUs));
  }
  // Keep serving until the minimum span elapsed (readers also need time to
  // observe the last swap).
  const auto minSpan = std::chrono::milliseconds(*serveMsOpt);
  while (Clock::now() - t0 < minSpan) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  fm.stopService();
  fm.tryReclaim();

  ServeResult result;
  result.durationSeconds = seconds;
  for (const ReaderStats& s : stats) {
    result.total.lookups += s.lookups;
    result.total.lookupsDuringReconfig += s.lookupsDuringReconfig;
    result.total.acquires += s.acquires;
    if (s.maxAcquireNs > result.total.maxAcquireNs) {
      result.total.maxAcquireNs = s.maxAcquireNs;
    }
    result.total.lookupNs.mergeFrom(s.lookupNs);
    result.total.acquireNs.mergeFrom(s.acquireNs);
  }
  result.rebuilds = fm.rebuilds();
  result.rebuildsSkipped = fm.rebuildsSkipped();
  result.transitionsAbsorbed = fm.transitionsAbsorbed();
  result.largestBatch = fm.largestBatch();
  result.finalEpoch = fm.currentEpoch();
  result.reclaimed = fm.reclaimedCount();
  result.allOk = fm.allPublishedOk();
  result.retireDepthMax =
      metrics.retireDepthMax.load(std::memory_order_relaxed);
  const auto lifetime = metrics.snapshotLifetimeNs.snapshot();
  result.snapshotLifetimeP50Ns = lifetime.p50Ns;
  result.snapshotLifetimeP99Ns = lifetime.p99Ns;
  {
    std::ostringstream mjson;
    metrics.writeJson(mjson);
    result.fabricMetricsJson = mjson.str();
  }

  const auto lk = result.total.lookupNs.snapshot();
  std::printf(
      "bench_serve: %llu lookups in %.3fs (%.2fM/s, %d readers), "
      "p50 %.0fns p99 %.0fns, swap stall max %.0fns\n",
      static_cast<unsigned long long>(result.total.lookups), seconds,
      static_cast<double>(result.total.lookups) / seconds / 1e6, readers,
      lk.p50, lk.p99, result.total.maxAcquireNs);
  std::printf(
      "bench_serve: %llu lookups during reconfig, %llu rebuilds "
      "(%llu skipped, %llu transitions, largest batch %llu), final epoch "
      "%llu, allOk=%d\n",
      static_cast<unsigned long long>(result.total.lookupsDuringReconfig),
      static_cast<unsigned long long>(result.rebuilds),
      static_cast<unsigned long long>(result.rebuildsSkipped),
      static_cast<unsigned long long>(result.transitionsAbsorbed),
      static_cast<unsigned long long>(result.largestBatch),
      static_cast<unsigned long long>(result.finalEpoch),
      result.allOk ? 1 : 0);

  std::string jsonPath = *jsonOpt;
  if (jsonPath.empty()) {
    const char* env = std::getenv("DOWNUP_BENCH_SERVE_JSON");
    jsonPath = env != nullptr ? env : "BENCH_serve.json";
  }
  if (!jsonPath.empty()) {
    std::FILE* out = std::fopen(jsonPath.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"bench_serve\",\n");
    std::fprintf(out, "  \"gitRev\": \"%s\",\n", obs::gitRevision().c_str());
    std::fprintf(out, "  \"timestampUtc\": \"%s\",\n",
                 obs::utcTimestamp().c_str());
    std::fprintf(out, "  \"hardwareConcurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    writeRow(out, result, switches, scli.ports(), scli.seed(), readers,
             churn, coalesceUs, intervalUs, "  ", "\n");
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("bench_serve: wrote %s\n", jsonPath.c_str());
  }
  if (!metricsOut->empty()) {
    std::FILE* out = std::fopen(metricsOut->c_str(), "a");
    if (out != nullptr) {
      std::fprintf(out, "{\"bench\": \"bench_serve\", ");
      writeRow(out, result, switches, scli.ports(), scli.seed(), readers,
               churn, coalesceUs, intervalUs, "", " ");
      std::fprintf(out, "}\n");
      std::fclose(out);
      std::printf("bench_serve: appended %s\n", metricsOut->c_str());
    }
  }
  if (!spansOut->empty()) {
    {
      std::ofstream out(*spansOut + ".jsonl");
      obs::writeSpansJsonl(spans, out);
    }
    {
      std::ofstream out(*spansOut + ".trace.json");
      obs::writeSpansChromeTrace(spans, out);
    }
    std::printf("bench_serve: wrote %s.{jsonl,trace.json}\n",
                spansOut->c_str());
  }
  return 0;
}
