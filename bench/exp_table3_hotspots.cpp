// Reproduces Table 3 of the paper: the degree of hot spots — the share of
// total node utilization carried by switches in coordinated-tree levels 0
// and 1 — at peak throughput.  DOWN/UP's whole point is to push this down.
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ExperimentCli cli(
      "exp_table3_hotspots",
      "Table 3: degree of hot spots (levels 0-1 utilization share)");
  const stats::ExperimentConfig config = cli.parse(argc, argv);
  const stats::ExperimentResults results = stats::runExperiment(config);

  stats::printPaperTable(
      std::cout, "Table 3. Degree of hot spots (%)", results,
      [](const stats::Cell& cell) { return cell.hotspotPercent.mean(); },
      /*precision=*/2, /*suffix=*/" %");

  static constexpr double kPaper[3][4] = {
      {12.85, 13.26, 12.00, 9.93},
      {14.15, 14.90, 12.13, 10.56},
      {16.18, 18.43, 12.16, 11.25},
  };
  bench::printPaperReference(std::cout, "Table 3, degree of hot spots",
                             kPaper, " %");
  cli.maybeWriteCsv(results);
  return 0;
}
