// Ablation: adaptive vs deterministic path selection.  The paper's
// algorithms are adaptive — at each hop any minimal legal output may be
// taken, chosen at random among free ones.  This bench quantifies what that
// adaptivity is worth by re-running the same routings with a fixed
// (lowest-numbered) choice per hop.
#include <iomanip>
#include <iostream>
#include <thread>

#include "core/downup_routing.hpp"
#include "sim/engine.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/cli.hpp"
#include "util/summary.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  util::Cli cli("exp_ablation_adaptivity",
                "adaptive vs deterministic output selection");
  auto switches = cli.positiveOption<int>("switches", 32, "number of switches");
  auto ports = cli.positiveOption<int>("ports", 4, "ports per switch");
  auto samples = cli.positiveOption<int>("samples", 3, "random topologies");
  auto seed = cli.option<std::uint64_t>("seed", 2004, "base seed");
  const unsigned hw = std::thread::hardware_concurrency();
  auto threads = cli.positiveOption<int>(
      "threads", static_cast<int>(hw == 0 ? 1 : hw),
      "worker threads for table construction");
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(*threads));

  std::cout << std::left << std::setw(12) << "algorithm" << std::setw(14)
            << "adaptive" << std::setw(16) << "deterministic" << std::setw(10)
            << "gain" << "\n";

  for (core::Algorithm algorithm :
       {core::Algorithm::kLTurn, core::Algorithm::kDownUp}) {
    util::RunningStat adaptive;
    util::RunningStat deterministic;
    for (int sample = 0; sample < *samples; ++sample) {
      util::Rng rng(*seed + static_cast<std::uint64_t>(sample));
      const topo::Topology topo = topo::randomIrregular(
          static_cast<topo::NodeId>(*switches),
          {.maxPorts = static_cast<unsigned>(*ports)}, rng);
      util::Rng treeRng(*seed + 100 + static_cast<std::uint64_t>(sample));
      const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
          topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
      const routing::Routing routing = core::buildRouting(algorithm, topo, ct, &pool);
      const sim::UniformTraffic traffic(topo.nodeCount());

      sim::SimConfig config;
      config.packetLengthFlits = 64;
      config.warmupCycles = 2000;
      config.measureCycles = 8000;
      config.seed = *seed + 300 + static_cast<std::uint64_t>(sample);

      for (const bool useAdaptive : {true, false}) {
        config.adaptiveSelection = useAdaptive;
        const double probed =
            stats::probeSaturationLoad(routing.table(), traffic, config);
        const auto loads = stats::loadGrid(std::min(1.0, 1.8 * probed), 6);
        const auto sweep =
            stats::runSweep(routing.table(), traffic, loads, config);
        (useAdaptive ? adaptive : deterministic)
            .add(stats::findSaturation(sweep).maxAccepted);
      }
    }
    std::cout << std::left << std::setw(12) << core::toString(algorithm)
              << std::setw(14) << std::fixed << std::setprecision(5)
              << adaptive.mean() << std::setw(16) << deterministic.mean()
              << std::setw(10) << std::setprecision(3)
              << adaptive.mean() / deterministic.mean() << "\n";
  }
  std::cout << "\n(saturation throughput in flits/clock/node; gain = "
               "adaptive/deterministic)\n";
  return 0;
}
