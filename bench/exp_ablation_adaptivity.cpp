// Ablation: adaptive vs deterministic path selection.  The paper's
// algorithms are adaptive — at each hop any minimal legal output may be
// taken, chosen at random among free ones.  This bench quantifies what that
// adaptivity is worth by re-running the same routings with a fixed
// (lowest-numbered) choice per hop.
#include <iomanip>
#include <iostream>

#include "core/downup_routing.hpp"
#include "exp_common.hpp"
#include "sim/engine.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/summary.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace downup;
  bench::ScenarioCli cli("exp_ablation_adaptivity",
                         "adaptive vs deterministic output selection",
                         {.samples = 3, .obsOutputs = false});
  cli.parse(argc, argv);
  util::ThreadPool pool(static_cast<std::size_t>(cli.threads()));

  std::cout << std::left << std::setw(12) << "algorithm" << std::setw(14)
            << "adaptive" << std::setw(16) << "deterministic" << std::setw(10)
            << "gain" << "\n";

  for (core::Algorithm algorithm :
       {core::Algorithm::kLTurn, core::Algorithm::kDownUp}) {
    util::RunningStat adaptive;
    util::RunningStat deterministic;
    for (int sample = 0; sample < cli.samples(); ++sample) {
      util::Rng rng(cli.seed() + static_cast<std::uint64_t>(sample));
      const topo::Topology topo = topo::randomIrregular(
          static_cast<topo::NodeId>(cli.switches()),
          {.maxPorts = static_cast<unsigned>(cli.ports())}, rng);
      util::Rng treeRng(cli.seed() + 100 + static_cast<std::uint64_t>(sample));
      const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
          topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
      const routing::Routing routing = core::buildRouting(algorithm, topo, ct, &pool);
      const sim::UniformTraffic traffic(topo.nodeCount());

      sim::SimConfig config = cli.simConfig();
      config.seed = cli.seed() + 300 + static_cast<std::uint64_t>(sample);

      for (const bool useAdaptive : {true, false}) {
        config.adaptiveSelection = useAdaptive;
        const double probed =
            stats::probeSaturationLoad(routing.table(), traffic, config);
        const auto loads = stats::loadGrid(std::min(1.0, 1.8 * probed), 6);
        const auto sweep =
            stats::runSweep(routing.table(), traffic, loads, config);
        (useAdaptive ? adaptive : deterministic)
            .add(stats::findSaturation(sweep).maxAccepted);
      }
    }
    std::cout << std::left << std::setw(12) << core::toString(algorithm)
              << std::setw(14) << std::fixed << std::setprecision(5)
              << adaptive.mean() << std::setw(16) << deterministic.mean()
              << std::setw(10) << std::setprecision(3)
              << adaptive.mean() / deterministic.mean() << "\n";
  }
  std::cout << "\n(saturation throughput in flits/clock/node; gain = "
               "adaptive/deterministic)\n";
  return 0;
}
