// Microbenchmarks (google-benchmark) for the construction-time pieces:
// topology generation, coordinated-tree construction, direction
// classification, the ADDG-based turn rule, the release and repair passes,
// routing-table construction, and raw simulator cycle throughput.
//
// On top of the google-benchmark registrations, main() first runs a fixed
// scenario suite (simulator cycles/sec at near-idle, mid-load and
// near-saturation offered loads on the 128-switch reference topology) and
// writes the results to BENCH_micro.json — machine-readable, with the git
// revision and a UTC timestamp — so the perf trajectory is tracked across
// PRs.  Set DOWNUP_BENCH_JSON to change the output path ("" disables).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "core/downup_routing.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "routing/cdg.hpp"
#include "routing/path_analysis.hpp"
#include "routing/verify.hpp"
#include "sim/network.hpp"
#include "topology/generate.hpp"
#include "util/cli.hpp"
#include "util/perf_counters.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace downup;

// Set from --threads in main() before the benchmarks run; the
// construction benchmarks route their table builds through it.
util::ThreadPool* gBuildPool = nullptr;

topo::Topology makeTopology(std::int64_t switches, unsigned ports,
                            std::uint64_t seed = 7) {
  util::Rng rng(seed);
  return topo::randomIrregular(static_cast<topo::NodeId>(switches),
                               {.maxPorts = ports}, rng);
}

void BM_RandomIrregular(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(11);
    benchmark::DoNotOptimize(
        topo::randomIrregular(static_cast<topo::NodeId>(state.range(0)),
                              {.maxPorts = 4}, rng));
  }
}
BENCHMARK(BM_RandomIrregular)->Arg(32)->Arg(128)->Arg(512);

void BM_CoordinatedTree(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  for (auto _ : state) {
    util::Rng rng(3);
    benchmark::DoNotOptimize(tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, rng));
  }
}
BENCHMARK(BM_CoordinatedTree)->Arg(128)->Arg(512);

void BM_ClassifyDownUp(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 8);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::classifyDownUp(topo, ct));
  }
}
BENCHMARK(BM_ClassifyDownUp)->Arg(128)->Arg(512);

void BM_BuildDownUpComplete(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::buildDownUp(topo, ct, {.pool = gBuildPool}));
  }
}
BENCHMARK(BM_BuildDownUpComplete)->Arg(32)->Arg(128);

void BM_ReleasePass(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  const routing::DirectionMap dirs = routing::classifyDownUp(topo, ct);
  for (auto _ : state) {
    routing::TurnPermissions perms(topo, dirs, core::downUpTurnSet());
    core::repairTurnCycles(perms);
    benchmark::DoNotOptimize(core::releaseRedundantProhibitions(perms));
  }
}
BENCHMARK(BM_ReleasePass)->Arg(32)->Arg(128);

void BM_RoutingTable(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  routing::TurnPermissions perms(topo, routing::classifyDownUp(topo, ct),
                                 core::downUpTurnSet());
  core::repairTurnCycles(perms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::RoutingTable::build(perms));
  }
}
BENCHMARK(BM_RoutingTable)->Arg(32)->Arg(128);

void BM_CdgAcyclicityCheck(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  routing::TurnPermissions perms(topo, routing::classifyDownUp(topo, ct),
                                 core::downUpTurnSet());
  core::repairTurnCycles(perms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::checkChannelDependencies(perms));
  }
}
BENCHMARK(BM_CdgAcyclicityCheck)->Arg(128)->Arg(512);

void BM_PathAnalysis(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::analyzePaths(routing.table()));
  }
}
BENCHMARK(BM_PathAnalysis)->Arg(64)->Arg(128);

void BM_VerifyRouting(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::verifyRouting(routing));
  }
}
BENCHMARK(BM_VerifyRouting)->Arg(64)->Arg(128);

void BM_SimulatorCycles(benchmark::State& state) {
  const topo::Topology topo = makeTopology(128, 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  const sim::UniformTraffic traffic(topo.nodeCount());
  sim::SimConfig config;
  config.packetLengthFlits = 128;
  config.warmupCycles = 0;
  config.measureCycles = 1u << 30;  // run() is not used; we step manually
  sim::WormholeNetwork net(routing.table(), traffic, 0.1, config);
  for (auto _ : state) {
    net.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorCycles);

// --- BENCH_micro.json scenario suite ---

constexpr int kScenarioWarmSteps = 20000;   // reach the steady state
constexpr int kScenarioTimedSteps = 200000;

struct Scenario {
  const char* name;
  double offeredLoad;  // flits/node/cycle
};

constexpr Scenario kScenarios[] = {
    {"near_idle", 0.002},
    {"mid_load", 0.05},
    {"near_saturation", 0.10},  // saturation probes at ~0.105 on this topo
};

double scenarioCyclesPerSec(const routing::Routing& routing,
                            const sim::TrafficPattern& traffic, double load,
                            obs::Observer* observer = nullptr) {
  sim::SimConfig config;
  config.packetLengthFlits = 128;
  config.warmupCycles = 0;
  config.measureCycles = 1u << 30;  // stepped manually
  config.observer = observer;
  sim::WormholeNetwork net(routing.table(), traffic, load, config);
  for (int i = 0; i < kScenarioWarmSteps; ++i) net.step();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kScenarioTimedSteps; ++i) net.step();
  const auto t1 = std::chrono::steady_clock::now();
  return kScenarioTimedSteps / std::chrono::duration<double>(t1 - t0).count();
}

// Counted phase attribution runs far fewer steps than the throughput
// scenarios: the counted path reads the perf group five times per cycle,
// which is measurement infrastructure, not simulator speed — the section
// answers "which phase is low-IPC / cache-bound", not "how fast".
constexpr int kCountedWarmSteps = 2000;
constexpr int kCountedTimedSteps = 20000;

/// Per-phase wall-clock + counter attribution for one scenario, written as
/// one JSON object on `out`.  Uses the engine's counted phase path when the
/// group is available and degrades to wall-clock-only attribution (the
/// plain profiled path) otherwise.
void writePhaseCounterScenario(std::FILE* out, const char* name, double load,
                               const routing::Routing& routing,
                               const topo::Topology& topo,
                               const tree::CoordinatedTree& ct,
                               const sim::TrafficPattern& traffic,
                               util::PerfCounterGroup& group, bool last) {
  obs::Observer observer({.profilePhases = true}, topo, &ct);
  observer.profiler()->attachCounters(&group);
  sim::SimConfig config;
  config.packetLengthFlits = 128;
  config.warmupCycles = 0;
  config.measureCycles = 1u << 30;  // stepped manually
  config.observer = &observer;
  sim::WormholeNetwork net(routing.table(), traffic, load, config);
  for (int i = 0; i < kCountedWarmSteps; ++i) net.step();
  observer.profiler()->reset();
  for (int i = 0; i < kCountedTimedSteps; ++i) net.step();

  const obs::PhaseProfiler& profiler = *observer.profiler();
  std::fprintf(out, "      {\"name\": \"%s\", \"offeredLoad\": %g, "
                    "\"cycles\": %llu, \"phases\": [",
               name, load,
               static_cast<unsigned long long>(profiler.cycles()));
  for (std::uint8_t p = 0; p < obs::PhaseProfiler::kPhaseCount; ++p) {
    const auto phase = static_cast<obs::PhaseProfiler::Phase>(p);
    const util::PerfCounts counts = profiler.phaseCounts(phase);
    std::fprintf(out, "%s\n        {\"phase\": \"%s\", \"totalNs\": %llu",
                 p == 0 ? "" : ",", obs::PhaseProfiler::toString(phase),
                 static_cast<unsigned long long>(profiler.phaseNanos(phase)));
    for (std::size_t e = 0; e < util::kPerfEventCount; ++e) {
      const auto event = static_cast<util::PerfEvent>(e);
      if (!counts.has(event)) continue;
      std::fprintf(out, ", \"%s\": %llu", util::toString(event),
                   static_cast<unsigned long long>(counts.get(event)));
    }
    if (counts.ipc() >= 0) {
      std::fprintf(out, ", \"ipc\": %.4f", counts.ipc());
    }
    if (counts.cacheMissRate() >= 0) {
      std::fprintf(out, ", \"cacheMissRate\": %.4f", counts.cacheMissRate());
    }
    std::fprintf(out, "}");
    char ipcText[16] = "-";
    if (counts.ipc() >= 0) {
      std::snprintf(ipcText, sizeof ipcText, "%.2f", counts.ipc());
    }
    std::printf("bench_micro phase %-16s %-14s %8.1f ns/cycle  ipc %s\n",
                name, obs::PhaseProfiler::toString(phase),
                static_cast<double>(profiler.phaseNanos(phase)) /
                    static_cast<double>(profiler.cycles() == 0
                                            ? 1
                                            : profiler.cycles()),
                ipcText);
  }
  std::fprintf(out, "\n      ]}%s\n", last ? "" : ",");
}

void writeScenarioJson(const char* path) {
  const topo::Topology topo = makeTopology(128, 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  const sim::UniformTraffic traffic(topo.nodeCount());

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_micro.scenarios\",\n");
  std::fprintf(out, "  \"gitRev\": \"%s\",\n", obs::gitRevision().c_str());
  std::fprintf(out, "  \"timestampUtc\": \"%s\",\n",
               obs::utcTimestamp().c_str());
  std::fprintf(out,
               "  \"methodology\": {\"switches\": 128, \"maxPorts\": 4, "
               "\"packetLengthFlits\": 128, \"warmSteps\": %d, "
               "\"timedSteps\": %d},\n",
               kScenarioWarmSteps, kScenarioTimedSteps);
  std::fprintf(out, "  \"scenarios\": [\n");
  for (const Scenario& scenario : kScenarios) {
    const double cps =
        scenarioCyclesPerSec(routing, traffic, scenario.offeredLoad);
    std::printf("bench_micro %-24s %12.0f cycles/sec\n", scenario.name, cps);
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"offeredLoad\": %g, "
                 "\"cyclesPerSec\": %.0f},\n",
                 scenario.name, scenario.offeredLoad, cps);
  }
  // Near-saturation rerun with the full time-resolved observer attached
  // (metrics + windowed time series with per-channel counts + wait-for
  // sampling): tracks the enabled-path overhead next to the bare number.
  {
    const double load = kScenarios[std::size(kScenarios) - 1].offeredLoad;
    obs::Observer observer({.metrics = true,
                            .timeseriesWindowCycles = 1024,
                            .timeseriesPerChannel = true,
                            .waitForSamplePeriod = 128},
                           topo, &ct);
    const double cps = scenarioCyclesPerSec(routing, traffic, load, &observer);
    std::printf("bench_micro %-24s %12.0f cycles/sec\n",
                "near_saturation_observed", cps);
    std::fprintf(out,
                 "    {\"name\": \"near_saturation_observed\", "
                 "\"offeredLoad\": %g, \"cyclesPerSec\": %.0f}\n",
                 load, cps);
  }
  std::fprintf(out, "  ],\n");
  // Per-phase counter attribution near idle vs near saturation: which
  // engine phase is low-IPC / cache-bound as load rises (ROADMAP item 4's
  // SoA-layout question).  Availability is always spelled out so a
  // PMU-less container reports wall-clock attribution, not silent zeros.
  {
    util::PerfCounterGroup group;
    const char* status = !group.available() ? "unavailable"
                         : group.eventMask() ==
                                 ((1u << util::kPerfEventCount) - 1u)
                             ? "available"
                             : "partial";
    std::fprintf(out, "  \"phaseCounters\": {\n    \"counters\": \"%s\",\n",
                 status);
    if (!group.degradedReason().empty()) {
      std::fprintf(out, "    \"countersReason\": \"%s\",\n",
                   group.degradedReason().c_str());
    }
    if (!group.available()) {
      std::printf("bench_micro: counters unavailable: %s (phase attribution "
                  "is wall-clock only)\n",
                  group.unavailableReason().c_str());
    } else if (!group.degradedReason().empty()) {
      std::printf("bench_micro: counters partial (%s)\n",
                  group.degradedReason().c_str());
    }
    std::fprintf(out, "    \"methodology\": {\"warmSteps\": %d, "
                      "\"timedSteps\": %d},\n    \"scenarios\": [\n",
                 kCountedWarmSteps, kCountedTimedSteps);
    writePhaseCounterScenario(out, "near_idle", kScenarios[0].offeredLoad,
                              routing, topo, ct, traffic, group, false);
    writePhaseCounterScenario(out, "near_saturation",
                              kScenarios[std::size(kScenarios) - 1].offeredLoad,
                              routing, topo, ct, traffic, group, true);
    std::fprintf(out, "    ]\n  }\n");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("bench_micro: wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* jsonPath = std::getenv("DOWNUP_BENCH_JSON");
  if (jsonPath == nullptr) jsonPath = "BENCH_micro.json";
  if (jsonPath[0] != '\0') writeScenarioJson(jsonPath);

  // benchmark::Initialize consumes the --benchmark_* flags and compacts
  // argv; whatever is left (e.g. --threads) goes through util::Cli.
  benchmark::Initialize(&argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  downup::util::Cli cli("bench_micro",
                        "construction + simulator microbenchmarks");
  auto threads = cli.positiveOption<int>(
      "threads", static_cast<int>(hw == 0 ? 1 : hw),
      "worker threads for the table-construction benchmarks");
  cli.parse(argc, argv);
  const auto pool = std::make_unique<downup::util::ThreadPool>(
      static_cast<std::size_t>(*threads));
  gBuildPool = pool.get();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
