// Microbenchmarks (google-benchmark) for the construction-time pieces:
// topology generation, coordinated-tree construction, direction
// classification, the ADDG-based turn rule, the release and repair passes,
// routing-table construction, and raw simulator cycle throughput.
#include <benchmark/benchmark.h>

#include "core/downup_routing.hpp"
#include "routing/cdg.hpp"
#include "routing/path_analysis.hpp"
#include "routing/verify.hpp"
#include "sim/network.hpp"
#include "topology/generate.hpp"

namespace {

using namespace downup;

topo::Topology makeTopology(std::int64_t switches, unsigned ports,
                            std::uint64_t seed = 7) {
  util::Rng rng(seed);
  return topo::randomIrregular(static_cast<topo::NodeId>(switches),
                               {.maxPorts = ports}, rng);
}

void BM_RandomIrregular(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(11);
    benchmark::DoNotOptimize(
        topo::randomIrregular(static_cast<topo::NodeId>(state.range(0)),
                              {.maxPorts = 4}, rng));
  }
}
BENCHMARK(BM_RandomIrregular)->Arg(32)->Arg(128)->Arg(512);

void BM_CoordinatedTree(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  for (auto _ : state) {
    util::Rng rng(3);
    benchmark::DoNotOptimize(tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, rng));
  }
}
BENCHMARK(BM_CoordinatedTree)->Arg(128)->Arg(512);

void BM_ClassifyDownUp(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 8);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::classifyDownUp(topo, ct));
  }
}
BENCHMARK(BM_ClassifyDownUp)->Arg(128)->Arg(512);

void BM_BuildDownUpComplete(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::buildDownUp(topo, ct));
  }
}
BENCHMARK(BM_BuildDownUpComplete)->Arg(32)->Arg(128);

void BM_ReleasePass(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  const routing::DirectionMap dirs = routing::classifyDownUp(topo, ct);
  for (auto _ : state) {
    routing::TurnPermissions perms(topo, dirs, core::downUpTurnSet());
    core::repairTurnCycles(perms);
    benchmark::DoNotOptimize(core::releaseRedundantProhibitions(perms));
  }
}
BENCHMARK(BM_ReleasePass)->Arg(32)->Arg(128);

void BM_RoutingTable(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  routing::TurnPermissions perms(topo, routing::classifyDownUp(topo, ct),
                                 core::downUpTurnSet());
  core::repairTurnCycles(perms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::RoutingTable::build(perms));
  }
}
BENCHMARK(BM_RoutingTable)->Arg(32)->Arg(128);

void BM_CdgAcyclicityCheck(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  routing::TurnPermissions perms(topo, routing::classifyDownUp(topo, ct),
                                 core::downUpTurnSet());
  core::repairTurnCycles(perms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::checkChannelDependencies(perms));
  }
}
BENCHMARK(BM_CdgAcyclicityCheck)->Arg(128)->Arg(512);

void BM_PathAnalysis(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::analyzePaths(routing.table()));
  }
}
BENCHMARK(BM_PathAnalysis)->Arg(64)->Arg(128);

void BM_VerifyRouting(benchmark::State& state) {
  const topo::Topology topo = makeTopology(state.range(0), 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::verifyRouting(routing));
  }
}
BENCHMARK(BM_VerifyRouting)->Arg(64)->Arg(128);

void BM_SimulatorCycles(benchmark::State& state) {
  const topo::Topology topo = makeTopology(128, 4);
  util::Rng rng(3);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  const sim::UniformTraffic traffic(topo.nodeCount());
  sim::SimConfig config;
  config.packetLengthFlits = 128;
  config.warmupCycles = 0;
  config.measureCycles = 1u << 30;  // run() is not used; we step manually
  sim::WormholeNetwork net(routing.table(), traffic, 0.1, config);
  for (auto _ : state) {
    net.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorCycles);

}  // namespace

BENCHMARK_MAIN();
