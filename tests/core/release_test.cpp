#include "core/release.hpp"

#include <gtest/gtest.h>

#include "core/ddg.hpp"
#include "core/repair.hpp"
#include "routing/cdg.hpp"
#include "routing/direction.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::core {
namespace {

using routing::ChannelId;
using routing::Dir;
using routing::TurnPermissions;
using tree::CoordinatedTree;
using tree::TreePolicy;

TurnPermissions makeDownUpPerms(const routing::Topology& topo,
                                const CoordinatedTree& ct) {
  return TurnPermissions(topo, routing::classifyDownUp(topo, ct),
                         downUpTurnSet());
}

TEST(Release, PureTreeHasNoCandidates) {
  // A star graph has no cross links, hence no LU/RU_CROSS input channels.
  const routing::Topology topo = topo::star(8);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  TurnPermissions perms = makeDownUpPerms(topo, ct);
  const ReleaseStats stats = releaseRedundantProhibitions(perms);
  EXPECT_EQ(stats.candidateTurns, 0u);
  EXPECT_EQ(stats.releasedTurns, 0u);
  EXPECT_EQ(perms.releaseCount(), 0u);
}

TEST(Release, ReleasesOnlyTheTwoCandidateDirectionPairs) {
  util::Rng rng(5);
  const routing::Topology topo = topo::randomIrregular(40, {.maxPorts = 4}, rng);
  util::Rng treeRng(6);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  TurnPermissions perms = makeDownUpPerms(topo, ct);
  releaseRedundantProhibitions(perms);

  std::size_t counted = 0;
  for (routing::NodeId v = 0; v < topo.nodeCount(); ++v) {
    for (std::size_t i = 0; i < routing::kDirCount; ++i) {
      for (std::size_t j = 0; j < routing::kDirCount; ++j) {
        const Dir d1 = static_cast<Dir>(i);
        const Dir d2 = static_cast<Dir>(j);
        if (perms.isReleasedAt(v, d1, d2)) {
          ++counted;
          EXPECT_TRUE(routing::isUpCross(d1));
          EXPECT_EQ(d2, Dir::kRdTree);
        }
      }
    }
  }
  EXPECT_EQ(counted, perms.releaseCount());
}

TEST(Release, NeverIntroducesChannelDependencyCycles) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    util::Rng rng(seed);
    const routing::Topology topo = topo::randomIrregular(
        32, {.maxPorts = static_cast<unsigned>(4 + seed % 5)}, rng);
    util::Rng treeRng(seed + 100);
    const CoordinatedTree ct = CoordinatedTree::build(
        topo, TreePolicy::kM1SmallestFirst, treeRng);
    TurnPermissions perms = makeDownUpPerms(topo, ct);
    // Start from an acyclic base (repair first when the raw PT is cyclic).
    repairTurnCycles(perms);
    ASSERT_TRUE(routing::checkChannelDependencies(perms).acyclic);
    releaseRedundantProhibitions(perms);
    EXPECT_TRUE(routing::checkChannelDependencies(perms).acyclic)
        << "seed " << seed;
  }
}

TEST(Release, ReleasesHappenOnRealNetworks) {
  // On saturated 4-port irregular networks many up-cross -> tree-down turns
  // are harmless; the pass should find at least some of them.
  std::size_t totalReleases = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    const routing::Topology topo =
        topo::randomIrregular(48, {.maxPorts = 4}, rng);
    util::Rng treeRng(seed + 40);
    const CoordinatedTree ct = CoordinatedTree::build(
        topo, TreePolicy::kM1SmallestFirst, treeRng);
    TurnPermissions perms = makeDownUpPerms(topo, ct);
    repairTurnCycles(perms);
    const ReleaseStats stats = releaseRedundantProhibitions(perms);
    EXPECT_LE(stats.releasedTurns, stats.candidateTurns);
    totalReleases += stats.releasedTurns;
  }
  EXPECT_GT(totalReleases, 0u);
}

TEST(Release, ReleasedTurnsAreActuallyUsable) {
  util::Rng rng(9);
  const routing::Topology topo = topo::randomIrregular(48, {.maxPorts = 4}, rng);
  util::Rng treeRng(10);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  TurnPermissions perms = makeDownUpPerms(topo, ct);
  repairTurnCycles(perms);
  releaseRedundantProhibitions(perms);
  if (perms.releaseCount() == 0) GTEST_SKIP() << "no releases on this sample";

  // For every release there must exist a concrete channel pair that the
  // release legalised.
  for (routing::NodeId v = 0; v < topo.nodeCount(); ++v) {
    for (Dir d1 : {Dir::kLuCross, Dir::kRuCross}) {
      if (!perms.isReleasedAt(v, d1, Dir::kRdTree)) continue;
      bool usable = false;
      for (ChannelId out : topo.outputChannels(v)) {
        if (perms.dir(out) != Dir::kRdTree) continue;
        const ChannelId in = routing::Topology::reverseChannel(out);
        (void)in;
        for (ChannelId in2 : topo.outputChannels(v)) {
          const ChannelId candidate = routing::Topology::reverseChannel(in2);
          if (perms.dir(candidate) == d1 &&
              perms.allowed(v, candidate, out)) {
            usable = true;
          }
        }
      }
      EXPECT_TRUE(usable) << "node " << v;
    }
  }
}

}  // namespace
}  // namespace downup::core
