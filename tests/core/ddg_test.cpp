#include "core/ddg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace downup::core {
namespace {

TEST(Ddg, CompletePairHasBothEdges) {
  const Ddg pair = Ddg::completePair(Dir::kLCross, Dir::kRCross);
  EXPECT_EQ(pair.memberCount(), 2u);
  EXPECT_EQ(pair.edgeCount(), 2u);
  EXPECT_TRUE(pair.hasEdge(Dir::kLCross, Dir::kRCross));
  EXPECT_TRUE(pair.hasEdge(Dir::kRCross, Dir::kLCross));
  EXPECT_TRUE(pair.hasMember(Dir::kLCross));
  EXPECT_FALSE(pair.hasMember(Dir::kLuTree));
}

TEST(Ddg, CombineAddsAllCrossEdges) {
  const Ddg a = Ddg::completePair(Dir::kLuCross, Dir::kRdCross);
  const Ddg b = Ddg::completePair(Dir::kLdCross, Dir::kRuCross);
  const Ddg combined = Ddg::combine(a, b);
  EXPECT_EQ(combined.memberCount(), 4u);
  // 2 + 2 internal edges + 2*2*2 cross edges.
  EXPECT_EQ(combined.edgeCount(), 12u);
  EXPECT_TRUE(combined.hasEdge(Dir::kLuCross, Dir::kRuCross));
  EXPECT_TRUE(combined.hasEdge(Dir::kRuCross, Dir::kLuCross));
}

TEST(Ddg, CombineRejectsOverlap) {
  const Ddg a = Ddg::completePair(Dir::kLuCross, Dir::kRdCross);
  const Ddg b = Ddg::completePair(Dir::kLuCross, Dir::kRuCross);
  EXPECT_THROW(Ddg::combine(a, b), std::invalid_argument);
}

TEST(Derivation, StepOneRemovesOneEdgePerPair) {
  const AddgDerivation d = deriveMaximalAddg();
  EXPECT_EQ(d.addg1.edgeCount(), 1u);
  EXPECT_TRUE(d.addg1.hasEdge(Dir::kRdCross, Dir::kLuCross));
  EXPECT_FALSE(d.addg1.hasEdge(Dir::kLuCross, Dir::kRdCross));

  EXPECT_EQ(d.addg2.edgeCount(), 1u);
  EXPECT_TRUE(d.addg2.hasEdge(Dir::kLdCross, Dir::kRuCross));

  EXPECT_EQ(d.addg3.edgeCount(), 1u);
  EXPECT_TRUE(d.addg3.hasEdge(Dir::kRCross, Dir::kLCross));

  EXPECT_EQ(d.addg4.edgeCount(), 1u);
  EXPECT_TRUE(d.addg4.hasEdge(Dir::kLuTree, Dir::kRdTree));
}

TEST(Derivation, IntermediateEdgeCountsFollowThePaper) {
  const AddgDerivation d = deriveMaximalAddg();
  // ADDG5: 1+1 internal + 8 cross - 2 removed = 8.
  EXPECT_EQ(d.addg5.memberCount(), 4u);
  EXPECT_EQ(d.addg5.edgeCount(), 8u);
  EXPECT_FALSE(d.addg5.hasEdge(Dir::kRuCross, Dir::kRdCross));
  EXPECT_FALSE(d.addg5.hasEdge(Dir::kLuCross, Dir::kLdCross));
  EXPECT_TRUE(d.addg5.hasEdge(Dir::kRdCross, Dir::kRuCross));

  // ADDG6: 8 + 1 internal + 16 cross - 4 removed (horizontal->up) = 21.
  EXPECT_EQ(d.addg6.memberCount(), 6u);
  EXPECT_EQ(d.addg6.edgeCount(), 21u);
  EXPECT_FALSE(d.addg6.hasEdge(Dir::kLCross, Dir::kLuCross));
  EXPECT_FALSE(d.addg6.hasEdge(Dir::kRCross, Dir::kRuCross));
  EXPECT_TRUE(d.addg6.hasEdge(Dir::kLuCross, Dir::kLCross));

  // ADDG7: 21 + 1 internal + 24 cross - 2 (up-cross->RD_TREE)
  //        - 6 (x->LU_TREE) = 38.
  EXPECT_EQ(d.addg7.memberCount(), 8u);
  EXPECT_EQ(d.addg7.edgeCount(), 38u);
}

TEST(Derivation, ProhibitedSetIsExactlyThePapersEighteen) {
  const TurnSet set = downUpTurnSet();
  EXPECT_EQ(set.prohibitedCount(), 18u);

  const auto& paperList = downUpProhibitedTurns();
  std::set<std::pair<Dir, Dir>> expected(paperList.begin(), paperList.end());
  ASSERT_EQ(expected.size(), 18u) << "paper list has duplicates";

  const auto actual = set.prohibitedList();
  std::set<std::pair<Dir, Dir>> got(actual.begin(), actual.end());
  EXPECT_EQ(got, expected);
}

TEST(Derivation, ConnectivityCriticalTurnsStayAllowed) {
  const TurnSet set = downUpTurnSet();
  // Up the tree then down the tree must always be possible (Theorem 1).
  EXPECT_TRUE(set.isAllowed(Dir::kLuTree, Dir::kRdTree));
  // Same-direction chains are implicitly allowed.
  for (std::size_t i = 0; i < routing::kDirCount; ++i) {
    const Dir d = static_cast<Dir>(i);
    EXPECT_TRUE(set.isAllowed(d, d));
  }
}

TEST(Derivation, DownUpCharacter) {
  const TurnSet set = downUpTurnSet();
  // Down-then-up via cross links is the algorithm's signature: allowed.
  EXPECT_TRUE(set.isAllowed(Dir::kRdCross, Dir::kLuCross));
  EXPECT_TRUE(set.isAllowed(Dir::kLdCross, Dir::kRuCross));
  // Up-then-down via cross links is forbidden.
  EXPECT_FALSE(set.isAllowed(Dir::kLuCross, Dir::kRdCross));
  EXPECT_FALSE(set.isAllowed(Dir::kRuCross, Dir::kLdCross));
  // Nothing may ever turn toward the root.
  for (Dir from : {Dir::kRdTree, Dir::kLuCross, Dir::kLdCross, Dir::kRuCross,
                   Dir::kRdCross, Dir::kRCross, Dir::kLCross}) {
    EXPECT_FALSE(set.isAllowed(from, Dir::kLuTree));
  }
}

TEST(Derivation, ToTurnSetMatchesAddg7EdgeByEdge) {
  const AddgDerivation d = deriveMaximalAddg();
  const TurnSet set = d.addg7.toTurnSet();
  for (std::size_t i = 0; i < routing::kDirCount; ++i) {
    for (std::size_t j = 0; j < routing::kDirCount; ++j) {
      if (i == j) continue;
      const Dir a = static_cast<Dir>(i);
      const Dir b = static_cast<Dir>(j);
      EXPECT_EQ(set.isAllowed(a, b), d.addg7.hasEdge(a, b))
          << routing::toString(a) << "->" << routing::toString(b);
    }
  }
}

}  // namespace
}  // namespace downup::core
