// Dedicated coverage for the cycle-repair pass (DESIGN.md §4.4).
#include "core/repair.hpp"

#include <gtest/gtest.h>

#include "core/ddg.hpp"
#include "routing/cdg.hpp"
#include "routing/direction.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/summary.hpp"

namespace downup::core {
namespace {

using routing::Dir;
using routing::Topology;
using routing::TurnPermissions;
using tree::CoordinatedTree;
using tree::TreePolicy;

TurnPermissions rawDownUpPerms(const Topology& topo,
                               const CoordinatedTree& ct) {
  return TurnPermissions(topo, routing::classifyDownUp(topo, ct),
                         downUpTurnSet());
}

TEST(Repair, AlwaysReachesAcyclicity) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    const Topology topo = topo::randomIrregular(
        64, {.maxPorts = static_cast<unsigned>(4 + seed % 5)}, rng);
    util::Rng treeRng(seed + 50);
    const TreePolicy policy = static_cast<TreePolicy>(seed % 3);
    const CoordinatedTree ct = CoordinatedTree::build(topo, policy, treeRng);
    TurnPermissions perms = rawDownUpPerms(topo, ct);
    repairTurnCycles(perms);
    EXPECT_TRUE(routing::checkChannelDependencies(perms).acyclic)
        << "seed " << seed;
  }
}

TEST(Repair, IsIdempotent) {
  util::Rng rng(3);
  const Topology topo = topo::randomIrregular(48, {.maxPorts = 4}, rng);
  util::Rng treeRng(4);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM3LargestFirst, treeRng);
  TurnPermissions perms = rawDownUpPerms(topo, ct);
  const RepairStats first = repairTurnCycles(perms);
  const std::size_t blocksAfterFirst = perms.blockCount();
  const RepairStats second = repairTurnCycles(perms);
  EXPECT_EQ(second.blockedTurns, 0u);
  EXPECT_EQ(perms.blockCount(), blocksAfterFirst);
  (void)first;
}

TEST(Repair, BlockCountsAreSmallRelativeToTheNetwork) {
  // The published rule is *mostly* sound: the repair should touch only a
  // handful of node-local turns even on adversarial (M3) trees.
  util::RunningStat blocks;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    const Topology topo = topo::randomIrregular(64, {.maxPorts = 4}, rng);
    util::Rng treeRng(seed + 10);
    const CoordinatedTree ct =
        CoordinatedTree::build(topo, TreePolicy::kM3LargestFirst, treeRng);
    TurnPermissions perms = rawDownUpPerms(topo, ct);
    const RepairStats stats = repairTurnCycles(perms);
    blocks.add(static_cast<double>(stats.blockedTurns));
  }
  EXPECT_LT(blocks.mean(), 64.0) << "repair should be node-local, not global";
}

TEST(Repair, NeverBlocksTreeTurns) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    const Topology topo = topo::randomIrregular(48, {.maxPorts = 6}, rng);
    util::Rng treeRng(seed + 20);
    const CoordinatedTree ct =
        CoordinatedTree::build(topo, TreePolicy::kM2Random, treeRng);
    TurnPermissions perms = rawDownUpPerms(topo, ct);
    repairTurnCycles(perms);
    for (routing::NodeId v = 0; v < topo.nodeCount(); ++v) {
      EXPECT_FALSE(perms.isBlockedAt(v, Dir::kLuTree, Dir::kRdTree));
      EXPECT_FALSE(perms.isBlockedAt(v, Dir::kLuTree, Dir::kLuTree));
      EXPECT_FALSE(perms.isBlockedAt(v, Dir::kRdTree, Dir::kRdTree));
    }
  }
}

TEST(Repair, PublishedRuleIsCyclicEvenUnderM1Trees) {
  // Empirical strengthening of the §4.4 finding: on port-saturated random
  // irregular networks the published 18-turn rule admits turn cycles on
  // essentially every sample, even with the paper's own M1 tree — the flaw
  // is pervasive, not an adversarial corner case.  (A handful of node-local
  // blocks repairs each instance; see BlockCountsAreSmall.)
  unsigned cyclic = 0;
  constexpr unsigned kSamples = 10;
  for (std::uint64_t seed = 1; seed <= kSamples; ++seed) {
    util::Rng rng(seed);
    const Topology topo = topo::randomIrregular(48, {.maxPorts = 4}, rng);
    util::Rng treeRng(seed + 30);
    const CoordinatedTree ct =
        CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
    TurnPermissions perms = rawDownUpPerms(topo, ct);
    if (!routing::checkChannelDependencies(perms).acyclic) ++cyclic;
  }
  EXPECT_GE(cyclic, kSamples / 2);
}

TEST(Repair, WorksOnRegularTopologies) {
  util::Rng rng(1);
  for (const Topology& topo :
       {topo::torus(6, 6), topo::hypercube(5), topo::petersen(),
        topo::dumbbell(5)}) {
    for (TreePolicy policy :
         {TreePolicy::kM1SmallestFirst, TreePolicy::kM3LargestFirst}) {
      const CoordinatedTree ct = CoordinatedTree::build(topo, policy, rng);
      TurnPermissions perms = rawDownUpPerms(topo, ct);
      repairTurnCycles(perms);
      EXPECT_TRUE(routing::checkChannelDependencies(perms).acyclic);
    }
  }
}

}  // namespace
}  // namespace downup::core
