// The cycle-repair pass on degraded topologies: online reconfiguration
// (fault/reconfigure.hpp) rebuilds DOWN/UP routing on a SAN with links
// removed, so the repair must stay sound — acyclic, idempotent, and fully
// connecting — on every single-link-removal neighbour of a healthy network,
// not just on freshly generated ones.
#include "core/repair.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/ddg.hpp"
#include "routing/cdg.hpp"
#include "routing/routing_table.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/rng.hpp"

namespace downup::core {
namespace {

using routing::Topology;
using routing::TurnPermissions;
using tree::CoordinatedTree;
using tree::TreePolicy;

/// The topology with link `dead` removed (host link order preserved).
Topology removeLink(const Topology& topo, topo::LinkId dead) {
  Topology degraded(topo.nodeCount());
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    if (l == dead) continue;
    const auto [a, b] = topo.linkEnds(l);
    degraded.addLink(a, b);
  }
  return degraded;
}

bool isConnected(const Topology& topo) {
  std::vector<bool> seen(topo.nodeCount(), false);
  std::vector<topo::NodeId> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const topo::NodeId v = stack.back();
    stack.pop_back();
    for (const topo::NodeId w : topo.neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  for (topo::NodeId v = 0; v < topo.nodeCount(); ++v) {
    if (!seen[v]) return false;
  }
  return true;
}

/// For every link of `topo` whose removal keeps the network connected:
/// rebuild the tree and raw DOWN/UP permissions on the degraded topology,
/// repair, and check acyclicity, idempotence and all-pairs connectivity.
void checkAllSingleLinkRemovals(const Topology& topo, std::uint64_t treeSeed) {
  unsigned checked = 0;
  for (topo::LinkId dead = 0; dead < topo.linkCount(); ++dead) {
    const Topology degraded = removeLink(topo, dead);
    if (!isConnected(degraded)) continue;
    ++checked;

    util::Rng treeRng(treeSeed);
    const CoordinatedTree ct = CoordinatedTree::build(
        degraded, TreePolicy::kM1SmallestFirst, treeRng);
    TurnPermissions perms(degraded, routing::classifyDownUp(degraded, ct),
                          downUpTurnSet());
    repairTurnCycles(perms);

    EXPECT_TRUE(routing::checkChannelDependencies(perms).acyclic)
        << "cycle after repair, dead link " << dead;
    const std::size_t blocks = perms.blockCount();
    const RepairStats second = repairTurnCycles(perms);
    EXPECT_EQ(second.blockedTurns, 0u) << "repair not idempotent, dead link "
                                       << dead;
    EXPECT_EQ(perms.blockCount(), blocks);

    const auto table = routing::RoutingTable::build(perms);
    EXPECT_TRUE(table.allPairsConnected())
        << "unreachable pair after repair, dead link " << dead;
  }
  // A random SAN has spare paths: most links must have been coverable.
  EXPECT_GT(checked, topo.linkCount() / 2);
}

TEST(RepairDegraded, EveryLinkRemovalOf32SwitchSan) {
  util::Rng rng(2024);
  const Topology topo = topo::randomIrregular(32, {.maxPorts = 4}, rng);
  checkAllSingleLinkRemovals(topo, 7);
}

TEST(RepairDegraded, EveryLinkRemovalOf64SwitchSan) {
  util::Rng rng(4097);
  const Topology topo = topo::randomIrregular(64, {.maxPorts = 5}, rng);
  checkAllSingleLinkRemovals(topo, 11);
}

}  // namespace
}  // namespace downup::core
