#include "core/downup_routing.hpp"

#include <gtest/gtest.h>

#include "routing/cdg.hpp"
#include "routing/verify.hpp"
#include "topology/generate.hpp"

namespace downup::core {
namespace {

using routing::ChannelId;
using routing::Dir;
using routing::NodeId;
using routing::Topology;
using routing::TurnPermissions;
using tree::CoordinatedTree;
using tree::TreePolicy;

/// The 8-node witness of DESIGN.md §4.4.  Node roles: 0 = root,
/// level 1 = {1 (g), 2 (c), 3 (d), 4 (f), 5 (a)}, level 2 = {6 (e), 7 (b)}.
/// Under the M3 tree the six cross channels
/// 5->7 (RD), 7->2 (LU), 2->3 (L), 3->6 (RD), 6->4 (LU), 4->5 (L)
/// form a turn cycle consisting entirely of turns the paper allows.
Topology counterexampleTopology() {
  Topology topo(8);
  for (NodeId v = 1; v <= 5; ++v) topo.addLink(0, v);  // root fan-out
  topo.addLink(1, 7);                                  // tree: g - b
  topo.addLink(2, 6);                                  // tree: c - e
  topo.addLink(5, 7);                                  // cross: a - b
  topo.addLink(2, 7);                                  // cross: b - c
  topo.addLink(2, 3);                                  // cross: c - d
  topo.addLink(3, 6);                                  // cross: d - e
  topo.addLink(4, 6);                                  // cross: e - f
  topo.addLink(4, 5);                                  // cross: f - a
  return topo;
}

CoordinatedTree counterexampleTree(const Topology& topo) {
  util::Rng rng(1);
  return CoordinatedTree::build(topo, TreePolicy::kM3LargestFirst, rng);
}

TEST(DownUpCounterexample, TreeShapeIsAsConstructed) {
  const Topology topo = counterexampleTopology();
  const CoordinatedTree ct = counterexampleTree(topo);
  EXPECT_EQ(ct.parent(7), 1u);
  EXPECT_EQ(ct.parent(6), 2u);
  for (NodeId v = 1; v <= 5; ++v) EXPECT_EQ(ct.parent(v), 0u);
  // M3 preorder: 0, 5, 4, 3, 2, 6, 1, 7.
  EXPECT_EQ(ct.x(0), 0u);
  EXPECT_EQ(ct.x(5), 1u);
  EXPECT_EQ(ct.x(4), 2u);
  EXPECT_EQ(ct.x(3), 3u);
  EXPECT_EQ(ct.x(2), 4u);
  EXPECT_EQ(ct.x(6), 5u);
  EXPECT_EQ(ct.x(1), 6u);
  EXPECT_EQ(ct.x(7), 7u);
}

TEST(DownUpCounterexample, TheSixChannelsHaveTheClaimedDirections) {
  const Topology topo = counterexampleTopology();
  const CoordinatedTree ct = counterexampleTree(topo);
  const routing::DirectionMap dirs = routing::classifyDownUp(topo, ct);
  EXPECT_EQ(dirs[topo.channel(5, 7)], Dir::kRdCross);
  EXPECT_EQ(dirs[topo.channel(7, 2)], Dir::kLuCross);
  EXPECT_EQ(dirs[topo.channel(2, 3)], Dir::kLCross);
  EXPECT_EQ(dirs[topo.channel(3, 6)], Dir::kRdCross);
  EXPECT_EQ(dirs[topo.channel(6, 4)], Dir::kLuCross);
  EXPECT_EQ(dirs[topo.channel(4, 5)], Dir::kLCross);
}

TEST(DownUpCounterexample, PublishedTurnSetAdmitsATurnCycle) {
  // Reproduction finding: the paper's Phase-2 prohibited-turn set PT is not
  // sufficient for deadlock freedom (DESIGN.md §4.4).
  const Topology topo = counterexampleTopology();
  const CoordinatedTree ct = counterexampleTree(topo);
  TurnPermissions perms(topo, routing::classifyDownUp(topo, ct),
                        downUpTurnSet());
  const routing::CdgResult result = routing::checkChannelDependencies(perms);
  EXPECT_FALSE(result.acyclic)
      << "expected the published PT to admit a turn cycle here";

  // And each turn on the constructed 6-channel cycle really is allowed.
  const ChannelId cyc[6] = {topo.channel(5, 7), topo.channel(7, 2),
                            topo.channel(2, 3), topo.channel(3, 6),
                            topo.channel(6, 4), topo.channel(4, 5)};
  for (int i = 0; i < 6; ++i) {
    const ChannelId in = cyc[i];
    const ChannelId out = cyc[(i + 1) % 6];
    EXPECT_TRUE(perms.allowed(topo.channelDst(in), in, out))
        << "turn " << i << " unexpectedly prohibited";
  }
}

TEST(DownUpCounterexample, RepairRestoresDeadlockFreedom) {
  const Topology topo = counterexampleTopology();
  const CoordinatedTree ct = counterexampleTree(topo);
  TurnPermissions perms(topo, routing::classifyDownUp(topo, ct),
                        downUpTurnSet());
  const RepairStats stats = repairTurnCycles(perms);
  EXPECT_GE(stats.blockedTurns, 1u);
  EXPECT_TRUE(routing::checkChannelDependencies(perms).acyclic);
  // Blocks target only turns entering up-cross runs.
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    for (std::size_t i = 0; i < routing::kDirCount; ++i) {
      for (std::size_t j = 0; j < routing::kDirCount; ++j) {
        const Dir d1 = static_cast<Dir>(i);
        const Dir d2 = static_cast<Dir>(j);
        if (perms.isBlockedAt(v, d1, d2)) {
          EXPECT_TRUE(routing::isUpCross(d2));
          EXPECT_FALSE(routing::isUpCross(d1));
        }
      }
    }
  }
}

TEST(DownUpCounterexample, FullBuilderIsSoundAndLive) {
  const Topology topo = counterexampleTopology();
  const CoordinatedTree ct = counterexampleTree(topo);
  const routing::Routing routing = buildDownUp(topo, ct);
  const routing::VerifyReport report = routing::verifyRouting(routing);
  EXPECT_TRUE(report.ok()) << report.describe();
}

TEST(RepairPass, NoOpOnAcyclicPermissions) {
  const Topology topo = topo::paperFigure1();
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  TurnPermissions perms(topo, routing::classifyDownUp(topo, ct),
                        downUpTurnSet());
  if (!routing::checkChannelDependencies(perms).acyclic) {
    GTEST_SKIP() << "figure-1 CG unexpectedly cyclic";
  }
  const RepairStats stats = repairTurnCycles(perms);
  EXPECT_EQ(stats.blockedTurns, 0u);
}

TEST(BuildDownUp, NamesReflectOptions) {
  const Topology topo = topo::paperFigure1();
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  EXPECT_EQ(buildDownUp(topo, ct).name(), "downup");
  EXPECT_EQ(buildDownUp(topo, ct, {.releaseRedundant = false}).name(),
            "downup-norelease");
}

TEST(BuildDownUp, ReleaseOnlyAddsAdaptivity) {
  util::Rng rng(3);
  const Topology topo = topo::randomIrregular(48, {.maxPorts = 4}, rng);
  util::Rng treeRng(4);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing with = buildDownUp(topo, ct);
  const routing::Routing without =
      buildDownUp(topo, ct, {.releaseRedundant = false});
  // Released turns can only shorten or keep legal distances.
  double sumWith = 0.0;
  double sumWithout = 0.0;
  for (NodeId s = 0; s < topo.nodeCount(); ++s) {
    for (NodeId d = 0; d < topo.nodeCount(); ++d) {
      if (s == d) continue;
      EXPECT_LE(with.table().distance(s, d), without.table().distance(s, d));
      sumWith += with.table().distance(s, d);
      sumWithout += without.table().distance(s, d);
    }
  }
  EXPECT_LE(sumWith, sumWithout);
}

TEST(AlgorithmDispatcher, BuildsEveryAlgorithm) {
  util::Rng rng(7);
  const Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(8);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  for (Algorithm algorithm : kAllAlgorithms) {
    const routing::Routing routing = buildRouting(algorithm, topo, ct);
    EXPECT_EQ(routing.name(), toString(algorithm));
    const routing::VerifyReport report = routing::verifyRouting(routing);
    EXPECT_TRUE(report.ok())
        << toString(algorithm) << ": " << report.describe();
  }
}

}  // namespace
}  // namespace downup::core
