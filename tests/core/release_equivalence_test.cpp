// Property test for the batched release pass: on every topology, the
// SCC-condensation + bitset-reachability pass (releaseRedundantProhibitions)
// must release EXACTLY the per-node turns the reference implementation
// (releaseRedundantProhibitionsDfs, one DFS per candidate) releases — same
// counts, same (node, d1, d2) set — because both walk candidates in the
// same order and grant a release iff it closes no channel-dependency cycle
// in the committed-so-far graph.  50+ seeded random SANs across sizes and
// port counts, plus the paper's Figure-1 network.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/downup_routing.hpp"
#include "core/release.hpp"
#include "core/repair.hpp"
#include "routing/cdg.hpp"
#include "topology/generate.hpp"

namespace downup {
namespace {

std::vector<std::uint64_t> releasedMasks(
    const routing::TurnPermissions& perms) {
  std::vector<std::uint64_t> masks;
  const topo::NodeId n = perms.topology().nodeCount();
  masks.reserve(static_cast<std::size_t>(n));
  for (topo::NodeId v = 0; v < n; ++v) {
    std::uint64_t mask = 0;
    for (unsigned a = 0; a < routing::kDirCount; ++a) {
      for (unsigned b = 0; b < routing::kDirCount; ++b) {
        if (perms.isReleasedAt(v, static_cast<routing::Dir>(a),
                               static_cast<routing::Dir>(b))) {
          mask |= std::uint64_t{1} << (a * routing::kDirCount + b);
        }
      }
    }
    masks.push_back(mask);
  }
  return masks;
}

void expectEquivalentOn(const topo::Topology& topo, std::uint64_t treeSeed) {
  util::Rng treeRng(treeSeed);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::DirectionMap dirs = routing::classifyDownUp(topo, ct);

  routing::TurnPermissions reference(topo, dirs, core::downUpTurnSet());
  core::repairTurnCycles(reference);
  routing::TurnPermissions batched = reference;

  const core::ReleaseStats refStats =
      core::releaseRedundantProhibitionsDfs(reference);
  const core::ReleaseStats batchStats =
      core::releaseRedundantProhibitions(batched);

  EXPECT_EQ(refStats.candidateTurns, batchStats.candidateTurns);
  EXPECT_EQ(refStats.releasedTurns, batchStats.releasedTurns);
  EXPECT_EQ(releasedMasks(reference), releasedMasks(batched));
  // Both must leave the channel-dependency graph acyclic (the whole point
  // of granting only cycle-free releases).
  EXPECT_TRUE(routing::checkChannelDependencies(batched).acyclic);
}

TEST(ReleaseEquivalenceTest, PaperFigure1) {
  expectEquivalentOn(topo::paperFigure1(), 1);
}

TEST(ReleaseEquivalenceTest, FiftyRandomTopologies) {
  // 56 topologies: sizes x ports x 7 seeds.
  int checked = 0;
  for (const topo::NodeId switches : {8u, 16u, 32u, 48u}) {
    for (const unsigned ports : {4u, 8u}) {
      for (std::uint64_t seed = 1; seed <= 7; ++seed) {
        SCOPED_TRACE(testing::Message() << switches << " switches, " << ports
                                        << " ports, seed " << seed);
        util::Rng rng(seed * 1000 + switches);
        const topo::Topology topo =
            topo::randomIrregular(switches, {.maxPorts = ports}, rng);
        expectEquivalentOn(topo, seed);
        ++checked;
      }
    }
  }
  EXPECT_GE(checked, 50);
}

}  // namespace
}  // namespace downup
