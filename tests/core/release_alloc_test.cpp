// The release pass's steady-state allocation contract, asserted directly:
// re-running a warmed ReleasePass on an identically-sized problem performs
// ZERO heap allocations — every piece of scratch (Tarjan stacks, SCC ids,
// reachability bitsets, condensation adjacency, worklists, candidate
// input/output lists) lives in the pass object at high-water capacity.
// This is what makes the pass safe to call from the online-reconfiguration
// hot path without jitter.
//
// Technique (same as tests/obs/zero_overhead_test.cpp, one override per
// test binary): the global allocation functions are replaced with counting
// wrappers, off by default and switched on only around the measured run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/downup_routing.hpp"
#include "core/release.hpp"
#include "core/repair.hpp"
#include "topology/generate.hpp"

namespace {

std::atomic<bool> g_countAllocations{false};
std::atomic<std::uint64_t> g_allocations{0};

void* countedAlloc(std::size_t size) {
  if (g_countAllocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace downup {
namespace {

routing::TurnPermissions makeRepairedPerms(const topo::Topology& topo,
                                           std::uint64_t seed) {
  util::Rng treeRng(seed);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  routing::TurnPermissions perms(topo, routing::classifyDownUp(topo, ct),
                                 core::downUpTurnSet());
  core::repairTurnCycles(perms);
  return perms;
}

TEST(ReleaseAllocTest, WarmedPassAllocatesNothing) {
  util::Rng topoRng(42);
  const topo::Topology topo =
      topo::randomIrregular(48, {.maxPorts = 4}, topoRng);
  const routing::TurnPermissions repaired = makeRepairedPerms(topo, 9);

  core::ReleasePass pass;
  routing::TurnPermissions warm = repaired;
  const core::ReleaseStats warmStats = pass.run(warm);
  EXPECT_GT(warmStats.releasedTurns, 0u);

  // Fresh copy made BEFORE counting starts; releaseAt/revokeReleaseAt only
  // flip bits in preallocated masks, so the measured region is exactly the
  // pass itself.
  routing::TurnPermissions measured = repaired;
  g_allocations.store(0);
  g_countAllocations.store(true);
  const core::ReleaseStats stats = pass.run(measured);
  g_countAllocations.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "ReleasePass::run allocated on a warmed, identically-sized rerun";
  EXPECT_EQ(stats.releasedTurns, warmStats.releasedTurns);
  EXPECT_EQ(stats.candidateTurns, warmStats.candidateTurns);
}

TEST(ReleaseAllocTest, WarmedPassAcrossTopologiesOfSameShapeAllocatesNothing) {
  // The pass is reusable across permission sets; warming on one topology
  // and running another of the same size must also stay allocation-free
  // (buffers are sized by channel/SCC counts, not tied to one graph).
  util::Rng rngA(7);
  util::Rng rngB(8);
  const topo::Topology topoA =
      topo::randomIrregular(32, {.maxPorts = 4}, rngA);
  const topo::Topology topoB =
      topo::randomIrregular(32, {.maxPorts = 4}, rngB);

  core::ReleasePass pass;
  routing::TurnPermissions warmA = makeRepairedPerms(topoA, 3);
  routing::TurnPermissions warmB = makeRepairedPerms(topoB, 4);
  pass.run(warmA);
  pass.run(warmB);  // high-water over both shapes

  routing::TurnPermissions measured = makeRepairedPerms(topoB, 4);
  g_allocations.store(0);
  g_countAllocations.store(true);
  pass.run(measured);
  g_countAllocations.store(false);
  EXPECT_EQ(g_allocations.load(), 0u);
}

}  // namespace
}  // namespace downup
