// Lemma 1 and the Figure 1(f) remark, mechanised.
#include <gtest/gtest.h>

#include "core/ddg.hpp"
#include "routing/cdg.hpp"
#include "routing/leftright.hpp"
#include "routing/turns.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::core {
namespace {

constexpr std::initializer_list<Dir> kTwoDirs = {Dir::kLuTree, Dir::kRdTree};
constexpr std::initializer_list<Dir> kSixDirs = {
    Dir::kLuCross, Dir::kRuCross, Dir::kLCross,
    Dir::kRCross,  Dir::kLdCross, Dir::kRdCross};
constexpr std::initializer_list<Dir> kEightDirs = {
    Dir::kLuTree,  Dir::kRdTree, Dir::kLuCross, Dir::kRuCross,
    Dir::kLCross,  Dir::kRCross, Dir::kLdCross, Dir::kRdCross};

TEST(Lemma1, UpDownDirectionGraphIsAcyclic) {
  // up*/down* prohibits the single edge RD -> LU; what remains (LU -> RD)
  // is acyclic, so Lemma 1 alone proves up*/down* deadlock-free.
  EXPECT_TRUE(isDirectionGraphAcyclic(routing::upDownTurnSet(), kTwoDirs));
}

TEST(Lemma1, LturnDirectionGraphIsCyclicYetSafe) {
  // The Figure 1(f) phenomenon: L-turn's direction graph has cycles
  // (e.g. LD <-> L), but no communication graph can realize them — the
  // channel-level check must certify it instead, and does.
  EXPECT_FALSE(isDirectionGraphAcyclic(routing::lturnTurnSet(), kSixDirs));

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const routing::Topology topo =
        topo::randomIrregular(32, {.maxPorts = 4}, rng);
    util::Rng treeRng(seed + 9);
    const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
    routing::TurnPermissions perms(topo, routing::classifyCoordinate(topo, ct),
                                   routing::lturnTurnSet());
    EXPECT_TRUE(routing::checkChannelDependencies(perms).acyclic)
        << "seed " << seed;
  }
}

TEST(Lemma1, LeftRightDirectionGraphIsCyclicYetSafe) {
  EXPECT_FALSE(
      isDirectionGraphAcyclic(routing::leftRightTurnSet(), kSixDirs));
}

TEST(Lemma1, DownUpDirectionGraphIsCyclic) {
  // The DOWN/UP rule's direction graph is cyclic by design (down -> up ->
  // flat -> down); unlike L-turn the cycle IS realizable in a CG
  // (DESIGN.md §4.4), which is exactly why the repair pass exists.
  EXPECT_FALSE(isDirectionGraphAcyclic(downUpTurnSet(), kEightDirs));
}

TEST(Lemma1, FullyProhibitedGraphIsAcyclic) {
  routing::TurnSet set = routing::TurnSet::allAllowed();
  for (Dir a : kEightDirs) {
    for (Dir b : kEightDirs) {
      if (a != b) set.prohibit(a, b);
    }
  }
  EXPECT_TRUE(isDirectionGraphAcyclic(set, kEightDirs));
}

TEST(Lemma1, AllAllowedGraphIsCyclic) {
  EXPECT_FALSE(
      isDirectionGraphAcyclic(routing::TurnSet::allAllowed(), kEightDirs));
  // ...but trivially acyclic when only one direction exists.
  EXPECT_TRUE(isDirectionGraphAcyclic(routing::TurnSet::allAllowed(),
                                      {Dir::kLuTree}));
}

}  // namespace
}  // namespace downup::core
